//! Property-based tests for the BGP substrate: codec round-trips and
//! RIB invariants, following the DESIGN.md testing strategy.

use bytes::BytesMut;
use proptest::prelude::*;

use mlpeer_bgp::aspath::{AsPath, Segment};
use mlpeer_bgp::community::{Community, CommunitySet};
use mlpeer_bgp::prefix::Prefix;
use mlpeer_bgp::rib::{Rib, RibEntry};
use mlpeer_bgp::route::{Origin, RouteAttrs};
use mlpeer_bgp::update::{BgpMessage, UpdateMessage};
use mlpeer_bgp::wire;
use mlpeer_bgp::Asn;

fn arb_prefix() -> impl Strategy<Value = Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(addr, len)| Prefix::from_u32(addr, len).unwrap())
}

fn arb_asn() -> impl Strategy<Value = Asn> {
    prop_oneof![
        1u32..70_000,          // dense small range incl. 16-bit boundary
        196_608u32..400_000,   // public 32-bit range
        Just(6695u32),
        Just(23456u32),
    ]
    .prop_map(Asn)
}

fn arb_aspath() -> impl Strategy<Value = AsPath> {
    prop::collection::vec(
        prop_oneof![
            prop::collection::vec(arb_asn(), 1..6).prop_map(Segment::Sequence),
            prop::collection::vec(arb_asn(), 1..4).prop_map(Segment::Set),
        ],
        0..4,
    )
    .prop_map(AsPath::from_segments)
}

fn arb_communities() -> impl Strategy<Value = CommunitySet> {
    prop::collection::vec(any::<u32>().prop_map(Community), 0..8)
        .prop_map(CommunitySet::from_iter)
}

fn arb_attrs() -> impl Strategy<Value = RouteAttrs> {
    (
        arb_aspath(),
        any::<u32>(),
        arb_communities(),
        any::<u32>(),
        any::<u32>(),
        prop_oneof![Just(Origin::Igp), Just(Origin::Egp), Just(Origin::Incomplete)],
    )
        .prop_map(|(as_path, nh, communities, local_pref, med, origin)| RouteAttrs {
            as_path,
            next_hop: std::net::Ipv4Addr::from(nh),
            communities,
            local_pref,
            med,
            origin,
        })
}

fn arb_update() -> impl Strategy<Value = UpdateMessage> {
    (
        prop::collection::vec(arb_prefix(), 0..5),
        prop::option::of(arb_attrs()),
        prop::collection::vec(arb_prefix(), 0..5),
    )
        .prop_map(|(withdrawn, attrs, mut nlri)| {
            // NLRI without attributes is not encodable; normalize.
            if attrs.is_none() {
                nlri.clear();
            }
            UpdateMessage { withdrawn, attrs, nlri }
        })
}

proptest! {
    #[test]
    fn prefix_parse_display_roundtrip(p in arb_prefix()) {
        let s = p.to_string();
        prop_assert_eq!(s.parse::<Prefix>().unwrap(), p);
    }

    #[test]
    fn prefix_covers_is_reflexive_and_antisymmetric(p in arb_prefix(), q in arb_prefix()) {
        prop_assert!(p.covers(&p));
        if p.covers(&q) && q.covers(&p) {
            prop_assert_eq!(p, q);
        }
        // Overlap is symmetric by construction.
        prop_assert_eq!(p.overlaps(&q), q.overlaps(&p));
    }

    #[test]
    fn prefix_split_children_are_covered(p in arb_prefix()) {
        if let Some((l, r)) = p.split() {
            prop_assert!(p.covers(&l) && p.covers(&r));
            prop_assert!(!l.overlaps(&r));
            prop_assert_eq!(l.parent().unwrap(), p);
            prop_assert_eq!(r.parent().unwrap(), p);
        }
    }

    #[test]
    fn community_display_parse_roundtrip(v in any::<u32>()) {
        let c = Community(v);
        prop_assert_eq!(c.to_string().parse::<Community>().unwrap(), c);
    }

    #[test]
    fn community_set_is_sorted_and_deduped(cs in arb_communities()) {
        let s = cs.as_slice();
        for w in s.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn aspath_display_parse_roundtrip(p in arb_aspath()) {
        let s = p.to_string();
        let parsed: AsPath = s.parse().unwrap();
        // Adjacent sequence segments merge when parsed back; compare the
        // canonical flattened form and the segment kinds boundary count.
        prop_assert_eq!(parsed.to_vec(), p.to_vec());
        prop_assert_eq!(parsed.hop_len(), p.hop_len());
    }

    #[test]
    fn aspath_links_never_self_loop(p in arb_aspath()) {
        for (a, b) in p.links() {
            prop_assert_ne!(a, b);
        }
    }

    #[test]
    fn aspath_prepend_increases_hop_len(p in arb_aspath(), a in arb_asn(), n in 1usize..4) {
        let mut q = p.clone();
        q.prepend(a, n);
        prop_assert_eq!(q.hop_len(), p.hop_len() + n);
        prop_assert_eq!(q.first_hop(), Some(a));
    }

    #[test]
    fn wire_update_roundtrip(u in arb_update()) {
        let msg = BgpMessage::Update(u);
        let bytes = wire::encode_to_bytes(&msg);
        let decoded = wire::decode_frame(bytes).unwrap();
        prop_assert_eq!(decoded, msg);
    }

    #[test]
    fn wire_stream_roundtrip(updates in prop::collection::vec(arb_update(), 1..5)) {
        // Many messages on one stream, fed to the incremental decoder in
        // arbitrary chunk sizes.
        let msgs: Vec<BgpMessage> = updates.into_iter().map(BgpMessage::Update).collect();
        let mut wire_bytes = BytesMut::new();
        for m in &msgs {
            wire::encode_message(m, &mut wire_bytes);
        }
        let mut dec = wire::FrameDecoder::new();
        let mut got = Vec::new();
        for chunk in wire_bytes.freeze().chunks(7) {
            dec.extend(chunk);
            while let Some(m) = dec.next_message().unwrap() {
                got.push(m);
            }
        }
        prop_assert_eq!(got, msgs);
        prop_assert_eq!(dec.pending(), 0);
    }

    #[test]
    fn rib_best_is_among_paths(entries in prop::collection::vec((arb_asn(), arb_attrs()), 1..8)) {
        let mut rib = Rib::new();
        let p: Prefix = "192.0.2.0/24".parse().unwrap();
        for (i, (peer, attrs)) in entries.iter().enumerate() {
            rib.insert(p, RibEntry {
                peer: *peer,
                peer_addr: std::net::Ipv4Addr::from(i as u32 + 1),
                attrs: attrs.clone(),
                learned_at: 0,
            });
        }
        let best = rib.best(&p).unwrap();
        // Best is one of the stored paths...
        prop_assert!(rib.paths(&p).iter().any(|e| e == best));
        // ...and no stored path has strictly higher local-pref.
        for e in rib.paths(&p) {
            prop_assert!(e.attrs.local_pref <= best.attrs.local_pref);
        }
        // Ranked order starts with best.
        prop_assert_eq!(rib.paths_ranked(&p)[0], best);
    }
}
