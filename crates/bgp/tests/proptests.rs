//! Property-based tests for the BGP substrate: codec round-trips and
//! RIB invariants.
//!
//! Originally written with `proptest`; the offline build has no
//! registry, so the same properties run as seeded randomized-input
//! loops over the vendored `rand` — every case is deterministic and a
//! failure prints the iteration seed for replay.

use bytes::BytesMut;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mlpeer_bgp::aspath::{AsPath, Segment};
use mlpeer_bgp::community::{Community, CommunitySet};
use mlpeer_bgp::prefix::Prefix;
use mlpeer_bgp::rib::{Rib, RibEntry};
use mlpeer_bgp::route::{Origin, RouteAttrs};
use mlpeer_bgp::update::{BgpMessage, UpdateMessage};
use mlpeer_bgp::wire;
use mlpeer_bgp::Asn;

const CASES: u64 = 256;

/// Run `check` against `CASES` independently seeded generators.
fn for_cases(test_tag: u64, check: impl Fn(&mut StdRng)) {
    for case in 0..CASES {
        let seed = test_tag ^ (case << 8);
        let mut rng = StdRng::seed_from_u64(seed);
        check(&mut rng);
    }
}

fn arb_prefix(rng: &mut StdRng) -> Prefix {
    let addr: u32 = rng.gen::<u32>();
    let len = rng.gen_range(0..=32u8);
    Prefix::from_u32(addr, len).unwrap()
}

fn arb_asn(rng: &mut StdRng) -> Asn {
    match rng.gen_range(0..4u32) {
        0 => Asn(rng.gen_range(1u32..70_000)), // dense small range incl. 16-bit boundary
        1 => Asn(rng.gen_range(196_608u32..400_000)), // public 32-bit range
        2 => Asn(6695),
        _ => Asn(23456),
    }
}

fn arb_aspath(rng: &mut StdRng) -> AsPath {
    let nsegs = rng.gen_range(0..4usize);
    let segs: Vec<Segment> = (0..nsegs)
        .map(|_| {
            if rng.gen_bool(0.5) {
                Segment::Sequence(
                    (0..rng.gen_range(1..6usize))
                        .map(|_| arb_asn(rng))
                        .collect(),
                )
            } else {
                Segment::Set(
                    (0..rng.gen_range(1..4usize))
                        .map(|_| arb_asn(rng))
                        .collect(),
                )
            }
        })
        .collect();
    AsPath::from_segments(segs)
}

fn arb_communities(rng: &mut StdRng) -> CommunitySet {
    let n = rng.gen_range(0..8usize);
    CommunitySet::from_iter((0..n).map(|_| Community(rng.gen::<u32>())))
}

fn arb_attrs(rng: &mut StdRng) -> RouteAttrs {
    RouteAttrs {
        as_path: arb_aspath(rng),
        next_hop: std::net::Ipv4Addr::from(rng.gen::<u32>()),
        communities: arb_communities(rng),
        local_pref: rng.gen::<u32>(),
        med: rng.gen::<u32>(),
        origin: match rng.gen_range(0..3u32) {
            0 => Origin::Igp,
            1 => Origin::Egp,
            _ => Origin::Incomplete,
        },
    }
}

fn arb_update(rng: &mut StdRng) -> UpdateMessage {
    let withdrawn: Vec<Prefix> = (0..rng.gen_range(0..5usize))
        .map(|_| arb_prefix(rng))
        .collect();
    let attrs = if rng.gen_bool(0.8) {
        Some(arb_attrs(rng))
    } else {
        None
    };
    let mut nlri: Vec<Prefix> = (0..rng.gen_range(0..5usize))
        .map(|_| arb_prefix(rng))
        .collect();
    // NLRI without attributes is not encodable; normalize.
    if attrs.is_none() {
        nlri.clear();
    }
    UpdateMessage {
        withdrawn,
        attrs,
        nlri,
    }
}

#[test]
fn prefix_parse_display_roundtrip() {
    for_cases(0x01, |rng| {
        let p = arb_prefix(rng);
        let s = p.to_string();
        assert_eq!(s.parse::<Prefix>().unwrap(), p);
    });
}

#[test]
fn prefix_covers_is_reflexive_and_antisymmetric() {
    for_cases(0x02, |rng| {
        let p = arb_prefix(rng);
        let q = arb_prefix(rng);
        assert!(p.covers(&p));
        if p.covers(&q) && q.covers(&p) {
            assert_eq!(p, q);
        }
        // Overlap is symmetric by construction.
        assert_eq!(p.overlaps(&q), q.overlaps(&p));
    });
}

#[test]
fn prefix_split_children_are_covered() {
    for_cases(0x03, |rng| {
        let p = arb_prefix(rng);
        if let Some((l, r)) = p.split() {
            assert!(p.covers(&l) && p.covers(&r));
            assert!(!l.overlaps(&r));
            assert_eq!(l.parent().unwrap(), p);
            assert_eq!(r.parent().unwrap(), p);
        }
    });
}

#[test]
fn community_display_parse_roundtrip() {
    for_cases(0x04, |rng| {
        let c = Community(rng.gen::<u32>());
        assert_eq!(c.to_string().parse::<Community>().unwrap(), c);
    });
}

#[test]
fn community_set_is_sorted_and_deduped() {
    for_cases(0x05, |rng| {
        let cs = arb_communities(rng);
        let s = cs.as_slice();
        for w in s.windows(2) {
            assert!(w[0] < w[1]);
        }
    });
}

#[test]
fn aspath_display_parse_roundtrip() {
    for_cases(0x06, |rng| {
        let p = arb_aspath(rng);
        let s = p.to_string();
        let parsed: AsPath = s.parse().unwrap();
        // Adjacent sequence segments merge when parsed back; compare the
        // canonical flattened form and the hop count.
        assert_eq!(parsed.to_vec(), p.to_vec());
        assert_eq!(parsed.hop_len(), p.hop_len());
    });
}

#[test]
fn aspath_links_never_self_loop() {
    for_cases(0x07, |rng| {
        let p = arb_aspath(rng);
        for (a, b) in p.links() {
            assert_ne!(a, b);
        }
    });
}

#[test]
fn aspath_prepend_increases_hop_len() {
    for_cases(0x08, |rng| {
        let p = arb_aspath(rng);
        let a = arb_asn(rng);
        let n = rng.gen_range(1usize..4);
        let mut q = p.clone();
        q.prepend(a, n);
        assert_eq!(q.hop_len(), p.hop_len() + n);
        assert_eq!(q.first_hop(), Some(a));
    });
}

#[test]
fn wire_update_roundtrip() {
    for_cases(0x09, |rng| {
        let msg = BgpMessage::Update(arb_update(rng));
        let bytes = wire::encode_to_bytes(&msg);
        let decoded = wire::decode_frame(bytes).unwrap();
        assert_eq!(decoded, msg);
    });
}

#[test]
fn wire_stream_roundtrip() {
    for_cases(0x0A, |rng| {
        // Many messages on one stream, fed to the incremental decoder in
        // arbitrary chunk sizes.
        let msgs: Vec<BgpMessage> = (0..rng.gen_range(1..5usize))
            .map(|_| BgpMessage::Update(arb_update(rng)))
            .collect();
        let mut wire_bytes = BytesMut::new();
        for m in &msgs {
            wire::encode_message(m, &mut wire_bytes);
        }
        let mut dec = wire::FrameDecoder::new();
        let mut got = Vec::new();
        for chunk in wire_bytes.freeze().chunks(7) {
            dec.extend(chunk);
            while let Some(m) = dec.next_message().unwrap() {
                got.push(m);
            }
        }
        assert_eq!(got, msgs);
        assert_eq!(dec.pending(), 0);
    });
}

#[test]
fn rib_best_is_among_paths() {
    for_cases(0x0B, |rng| {
        let entries: Vec<(Asn, RouteAttrs)> = (0..rng.gen_range(1..8usize))
            .map(|_| (arb_asn(rng), arb_attrs(rng)))
            .collect();
        let mut rib = Rib::new();
        let p: Prefix = "192.0.2.0/24".parse().unwrap();
        for (i, (peer, attrs)) in entries.iter().enumerate() {
            rib.insert(
                p,
                RibEntry {
                    peer: *peer,
                    peer_addr: std::net::Ipv4Addr::from(i as u32 + 1),
                    attrs: attrs.clone(),
                    learned_at: 0,
                },
            );
        }
        let best = rib.best(&p).unwrap();
        // Best is one of the stored paths...
        assert!(rib.paths(&p).iter().any(|e| e == best));
        // ...and no stored path has strictly higher local-pref.
        for e in rib.paths(&p) {
            assert!(e.attrs.local_pref <= best.attrs.local_pref);
        }
        // Ranked order starts with best.
        assert_eq!(rib.paths_ranked(&p)[0], best);
    });
}

// ---- columnar archive views (MrtBytes) vs the struct decoder ----

use mlpeer_bgp::mrt::{MrtArchive, MrtRibEntry, MrtUpdate};
use mlpeer_bgp::view::MrtBytes;

/// A random archive with a peer table, RIB entries and an update
/// stream. RIB attrs always carry ≥ 1 NLRI by construction.
fn arb_archive(rng: &mut StdRng) -> MrtArchive {
    let mut a = MrtArchive::new();
    let npeers = rng.gen_range(1..5usize);
    for i in 0..npeers {
        a.add_peer(arb_asn(rng), std::net::Ipv4Addr::from(rng.gen::<u32>()));
        let _ = i;
    }
    for _ in 0..rng.gen_range(0..12usize) {
        a.rib.push(MrtRibEntry {
            peer_index: rng.gen_range(0..npeers) as u16,
            originated: rng.gen::<u32>(),
            prefix: arb_prefix(rng),
            attrs: arb_attrs(rng),
        });
    }
    for _ in 0..rng.gen_range(0..8usize) {
        let mut update = arb_update(rng);
        // An empty UPDATE decodes to attrs=None with no routes, which
        // encodes identically; keep it, the views must cope.
        if update.withdrawn.is_empty() && update.nlri.is_empty() {
            update.attrs = None;
        }
        a.updates.push(MrtUpdate {
            peer_index: rng.gen_range(0..npeers) as u16,
            timestamp: rng.gen::<u32>(),
            update,
        });
    }
    a
}

/// The tentpole contract: for any archive, the zero-copy views yield
/// exactly what the struct decoder materializes — same peers, same
/// per-record fields, same flattened/deduplicated AS paths, same
/// community sets — and `to_archive` round-trips.
#[test]
fn view_matches_struct_decode() {
    for_cases(0x0C, |rng| {
        let archive = arb_archive(rng);
        let encoded = archive.encode();
        let decoded = MrtArchive::decode(encoded.clone()).expect("struct decode");
        let bytes = MrtBytes::new(encoded).expect("view validation");
        assert_eq!(bytes.peers(), &decoded.peers[..]);
        assert_eq!(bytes.rib_len(), decoded.rib.len());
        assert_eq!(bytes.update_len(), decoded.updates.len());
        assert_eq!(bytes.to_archive(), decoded);

        let mut dedup = Vec::new();
        let mut cs = CommunitySet::new();
        for (view, entry) in bytes.rib_cursor().zip(&decoded.rib) {
            assert_eq!(view.peer_index(), entry.peer_index);
            assert_eq!(view.timestamp(), entry.originated);
            assert_eq!(view.prefix(), entry.prefix);
            assert_eq!(
                view.path_hops().collect::<Vec<_>>(),
                entry.attrs.as_path.to_vec()
            );
            view.path_dedup_into(&mut dedup);
            assert_eq!(dedup, entry.attrs.as_path.dedup_prepends());
            view.communities_into(&mut cs);
            assert_eq!(cs, entry.attrs.communities);
            assert_eq!(
                view.communities_is_empty(),
                entry.attrs.communities.is_empty()
            );
            assert_eq!(view.local_pref(), entry.attrs.local_pref);
            assert_eq!(view.med(), entry.attrs.med);
            assert_eq!(view.origin(), entry.attrs.origin);
            assert_eq!(view.next_hop(), entry.attrs.next_hop);
        }
        for (view, u) in bytes.update_cursor().zip(&decoded.updates) {
            assert_eq!(view.peer_index(), u.peer_index);
            assert_eq!(view.timestamp(), u.timestamp);
            assert_eq!(view.withdrawn().collect::<Vec<_>>(), u.update.withdrawn);
            assert_eq!(view.nlri().collect::<Vec<_>>(), u.update.nlri);
            assert_eq!(view.has_attrs(), u.update.attrs.is_some());
            if let Some(a) = &u.update.attrs {
                assert_eq!(view.path_hops().collect::<Vec<_>>(), a.as_path.to_vec());
                view.path_dedup_into(&mut dedup);
                assert_eq!(dedup, a.as_path.dedup_prepends());
                view.communities_into(&mut cs);
                assert_eq!(cs, a.communities);
            }
        }
    });
}

/// Truncations rejected by the struct decoder are rejected by the view
/// validator too — nothing malformed survives to the infallible views.
#[test]
fn view_rejects_truncations_like_struct_decode() {
    for_cases(0x0D, |rng| {
        let archive = arb_archive(rng);
        let encoded = archive.encode();
        if encoded.len() < 2 {
            return;
        }
        let cut = rng.gen_range(1..encoded.len());
        let sliced = encoded.slice(..cut);
        let struct_err = MrtArchive::decode(sliced.clone()).is_err();
        let view_err = MrtBytes::new(sliced).is_err();
        assert_eq!(
            struct_err,
            view_err,
            "struct and view decoders must agree at cut {cut}/{}",
            encoded.len()
        );
    });
}
