//! Zero-copy views over wire-encoded MRT archives.
//!
//! [`MrtArchive::decode`](crate::mrt::MrtArchive::decode) materializes
//! every record into heap-backed structs — an `AsPath` (a `Vec` of
//! segment `Vec`s), a `CommunitySet`, NLRI and withdrawn `Vec`s — per
//! archived route. That is the right shape for manipulating routes, but
//! the passive harvest only *reads* each route once, so at collector
//! scale the allocator dominates the hot loop.
//!
//! [`MrtBytes`] is the columnar alternative: it validates the archive's
//! structure in one pass at construction and then serves **borrowed
//! views** straight off the byte arena. [`RibCursor`] /
//! [`UpdateCursor`] walk precomputed record offsets; each yielded
//! [`RouteView`] holds slices into the arena, and its accessors
//! (AS-path flattening with prepend collapse, community iteration,
//! NLRI walks) decode the wire bytes in place. A harvest over views
//! performs zero heap allocations per route — callers bring reusable
//! scratch buffers — and is byte-identical to the struct path (asserted
//! by the `view_matches_struct_decode` property test in
//! `tests/proptests.rs` and by the equality tests in `mlpeer::passive`).
//!
//! Because validation happens once in [`MrtBytes::new`], the view
//! accessors are infallible: every bound they rely on was checked up
//! front, so the hot loop carries no `Result` plumbing.

use std::net::Ipv4Addr;

use bytes::Bytes;

use crate::asn::Asn;
use crate::community::{Community, CommunitySet};
use crate::error::BgpError;
use crate::mrt::{MrtArchive, MrtPeer, REC_PEER_TABLE, REC_RIB_ENTRY, REC_UPDATE};
use crate::prefix::Prefix;
use crate::route::Origin;
use crate::wire::{
    ATTR_AS_PATH, ATTR_COMMUNITIES, ATTR_LOCAL_PREF, ATTR_MED, ATTR_NEXT_HOP, ATTR_ORIGIN,
    FLAG_EXTENDED, HEADER_LEN, SEG_SEQUENCE, SEG_SET, TYPE_UPDATE_CODE,
};

#[inline]
fn be16(b: &[u8], at: usize) -> u16 {
    u16::from_be_bytes([b[at], b[at + 1]])
}

#[inline]
fn be32(b: &[u8], at: usize) -> u32 {
    u32::from_be_bytes([b[at], b[at + 1], b[at + 2], b[at + 3]])
}

#[inline]
fn need(b: &[u8], at: usize, n: usize, context: &'static str) -> Result<(), BgpError> {
    if b.len() < at + n {
        Err(BgpError::Truncated {
            context,
            needed: at + n - b.len(),
        })
    } else {
        Ok(())
    }
}

/// A wire-encoded MRT archive, validated once, served as borrowed
/// views. The compact counterpart of [`MrtArchive`]: same bytes
/// ([`MrtArchive::encode`] output), no per-record heap structures.
#[derive(Debug, Clone)]
pub struct MrtBytes {
    data: Bytes,
    peers: Vec<MrtPeer>,
    /// `(start, end)` byte ranges of each RIB record body in `data`.
    rib: Vec<(u32, u32)>,
    /// `(start, end)` byte ranges of each update record body.
    updates: Vec<(u32, u32)>,
}

impl MrtBytes {
    /// Validate a wire-encoded archive and index its record offsets.
    ///
    /// The single pass checks everything the struct decoder would —
    /// record framing, peer-index bounds, embedded UPDATE frame
    /// structure down to attribute TLVs, segment and prefix bounds —
    /// so the cursors and views can be infallible afterwards.
    ///
    /// One arena is limited to 4 GiB (offsets are stored as u32 to
    /// halve the index footprint); a larger input panics explicitly
    /// rather than truncating offsets. Shard collectors into multiple
    /// archives before hitting that.
    pub fn new(data: Bytes) -> Result<Self, BgpError> {
        assert!(
            u32::try_from(data.len()).is_ok(),
            "MrtBytes arena limited to 4 GiB ({} bytes given); split the archive",
            data.len()
        );
        let buf: &[u8] = &data;
        let mut peers: Vec<MrtPeer> = Vec::new();
        let mut rib = Vec::new();
        let mut updates = Vec::new();
        let mut pos = 0usize;
        while pos < buf.len() {
            need(buf, pos, 6, "MRT record header")?;
            let rtype = be16(buf, pos);
            let rlen = be32(buf, pos + 2) as usize;
            pos += 6;
            need(buf, pos, rlen, "MRT record body")?;
            let body = &buf[pos..pos + rlen];
            match rtype {
                REC_PEER_TABLE => parse_peer_table(body, &mut peers)?,
                REC_RIB_ENTRY => {
                    validate_record(body, peers.len(), true)?;
                    rib.push((pos as u32, (pos + rlen) as u32));
                }
                REC_UPDATE => {
                    validate_record(body, peers.len(), false)?;
                    updates.push((pos as u32, (pos + rlen) as u32));
                }
                other => return Err(BgpError::UnknownMrtType(other)),
            }
            pos += rlen;
        }
        Ok(MrtBytes {
            data,
            peers,
            rib,
            updates,
        })
    }

    /// Validate a wire-encoded archive, **quarantining** corrupt
    /// records instead of rejecting the whole input.
    ///
    /// Where [`MrtBytes::new`] fails fast on the first structural
    /// error, this pass copies every record that validates into a
    /// fresh arena and drops the rest, tallying what it dropped in the
    /// returned [`LossyReport`]. A record whose framing is intact but
    /// whose body fails validation (bad embedded frame, dangling peer
    /// index, malformed attribute, unknown record type) is skipped
    /// record-by-record; once the framing itself is cut short the rest
    /// of the input is unwalkable and counts as truncated tail bytes.
    ///
    /// The returned archive holds only validated bytes, so every
    /// invariant of the strict constructor — infallible views,
    /// [`MrtBytes::to_archive`] round-trips — still holds. This is the
    /// degraded-mode ingest path: a collector that hands us a corrupt
    /// snapshot costs the broken records, not the harvest.
    pub fn validate_lossy(data: Bytes) -> (MrtBytes, LossyReport) {
        assert!(
            u32::try_from(data.len()).is_ok(),
            "MrtBytes arena limited to 4 GiB ({} bytes given); split the archive",
            data.len()
        );
        let buf: &[u8] = &data;
        let mut report = LossyReport::default();
        let mut clean: Vec<u8> = Vec::with_capacity(buf.len());
        let mut peers: Vec<MrtPeer> = Vec::new();
        let mut rib = Vec::new();
        let mut updates = Vec::new();
        let mut pos = 0usize;
        while pos < buf.len() {
            if buf.len() - pos < 6 {
                report.truncated_tail_bytes += (buf.len() - pos) as u64;
                break;
            }
            let rtype = be16(buf, pos);
            let rlen = be32(buf, pos + 2) as usize;
            if buf.len() - pos - 6 < rlen {
                report.truncated_tail_bytes += (buf.len() - pos) as u64;
                break;
            }
            let record = &buf[pos..pos + 6 + rlen];
            let body = &record[6..];
            pos += 6 + rlen;
            let valid = match rtype {
                REC_PEER_TABLE => parse_peer_table(body, &mut peers).is_ok(),
                REC_RIB_ENTRY => validate_record(body, peers.len(), true).is_ok(),
                REC_UPDATE => validate_record(body, peers.len(), false).is_ok(),
                _ => false,
            };
            if !valid {
                report.quarantined += 1;
                continue;
            }
            let start = clean.len() as u32 + 6;
            clean.extend_from_slice(record);
            match rtype {
                REC_RIB_ENTRY => rib.push((start, start + rlen as u32)),
                REC_UPDATE => updates.push((start, start + rlen as u32)),
                _ => {}
            }
        }
        (
            MrtBytes {
                data: Bytes::from(clean),
                peers,
                rib,
                updates,
            },
            report,
        )
    }

    /// Encode a struct archive into its columnar form.
    pub fn from_archive(archive: &MrtArchive) -> MrtBytes {
        MrtBytes::new(archive.encode()).expect("self-encoded archives are structurally valid")
    }

    /// Decode back into the struct form (tests, interop).
    pub fn to_archive(&self) -> MrtArchive {
        MrtArchive::decode(self.data.clone()).expect("validated at construction")
    }

    /// The underlying wire bytes.
    pub fn as_bytes(&self) -> &Bytes {
        &self.data
    }

    /// Size of the byte arena.
    pub fn byte_len(&self) -> usize {
        self.data.len()
    }

    /// The vantage-point peer table.
    pub fn peers(&self) -> &[MrtPeer] {
        &self.peers
    }

    /// Look up a peer by index.
    pub fn peer(&self, index: u16) -> Result<&MrtPeer, BgpError> {
        self.peers
            .get(index as usize)
            .ok_or(BgpError::UnknownPeerIndex(index))
    }

    /// Number of RIB records.
    pub fn rib_len(&self) -> usize {
        self.rib.len()
    }

    /// Number of update records.
    pub fn update_len(&self) -> usize {
        self.updates.len()
    }

    /// Cursor over every RIB record.
    pub fn rib_cursor(&self) -> RibCursor<'_> {
        self.rib_range(0, self.rib.len())
    }

    /// Cursor over RIB records `[start, end)` — the sharding unit of
    /// the view-based harvest (record-index ranges are cheap to split
    /// without touching the arena).
    pub fn rib_range(&self, start: usize, end: usize) -> RibCursor<'_> {
        assert!(start <= end && end <= self.rib.len(), "rib range in bounds");
        RibCursor {
            arch: self,
            idx: start,
            end,
        }
    }

    /// Cursor over the update stream, in archive order.
    pub fn update_cursor(&self) -> UpdateCursor<'_> {
        UpdateCursor { arch: self, idx: 0 }
    }
}

/// What [`MrtBytes::validate_lossy`] dropped from one archive.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LossyReport {
    /// Records with intact framing whose bodies failed validation
    /// (plus unknown record types), skipped individually.
    pub quarantined: u64,
    /// Bytes abandoned once the record framing itself was cut short —
    /// from the first unwalkable header to the end of the input.
    pub truncated_tail_bytes: u64,
}

impl LossyReport {
    /// True when nothing was dropped — the lossy pass saw exactly what
    /// the strict constructor would have accepted.
    pub fn is_clean(&self) -> bool {
        self.quarantined == 0 && self.truncated_tail_bytes == 0
    }
}

/// Decode a peer-table record body, appending to `peers`.
fn parse_peer_table(body: &[u8], peers: &mut Vec<MrtPeer>) -> Result<(), BgpError> {
    need(body, 0, 2, "peer table")?;
    let n = be16(body, 0) as usize;
    need(body, 2, n * 8, "peer table entries")?;
    for i in 0..n {
        peers.push(MrtPeer {
            asn: Asn(be32(body, 2 + i * 8)),
            addr: Ipv4Addr::from(be32(body, 6 + i * 8)),
        });
    }
    Ok(())
}

/// Validate one RIB/update record body: peer bounds plus the embedded
/// UPDATE frame, mirroring every check the struct decoder performs.
fn validate_record(body: &[u8], peer_count: usize, rib_shape: bool) -> Result<(), BgpError> {
    need(body, 0, 10, "MRT framed update")?;
    let peer_index = be16(body, 0);
    if peer_index as usize >= peer_count {
        return Err(BgpError::UnknownPeerIndex(peer_index));
    }
    let flen = be32(body, 6) as usize;
    need(body, 10, flen, "embedded frame")?;
    let frame = &body[10..10 + flen];

    // Frame header (decode_frame's checks).
    if frame.len() < HEADER_LEN {
        return Err(BgpError::Truncated {
            context: "header",
            needed: HEADER_LEN - frame.len(),
        });
    }
    let declared = be16(frame, 16) as usize;
    if declared != frame.len() {
        return Err(BgpError::LengthMismatch {
            declared,
            actual: frame.len(),
        });
    }
    if frame[18] != TYPE_UPDATE_CODE {
        return Err(BgpError::MalformedAttribute(
            "embedded frame is not an UPDATE",
        ));
    }
    let b = &frame[HEADER_LEN..];

    // Withdrawn routes.
    need(b, 0, 2, "withdrawn length")?;
    let wd_len = be16(b, 0) as usize;
    need(b, 2, wd_len, "withdrawn routes")?;
    validate_prefixes(&b[2..2 + wd_len])?;

    // Path attributes.
    let rest = &b[2 + wd_len..];
    need(rest, 0, 2, "attribute length")?;
    let at_len = be16(rest, 0) as usize;
    need(rest, 2, at_len, "path attributes")?;
    let mut attrs = &rest[2..2 + at_len];
    while attrs.len() >= 3 {
        let flags = attrs[0];
        let ty = attrs[1];
        let (alen, hdr) = if flags & FLAG_EXTENDED != 0 {
            need(attrs, 2, 2, "extended attr length")?;
            (be16(attrs, 2) as usize, 4)
        } else {
            (attrs[2] as usize, 3)
        };
        need(attrs, hdr, alen, "attr body")?;
        let abody = &attrs[hdr..hdr + alen];
        attrs = &attrs[hdr + alen..];
        match ty {
            ATTR_ORIGIN => {
                if abody.is_empty() {
                    return Err(BgpError::MalformedAttribute("ORIGIN empty"));
                }
                if Origin::from_code(abody[0]).is_none() {
                    return Err(BgpError::MalformedAttribute("ORIGIN code"));
                }
            }
            ATTR_AS_PATH => {
                let mut p = abody;
                while p.len() >= 2 {
                    let sty = p[0];
                    let count = p[1] as usize;
                    if p.len() < 2 + count * 4 {
                        return Err(BgpError::MalformedAttribute("AS_PATH segment"));
                    }
                    if sty != SEG_SET && sty != SEG_SEQUENCE {
                        return Err(BgpError::MalformedAttribute("AS_PATH segment type"));
                    }
                    p = &p[2 + count * 4..];
                }
            }
            ATTR_NEXT_HOP if abody.len() < 4 => {
                return Err(BgpError::MalformedAttribute("NEXT_HOP length"));
            }
            ATTR_MED if abody.len() < 4 => {
                return Err(BgpError::MalformedAttribute("MED length"));
            }
            ATTR_LOCAL_PREF if abody.len() < 4 => {
                return Err(BgpError::MalformedAttribute("LOCAL_PREF length"));
            }
            ATTR_COMMUNITIES if alen % 4 != 0 => {
                return Err(BgpError::MalformedAttribute("COMMUNITIES length"));
            }
            _ => {} // fixed-width attrs of valid length, or unknown
                    // attributes skipped like the struct decoder
        }
    }

    // NLRI.
    let nlri = &rest[2 + at_len..];
    let nlri_count = validate_prefixes(nlri)?;

    if rib_shape {
        if at_len == 0 {
            return Err(BgpError::MalformedAttribute("RIB entry without attributes"));
        }
        if nlri_count == 0 {
            return Err(BgpError::MalformedAttribute("RIB entry without NLRI"));
        }
    }
    Ok(())
}

/// Walk a packed prefix list, checking lengths; returns the count.
fn validate_prefixes(mut b: &[u8]) -> Result<usize, BgpError> {
    let mut count = 0;
    while !b.is_empty() {
        let len = b[0];
        if len > 32 {
            return Err(BgpError::PrefixLenOutOfRange(len));
        }
        let nbytes = (len as usize).div_ceil(8);
        need(b, 1, nbytes, "prefix octets")?;
        b = &b[1 + nbytes..];
        count += 1;
    }
    Ok(count)
}

/// One archived route, borrowed from the byte arena: scalar attributes
/// decoded inline (they are fixed-width u32 reads), variable-width
/// attributes kept as wire slices and decoded on demand.
///
/// For a RIB record, [`timestamp`](RouteView::timestamp) is the
/// `originated` field and [`prefix`](RouteView::prefix) the single
/// NLRI; for an update record the view exposes the full
/// withdrawn/NLRI lists.
#[derive(Debug, Clone, Copy)]
pub struct RouteView<'a> {
    peer_index: u16,
    timestamp: u32,
    withdrawn: &'a [u8],
    as_path: &'a [u8],
    communities: &'a [u8],
    nlri: &'a [u8],
    next_hop: Ipv4Addr,
    local_pref: u32,
    med: u32,
    origin: Origin,
    has_attrs: bool,
}

impl<'a> RouteView<'a> {
    /// Parse one validated record body into a view. All bounds were
    /// checked by [`MrtBytes::new`]; this is a single allocation-free
    /// pass over the record.
    fn parse(body: &'a [u8]) -> RouteView<'a> {
        let peer_index = be16(body, 0);
        let timestamp = be32(body, 2);
        let flen = be32(body, 6) as usize;
        let frame = &body[10..10 + flen];
        let b = &frame[HEADER_LEN..];
        let wd_len = be16(b, 0) as usize;
        let withdrawn = &b[2..2 + wd_len];
        let rest = &b[2 + wd_len..];
        let at_len = be16(rest, 0) as usize;
        let mut attrs = &rest[2..2 + at_len];
        let nlri = &rest[2 + at_len..];

        let mut view = RouteView {
            peer_index,
            timestamp,
            withdrawn,
            as_path: &[],
            communities: &[],
            nlri,
            // Defaults match `RouteAttrs::default()`, which the struct
            // decoder starts from when attributes are present.
            next_hop: Ipv4Addr::UNSPECIFIED,
            local_pref: 100,
            med: 0,
            origin: Origin::Igp,
            has_attrs: at_len > 0,
        };
        while attrs.len() >= 3 {
            let flags = attrs[0];
            let ty = attrs[1];
            let (alen, hdr) = if flags & FLAG_EXTENDED != 0 {
                (be16(attrs, 2) as usize, 4)
            } else {
                (attrs[2] as usize, 3)
            };
            let abody = &attrs[hdr..hdr + alen];
            attrs = &attrs[hdr + alen..];
            match ty {
                ATTR_ORIGIN => {
                    view.origin = Origin::from_code(abody[0]).expect("validated ORIGIN code");
                }
                ATTR_AS_PATH => view.as_path = abody,
                ATTR_NEXT_HOP => view.next_hop = Ipv4Addr::from(be32(abody, 0)),
                ATTR_MED => view.med = be32(abody, 0),
                ATTR_LOCAL_PREF => view.local_pref = be32(abody, 0),
                ATTR_COMMUNITIES => view.communities = abody,
                _ => {}
            }
        }
        view
    }

    /// Index into the archive's peer table.
    pub fn peer_index(&self) -> u16 {
        self.peer_index
    }

    /// RIB `originated` / update receive timestamp (simulation seconds).
    pub fn timestamp(&self) -> u32 {
        self.timestamp
    }

    /// True if the record carried a path-attribute section (always true
    /// for RIB records; false for withdraw-only updates).
    pub fn has_attrs(&self) -> bool {
        self.has_attrs
    }

    /// LOCAL_PREF (default 100).
    pub fn local_pref(&self) -> u32 {
        self.local_pref
    }

    /// MED (default 0).
    pub fn med(&self) -> u32 {
        self.med
    }

    /// ORIGIN (default IGP).
    pub fn origin(&self) -> Origin {
        self.origin
    }

    /// NEXT_HOP (default unspecified).
    pub fn next_hop(&self) -> Ipv4Addr {
        self.next_hop
    }

    /// The RIB entry's prefix (first NLRI). Panics on withdraw-only
    /// update views — RIB records always carry exactly one NLRI
    /// (enforced at validation).
    pub fn prefix(&self) -> Prefix {
        self.nlri()
            .next()
            .expect("RIB records carry one NLRI (validated)")
    }

    /// Announced prefixes.
    pub fn nlri(&self) -> PrefixIter<'a> {
        PrefixIter { b: self.nlri }
    }

    /// Withdrawn prefixes.
    pub fn withdrawn(&self) -> PrefixIter<'a> {
        PrefixIter { b: self.withdrawn }
    }

    /// Every ASN in the AS path in order of appearance (sets flattened
    /// in stored order) — `AsPath::iter` semantics, straight off the
    /// wire.
    pub fn path_hops(&self) -> AsnIter<'a> {
        AsnIter {
            b: self.as_path,
            remaining_in_seg: 0,
        }
    }

    /// The AS path with consecutive duplicates collapsed — exactly
    /// `AsPath::dedup_prepends`, written into a caller-owned scratch
    /// buffer so the hot loop performs no allocation after warm-up.
    pub fn path_dedup_into(&self, out: &mut Vec<Asn>) {
        out.clear();
        for asn in self.path_hops() {
            if out.last() != Some(&asn) {
                out.push(asn);
            }
        }
    }

    /// True if the route carries no COMMUNITIES attribute (or an empty
    /// one).
    pub fn communities_is_empty(&self) -> bool {
        self.communities.is_empty()
    }

    /// Attached communities in wire order (ascending: the encoder
    /// writes the sorted set).
    pub fn communities(&self) -> CommunityIter<'a> {
        CommunityIter {
            b: self.communities,
        }
    }

    /// Rebuild the community set into a caller-owned scratch
    /// `CommunitySet`, byte-identical to the struct decoder's result.
    pub fn communities_into(&self, out: &mut CommunitySet) {
        out.clear();
        for c in self.communities() {
            out.insert(c);
        }
    }
}

/// Iterator over a packed wire prefix list.
#[derive(Debug, Clone, Copy)]
pub struct PrefixIter<'a> {
    b: &'a [u8],
}

impl Iterator for PrefixIter<'_> {
    type Item = Prefix;

    fn next(&mut self) -> Option<Prefix> {
        if self.b.is_empty() {
            return None;
        }
        let len = self.b[0];
        let nbytes = (len as usize).div_ceil(8);
        let mut octets = [0u8; 4];
        octets[..nbytes].copy_from_slice(&self.b[1..1 + nbytes]);
        self.b = &self.b[1 + nbytes..];
        Some(Prefix::from_u32(u32::from_be_bytes(octets), len).expect("validated prefix length"))
    }
}

/// Iterator over the flattened ASNs of a wire AS_PATH attribute.
#[derive(Debug, Clone, Copy)]
pub struct AsnIter<'a> {
    b: &'a [u8],
    remaining_in_seg: usize,
}

impl Iterator for AsnIter<'_> {
    type Item = Asn;

    fn next(&mut self) -> Option<Asn> {
        while self.remaining_in_seg == 0 {
            // The struct decoder reads segment headers while ≥ 2 bytes
            // remain; a trailing odd byte is ignored the same way.
            if self.b.len() < 2 {
                return None;
            }
            self.remaining_in_seg = self.b[1] as usize;
            self.b = &self.b[2..];
        }
        let asn = Asn(be32(self.b, 0));
        self.b = &self.b[4..];
        self.remaining_in_seg -= 1;
        Some(asn)
    }
}

/// Iterator over a wire COMMUNITIES attribute.
#[derive(Debug, Clone, Copy)]
pub struct CommunityIter<'a> {
    b: &'a [u8],
}

impl Iterator for CommunityIter<'_> {
    type Item = Community;

    fn next(&mut self) -> Option<Community> {
        if self.b.len() < 4 {
            return None;
        }
        let c = Community(be32(self.b, 0));
        self.b = &self.b[4..];
        Some(c)
    }
}

/// Cursor over a range of RIB records, yielding borrowed views.
#[derive(Debug, Clone)]
pub struct RibCursor<'a> {
    arch: &'a MrtBytes,
    idx: usize,
    end: usize,
}

impl<'a> Iterator for RibCursor<'a> {
    type Item = RouteView<'a>;

    fn next(&mut self) -> Option<RouteView<'a>> {
        if self.idx >= self.end {
            return None;
        }
        let (s, e) = self.arch.rib[self.idx];
        self.idx += 1;
        Some(RouteView::parse(&self.arch.data[s as usize..e as usize]))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.end - self.idx;
        (n, Some(n))
    }
}

impl ExactSizeIterator for RibCursor<'_> {}

/// Cursor over the update stream, yielding borrowed views.
#[derive(Debug, Clone)]
pub struct UpdateCursor<'a> {
    arch: &'a MrtBytes,
    idx: usize,
}

impl<'a> Iterator for UpdateCursor<'a> {
    type Item = RouteView<'a>;

    fn next(&mut self) -> Option<RouteView<'a>> {
        let (s, e) = *self.arch.updates.get(self.idx)?;
        self.idx += 1;
        Some(RouteView::parse(&self.arch.data[s as usize..e as usize]))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.arch.updates.len() - self.idx;
        (n, Some(n))
    }
}

impl ExactSizeIterator for UpdateCursor<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aspath::AsPath;
    use crate::mrt::{MrtRibEntry, MrtUpdate};
    use crate::route::RouteAttrs;
    use crate::update::UpdateMessage;

    fn attrs(path: &str) -> RouteAttrs {
        RouteAttrs::new(
            path.parse::<AsPath>().unwrap(),
            "80.81.192.1".parse().unwrap(),
        )
        .with_communities("0:6695 6695:8447".parse().unwrap())
    }

    fn sample_archive() -> MrtArchive {
        let mut a = MrtArchive::new();
        let p0 = a.add_peer(Asn(11666), "203.0.113.1".parse().unwrap());
        let p1 = a.add_peer(Asn(3356), "203.0.113.2".parse().unwrap());
        a.rib.push(MrtRibEntry {
            peer_index: p0,
            originated: 1_000,
            prefix: "193.34.0.0/22".parse().unwrap(),
            attrs: attrs("11666 11666 8714 8359"),
        });
        a.rib.push(MrtRibEntry {
            peer_index: p1,
            originated: 1_005,
            prefix: "0.0.0.0/0".parse().unwrap(),
            attrs: attrs("3356 8359"),
        });
        a.updates.push(MrtUpdate {
            peer_index: p1,
            timestamp: 2_000,
            update: UpdateMessage::withdraw(vec!["193.34.0.0/22".parse().unwrap()]),
        });
        a.updates.push(MrtUpdate {
            peer_index: p0,
            timestamp: 2_500,
            update: UpdateMessage::announce(
                attrs("11666 {64496,64497} 8359"),
                vec![
                    "10.0.0.0/8".parse().unwrap(),
                    "203.0.113.37/32".parse().unwrap(),
                ],
            ),
        });
        a
    }

    #[test]
    fn views_match_struct_decode() {
        let archive = sample_archive();
        let bytes = MrtBytes::from_archive(&archive);
        assert_eq!(bytes.peers(), &archive.peers[..]);
        assert_eq!(bytes.rib_len(), archive.rib.len());
        assert_eq!(bytes.update_len(), archive.updates.len());

        for (view, entry) in bytes.rib_cursor().zip(&archive.rib) {
            assert_eq!(view.peer_index(), entry.peer_index);
            assert_eq!(view.timestamp(), entry.originated);
            assert_eq!(view.prefix(), entry.prefix);
            assert_eq!(
                view.path_hops().collect::<Vec<_>>(),
                entry.attrs.as_path.to_vec()
            );
            let mut dedup = Vec::new();
            view.path_dedup_into(&mut dedup);
            assert_eq!(dedup, entry.attrs.as_path.dedup_prepends());
            let mut cs = CommunitySet::new();
            view.communities_into(&mut cs);
            assert_eq!(cs, entry.attrs.communities);
            assert_eq!(view.local_pref(), entry.attrs.local_pref);
            assert_eq!(view.med(), entry.attrs.med);
            assert_eq!(view.origin(), entry.attrs.origin);
            assert_eq!(view.next_hop(), entry.attrs.next_hop);
        }

        for (view, u) in bytes.update_cursor().zip(&archive.updates) {
            assert_eq!(view.peer_index(), u.peer_index);
            assert_eq!(view.timestamp(), u.timestamp);
            assert_eq!(view.withdrawn().collect::<Vec<_>>(), u.update.withdrawn);
            assert_eq!(view.nlri().collect::<Vec<_>>(), u.update.nlri);
            assert_eq!(view.has_attrs(), u.update.attrs.is_some());
            if let Some(a) = &u.update.attrs {
                assert_eq!(view.path_hops().collect::<Vec<_>>(), a.as_path.to_vec());
                let mut cs = CommunitySet::new();
                view.communities_into(&mut cs);
                assert_eq!(cs, a.communities);
            }
        }
    }

    #[test]
    fn roundtrips_to_archive() {
        let archive = sample_archive();
        let bytes = MrtBytes::from_archive(&archive);
        assert_eq!(bytes.to_archive(), archive);
        assert_eq!(bytes.byte_len(), archive.encode().len());
    }

    #[test]
    fn rib_range_splits_cover_the_whole_cursor() {
        let archive = sample_archive();
        let bytes = MrtBytes::from_archive(&archive);
        let all: Vec<Prefix> = bytes.rib_cursor().map(|v| v.prefix()).collect();
        let mut split: Vec<Prefix> = bytes.rib_range(0, 1).map(|v| v.prefix()).collect();
        split.extend(bytes.rib_range(1, bytes.rib_len()).map(|v| v.prefix()));
        assert_eq!(all, split);
        assert_eq!(bytes.rib_cursor().len(), 2);
        assert_eq!(bytes.update_cursor().len(), 2);
        assert_eq!(bytes.rib_range(1, 1).count(), 0);
    }

    #[test]
    fn rejects_what_the_struct_decoder_rejects() {
        let archive = sample_archive();
        let encoded = archive.encode();
        for cut in [1usize, 5, 9, encoded.len() - 1] {
            let sliced = encoded.slice(..cut.min(encoded.len() - 1));
            assert!(MrtBytes::new(sliced).is_err(), "cut at {cut}");
        }
        // Dangling peer index.
        let mut bad = archive.clone();
        bad.rib[0].peer_index = 77;
        assert_eq!(
            MrtBytes::new(bad.encode()).unwrap_err(),
            BgpError::UnknownPeerIndex(77)
        );
        // Unknown peer lookup mirrors the struct API.
        let bytes = MrtBytes::from_archive(&archive);
        assert_eq!(bytes.peer(9), Err(BgpError::UnknownPeerIndex(9)));
        assert!(bytes.peer(0).is_ok());
    }

    #[test]
    fn empty_archive() {
        let bytes = MrtBytes::from_archive(&MrtArchive::new());
        assert_eq!(bytes.rib_len(), 0);
        assert_eq!(bytes.update_len(), 0);
        assert_eq!(bytes.rib_cursor().count(), 0);
    }

    #[test]
    #[should_panic(expected = "rib range in bounds")]
    fn out_of_bounds_range_panics() {
        let bytes = MrtBytes::from_archive(&MrtArchive::new());
        let _ = bytes.rib_range(0, 1);
    }

    /// Walk the record framing of an encoded archive; returns each
    /// record's `(header_offset, total_len)`.
    fn frame_offsets(encoded: &[u8]) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        let mut pos = 0;
        while pos < encoded.len() {
            let rlen = be32(encoded, pos + 2) as usize;
            out.push((pos, 6 + rlen));
            pos += 6 + rlen;
        }
        out
    }

    #[test]
    fn lossy_on_clean_input_is_equivalent_to_strict() {
        let encoded = sample_archive().encode();
        let strict = MrtBytes::new(encoded.clone()).unwrap();
        let (lossy, report) = MrtBytes::validate_lossy(encoded);
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(lossy.as_bytes(), strict.as_bytes(), "arena byte-identical");
        assert_eq!(lossy.peers(), strict.peers());
        assert_eq!(lossy.rib_len(), strict.rib_len());
        assert_eq!(lossy.update_len(), strict.update_len());
        assert_eq!(lossy.to_archive(), strict.to_archive());
    }

    #[test]
    fn lossy_quarantines_corrupt_records_and_keeps_the_rest() {
        let archive = sample_archive();
        let mut encoded = archive.encode().to_vec();
        let frames = frame_offsets(&encoded);
        assert_eq!(frames.len(), 5, "peer table + 2 rib + 2 updates");
        // Corrupt the first RIB record's embedded frame type byte: the
        // record frames fine but its body fails validation.
        let (rib0, _) = frames[1];
        encoded[rib0 + 6 + 10 + HEADER_LEN - 1] ^= 0xff;
        let corrupted = Bytes::from(encoded);
        assert!(
            MrtBytes::new(corrupted.clone()).is_err(),
            "strict pass rejects the whole archive"
        );
        let (lossy, report) = MrtBytes::validate_lossy(corrupted);
        assert_eq!(report.quarantined, 1);
        assert_eq!(report.truncated_tail_bytes, 0);
        assert!(!report.is_clean());
        // Everything but the corrupt record survives, views intact.
        assert_eq!(lossy.peers(), &archive.peers[..]);
        assert_eq!(lossy.rib_len(), 1);
        assert_eq!(lossy.update_len(), 2);
        assert_eq!(
            lossy.rib_cursor().next().unwrap().prefix(),
            archive.rib[1].prefix
        );
        // The quarantined bytes are gone from the arena, so the struct
        // round-trip still works on what survived.
        let survived = lossy.to_archive();
        assert_eq!(survived.rib.len(), 1);
        assert_eq!(survived.updates, archive.updates);
    }

    #[test]
    fn lossy_counts_a_truncated_tail() {
        let encoded = sample_archive().encode();
        let frames = frame_offsets(&encoded);
        let (last, _) = frames[4];
        // Cut mid-way through the last record's body.
        let cut = encoded.slice(..last + 9);
        let (lossy, report) = MrtBytes::validate_lossy(cut);
        assert_eq!(report.quarantined, 0);
        assert_eq!(report.truncated_tail_bytes, 9);
        assert_eq!(lossy.rib_len(), 2);
        assert_eq!(lossy.update_len(), 1, "records before the cut survive");
        // An unknown record type is quarantined, not fatal.
        let mut with_junk = encoded.to_vec();
        with_junk.extend_from_slice(&[0x7f, 0x7f, 0, 0, 0, 2, 0xab, 0xcd]);
        let (lossy, report) = MrtBytes::validate_lossy(Bytes::from(with_junk));
        assert_eq!(report.quarantined, 1);
        assert_eq!(lossy.update_len(), 2);
    }
}
