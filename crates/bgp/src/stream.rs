//! Time-stepped BGP message streams (live mode).
//!
//! The paper's harvest is a one-shot pass over archived RIBs; live mode
//! instead consumes the *session traffic itself*: a time-ordered
//! sequence of BGP messages — OPENs when members join a route server,
//! UPDATEs when they announce, retune their community-encoded export
//! filters, or withdraw, and NOTIFICATIONs when they leave (the Cease
//! churn the Oct 2013 validation had to filter, §5.1).
//!
//! [`TimedMessage`] stamps one [`BgpMessage`] with a logical timestamp
//! and its speaker; [`UpdateStream`] keeps a stably time-ordered
//! sequence of them and merges streams from several speakers the way a
//! collector interleaves its peers' feeds.
//!
//! ```
//! use mlpeer_bgp::stream::{TimedMessage, UpdateStream};
//! use mlpeer_bgp::update::{BgpMessage, UpdateMessage};
//! use mlpeer_bgp::Asn;
//!
//! let mut stream = UpdateStream::new();
//! stream.push(TimedMessage::new(
//!     2,
//!     Asn(8359),
//!     BgpMessage::Update(UpdateMessage::withdraw(vec![
//!         "193.34.0.0/22".parse().unwrap(),
//!     ])),
//! ));
//! stream.push(TimedMessage::new(1, Asn(8359), BgpMessage::Keepalive));
//! // Iteration is by timestamp, not arrival.
//! let times: Vec<u64> = stream.iter().map(|m| m.at).collect();
//! assert_eq!(times, vec![1, 2]);
//! ```

use crate::asn::Asn;
use crate::update::BgpMessage;

/// One BGP message with its logical timestamp and speaker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimedMessage {
    /// Logical time step (monotone within one session).
    pub at: u64,
    /// The member that spoke (the RS-session peer, not the route's
    /// origin).
    pub from: Asn,
    /// The message itself.
    pub msg: BgpMessage,
}

impl TimedMessage {
    /// Stamp a message.
    pub fn new(at: u64, from: Asn, msg: BgpMessage) -> Self {
        TimedMessage { at, from, msg }
    }
}

/// A time-ordered BGP message sequence.
///
/// Ordering is *stable*: messages sharing a timestamp keep their
/// insertion order, which is what makes a withdraw-then-reannounce at
/// one time step deterministic for every consumer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UpdateStream {
    events: Vec<TimedMessage>,
}

impl UpdateStream {
    /// An empty stream.
    pub fn new() -> Self {
        UpdateStream::default()
    }

    /// Append a message, keeping the stream time-ordered (stable for
    /// equal timestamps). Appending in nondecreasing time order is
    /// O(1); out-of-order messages are inserted at their place.
    pub fn push(&mut self, m: TimedMessage) {
        // Find the insertion point after every event with `at <= m.at`.
        let idx = self.events.partition_point(|e| e.at <= m.at);
        if idx == self.events.len() {
            self.events.push(m);
        } else {
            self.events.insert(idx, m);
        }
    }

    /// Merge another stream in (stable two-way merge; `other`'s events
    /// come after this stream's at equal timestamps).
    pub fn merge(&mut self, other: UpdateStream) {
        if self.events.is_empty() {
            self.events = other.events;
            return;
        }
        let mut merged = Vec::with_capacity(self.events.len() + other.events.len());
        let mut mine = std::mem::take(&mut self.events).into_iter().peekable();
        let mut theirs = other.events.into_iter().peekable();
        loop {
            match (mine.peek(), theirs.peek()) {
                (Some(a), Some(b)) => {
                    if a.at <= b.at {
                        merged.push(mine.next().expect("peeked"));
                    } else {
                        merged.push(theirs.next().expect("peeked"));
                    }
                }
                (Some(_), None) => merged.push(mine.next().expect("peeked")),
                (None, Some(_)) => merged.push(theirs.next().expect("peeked")),
                (None, None) => break,
            }
        }
        self.events = merged;
    }

    /// Number of messages.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Is the stream empty?
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Messages in time order.
    pub fn iter(&self) -> std::slice::Iter<'_, TimedMessage> {
        self.events.iter()
    }

    /// The timestamp of the last (latest) message, if any.
    pub fn last_at(&self) -> Option<u64> {
        self.events.last().map(|e| e.at)
    }
}

impl IntoIterator for UpdateStream {
    type Item = TimedMessage;
    type IntoIter = std::vec::IntoIter<TimedMessage>;
    fn into_iter(self) -> Self::IntoIter {
        self.events.into_iter()
    }
}

impl<'a> IntoIterator for &'a UpdateStream {
    type Item = &'a TimedMessage;
    type IntoIter = std::slice::Iter<'a, TimedMessage>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl FromIterator<TimedMessage> for UpdateStream {
    fn from_iter<I: IntoIterator<Item = TimedMessage>>(iter: I) -> Self {
        let mut s = UpdateStream::new();
        for m in iter {
            s.push(m);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::update::{NotificationCode, UpdateMessage};

    fn msg(at: u64, from: u32) -> TimedMessage {
        TimedMessage::new(at, Asn(from), BgpMessage::Keepalive)
    }

    #[test]
    fn push_keeps_time_order_and_is_stable() {
        let mut s = UpdateStream::new();
        s.push(msg(5, 1));
        s.push(msg(1, 2));
        s.push(msg(5, 3)); // same time as the first: stays after it
        s.push(msg(3, 4));
        let order: Vec<(u64, u32)> = s.iter().map(|m| (m.at, m.from.value())).collect();
        assert_eq!(order, vec![(1, 2), (3, 4), (5, 1), (5, 3)]);
        assert_eq!(s.len(), 4);
        assert_eq!(s.last_at(), Some(5));
    }

    #[test]
    fn merge_interleaves_by_time() {
        let mut a: UpdateStream = [msg(1, 1), msg(4, 1)].into_iter().collect();
        let b: UpdateStream = [msg(2, 2), msg(4, 2), msg(9, 2)].into_iter().collect();
        a.merge(b);
        let order: Vec<(u64, u32)> = a.iter().map(|m| (m.at, m.from.value())).collect();
        // Stable: at t=4 the receiving stream's event comes first.
        assert_eq!(order, vec![(1, 1), (2, 2), (4, 1), (4, 2), (9, 2)]);

        let mut empty = UpdateStream::new();
        empty.merge(a.clone());
        assert_eq!(empty, a);
        assert!(!empty.is_empty());
    }

    #[test]
    fn carries_session_lifecycle_messages() {
        let mut s = UpdateStream::new();
        s.push(TimedMessage::new(
            0,
            Asn(8359),
            BgpMessage::Open {
                asn: Asn(8359),
                hold_time: 90,
                router_id: "10.0.0.1".parse().unwrap(),
            },
        ));
        s.push(TimedMessage::new(
            1,
            Asn(8359),
            BgpMessage::Update(UpdateMessage::withdraw(vec!["193.34.0.0/22"
                .parse()
                .unwrap()])),
        ));
        s.push(TimedMessage::new(
            2,
            Asn(8359),
            BgpMessage::Notification {
                code: NotificationCode::Cease,
                subcode: 0,
            },
        ));
        let codes: Vec<u8> = s.iter().map(|m| m.msg.type_code()).collect();
        assert_eq!(codes, vec![1, 2, 3]);
    }
}
