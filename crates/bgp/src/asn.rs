//! Autonomous System Numbers.
//!
//! The paper's passive pipeline (§5) filters AS paths containing
//! "reserved, unassigned, and private ASNs (i.e. 23456 and 63488–131071)";
//! those predicates live here. Route-server community schemes (§3) must
//! also know whether an ASN fits in the 16 bits available in the lower
//! half of a community value, and map 32-bit members into the 16-bit
//! private range when it does not.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::error::BgpError;

/// A 32-bit Autonomous System Number.
///
/// `Asn` is a transparent newtype: cheap to copy, ordered, hashable, and
/// printable in `asplain` form (the form used throughout the paper).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Asn(pub u32);

/// AS_TRANS (RFC 6793): the 16-bit placeholder for 32-bit ASNs.
pub const AS_TRANS: Asn = Asn(23456);

/// First ASN of the 16-bit private range (RFC 6996).
pub const PRIVATE16_START: u32 = 64512;
/// Last ASN of the 16-bit private range (RFC 6996).
pub const PRIVATE16_END: u32 = 65534;
/// First ASN of the 32-bit private range (RFC 6996).
pub const PRIVATE32_START: u32 = 4_200_000_000;
/// Last ASN of the 32-bit private range (RFC 6996).
pub const PRIVATE32_END: u32 = 4_294_967_294;

impl Asn {
    /// Construct an ASN from a raw number.
    #[inline]
    pub const fn new(n: u32) -> Self {
        Asn(n)
    }

    /// The raw 32-bit value.
    #[inline]
    pub const fn value(self) -> u32 {
        self.0
    }

    /// True if the ASN fits in 16 bits (and so can be encoded directly
    /// in the `peer-asn` half of an RS community value, §3).
    #[inline]
    pub const fn is_16bit(self) -> bool {
        self.0 <= u16::MAX as u32
    }

    /// True for ASN 0, which is never valid on the wire.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// True for AS_TRANS (23456), the RFC 6793 placeholder. The paper
    /// filters paths containing it because it never identifies a real
    /// network.
    #[inline]
    pub const fn is_as_trans(self) -> bool {
        self.0 == 23456
    }

    /// True if the ASN is in a private-use range (16-bit 64512–65534 or
    /// 32-bit 4200000000–4294967294, RFC 6996).
    #[inline]
    pub const fn is_private(self) -> bool {
        (self.0 >= PRIVATE16_START && self.0 <= PRIVATE16_END)
            || (self.0 >= PRIVATE32_START && self.0 <= PRIVATE32_END)
    }

    /// True for 65535 and 4294967295, reserved by IANA.
    #[inline]
    pub const fn is_reserved(self) -> bool {
        self.0 == 65535 || self.0 == u32::MAX
    }

    /// True if the ASN falls in the range the paper treats as
    /// "reserved, unassigned, and private" when sanitizing AS paths
    /// (§5): AS_TRANS (23456) or anything in 63488–131071 (which covers
    /// the documentation range 64496–64511, the 16-bit private range,
    /// 65535, and the unassigned block up to 131071).
    #[inline]
    pub const fn is_path_bogon(self) -> bool {
        self.is_as_trans() || (self.0 >= 63488 && self.0 <= 131_071) || self.0 == 0
    }

    /// True if the ASN may legitimately appear in a public AS path.
    #[inline]
    pub const fn is_routable(self) -> bool {
        !self.is_path_bogon() && !self.is_private() && !self.is_reserved() && self.0 != 0
    }
}

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for Asn {
    fn from(n: u32) -> Self {
        Asn(n)
    }
}

impl From<u16> for Asn {
    fn from(n: u16) -> Self {
        Asn(n as u32)
    }
}

impl From<Asn> for u32 {
    fn from(a: Asn) -> Self {
        a.0
    }
}

impl FromStr for Asn {
    type Err = BgpError;

    /// Parse `asplain` ("65000") or `asdot` ("1.10") notation.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        let s = s
            .strip_prefix("AS")
            .or_else(|| s.strip_prefix("as"))
            .unwrap_or(s);
        if let Some((hi, lo)) = s.split_once('.') {
            let hi: u32 = hi
                .parse()
                .map_err(|_| BgpError::InvalidAsn(s.to_string()))?;
            let lo: u32 = lo
                .parse()
                .map_err(|_| BgpError::InvalidAsn(s.to_string()))?;
            if hi > u16::MAX as u32 || lo > u16::MAX as u32 {
                return Err(BgpError::InvalidAsn(s.to_string()));
            }
            Ok(Asn((hi << 16) | lo))
        } else {
            s.parse::<u32>()
                .map(Asn)
                .map_err(|_| BgpError::InvalidAsn(s.to_string()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ranges() {
        assert!(Asn(23456).is_as_trans());
        assert!(Asn(23456).is_path_bogon());
        assert!(!Asn(23455).is_as_trans());
        assert!(Asn(64512).is_private());
        assert!(Asn(65534).is_private());
        assert!(!Asn(65535).is_private());
        assert!(Asn(65535).is_reserved());
        assert!(Asn(4_200_000_000).is_private());
        assert!(Asn(u32::MAX - 1).is_private());
        assert!(Asn(u32::MAX).is_reserved());
    }

    #[test]
    fn paper_sanitation_range() {
        // §5: filter 23456 and 63488–131071.
        assert!(Asn(63488).is_path_bogon());
        assert!(Asn(100_000).is_path_bogon());
        assert!(Asn(131_071).is_path_bogon());
        assert!(!Asn(131_072).is_path_bogon());
        assert!(!Asn(63487).is_path_bogon());
        assert!(Asn(0).is_path_bogon());
        // Real ASNs from the paper are routable.
        for asn in [6695u32, 8631, 9033, 15169, 20940, 9002, 8714] {
            assert!(Asn(asn).is_routable(), "AS{asn} should be routable");
        }
    }

    #[test]
    fn sixteen_bit_check() {
        assert!(Asn(6695).is_16bit());
        assert!(Asn(65535).is_16bit());
        assert!(!Asn(65536).is_16bit());
        assert!(!Asn(196_608).is_16bit()); // first public 32-bit ASN
    }

    #[test]
    fn parse_asplain_and_asdot() {
        assert_eq!("6695".parse::<Asn>().unwrap(), Asn(6695));
        assert_eq!("AS6695".parse::<Asn>().unwrap(), Asn(6695));
        assert_eq!("as3.10".parse::<Asn>().unwrap(), Asn((3 << 16) | 10));
        assert_eq!("1.0".parse::<Asn>().unwrap(), Asn(65536));
        assert!("1.65536".parse::<Asn>().is_err());
        assert!("".parse::<Asn>().is_err());
        assert!("asdf".parse::<Asn>().is_err());
        assert!("-5".parse::<Asn>().is_err());
    }

    #[test]
    fn display_roundtrip() {
        for n in [0u32, 1, 6695, 65536, u32::MAX] {
            let a = Asn(n);
            assert_eq!(a.to_string().parse::<Asn>().unwrap(), a);
        }
    }

    #[test]
    fn ordering_and_hash() {
        use std::collections::BTreeSet;
        let set: BTreeSet<Asn> = [Asn(5), Asn(1), Asn(5), Asn(9)].into_iter().collect();
        assert_eq!(
            set.into_iter().collect::<Vec<_>>(),
            vec![Asn(1), Asn(5), Asn(9)]
        );
    }
}
