//! Binary codec for BGP messages.
//!
//! A faithful-in-shape subset of the RFC 4271 wire format, used by the
//! collector substrate to archive update streams and by the MRT module.
//! Messages are length-delimited exactly as on a real session: a 19-byte
//! header (16-byte all-ones marker, 2-byte length, 1-byte type) followed
//! by the body. The decoder is incremental in the style of the Tokio
//! framing guide: feed bytes into a buffer, pull out complete frames.
//!
//! Simplifications, documented per the smoltcp "explicit feature
//! inventory" idiom:
//!
//! * AS numbers are always 4 octets (as if the 4-octet-AS capability is
//!   negotiated — true of every route server the paper studies).
//! * Only the attributes the pipeline uses are encoded: ORIGIN, AS_PATH,
//!   NEXT_HOP, MED, LOCAL_PREF, COMMUNITIES. Unknown attributes are
//!   skipped on decode (flags honored), never generated on encode.
//! * IPv4 only, matching the paper's measurements.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::asn::Asn;
use crate::aspath::{AsPath, Segment};
use crate::community::{Community, CommunitySet};
use crate::error::BgpError;
use crate::prefix::Prefix;
use crate::route::{Origin, RouteAttrs};
use crate::update::{BgpMessage, NotificationCode, UpdateMessage};

/// Header length: marker (16) + length (2) + type (1).
pub const HEADER_LEN: usize = 19;
/// Largest legal message (RFC 4271).
pub const MAX_MESSAGE_LEN: usize = 4096;

const TYPE_OPEN: u8 = 1;
const TYPE_UPDATE: u8 = 2;
const TYPE_NOTIFICATION: u8 = 3;
const TYPE_KEEPALIVE: u8 = 4;

pub(crate) const TYPE_UPDATE_CODE: u8 = TYPE_UPDATE;

pub(crate) const ATTR_ORIGIN: u8 = 1;
pub(crate) const ATTR_AS_PATH: u8 = 2;
pub(crate) const ATTR_NEXT_HOP: u8 = 3;
pub(crate) const ATTR_MED: u8 = 4;
pub(crate) const ATTR_LOCAL_PREF: u8 = 5;
pub(crate) const ATTR_COMMUNITIES: u8 = 8;

const FLAG_OPTIONAL: u8 = 0x80;
const FLAG_TRANSITIVE: u8 = 0x40;
pub(crate) const FLAG_EXTENDED: u8 = 0x10;

pub(crate) const SEG_SET: u8 = 1;
pub(crate) const SEG_SEQUENCE: u8 = 2;

/// Encode a message, appending the full frame (header + body) to `dst`.
pub fn encode_message(msg: &BgpMessage, dst: &mut BytesMut) {
    let body_start = dst.len() + HEADER_LEN;
    // Header: marker + placeholder length + type.
    dst.put_bytes(0xFF, 16);
    dst.put_u16(0); // patched below
    dst.put_u8(msg.type_code());
    match msg {
        BgpMessage::Open {
            asn,
            hold_time,
            router_id,
        } => {
            dst.put_u8(4); // version
                           // My-AS field: AS_TRANS when the ASN needs 32 bits.
            let wire_as = if asn.is_16bit() {
                asn.value() as u16
            } else {
                23456
            };
            dst.put_u16(wire_as);
            dst.put_u16(*hold_time);
            dst.put_u32(u32::from(*router_id));
            // One optional parameter: capability 65 (4-octet AS) with the
            // real ASN, as modern speakers send.
            dst.put_u8(8); // opt params len
            dst.put_u8(2); // param type: capability
            dst.put_u8(6); // param len
            dst.put_u8(65); // capability: 4-octet AS
            dst.put_u8(4); // capability len
            dst.put_u32(asn.value());
        }
        BgpMessage::Update(u) => encode_update_body(u, dst),
        BgpMessage::Notification { code, subcode } => {
            dst.put_u8(code.code());
            dst.put_u8(*subcode);
        }
        BgpMessage::Keepalive => {}
    }
    let total = dst.len() - (body_start - HEADER_LEN);
    debug_assert!(total <= MAX_MESSAGE_LEN, "message too large: {total}");
    let len_pos = body_start - 3;
    dst[len_pos..len_pos + 2].copy_from_slice(&(total as u16).to_be_bytes());
}

fn encode_prefix(p: &Prefix, dst: &mut BytesMut) {
    dst.put_u8(p.len());
    let nbytes = (p.len() as usize).div_ceil(8);
    let octets = p.network_u32().to_be_bytes();
    dst.put_slice(&octets[..nbytes]);
}

fn decode_prefix(src: &mut Bytes) -> Result<Prefix, BgpError> {
    if src.remaining() < 1 {
        return Err(BgpError::Truncated {
            context: "prefix length",
            needed: 1,
        });
    }
    let len = src.get_u8();
    if len > 32 {
        return Err(BgpError::PrefixLenOutOfRange(len));
    }
    let nbytes = (len as usize).div_ceil(8);
    if src.remaining() < nbytes {
        return Err(BgpError::Truncated {
            context: "prefix octets",
            needed: nbytes - src.remaining(),
        });
    }
    let mut octets = [0u8; 4];
    src.copy_to_slice(&mut octets[..nbytes]);
    Prefix::from_u32(u32::from_be_bytes(octets), len)
}

fn encode_attr(dst: &mut BytesMut, flags: u8, ty: u8, body: &[u8]) {
    if body.len() > 255 {
        dst.put_u8(flags | FLAG_EXTENDED);
        dst.put_u8(ty);
        dst.put_u16(body.len() as u16);
    } else {
        dst.put_u8(flags);
        dst.put_u8(ty);
        dst.put_u8(body.len() as u8);
    }
    dst.put_slice(body);
}

fn encode_update_body(u: &UpdateMessage, dst: &mut BytesMut) {
    // Withdrawn routes.
    let mut wd = BytesMut::new();
    for p in &u.withdrawn {
        encode_prefix(p, &mut wd);
    }
    dst.put_u16(wd.len() as u16);
    dst.put_slice(&wd);

    // Path attributes.
    let mut attrs = BytesMut::new();
    if let Some(a) = &u.attrs {
        let mut b = BytesMut::new();
        b.put_u8(a.origin.code());
        encode_attr(&mut attrs, FLAG_TRANSITIVE, ATTR_ORIGIN, &b);

        let mut b = BytesMut::new();
        for seg in a.as_path.segments() {
            let (code, asns) = match seg {
                Segment::Set(v) => (SEG_SET, v),
                Segment::Sequence(v) => (SEG_SEQUENCE, v),
            };
            // RFC 4271 caps a segment at 255 ASNs; chunk longer ones.
            for chunk in asns.chunks(255) {
                b.put_u8(code);
                b.put_u8(chunk.len() as u8);
                for asn in chunk {
                    b.put_u32(asn.value());
                }
            }
        }
        encode_attr(&mut attrs, FLAG_TRANSITIVE, ATTR_AS_PATH, &b);

        let mut b = BytesMut::new();
        b.put_u32(u32::from(a.next_hop));
        encode_attr(&mut attrs, FLAG_TRANSITIVE, ATTR_NEXT_HOP, &b);

        if a.med != 0 {
            let mut b = BytesMut::new();
            b.put_u32(a.med);
            encode_attr(&mut attrs, FLAG_OPTIONAL, ATTR_MED, &b);
        }

        let mut b = BytesMut::new();
        b.put_u32(a.local_pref);
        encode_attr(&mut attrs, FLAG_TRANSITIVE, ATTR_LOCAL_PREF, &b);

        if !a.communities.is_empty() {
            let mut b = BytesMut::new();
            for c in a.communities.iter() {
                b.put_u32(c.value());
            }
            encode_attr(
                &mut attrs,
                FLAG_OPTIONAL | FLAG_TRANSITIVE,
                ATTR_COMMUNITIES,
                &b,
            );
        }
    }
    dst.put_u16(attrs.len() as u16);
    dst.put_slice(&attrs);

    // NLRI.
    for p in &u.nlri {
        encode_prefix(p, dst);
    }
}

/// Encode a message into a fresh buffer.
pub fn encode_to_bytes(msg: &BgpMessage) -> Bytes {
    let mut buf = BytesMut::new();
    encode_message(msg, &mut buf);
    buf.freeze()
}

/// An incremental frame decoder: feed bytes, pull complete messages.
///
/// Mirrors the `Decoder` pattern from the Tokio framing guide, without
/// the async machinery (the simulation is synchronous).
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: BytesMut,
}

impl FrameDecoder {
    /// New empty decoder.
    pub fn new() -> Self {
        FrameDecoder {
            buf: BytesMut::new(),
        }
    }

    /// Append raw bytes received from the peer.
    pub fn extend(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Try to decode one complete message from the buffer. Returns
    /// `Ok(None)` if more bytes are needed.
    pub fn next_message(&mut self) -> Result<Option<BgpMessage>, BgpError> {
        if self.buf.len() < HEADER_LEN {
            return Ok(None);
        }
        if self.buf[..16].iter().any(|&b| b != 0xFF) {
            return Err(BgpError::BadMarker);
        }
        let total = u16::from_be_bytes([self.buf[16], self.buf[17]]) as usize;
        if !(HEADER_LEN..=MAX_MESSAGE_LEN).contains(&total) {
            return Err(BgpError::LengthMismatch {
                declared: total,
                actual: self.buf.len(),
            });
        }
        if self.buf.len() < total {
            return Ok(None);
        }
        let frame = self.buf.split_to(total).freeze();
        decode_frame(frame).map(Some)
    }

    /// Bytes currently buffered but not yet decoded.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }
}

/// Decode one complete frame (header + body).
pub fn decode_frame(mut frame: Bytes) -> Result<BgpMessage, BgpError> {
    if frame.len() < HEADER_LEN {
        return Err(BgpError::Truncated {
            context: "header",
            needed: HEADER_LEN - frame.len(),
        });
    }
    let declared = u16::from_be_bytes([frame[16], frame[17]]) as usize;
    if declared != frame.len() {
        return Err(BgpError::LengthMismatch {
            declared,
            actual: frame.len(),
        });
    }
    frame.advance(18);
    let ty = frame.get_u8();
    match ty {
        TYPE_OPEN => decode_open(frame),
        TYPE_UPDATE => decode_update(frame).map(BgpMessage::Update),
        TYPE_NOTIFICATION => {
            if frame.remaining() < 2 {
                return Err(BgpError::Truncated {
                    context: "notification",
                    needed: 2,
                });
            }
            let code = frame.get_u8();
            let subcode = frame.get_u8();
            let code = NotificationCode::from_code(code)
                .ok_or(BgpError::MalformedAttribute("notification code"))?;
            Ok(BgpMessage::Notification { code, subcode })
        }
        TYPE_KEEPALIVE => Ok(BgpMessage::Keepalive),
        other => Err(BgpError::UnknownMessageType(other)),
    }
}

fn decode_open(mut b: Bytes) -> Result<BgpMessage, BgpError> {
    if b.remaining() < 10 {
        return Err(BgpError::Truncated {
            context: "OPEN",
            needed: 10 - b.remaining(),
        });
    }
    let _version = b.get_u8();
    let wire_as = b.get_u16();
    let hold_time = b.get_u16();
    let router_id = std::net::Ipv4Addr::from(b.get_u32());
    let opt_len = b.get_u8() as usize;
    if b.remaining() < opt_len {
        return Err(BgpError::Truncated {
            context: "OPEN options",
            needed: opt_len - b.remaining(),
        });
    }
    let mut asn = Asn(wire_as as u32);
    let mut opts = b.slice(..opt_len);
    // Scan optional parameters for capability 65 (4-octet AS).
    while opts.remaining() >= 2 {
        let ptype = opts.get_u8();
        let plen = opts.get_u8() as usize;
        if opts.remaining() < plen {
            return Err(BgpError::MalformedAttribute("OPEN optional parameter"));
        }
        let mut pbody = opts.slice(..plen);
        opts.advance(plen);
        if ptype != 2 {
            continue;
        }
        while pbody.remaining() >= 2 {
            let cap = pbody.get_u8();
            let clen = pbody.get_u8() as usize;
            if pbody.remaining() < clen {
                return Err(BgpError::MalformedAttribute("capability length"));
            }
            if cap == 65 && clen == 4 {
                asn = Asn(pbody.get_u32());
            } else {
                pbody.advance(clen);
            }
        }
    }
    Ok(BgpMessage::Open {
        asn,
        hold_time,
        router_id,
    })
}

fn decode_update(mut b: Bytes) -> Result<UpdateMessage, BgpError> {
    if b.remaining() < 2 {
        return Err(BgpError::Truncated {
            context: "withdrawn length",
            needed: 2,
        });
    }
    let wd_len = b.get_u16() as usize;
    if b.remaining() < wd_len {
        return Err(BgpError::Truncated {
            context: "withdrawn routes",
            needed: wd_len - b.remaining(),
        });
    }
    let mut wd = b.slice(..wd_len);
    b.advance(wd_len);
    let mut withdrawn = Vec::new();
    while wd.has_remaining() {
        withdrawn.push(decode_prefix(&mut wd)?);
    }

    if b.remaining() < 2 {
        return Err(BgpError::Truncated {
            context: "attribute length",
            needed: 2,
        });
    }
    let at_len = b.get_u16() as usize;
    if b.remaining() < at_len {
        return Err(BgpError::Truncated {
            context: "path attributes",
            needed: at_len - b.remaining(),
        });
    }
    let mut ab = b.slice(..at_len);
    b.advance(at_len);

    let mut attrs: Option<RouteAttrs> = if at_len > 0 {
        Some(RouteAttrs::default())
    } else {
        None
    };
    while ab.remaining() >= 3 {
        let flags = ab.get_u8();
        let ty = ab.get_u8();
        let alen = if flags & FLAG_EXTENDED != 0 {
            if ab.remaining() < 2 {
                return Err(BgpError::Truncated {
                    context: "extended attr length",
                    needed: 2,
                });
            }
            ab.get_u16() as usize
        } else {
            if ab.remaining() < 1 {
                return Err(BgpError::Truncated {
                    context: "attr length",
                    needed: 1,
                });
            }
            ab.get_u8() as usize
        };
        if ab.remaining() < alen {
            return Err(BgpError::Truncated {
                context: "attr body",
                needed: alen - ab.remaining(),
            });
        }
        let mut body = ab.slice(..alen);
        ab.advance(alen);
        let a = attrs.as_mut().expect("attrs present when at_len > 0");
        match ty {
            ATTR_ORIGIN => {
                if body.remaining() < 1 {
                    return Err(BgpError::MalformedAttribute("ORIGIN empty"));
                }
                a.origin = Origin::from_code(body.get_u8())
                    .ok_or(BgpError::MalformedAttribute("ORIGIN code"))?;
            }
            ATTR_AS_PATH => {
                let mut segs = Vec::new();
                while body.remaining() >= 2 {
                    let sty = body.get_u8();
                    let count = body.get_u8() as usize;
                    if body.remaining() < count * 4 {
                        return Err(BgpError::MalformedAttribute("AS_PATH segment"));
                    }
                    let mut asns = Vec::with_capacity(count);
                    for _ in 0..count {
                        asns.push(Asn(body.get_u32()));
                    }
                    match sty {
                        SEG_SET => segs.push(Segment::Set(asns)),
                        SEG_SEQUENCE => {
                            // Merge chunked sequences back together.
                            if let Some(Segment::Sequence(prev)) = segs.last_mut() {
                                prev.extend(asns);
                            } else {
                                segs.push(Segment::Sequence(asns));
                            }
                        }
                        _ => return Err(BgpError::MalformedAttribute("AS_PATH segment type")),
                    }
                }
                a.as_path = AsPath::from_segments(segs);
            }
            ATTR_NEXT_HOP => {
                if body.remaining() < 4 {
                    return Err(BgpError::MalformedAttribute("NEXT_HOP length"));
                }
                a.next_hop = std::net::Ipv4Addr::from(body.get_u32());
            }
            ATTR_MED => {
                if body.remaining() < 4 {
                    return Err(BgpError::MalformedAttribute("MED length"));
                }
                a.med = body.get_u32();
            }
            ATTR_LOCAL_PREF => {
                if body.remaining() < 4 {
                    return Err(BgpError::MalformedAttribute("LOCAL_PREF length"));
                }
                a.local_pref = body.get_u32();
            }
            ATTR_COMMUNITIES => {
                if alen % 4 != 0 {
                    return Err(BgpError::MalformedAttribute("COMMUNITIES length"));
                }
                let mut set = CommunitySet::new();
                while body.remaining() >= 4 {
                    set.insert(Community(body.get_u32()));
                }
                a.communities = set;
            }
            // Unknown attribute: skip (body already advanced past).
            _ => {}
        }
    }

    let mut nlri = Vec::new();
    while b.has_remaining() {
        nlri.push(decode_prefix(&mut b)?);
    }
    Ok(UpdateMessage {
        withdrawn,
        attrs,
        nlri,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::RouteAttrs;

    fn sample_update() -> UpdateMessage {
        let attrs = RouteAttrs::new(
            "8359 3216".parse::<AsPath>().unwrap(),
            "80.81.192.33".parse().unwrap(),
        )
        .with_communities("0:6695 6695:8447".parse().unwrap())
        .with_local_pref(120);
        UpdateMessage {
            withdrawn: vec!["10.9.0.0/16".parse().unwrap()],
            attrs: Some(attrs),
            nlri: vec![
                "193.34.0.0/22".parse().unwrap(),
                "193.34.4.0/24".parse().unwrap(),
            ],
        }
    }

    fn roundtrip(msg: &BgpMessage) -> BgpMessage {
        let bytes = encode_to_bytes(msg);
        decode_frame(bytes).expect("decode")
    }

    #[test]
    fn keepalive_roundtrip() {
        assert_eq!(roundtrip(&BgpMessage::Keepalive), BgpMessage::Keepalive);
        assert_eq!(encode_to_bytes(&BgpMessage::Keepalive).len(), HEADER_LEN);
    }

    #[test]
    fn open_roundtrip_16bit_and_32bit_asn() {
        for asn in [Asn(6695), Asn(196_608), Asn(4_200_000_001)] {
            let msg = BgpMessage::Open {
                asn,
                hold_time: 90,
                router_id: "10.1.2.3".parse().unwrap(),
            };
            assert_eq!(roundtrip(&msg), msg, "asn {asn}");
        }
    }

    #[test]
    fn update_roundtrip() {
        let msg = BgpMessage::Update(sample_update());
        assert_eq!(roundtrip(&msg), msg);
    }

    #[test]
    fn withdraw_only_roundtrip() {
        let msg = BgpMessage::Update(UpdateMessage::withdraw(vec!["193.34.0.0/22"
            .parse()
            .unwrap()]));
        assert_eq!(roundtrip(&msg), msg);
    }

    #[test]
    fn notification_roundtrip() {
        let msg = BgpMessage::Notification {
            code: NotificationCode::Cease,
            subcode: 2,
        };
        assert_eq!(roundtrip(&msg), msg);
    }

    #[test]
    fn as_set_roundtrip() {
        let path = "3356 {64496,64497} 6695".parse::<AsPath>().unwrap();
        let attrs = RouteAttrs::new(path, "1.2.3.4".parse().unwrap());
        let msg = BgpMessage::Update(UpdateMessage::announce(
            attrs,
            vec!["192.0.2.0/24".parse().unwrap()],
        ));
        assert_eq!(roundtrip(&msg), msg);
    }

    #[test]
    fn long_path_chunking_roundtrip() {
        // 600 hops forces segment chunking at 255.
        let asns: Vec<Asn> = (1..=600u32).map(Asn).collect();
        let attrs = RouteAttrs::new(AsPath::from_seq(asns), "1.2.3.4".parse().unwrap());
        let msg = BgpMessage::Update(UpdateMessage::announce(
            attrs,
            vec!["192.0.2.0/24".parse().unwrap()],
        ));
        let out = roundtrip(&msg);
        assert_eq!(out, msg);
    }

    #[test]
    fn incremental_decoder_handles_split_frames() {
        let m1 = BgpMessage::Keepalive;
        let m2 = BgpMessage::Update(sample_update());
        let mut wire = BytesMut::new();
        encode_message(&m1, &mut wire);
        encode_message(&m2, &mut wire);
        let wire = wire.freeze();

        let mut dec = FrameDecoder::new();
        // Feed one byte at a time; messages must come out whole, in order.
        let mut got = Vec::new();
        for chunk in wire.chunks(1) {
            dec.extend(chunk);
            while let Some(m) = dec.next_message().unwrap() {
                got.push(m);
            }
        }
        assert_eq!(got, vec![m1, m2]);
        assert_eq!(dec.pending(), 0);
    }

    #[test]
    fn decoder_rejects_bad_marker() {
        let mut dec = FrameDecoder::new();
        dec.extend(&[0u8; 19]);
        assert_eq!(dec.next_message(), Err(BgpError::BadMarker));
    }

    #[test]
    fn decode_rejects_truncated_frame() {
        let bytes = encode_to_bytes(&BgpMessage::Update(sample_update()));
        let cut = bytes.slice(..bytes.len() - 3);
        assert!(decode_frame(cut).is_err());
    }

    #[test]
    fn unknown_attribute_is_skipped() {
        // Hand-craft an update with an unknown attribute type 99.
        let mut body = BytesMut::new();
        body.put_u16(0); // withdrawn len
        let mut attrs = BytesMut::new();
        encode_attr(&mut attrs, FLAG_OPTIONAL | FLAG_TRANSITIVE, 99, &[1, 2, 3]);
        let mut b = BytesMut::new();
        b.put_u8(Origin::Igp.code());
        encode_attr(&mut attrs, FLAG_TRANSITIVE, ATTR_ORIGIN, &b);
        body.put_u16(attrs.len() as u16);
        body.put_slice(&attrs);
        // One NLRI.
        encode_prefix(&"192.0.2.0/24".parse().unwrap(), &mut body);

        let mut frame = BytesMut::new();
        frame.put_bytes(0xFF, 16);
        frame.put_u16((HEADER_LEN + body.len()) as u16);
        frame.put_u8(TYPE_UPDATE);
        frame.put_slice(&body);
        let msg = decode_frame(frame.freeze()).unwrap();
        match msg {
            BgpMessage::Update(u) => {
                assert_eq!(u.nlri.len(), 1);
                assert_eq!(u.attrs.unwrap().origin, Origin::Igp);
            }
            other => panic!("expected update, got {other:?}"),
        }
    }
}
