//! IPv4 CIDR prefixes.
//!
//! IXP members announce sets of prefixes to route servers; the active
//! inference algorithm (§4.1) samples and queries them, and the
//! validation campaign (§5.1) picks geographically diverse ones. The
//! paper's measurements are IPv4; an IPv6 extension would be mechanical
//! and is listed as omitted in the README feature inventory.

use std::cmp::Ordering;
use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::error::BgpError;

/// An IPv4 CIDR prefix, stored canonically (host bits zeroed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Prefix {
    addr: u32,
    len: u8,
}

impl Prefix {
    /// Build a prefix from a network address and length, canonicalizing
    /// by masking the host bits.
    pub fn new(addr: Ipv4Addr, len: u8) -> Result<Self, BgpError> {
        if len > 32 {
            return Err(BgpError::PrefixLenOutOfRange(len));
        }
        Ok(Prefix {
            addr: u32::from(addr) & Self::mask(len),
            len,
        })
    }

    /// Build from a raw `u32` network address (canonicalizes host bits).
    pub fn from_u32(addr: u32, len: u8) -> Result<Self, BgpError> {
        if len > 32 {
            return Err(BgpError::PrefixLenOutOfRange(len));
        }
        Ok(Prefix {
            addr: addr & Self::mask(len),
            len,
        })
    }

    /// The netmask for a prefix length.
    #[inline]
    const fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len)
        }
    }

    /// Network address.
    #[inline]
    pub fn network(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.addr)
    }

    /// Raw network address as a `u32`.
    #[inline]
    pub const fn network_u32(&self) -> u32 {
        self.addr
    }

    /// Prefix length in bits (CIDR mask size, not a container length —
    /// `/0` is a valid prefix, so there is no `is_empty`).
    #[inline]
    #[allow(clippy::len_without_is_empty)]
    pub const fn len(&self) -> u8 {
        self.len
    }

    /// True only for `0.0.0.0/0`.
    #[inline]
    pub const fn is_default(&self) -> bool {
        self.len == 0
    }

    /// Number of addresses covered (saturating for `/0`).
    pub const fn size(&self) -> u64 {
        1u64 << (32 - self.len as u64)
    }

    /// Does this prefix contain the given address?
    pub fn contains_addr(&self, ip: Ipv4Addr) -> bool {
        (u32::from(ip) & Self::mask(self.len)) == self.addr
    }

    /// Does this prefix contain (or equal) `other`?
    pub fn covers(&self, other: &Prefix) -> bool {
        self.len <= other.len && (other.addr & Self::mask(self.len)) == self.addr
    }

    /// Do the two prefixes overlap (one covers the other)?
    pub fn overlaps(&self, other: &Prefix) -> bool {
        self.covers(other) || other.covers(self)
    }

    /// The two halves of this prefix, if it can be split.
    pub fn split(&self) -> Option<(Prefix, Prefix)> {
        if self.len >= 32 {
            return None;
        }
        let left = Prefix {
            addr: self.addr,
            len: self.len + 1,
        };
        let right = Prefix {
            addr: self.addr | (1u32 << (31 - self.len as u32)),
            len: self.len + 1,
        };
        Some((left, right))
    }

    /// The immediate covering prefix (one bit shorter), if any.
    pub fn parent(&self) -> Option<Prefix> {
        if self.len == 0 {
            None
        } else {
            let len = self.len - 1;
            Some(Prefix {
                addr: self.addr & Self::mask(len),
                len,
            })
        }
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network(), self.len)
    }
}

impl FromStr for Prefix {
    type Err = BgpError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = s
            .split_once('/')
            .ok_or_else(|| BgpError::InvalidPrefix(s.into()))?;
        let addr: Ipv4Addr = addr
            .parse()
            .map_err(|_| BgpError::InvalidPrefix(s.into()))?;
        let len: u8 = len.parse().map_err(|_| BgpError::InvalidPrefix(s.into()))?;
        Prefix::new(addr, len)
    }
}

/// Order by network address, then by length (shorter first). This gives
/// the conventional "supernets before their subnets" listing order.
impl Ord for Prefix {
    fn cmp(&self, other: &Self) -> Ordering {
        self.addr.cmp(&other.addr).then(self.len.cmp(&other.len))
    }
}

impl PartialOrd for Prefix {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn parse_display_roundtrip() {
        for s in ["0.0.0.0/0", "10.0.0.0/8", "192.0.2.0/24", "203.0.113.37/32"] {
            assert_eq!(p(s).to_string(), s);
        }
    }

    #[test]
    fn canonicalizes_host_bits() {
        assert_eq!(p("192.0.2.77/24"), p("192.0.2.0/24"));
        assert_eq!(p("192.0.2.77/24").to_string(), "192.0.2.0/24");
    }

    #[test]
    fn rejects_bad_input() {
        assert!("192.0.2.0".parse::<Prefix>().is_err());
        assert!("192.0.2.0/33".parse::<Prefix>().is_err());
        assert!("not-an-ip/24".parse::<Prefix>().is_err());
        assert!("192.0.2.0/x".parse::<Prefix>().is_err());
    }

    #[test]
    fn containment() {
        assert!(p("10.0.0.0/8").covers(&p("10.1.0.0/16")));
        assert!(p("10.0.0.0/8").covers(&p("10.0.0.0/8")));
        assert!(!p("10.1.0.0/16").covers(&p("10.0.0.0/8")));
        assert!(!p("10.0.0.0/8").covers(&p("11.0.0.0/16")));
        assert!(p("0.0.0.0/0").covers(&p("203.0.113.0/24")));
        assert!(p("10.0.0.0/8").contains_addr("10.255.255.255".parse().unwrap()));
        assert!(!p("10.0.0.0/8").contains_addr("11.0.0.0".parse().unwrap()));
    }

    #[test]
    fn overlap_is_symmetric() {
        assert!(p("10.0.0.0/8").overlaps(&p("10.2.0.0/16")));
        assert!(p("10.2.0.0/16").overlaps(&p("10.0.0.0/8")));
        assert!(!p("10.0.0.0/8").overlaps(&p("11.0.0.0/8")));
    }

    #[test]
    fn split_and_parent() {
        let (l, r) = p("10.0.0.0/8").split().unwrap();
        assert_eq!(l, p("10.0.0.0/9"));
        assert_eq!(r, p("10.128.0.0/9"));
        assert_eq!(l.parent().unwrap(), p("10.0.0.0/8"));
        assert_eq!(r.parent().unwrap(), p("10.0.0.0/8"));
        assert!(p("1.2.3.4/32").split().is_none());
        assert!(p("0.0.0.0/0").parent().is_none());
    }

    #[test]
    fn ordering_supernet_first() {
        let mut v = vec![p("10.0.0.0/16"), p("10.0.0.0/8"), p("9.0.0.0/8")];
        v.sort();
        assert_eq!(v, vec![p("9.0.0.0/8"), p("10.0.0.0/8"), p("10.0.0.0/16")]);
    }

    #[test]
    fn size() {
        assert_eq!(p("10.0.0.0/8").size(), 1 << 24);
        assert_eq!(p("1.2.3.4/32").size(), 1);
        assert_eq!(p("0.0.0.0/0").size(), 1 << 32);
    }

    // ---- edge cases feeding the serving layer's prefix trie ----

    /// `from_str` → `Display` → `from_str` is the identity on canonical
    /// text at every length, including the /0 and /32 extremes the trie
    /// stores at its root and leaves.
    #[test]
    fn from_str_roundtrips_at_every_length() {
        for len in 0..=32u8 {
            let canonical = Prefix::new("255.255.255.255".parse().unwrap(), len).unwrap();
            let reparsed: Prefix = canonical.to_string().parse().unwrap();
            assert_eq!(reparsed, canonical, "/{len}");
            assert_eq!(reparsed.to_string(), canonical.to_string(), "/{len}");
            assert_eq!(reparsed.len(), len);
        }
    }

    /// `covers` and `parent` must agree: a parent covers its child, a
    /// child never covers its parent, and walking the parent chain from
    /// any prefix enumerates exactly its covering prefixes — the
    /// invariant the trie's `covering` lookup is built on.
    #[test]
    fn covers_and_parent_agree() {
        let start = p("198.51.100.192/28");
        let mut chain = vec![start];
        let mut q = start.parent();
        while let Some(parent) = q {
            let child = *chain.last().unwrap();
            assert!(parent.covers(&child), "{parent} covers {child}");
            assert!(!child.covers(&parent), "{child} must not cover {parent}");
            assert_eq!(parent.len() + 1, child.len());
            chain.push(parent);
            q = parent.parent();
        }
        // The chain ends at /0 and has one hop per bit.
        assert_eq!(chain.len(), 29);
        assert!(chain.last().unwrap().is_default());
        // Every chain member covers the start; nothing else at those
        // lengths does.
        for anc in &chain {
            assert!(anc.covers(&start));
            assert!(anc.overlaps(&start));
        }
        // The sibling under the same /27 does not cover the start, but
        // their shared parent covers both.
        let sibling = p("198.51.100.208/28");
        assert!(!sibling.covers(&start));
        assert_eq!(sibling.parent(), start.parent());
        assert!(sibling.parent().unwrap().covers(&start));
    }

    /// `/0` behavior: covers everything, contains every address, has no
    /// parent, and is its own canonical form for any input address.
    #[test]
    fn default_route_edge_cases() {
        let all = p("0.0.0.0/0");
        assert!(all.is_default());
        assert!(all.parent().is_none());
        for other in ["0.0.0.0/0", "10.0.0.0/8", "255.255.255.255/32"] {
            assert!(all.covers(&p(other)), "{other}");
        }
        assert!(all.contains_addr("255.255.255.255".parse().unwrap()));
        // Host bits of /0 are all host bits.
        assert_eq!(Prefix::new("203.0.113.7".parse().unwrap(), 0).unwrap(), all);
        assert_eq!(Prefix::from_u32(u32::MAX, 0).unwrap(), all);
    }

    /// `/32` behavior: covers only itself, splits into nothing, and its
    /// parent chain reaches /0 in exactly 32 hops.
    #[test]
    fn host_route_edge_cases() {
        let host = p("203.0.113.37/32");
        assert!(host.covers(&host));
        assert!(!host.covers(&p("203.0.113.36/32")));
        assert!(!host.covers(&p("203.0.113.36/31")));
        assert!(p("203.0.113.36/31").covers(&host));
        assert!(host.split().is_none());
        assert_eq!(host.size(), 1);
        let mut hops = 0;
        let mut q = Some(host);
        while let Some(pfx) = q.and_then(|x| x.parent()) {
            hops += 1;
            q = Some(pfx);
        }
        assert_eq!(hops, 32);
    }
}
