//! Routing Information Base.
//!
//! The route-server substrate keeps an Adj-RIB-In per member session and
//! the looking-glass substrate answers `show ip bgp` from a RIB, so
//! best-path selection must be deterministic and match what operators
//! expect: highest LOCAL_PREF, shortest AS path, lowest ORIGIN code,
//! lowest MED, then stable tie-breaks (lowest peer ASN, lowest peer
//! address) standing in for router-ID comparison.
//!
//! §5.1 of the paper turns on exactly this machinery: links in
//! *non-best* paths are invisible to looking glasses that only display
//! the best path, which is why validation coverage differs between
//! all-paths and best-path LGs (Fig. 8).

use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};

use crate::asn::Asn;
use crate::prefix::Prefix;
use crate::route::RouteAttrs;

/// A route in the RIB: attributes plus which peer session supplied it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RibEntry {
    /// Peer (session) the route was learned from.
    pub peer: Asn,
    /// Peer address (tie-break surrogate for router ID).
    pub peer_addr: Ipv4Addr,
    /// Path attributes.
    pub attrs: RouteAttrs,
    /// Insertion time (simulation seconds) — used for transient-path
    /// filtering in the passive pipeline.
    pub learned_at: u32,
}

impl RibEntry {
    /// Rank key implementing the selection order documented above.
    /// Lower key = more preferred, so `min_by_key` picks the best path.
    fn rank(&self) -> (std::cmp::Reverse<u32>, usize, u8, u32, u32, u32) {
        (
            std::cmp::Reverse(self.attrs.local_pref),
            self.attrs.as_path.hop_len(),
            self.attrs.origin.code(),
            self.attrs.med,
            self.peer.value(),
            u32::from(self.peer_addr),
        )
    }
}

/// A BGP RIB: every path to every prefix, with best-path selection.
///
/// Backed by a `BTreeMap` so iteration order over prefixes is
/// deterministic — a requirement for reproducible experiments.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Rib {
    table: BTreeMap<Prefix, Vec<RibEntry>>,
}

impl Rib {
    /// Empty RIB.
    pub fn new() -> Self {
        Rib {
            table: BTreeMap::new(),
        }
    }

    /// Insert or replace the route for `prefix` from `entry.peer`.
    /// A BGP session carries at most one path per prefix, so a new
    /// announcement from the same peer implicitly replaces the old one.
    pub fn insert(&mut self, prefix: Prefix, entry: RibEntry) {
        let paths = self.table.entry(prefix).or_default();
        match paths
            .iter_mut()
            .find(|e| e.peer == entry.peer && e.peer_addr == entry.peer_addr)
        {
            Some(slot) => *slot = entry,
            None => paths.push(entry),
        }
    }

    /// Withdraw `prefix` as announced by `peer`. Returns `true` if a
    /// route was removed.
    pub fn withdraw(&mut self, prefix: Prefix, peer: Asn) -> bool {
        let Some(paths) = self.table.get_mut(&prefix) else {
            return false;
        };
        let before = paths.len();
        paths.retain(|e| e.peer != peer);
        let removed = paths.len() < before;
        if paths.is_empty() {
            self.table.remove(&prefix);
        }
        removed
    }

    /// Remove every route learned from `peer` (session teardown).
    /// Returns the number of routes removed.
    pub fn drop_peer(&mut self, peer: Asn) -> usize {
        let mut removed = 0;
        self.table.retain(|_, paths| {
            let before = paths.len();
            paths.retain(|e| e.peer != peer);
            removed += before - paths.len();
            !paths.is_empty()
        });
        removed
    }

    /// All paths for `prefix` (empty slice if none), in insertion order.
    pub fn paths(&self, prefix: &Prefix) -> &[RibEntry] {
        self.table.get(prefix).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The best path for `prefix`, per the documented selection order.
    pub fn best(&self, prefix: &Prefix) -> Option<&RibEntry> {
        self.table.get(prefix)?.iter().min_by_key(|e| e.rank())
    }

    /// All paths for `prefix` sorted best-first (what an all-paths
    /// looking glass prints).
    pub fn paths_ranked(&self, prefix: &Prefix) -> Vec<&RibEntry> {
        let mut v: Vec<&RibEntry> = self.paths(prefix).iter().collect();
        v.sort_by_key(|e| e.rank());
        v
    }

    /// Iterate `(prefix, paths)` in prefix order.
    pub fn iter(&self) -> impl Iterator<Item = (&Prefix, &[RibEntry])> {
        self.table.iter().map(|(p, v)| (p, v.as_slice()))
    }

    /// Iterate `(prefix, best path)` in prefix order.
    pub fn iter_best(&self) -> impl Iterator<Item = (&Prefix, &RibEntry)> {
        self.table
            .iter()
            .filter_map(|(p, v)| v.iter().min_by_key(|e| e.rank()).map(|e| (p, e)))
    }

    /// All prefixes announced by `peer`.
    pub fn prefixes_from(&self, peer: Asn) -> Vec<Prefix> {
        self.table
            .iter()
            .filter(|(_, paths)| paths.iter().any(|e| e.peer == peer))
            .map(|(p, _)| *p)
            .collect()
    }

    /// The route `peer` announced for `prefix`, if any.
    pub fn path_from(&self, prefix: &Prefix, peer: Asn) -> Option<&RibEntry> {
        self.paths(prefix).iter().find(|e| e.peer == peer)
    }

    /// Distinct peers with at least one route in the table.
    pub fn peers(&self) -> Vec<Asn> {
        let mut v: Vec<Asn> = self.table.values().flatten().map(|e| e.peer).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Number of prefixes.
    pub fn prefix_count(&self) -> usize {
        self.table.len()
    }

    /// Total number of stored paths.
    pub fn path_count(&self) -> usize {
        self.table.values().map(Vec::len).sum()
    }

    /// True if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aspath::AsPath;

    fn entry(peer: u32, path: &str, lp: u32) -> RibEntry {
        RibEntry {
            peer: Asn(peer),
            peer_addr: Ipv4Addr::from(0x0A00_0000 | peer),
            attrs: RouteAttrs::new(path.parse::<AsPath>().unwrap(), "10.0.0.9".parse().unwrap())
                .with_local_pref(lp),
            learned_at: 0,
        }
    }

    fn pfx(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn best_prefers_local_pref_over_length() {
        let mut rib = Rib::new();
        let p = pfx("192.0.2.0/24");
        rib.insert(p, entry(1, "1 9", 100));
        rib.insert(p, entry(2, "2 7 8 9", 200)); // longer but higher LP
        assert_eq!(rib.best(&p).unwrap().peer, Asn(2));
    }

    #[test]
    fn best_prefers_shorter_path_at_equal_local_pref() {
        let mut rib = Rib::new();
        let p = pfx("192.0.2.0/24");
        rib.insert(p, entry(1, "1 5 9", 100));
        rib.insert(p, entry(2, "2 9", 100));
        assert_eq!(rib.best(&p).unwrap().peer, Asn(2));
    }

    #[test]
    fn best_tie_breaks_on_lower_peer_asn() {
        let mut rib = Rib::new();
        let p = pfx("192.0.2.0/24");
        rib.insert(p, entry(7, "7 9", 100));
        rib.insert(p, entry(3, "3 9", 100));
        assert_eq!(rib.best(&p).unwrap().peer, Asn(3));
    }

    #[test]
    fn reannouncement_replaces_same_peer_route() {
        let mut rib = Rib::new();
        let p = pfx("192.0.2.0/24");
        rib.insert(p, entry(1, "1 9", 100));
        rib.insert(p, entry(1, "1 8 9", 100));
        assert_eq!(rib.paths(&p).len(), 1);
        assert_eq!(rib.paths(&p)[0].attrs.as_path.to_string(), "1 8 9");
    }

    #[test]
    fn withdraw_and_drop_peer() {
        let mut rib = Rib::new();
        let p1 = pfx("192.0.2.0/24");
        let p2 = pfx("198.51.100.0/24");
        rib.insert(p1, entry(1, "1 9", 100));
        rib.insert(p1, entry(2, "2 9", 100));
        rib.insert(p2, entry(1, "1 8", 100));
        assert!(rib.withdraw(p1, Asn(1)));
        assert!(!rib.withdraw(p1, Asn(1)), "second withdraw is a no-op");
        assert_eq!(rib.paths(&p1).len(), 1);
        assert_eq!(rib.drop_peer(Asn(1)), 1); // removes p2's only path
        assert_eq!(rib.prefix_count(), 1);
        assert!(!rib.withdraw(pfx("203.0.113.0/24"), Asn(1)));
    }

    #[test]
    fn ranked_paths_order() {
        let mut rib = Rib::new();
        let p = pfx("192.0.2.0/24");
        rib.insert(p, entry(1, "1 5 9", 100));
        rib.insert(p, entry(2, "2 9", 100));
        rib.insert(p, entry(3, "3 9", 300));
        let ranked = rib.paths_ranked(&p);
        assert_eq!(
            ranked.iter().map(|e| e.peer).collect::<Vec<_>>(),
            vec![Asn(3), Asn(2), Asn(1)]
        );
    }

    #[test]
    fn queries_by_peer() {
        let mut rib = Rib::new();
        rib.insert(pfx("192.0.2.0/24"), entry(1, "1 9", 100));
        rib.insert(pfx("198.51.100.0/24"), entry(1, "1 8", 100));
        rib.insert(pfx("203.0.113.0/24"), entry(2, "2 7", 100));
        assert_eq!(rib.prefixes_from(Asn(1)).len(), 2);
        assert_eq!(rib.prefixes_from(Asn(2)).len(), 1);
        assert!(rib.path_from(&pfx("203.0.113.0/24"), Asn(2)).is_some());
        assert!(rib.path_from(&pfx("203.0.113.0/24"), Asn(1)).is_none());
        assert_eq!(rib.peers(), vec![Asn(1), Asn(2)]);
        assert_eq!(rib.prefix_count(), 3);
        assert_eq!(rib.path_count(), 3);
    }

    #[test]
    fn iteration_is_deterministic_prefix_order() {
        let mut rib = Rib::new();
        rib.insert(pfx("203.0.113.0/24"), entry(1, "1", 100));
        rib.insert(pfx("192.0.2.0/24"), entry(1, "1", 100));
        let order: Vec<String> = rib.iter().map(|(p, _)| p.to_string()).collect();
        assert_eq!(order, vec!["192.0.2.0/24", "203.0.113.0/24"]);
        assert_eq!(rib.iter_best().count(), 2);
    }
}
