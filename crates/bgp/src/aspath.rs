//! AS paths.
//!
//! The AS_PATH attribute records the sequence of ASes a route traversed
//! and is "the primary source of AS links" (§2.2). The passive pipeline
//! sanitizes paths (loops from misconfiguration / poisoning, bogon ASNs)
//! and walks adjacencies; the RS-setter identification of §4.2 reasons
//! about member positions within a path.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::asn::Asn;
use crate::error::BgpError;

/// One AS_PATH segment (RFC 4271): an ordered sequence or an unordered
/// set (produced by aggregation).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Segment {
    /// AS_SEQUENCE: ordered list of ASNs.
    Sequence(Vec<Asn>),
    /// AS_SET: unordered collection from route aggregation.
    Set(Vec<Asn>),
}

impl Segment {
    /// The ASNs in this segment, in stored order.
    pub fn asns(&self) -> &[Asn] {
        match self {
            Segment::Sequence(v) | Segment::Set(v) => v,
        }
    }

    /// Hop-count contribution to path length: a sequence counts each
    /// ASN, a set counts as one hop (RFC 4271 §9.1.2.2).
    pub fn hop_len(&self) -> usize {
        match self {
            Segment::Sequence(v) => v.len(),
            Segment::Set(v) => usize::from(!v.is_empty()),
        }
    }
}

/// An AS path: one or more segments, first-traversed-last (the leftmost
/// ASN is the most recent hop, i.e. the neighbor of the observer; the
/// rightmost is the origin).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct AsPath {
    segments: Vec<Segment>,
}

impl AsPath {
    /// Empty path (as announced by the origin itself over iBGP).
    pub const fn empty() -> Self {
        AsPath {
            segments: Vec::new(),
        }
    }

    /// Build a plain sequence path from a slice of ASNs, leftmost =
    /// nearest the observer, rightmost = origin.
    pub fn from_seq<I: IntoIterator<Item = Asn>>(asns: I) -> Self {
        let v: Vec<Asn> = asns.into_iter().collect();
        if v.is_empty() {
            AsPath::empty()
        } else {
            AsPath {
                segments: vec![Segment::Sequence(v)],
            }
        }
    }

    /// Build from explicit segments, canonicalizing: empty segments are
    /// dropped and adjacent sequences merged, so structurally different
    /// but semantically identical inputs compare equal (and survive a
    /// wire round-trip, where sequences are chunked at 255 ASNs).
    pub fn from_segments(segments: Vec<Segment>) -> Self {
        let mut out: Vec<Segment> = Vec::with_capacity(segments.len());
        for seg in segments {
            if seg.asns().is_empty() {
                continue;
            }
            match (out.last_mut(), seg) {
                (Some(Segment::Sequence(prev)), Segment::Sequence(v)) => prev.extend(v),
                (_, seg) => out.push(seg),
            }
        }
        AsPath { segments: out }
    }

    /// The segments.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Iterate over every ASN in order of appearance (sets flattened in
    /// stored order).
    pub fn iter(&self) -> impl Iterator<Item = Asn> + '_ {
        self.segments.iter().flat_map(|s| s.asns().iter().copied())
    }

    /// All ASNs as a vector (flattened).
    pub fn to_vec(&self) -> Vec<Asn> {
        self.iter().collect()
    }

    /// Hop length for best-path comparison (AS_SET counts 1).
    pub fn hop_len(&self) -> usize {
        self.segments.iter().map(Segment::hop_len).sum()
    }

    /// True if no ASNs at all.
    pub fn is_empty(&self) -> bool {
        self.segments.iter().all(|s| s.asns().is_empty())
    }

    /// The origin AS (rightmost), if any. For an AS_SET origin the
    /// origin is ambiguous and `None` is returned.
    pub fn origin(&self) -> Option<Asn> {
        match self.segments.last() {
            Some(Segment::Sequence(v)) => v.last().copied(),
            _ => None,
        }
    }

    /// The first hop (leftmost ASN): the neighbor the observer learned
    /// the route from.
    pub fn first_hop(&self) -> Option<Asn> {
        self.iter().next()
    }

    /// Prepend an ASN `count` times (what a BGP speaker does on eBGP
    /// export). Creates or extends a leading sequence segment.
    pub fn prepend(&mut self, asn: Asn, count: usize) {
        if count == 0 {
            return;
        }
        match self.segments.first_mut() {
            Some(Segment::Sequence(v)) => {
                for _ in 0..count {
                    v.insert(0, asn);
                }
            }
            _ => {
                self.segments.insert(0, Segment::Sequence(vec![asn; count]));
            }
        }
    }

    /// A new path with `asn` prepended once (the common export case).
    pub fn prepended(&self, asn: Asn) -> AsPath {
        let mut p = self.clone();
        p.prepend(asn, 1);
        p
    }

    /// Does the path contain `asn` anywhere? (Loop prevention check.)
    pub fn contains(&self, asn: Asn) -> bool {
        self.iter().any(|a| a == asn)
    }

    /// True if some ASN appears in two non-adjacent positions — the
    /// paper filters such "path cycles that resulted from
    /// misconfiguration and poisoning" (§5). Adjacent repeats are legal
    /// prepending, not cycles.
    pub fn has_cycle(&self) -> bool {
        let flat = self.to_vec();
        let mut last_seen: std::collections::HashMap<Asn, usize> = std::collections::HashMap::new();
        for (i, asn) in flat.iter().enumerate() {
            if let Some(&j) = last_seen.get(asn) {
                if i - j > 1 {
                    return true;
                }
            }
            last_seen.insert(*asn, i);
        }
        false
    }

    /// True if any ASN is a path bogon per the paper's sanitation rule
    /// (AS 23456, 63488–131071, AS 0).
    pub fn has_bogon(&self) -> bool {
        self.iter().any(|a| a.is_path_bogon())
    }

    /// The path with consecutive duplicates collapsed (prepending
    /// removed) — the form used for link extraction.
    pub fn dedup_prepends(&self) -> Vec<Asn> {
        let mut out: Vec<Asn> = Vec::new();
        for asn in self.iter() {
            if out.last() != Some(&asn) {
                out.push(asn);
            }
        }
        out
    }

    /// The AS adjacencies (links) this path witnesses, after collapsing
    /// prepending. Each pair is ordered as it appears (nearer-observer
    /// first). AS_SET boundaries do not yield links (the standard
    /// conservative treatment, since sets encode aggregation not
    /// adjacency).
    pub fn links(&self) -> Vec<(Asn, Asn)> {
        let mut out = Vec::new();
        for seg in &self.segments {
            if let Segment::Sequence(v) = seg {
                let mut prev: Option<Asn> = None;
                for &a in v {
                    if let Some(p) = prev {
                        if p != a {
                            out.push((p, a));
                        }
                    }
                    prev = Some(a);
                }
            }
        }
        out
    }
}

impl fmt::Display for AsPath {
    /// Space-separated ASNs; AS_SETs in braces, as looking glasses print
    /// them (`3356 6695 {64512,64513}`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for seg in &self.segments {
            match seg {
                Segment::Sequence(v) => {
                    for a in v {
                        if !first {
                            write!(f, " ")?;
                        }
                        write!(f, "{a}")?;
                        first = false;
                    }
                }
                Segment::Set(v) => {
                    if !first {
                        write!(f, " ")?;
                    }
                    write!(f, "{{")?;
                    for (i, a) in v.iter().enumerate() {
                        if i > 0 {
                            write!(f, ",")?;
                        }
                        write!(f, "{a}")?;
                    }
                    write!(f, "}}")?;
                    first = false;
                }
            }
        }
        Ok(())
    }
}

impl FromStr for AsPath {
    type Err = BgpError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut segments: Vec<Segment> = Vec::new();
        let mut seq: Vec<Asn> = Vec::new();
        for tok in s.split_whitespace() {
            if let Some(inner) = tok.strip_prefix('{') {
                let inner = inner
                    .strip_suffix('}')
                    .ok_or_else(|| BgpError::InvalidAsn(tok.into()))?;
                if !seq.is_empty() {
                    segments.push(Segment::Sequence(std::mem::take(&mut seq)));
                }
                let set: Result<Vec<Asn>, _> = inner
                    .split(',')
                    .filter(|t| !t.is_empty())
                    .map(str::parse)
                    .collect();
                segments.push(Segment::Set(set?));
            } else {
                seq.push(tok.parse()?);
            }
        }
        if !seq.is_empty() {
            segments.push(Segment::Sequence(seq));
        }
        Ok(AsPath { segments })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(s: &str) -> AsPath {
        s.parse().unwrap()
    }

    #[test]
    fn parse_display_roundtrip() {
        for s in [
            "",
            "6695",
            "3356 1299 6695",
            "3356 {64512,64513}",
            "3356 {1} 2",
        ] {
            assert_eq!(path(s).to_string(), s);
        }
    }

    #[test]
    fn origin_and_first_hop() {
        let p = path("3356 1299 6695");
        assert_eq!(p.origin(), Some(Asn(6695)));
        assert_eq!(p.first_hop(), Some(Asn(3356)));
        assert_eq!(p.hop_len(), 3);
        assert_eq!(path("").origin(), None);
        // AS_SET origin is ambiguous.
        assert_eq!(path("3356 {1,2}").origin(), None);
    }

    #[test]
    fn prepend_behaviour() {
        let mut p = path("1299 6695");
        p.prepend(Asn(3356), 1);
        assert_eq!(p.to_string(), "3356 1299 6695");
        p.prepend(Asn(3356), 2);
        assert_eq!(p.to_string(), "3356 3356 3356 1299 6695");
        assert_eq!(p.hop_len(), 5);
        assert_eq!(p.dedup_prepends(), vec![Asn(3356), Asn(1299), Asn(6695)]);
        // Prepending onto a leading set creates a new sequence segment.
        let mut q = path("{1,2}");
        q.prepend(Asn(9), 1);
        assert_eq!(q.to_string(), "9 {1,2}");
    }

    #[test]
    fn cycle_detection() {
        assert!(!path("1 2 3").has_cycle());
        assert!(!path("1 1 2 3").has_cycle(), "prepending is not a cycle");
        assert!(path("1 2 1").has_cycle(), "A B A is a cycle");
        assert!(path("1 2 3 2").has_cycle());
        assert!(!path("").has_cycle());
    }

    #[test]
    fn bogon_detection() {
        assert!(path("3356 23456 6695").has_bogon());
        assert!(path("3356 64512 6695").has_bogon());
        assert!(path("3356 131071").has_bogon());
        assert!(!path("3356 1299 6695").has_bogon());
    }

    #[test]
    fn link_extraction_collapses_prepends_and_skips_sets() {
        let p = path("3356 3356 1299 6695");
        assert_eq!(
            p.links(),
            vec![(Asn(3356), Asn(1299)), (Asn(1299), Asn(6695))]
        );
        // Links never cross an AS_SET boundary.
        let q = path("3356 {64512,64513} 6695");
        assert_eq!(q.links(), vec![]);
        let r = path("1 2 {3} 4 5");
        assert_eq!(r.links(), vec![(Asn(1), Asn(2)), (Asn(4), Asn(5))]);
    }

    #[test]
    fn contains_and_loop_prevention() {
        let p = path("3356 1299 6695");
        assert!(p.contains(Asn(1299)));
        assert!(!p.contains(Asn(7018)));
    }

    #[test]
    fn from_seq_equivalent_to_parse() {
        let p = AsPath::from_seq([Asn(3356), Asn(1299), Asn(6695)]);
        assert_eq!(p, path("3356 1299 6695"));
        assert_eq!(AsPath::from_seq([]), path(""));
    }
}
