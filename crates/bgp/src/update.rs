//! BGP message model.
//!
//! A pragmatic subset of RFC 4271's session messages: the simulation
//! only needs OPEN (session identity), UPDATE (the data), KEEPALIVE and
//! NOTIFICATION (session health / teardown, used by the churn model in
//! the validation experiments). All messages serialize through
//! [`crate::wire`].

use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};

use crate::asn::Asn;
use crate::prefix::Prefix;
use crate::route::{Announcement, RouteAttrs};

/// An UPDATE: withdrawals plus announcements sharing one attribute set.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct UpdateMessage {
    /// Prefixes withdrawn from service.
    pub withdrawn: Vec<Prefix>,
    /// Attributes for the announced NLRI (absent if only withdrawing).
    pub attrs: Option<RouteAttrs>,
    /// Announced prefixes.
    pub nlri: Vec<Prefix>,
}

impl UpdateMessage {
    /// An update announcing `nlri` with `attrs`.
    pub fn announce(attrs: RouteAttrs, nlri: Vec<Prefix>) -> Self {
        UpdateMessage {
            withdrawn: Vec::new(),
            attrs: Some(attrs),
            nlri,
        }
    }

    /// An update withdrawing `prefixes`.
    pub fn withdraw(prefixes: Vec<Prefix>) -> Self {
        UpdateMessage {
            withdrawn: prefixes,
            attrs: None,
            nlri: Vec::new(),
        }
    }

    /// Explode into per-prefix [`Announcement`]s (attributes cloned).
    pub fn announcements(&self) -> Vec<Announcement> {
        match &self.attrs {
            Some(attrs) => self
                .nlri
                .iter()
                .map(|p| Announcement::new(*p, attrs.clone()))
                .collect(),
            None => Vec::new(),
        }
    }

    /// True if the update carries nothing (invalid on a real session).
    pub fn is_empty(&self) -> bool {
        self.withdrawn.is_empty() && self.nlri.is_empty()
    }
}

/// NOTIFICATION error codes we model (RFC 4271 §4.5, abbreviated).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NotificationCode {
    /// Message header error.
    MessageHeader,
    /// OPEN message error.
    OpenMessage,
    /// UPDATE message error.
    UpdateMessage,
    /// Hold timer expired.
    HoldTimerExpired,
    /// Administrative shutdown / session ceased (the common case when a
    /// member leaves the route server — the churn the validation run of
    /// Oct 2013 had to filter, §5.1).
    Cease,
}

impl NotificationCode {
    /// Wire code.
    pub const fn code(self) -> u8 {
        match self {
            NotificationCode::MessageHeader => 1,
            NotificationCode::OpenMessage => 2,
            NotificationCode::UpdateMessage => 3,
            NotificationCode::HoldTimerExpired => 4,
            NotificationCode::Cease => 6,
        }
    }

    /// Decode from wire code.
    pub const fn from_code(c: u8) -> Option<Self> {
        match c {
            1 => Some(NotificationCode::MessageHeader),
            2 => Some(NotificationCode::OpenMessage),
            3 => Some(NotificationCode::UpdateMessage),
            4 => Some(NotificationCode::HoldTimerExpired),
            6 => Some(NotificationCode::Cease),
            _ => None,
        }
    }
}

/// A BGP session message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum BgpMessage {
    /// OPEN: who is speaking. `asn` uses AS_TRANS on the wire when the
    /// real ASN needs 32 bits and the 4-octet capability is absent; the
    /// model always negotiates 4-octet ASNs, matching modern IXPs.
    Open {
        /// Speaker ASN.
        asn: Asn,
        /// Hold time in seconds.
        hold_time: u16,
        /// BGP identifier (router ID).
        router_id: Ipv4Addr,
    },
    /// UPDATE carrying routing data.
    Update(UpdateMessage),
    /// NOTIFICATION: fatal error, session closes.
    Notification {
        /// Error class.
        code: NotificationCode,
        /// Sub-code (not interpreted by the model).
        subcode: u8,
    },
    /// KEEPALIVE.
    Keepalive,
}

impl BgpMessage {
    /// RFC 4271 message type code.
    pub const fn type_code(&self) -> u8 {
        match self {
            BgpMessage::Open { .. } => 1,
            BgpMessage::Update(_) => 2,
            BgpMessage::Notification { .. } => 3,
            BgpMessage::Keepalive => 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aspath::AsPath;

    #[test]
    fn update_announce_explodes_per_prefix() {
        let attrs = RouteAttrs::new(
            AsPath::from_seq([Asn(8359)]),
            "80.81.192.33".parse().unwrap(),
        );
        let upd = UpdateMessage::announce(
            attrs,
            vec![
                "193.34.0.0/22".parse().unwrap(),
                "193.34.4.0/22".parse().unwrap(),
            ],
        );
        let anns = upd.announcements();
        assert_eq!(anns.len(), 2);
        assert_eq!(anns[0].prefix.to_string(), "193.34.0.0/22");
        assert_eq!(anns[1].prefix.to_string(), "193.34.4.0/22");
        assert!(!upd.is_empty());
    }

    #[test]
    fn update_withdraw_has_no_announcements() {
        let upd = UpdateMessage::withdraw(vec!["193.34.0.0/22".parse().unwrap()]);
        assert!(upd.announcements().is_empty());
        assert!(!upd.is_empty());
        assert!(UpdateMessage::default().is_empty());
    }

    #[test]
    fn type_codes_match_rfc() {
        assert_eq!(
            BgpMessage::Open {
                asn: Asn(6695),
                hold_time: 90,
                router_id: "10.0.0.1".parse().unwrap()
            }
            .type_code(),
            1
        );
        assert_eq!(BgpMessage::Update(UpdateMessage::default()).type_code(), 2);
        assert_eq!(
            BgpMessage::Notification {
                code: NotificationCode::Cease,
                subcode: 0
            }
            .type_code(),
            3
        );
        assert_eq!(BgpMessage::Keepalive.type_code(), 4);
    }

    #[test]
    fn notification_codes_roundtrip() {
        for c in [
            NotificationCode::MessageHeader,
            NotificationCode::OpenMessage,
            NotificationCode::UpdateMessage,
            NotificationCode::HoldTimerExpired,
            NotificationCode::Cease,
        ] {
            assert_eq!(NotificationCode::from_code(c.code()), Some(c));
        }
        assert_eq!(NotificationCode::from_code(5), None);
    }
}
