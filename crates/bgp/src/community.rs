//! BGP communities (RFC 1997).
//!
//! A community is an optional transitive 32-bit attribute, conventionally
//! written `upper:lower` with each half 16 bits. IXP route servers
//! document special values (the paper calls them *RS communities*, §3)
//! that members attach to control which other members receive their
//! routes. Because communities are transitive, they can leak all the way
//! to a Route Views / RIS collector — the observation the passive
//! inference algorithm (§4.2) is built on.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::asn::Asn;
use crate::error::BgpError;

/// A 32-bit BGP community value, viewed as `upper:lower`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct Community(pub u32);

/// RFC 1997 `NO_EXPORT`.
pub const NO_EXPORT: Community = Community(0xFFFF_FF01);
/// RFC 1997 `NO_ADVERTISE`.
pub const NO_ADVERTISE: Community = Community(0xFFFF_FF02);
/// RFC 1997 `NO_EXPORT_SUBCONFED`.
pub const NO_EXPORT_SUBCONFED: Community = Community(0xFFFF_FF03);

impl Community {
    /// Build from the two 16-bit halves.
    #[inline]
    pub const fn new(upper: u16, lower: u16) -> Self {
        Community(((upper as u32) << 16) | lower as u32)
    }

    /// Upper 16 bits (conventionally an ASN).
    #[inline]
    pub const fn upper(self) -> u16 {
        (self.0 >> 16) as u16
    }

    /// Lower 16 bits.
    #[inline]
    pub const fn lower(self) -> u16 {
        (self.0 & 0xFFFF) as u16
    }

    /// The upper half interpreted as an ASN.
    #[inline]
    pub const fn upper_asn(self) -> Asn {
        Asn(self.upper() as u32)
    }

    /// The lower half interpreted as an ASN.
    #[inline]
    pub const fn lower_asn(self) -> Asn {
        Asn(self.lower() as u32)
    }

    /// True for the RFC 1997 well-known range `0xFFFF0000..=0xFFFFFFFF`.
    #[inline]
    pub const fn is_well_known(self) -> bool {
        self.upper() == 0xFFFF
    }

    /// Raw 32-bit value.
    #[inline]
    pub const fn value(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Community {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.upper(), self.lower())
    }
}

impl FromStr for Community {
    type Err = BgpError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (u, l) = s
            .split_once(':')
            .ok_or_else(|| BgpError::InvalidCommunity(s.into()))?;
        let u: u16 = u
            .trim()
            .parse()
            .map_err(|_| BgpError::InvalidCommunity(s.into()))?;
        let l: u16 = l
            .trim()
            .parse()
            .map_err(|_| BgpError::InvalidCommunity(s.into()))?;
        Ok(Community::new(u, l))
    }
}

/// An ordered, duplicate-free set of communities attached to a route.
///
/// Kept as a sorted `Vec` because route community sets are tiny (a
/// handful of values) and are compared / iterated far more often than
/// mutated.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct CommunitySet(Vec<Community>);

impl CommunitySet {
    /// Empty set.
    pub const fn new() -> Self {
        CommunitySet(Vec::new())
    }

    /// Insert a community; returns `true` if it was newly added.
    pub fn insert(&mut self, c: Community) -> bool {
        match self.0.binary_search(&c) {
            Ok(_) => false,
            Err(pos) => {
                self.0.insert(pos, c);
                true
            }
        }
    }

    /// Remove a community; returns `true` if it was present.
    pub fn remove(&mut self, c: Community) -> bool {
        match self.0.binary_search(&c) {
            Ok(pos) => {
                self.0.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// Membership test.
    pub fn contains(&self, c: Community) -> bool {
        self.0.binary_search(&c).is_ok()
    }

    /// Number of communities.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if no communities are attached.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterate in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = Community> + '_ {
        self.0.iter().copied()
    }

    /// Borrow the underlying sorted slice.
    pub fn as_slice(&self) -> &[Community] {
        &self.0
    }

    /// Remove every community for which `keep` returns `false`.
    pub fn retain(&mut self, keep: impl FnMut(&Community) -> bool) {
        self.0.retain(keep);
    }

    /// Remove all communities (a "community-stripping" route server,
    /// §5.8 Netnod, calls this on egress).
    pub fn clear(&mut self) {
        self.0.clear();
    }
}

/// Build from any iterator, deduplicating and sorting.
impl FromIterator<Community> for CommunitySet {
    fn from_iter<I: IntoIterator<Item = Community>>(iter: I) -> Self {
        let mut v: Vec<Community> = iter.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        CommunitySet(v)
    }
}

impl<'a> IntoIterator for &'a CommunitySet {
    type Item = Community;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, Community>>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter().copied()
    }
}

impl fmt::Display for CommunitySet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

/// Parse a whitespace-separated list of `upper:lower` values, as printed
/// by looking glasses (`Community: 0:6695 6695:8359 6695:8447`).
impl FromStr for CommunitySet {
    type Err = BgpError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        s.split_whitespace()
            .map(|tok| tok.parse::<Community>())
            .collect::<Result<Vec<_>, _>>()
            .map(CommunitySet::from_iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn halves() {
        let c = Community::new(6695, 8359);
        assert_eq!(c.upper(), 6695);
        assert_eq!(c.lower(), 8359);
        assert_eq!(c.upper_asn(), Asn(6695));
        assert_eq!(c.lower_asn(), Asn(8359));
        assert_eq!(c.value(), (6695u32 << 16) | 8359);
    }

    #[test]
    fn paper_table1_values_parse() {
        // Table 1 examples.
        for (s, u, l) in [
            ("6695:6695", 6695, 6695),
            ("8631:8631", 8631, 8631),
            ("9033:9033", 9033, 9033),
            ("0:6695", 0, 6695),
            ("0:8631", 0, 8631),
            ("65000:0", 65000, 0),
            ("64960:8447", 64960, 8447),
        ] {
            let c: Community = s.parse().unwrap();
            assert_eq!((c.upper(), c.lower()), (u, l), "{s}");
            assert_eq!(c.to_string(), s);
        }
    }

    #[test]
    fn rejects_bad_input() {
        assert!("6695".parse::<Community>().is_err());
        assert!("6695:".parse::<Community>().is_err());
        assert!(":6695".parse::<Community>().is_err());
        assert!("70000:1".parse::<Community>().is_err());
        assert!("a:b".parse::<Community>().is_err());
    }

    #[test]
    fn well_known() {
        assert!(NO_EXPORT.is_well_known());
        assert!(NO_ADVERTISE.is_well_known());
        assert!(NO_EXPORT_SUBCONFED.is_well_known());
        assert!(!Community::new(6695, 6695).is_well_known());
        assert_eq!(NO_EXPORT.to_string(), "65535:65281");
    }

    #[test]
    fn set_dedup_sort_and_ops() {
        let mut set: CommunitySet = "6695:8447 0:6695 6695:8359 0:6695".parse().unwrap();
        assert_eq!(set.len(), 3);
        assert!(set.contains("0:6695".parse().unwrap()));
        assert!(!set.insert("0:6695".parse().unwrap()));
        assert!(set.insert("0:5410".parse().unwrap()));
        assert_eq!(set.len(), 4);
        assert!(set.remove("0:5410".parse().unwrap()));
        assert!(!set.remove("0:5410".parse().unwrap()));
        // Sorted ascending by raw value: 0:6695 < 6695:8359 < 6695:8447.
        let v: Vec<String> = set.iter().map(|c| c.to_string()).collect();
        assert_eq!(v, vec!["0:6695", "6695:8359", "6695:8447"]);
        assert_eq!(set.to_string(), "0:6695 6695:8359 6695:8447");
    }

    #[test]
    fn set_clear_models_stripping() {
        let mut set: CommunitySet = "0:6695 6695:8359".parse().unwrap();
        set.clear();
        assert!(set.is_empty());
        assert_eq!(set.to_string(), "");
    }

    #[test]
    fn set_parse_empty() {
        let set: CommunitySet = "".parse().unwrap();
        assert!(set.is_empty());
    }
}
