//! # `mlpeer-bgp` — BGP substrate
//!
//! Foundation types and codecs for the `mlpeer` multilateral-peering
//! inference toolkit (a reproduction of *Inferring Multilateral Peering*,
//! Giotsas et al., CoNEXT 2013).
//!
//! This crate models the parts of BGP that the paper's data pipeline
//! touches:
//!
//! * [`Asn`] — 32-bit autonomous system numbers, including the reserved
//!   and private ranges the paper filters out of AS paths (§5: AS 23456
//!   and 63488–131071).
//! * [`Prefix`] — IPv4 CIDR prefixes announced by IXP members.
//! * [`Community`] — the 32-bit BGP community attribute (RFC 1997) whose
//!   IXP-documented values encode route-server export filters (§3).
//! * [`AsPath`] — AS path segments with loop detection and adjacency
//!   extraction (the primary public source of AS links, §2.2).
//! * [`RouteAttrs`] / [`Announcement`] — a route as carried in an UPDATE.
//! * [`rib`] — Adj-RIB-In / Loc-RIB with deterministic best-path
//!   selection, used by the route-server and looking-glass substrates.
//! * [`wire`] — a compact BGP-4-style binary codec (length-delimited
//!   framing over [`bytes`]) used wherever the simulation serializes
//!   routing data.
//! * [`mrt`] — an MRT-inspired archive format for collector RIB dumps
//!   and update streams, mirroring what Route Views / RIPE RIS publish.
//! * [`view`] — the zero-copy counterpart: [`view::MrtBytes`] validates
//!   a wire-encoded archive once and serves borrowed [`view::RouteView`]s
//!   off the byte arena, so batch harvests decode without per-route
//!   allocation.
//! * [`stream`] — time-stepped BGP message streams ([`stream::TimedMessage`],
//!   [`stream::UpdateStream`]) carrying the OPEN/UPDATE/NOTIFICATION
//!   traffic live mode folds incrementally (member churn, §5.1).
//!
//! The crate is deliberately synchronous and allocation-conscious: the
//! workload is CPU-bound analysis of in-memory routing tables, which the
//! async guides themselves direct toward plain threads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asn;
pub mod aspath;
pub mod community;
pub mod error;
pub mod mrt;
pub mod prefix;
pub mod rib;
pub mod route;
pub mod stream;
pub mod update;
pub mod view;
pub mod wire;

pub use asn::Asn;
pub use aspath::AsPath;
pub use community::{Community, CommunitySet};
pub use error::BgpError;
pub use prefix::Prefix;
pub use rib::{Rib, RibEntry};
pub use route::{Announcement, Origin, RouteAttrs};
pub use update::{BgpMessage, UpdateMessage};
pub use view::{LossyReport, MrtBytes, RibCursor, RouteView, UpdateCursor};

// `Bytes` appears in public signatures (`MrtBytes::new`,
// `MrtBytes::validate_lossy`); re-export it so consumers need no
// direct `bytes` dependency.
pub use bytes::Bytes;
