//! Error types for the BGP substrate.
//!
//! Errors are hand-rolled enums (no `thiserror`) to keep the dependency
//! budget at the workspace's allowed set (see `vendor/README.md`).

use std::fmt;

/// Any error produced by the `mlpeer-bgp` crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BgpError {
    /// A textual ASN could not be parsed.
    InvalidAsn(String),
    /// A textual prefix could not be parsed.
    InvalidPrefix(String),
    /// A prefix length was out of range for the address family.
    PrefixLenOutOfRange(u8),
    /// A textual community could not be parsed.
    InvalidCommunity(String),
    /// A wire-format message was truncated.
    Truncated {
        /// What was being decoded when the input ran out.
        context: &'static str,
        /// Bytes needed beyond what was available.
        needed: usize,
    },
    /// A wire-format message carried an unknown type code.
    UnknownMessageType(u8),
    /// A wire-format path attribute was malformed.
    MalformedAttribute(&'static str),
    /// An MRT record carried an unknown type code.
    UnknownMrtType(u16),
    /// An MRT record referenced a peer index not present in the
    /// peer-index table.
    UnknownPeerIndex(u16),
    /// The marker field of a BGP message header was not all-ones.
    BadMarker,
    /// A length field was inconsistent with the data that followed.
    LengthMismatch {
        /// Declared length.
        declared: usize,
        /// Actual length.
        actual: usize,
    },
}

impl fmt::Display for BgpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BgpError::InvalidAsn(s) => write!(f, "invalid ASN: {s:?}"),
            BgpError::InvalidPrefix(s) => write!(f, "invalid prefix: {s:?}"),
            BgpError::PrefixLenOutOfRange(l) => {
                write!(f, "prefix length {l} out of range (0..=32)")
            }
            BgpError::InvalidCommunity(s) => write!(f, "invalid community: {s:?}"),
            BgpError::Truncated { context, needed } => {
                write!(
                    f,
                    "truncated input decoding {context}: {needed} more bytes needed"
                )
            }
            BgpError::UnknownMessageType(t) => write!(f, "unknown BGP message type {t}"),
            BgpError::MalformedAttribute(what) => write!(f, "malformed path attribute: {what}"),
            BgpError::UnknownMrtType(t) => write!(f, "unknown MRT record type {t}"),
            BgpError::UnknownPeerIndex(i) => write!(f, "MRT peer index {i} not in index table"),
            BgpError::BadMarker => write!(f, "BGP header marker is not all-ones"),
            BgpError::LengthMismatch { declared, actual } => {
                write!(f, "length mismatch: declared {declared}, actual {actual}")
            }
        }
    }
}

impl std::error::Error for BgpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = BgpError::Truncated {
            context: "NLRI",
            needed: 3,
        };
        let s = e.to_string();
        assert!(s.contains("NLRI") && s.contains('3'), "got: {s}");
        assert!(BgpError::InvalidAsn("x".into()).to_string().contains('x'));
        assert!(BgpError::LengthMismatch {
            declared: 10,
            actual: 7
        }
        .to_string()
        .contains("10"));
    }

    #[test]
    fn error_trait_object_safe() {
        let e: Box<dyn std::error::Error> = Box::new(BgpError::BadMarker);
        assert_eq!(e.to_string(), "BGP header marker is not all-ones");
    }
}
