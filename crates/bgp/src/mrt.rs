//! MRT-style archives.
//!
//! Route Views and RIPE RIS publish RIB snapshots and update streams in
//! the MRT format (RFC 6396). The collector substrate reproduces that
//! interface: a *peer index table* naming the vantage points, followed
//! by per-prefix RIB entries referencing peers by index, plus update
//! records. The encoding reuses the path-attribute layout from
//! [`crate::wire`] by embedding whole UPDATE frames, which keeps the two
//! codecs consistent and exercises the frame decoder on every archive
//! read.

use std::net::Ipv4Addr;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

use crate::asn::Asn;
use crate::error::BgpError;
use crate::prefix::Prefix;
use crate::route::RouteAttrs;
use crate::update::{BgpMessage, UpdateMessage};
use crate::wire;

/// A vantage-point peer of the collector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MrtPeer {
    /// Peer ASN.
    pub asn: Asn,
    /// Peer address.
    pub addr: Ipv4Addr,
}

/// One RIB entry: a route to `prefix` as learned from peer `peer_index`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MrtRibEntry {
    /// Index into the archive's peer table.
    pub peer_index: u16,
    /// Snapshot timestamp (seconds; simulation time).
    pub originated: u32,
    /// The prefix.
    pub prefix: Prefix,
    /// Path attributes as seen at the collector.
    pub attrs: RouteAttrs,
}

/// One archived update: `peer_index` sent `update` at `timestamp`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MrtUpdate {
    /// Index into the archive's peer table.
    pub peer_index: u16,
    /// Receive timestamp (seconds; simulation time).
    pub timestamp: u32,
    /// The update message.
    pub update: UpdateMessage,
}

/// An MRT-style archive: peers, a RIB snapshot, and an update stream.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MrtArchive {
    /// Vantage points feeding this collector.
    pub peers: Vec<MrtPeer>,
    /// RIB snapshot entries.
    pub rib: Vec<MrtRibEntry>,
    /// Update stream, in timestamp order.
    pub updates: Vec<MrtUpdate>,
}

pub(crate) const REC_PEER_TABLE: u16 = 1;
pub(crate) const REC_RIB_ENTRY: u16 = 2;
pub(crate) const REC_UPDATE: u16 = 3;

impl MrtArchive {
    /// New empty archive.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a peer, returning its index. Re-registers are deduped.
    pub fn add_peer(&mut self, asn: Asn, addr: Ipv4Addr) -> u16 {
        let peer = MrtPeer { asn, addr };
        if let Some(i) = self.peers.iter().position(|p| *p == peer) {
            return i as u16;
        }
        self.peers.push(peer);
        (self.peers.len() - 1) as u16
    }

    /// Look up a peer by index.
    pub fn peer(&self, index: u16) -> Result<&MrtPeer, BgpError> {
        self.peers
            .get(index as usize)
            .ok_or(BgpError::UnknownPeerIndex(index))
    }

    /// Serialize the whole archive.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        // Peer index table record.
        let mut body = BytesMut::new();
        body.put_u16(self.peers.len() as u16);
        for p in &self.peers {
            body.put_u32(p.asn.value());
            body.put_u32(u32::from(p.addr));
        }
        put_record(&mut buf, REC_PEER_TABLE, &body);

        for e in &self.rib {
            let mut body = BytesMut::new();
            body.put_u16(e.peer_index);
            body.put_u32(e.originated);
            // Reuse the wire codec: embed a single-NLRI UPDATE frame.
            let upd = UpdateMessage::announce(e.attrs.clone(), vec![e.prefix]);
            let frame = wire::encode_to_bytes(&BgpMessage::Update(upd));
            body.put_u32(frame.len() as u32);
            body.put_slice(&frame);
            put_record(&mut buf, REC_RIB_ENTRY, &body);
        }

        for u in &self.updates {
            let mut body = BytesMut::new();
            body.put_u16(u.peer_index);
            body.put_u32(u.timestamp);
            let frame = wire::encode_to_bytes(&BgpMessage::Update(u.update.clone()));
            body.put_u32(frame.len() as u32);
            body.put_slice(&frame);
            put_record(&mut buf, REC_UPDATE, &body);
        }
        buf.freeze()
    }

    /// Deserialize an archive.
    pub fn decode(mut data: Bytes) -> Result<Self, BgpError> {
        let mut archive = MrtArchive::new();
        while data.has_remaining() {
            if data.remaining() < 6 {
                return Err(BgpError::Truncated {
                    context: "MRT record header",
                    needed: 6,
                });
            }
            let rtype = data.get_u16();
            let rlen = data.get_u32() as usize;
            if data.remaining() < rlen {
                return Err(BgpError::Truncated {
                    context: "MRT record body",
                    needed: rlen - data.remaining(),
                });
            }
            let mut body = data.slice(..rlen);
            data.advance(rlen);
            match rtype {
                REC_PEER_TABLE => {
                    if body.remaining() < 2 {
                        return Err(BgpError::Truncated {
                            context: "peer table",
                            needed: 2,
                        });
                    }
                    let n = body.get_u16() as usize;
                    if body.remaining() < n * 8 {
                        return Err(BgpError::Truncated {
                            context: "peer table entries",
                            needed: n * 8 - body.remaining(),
                        });
                    }
                    for _ in 0..n {
                        let asn = Asn(body.get_u32());
                        let addr = Ipv4Addr::from(body.get_u32());
                        archive.peers.push(MrtPeer { asn, addr });
                    }
                }
                REC_RIB_ENTRY => {
                    let (peer_index, ts, update) = decode_framed_update(&mut body)?;
                    if peer_index as usize >= archive.peers.len() {
                        return Err(BgpError::UnknownPeerIndex(peer_index));
                    }
                    let attrs = update
                        .attrs
                        .ok_or(BgpError::MalformedAttribute("RIB entry without attributes"))?;
                    let prefix = *update
                        .nlri
                        .first()
                        .ok_or(BgpError::MalformedAttribute("RIB entry without NLRI"))?;
                    archive.rib.push(MrtRibEntry {
                        peer_index,
                        originated: ts,
                        prefix,
                        attrs,
                    });
                }
                REC_UPDATE => {
                    let (peer_index, ts, update) = decode_framed_update(&mut body)?;
                    if peer_index as usize >= archive.peers.len() {
                        return Err(BgpError::UnknownPeerIndex(peer_index));
                    }
                    archive.updates.push(MrtUpdate {
                        peer_index,
                        timestamp: ts,
                        update,
                    });
                }
                other => return Err(BgpError::UnknownMrtType(other)),
            }
        }
        Ok(archive)
    }

    /// Total number of records (for progress reporting).
    pub fn record_count(&self) -> usize {
        1 + self.rib.len() + self.updates.len()
    }
}

fn put_record(buf: &mut BytesMut, rtype: u16, body: &[u8]) {
    buf.put_u16(rtype);
    buf.put_u32(body.len() as u32);
    buf.put_slice(body);
}

fn decode_framed_update(body: &mut Bytes) -> Result<(u16, u32, UpdateMessage), BgpError> {
    if body.remaining() < 10 {
        return Err(BgpError::Truncated {
            context: "MRT framed update",
            needed: 10,
        });
    }
    let peer_index = body.get_u16();
    let ts = body.get_u32();
    let flen = body.get_u32() as usize;
    if body.remaining() < flen {
        return Err(BgpError::Truncated {
            context: "embedded frame",
            needed: flen - body.remaining(),
        });
    }
    let frame = body.slice(..flen);
    body.advance(flen);
    match wire::decode_frame(frame)? {
        BgpMessage::Update(u) => Ok((peer_index, ts, u)),
        _ => Err(BgpError::MalformedAttribute(
            "embedded frame is not an UPDATE",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aspath::AsPath;

    fn attrs(path: &str) -> RouteAttrs {
        RouteAttrs::new(
            path.parse::<AsPath>().unwrap(),
            "80.81.192.1".parse().unwrap(),
        )
        .with_communities("0:6695 6695:8447".parse().unwrap())
    }

    fn sample_archive() -> MrtArchive {
        let mut a = MrtArchive::new();
        let p0 = a.add_peer(Asn(11666), "203.0.113.1".parse().unwrap());
        let p1 = a.add_peer(Asn(3356), "203.0.113.2".parse().unwrap());
        a.rib.push(MrtRibEntry {
            peer_index: p0,
            originated: 1_000,
            prefix: "193.34.0.0/22".parse().unwrap(),
            attrs: attrs("11666 8714 8359"),
        });
        a.rib.push(MrtRibEntry {
            peer_index: p1,
            originated: 1_005,
            prefix: "193.34.0.0/22".parse().unwrap(),
            attrs: attrs("3356 8359"),
        });
        a.updates.push(MrtUpdate {
            peer_index: p1,
            timestamp: 2_000,
            update: UpdateMessage::withdraw(vec!["193.34.0.0/22".parse().unwrap()]),
        });
        a
    }

    #[test]
    fn add_peer_dedupes() {
        let mut a = MrtArchive::new();
        let i0 = a.add_peer(Asn(1), "10.0.0.1".parse().unwrap());
        let i1 = a.add_peer(Asn(2), "10.0.0.2".parse().unwrap());
        let i2 = a.add_peer(Asn(1), "10.0.0.1".parse().unwrap());
        assert_eq!((i0, i1, i2), (0, 1, 0));
        assert_eq!(a.peers.len(), 2);
        assert!(a.peer(0).is_ok());
        assert_eq!(a.peer(9), Err(BgpError::UnknownPeerIndex(9)));
    }

    #[test]
    fn archive_roundtrip() {
        let a = sample_archive();
        let encoded = a.encode();
        let b = MrtArchive::decode(encoded).unwrap();
        assert_eq!(a, b);
        assert_eq!(b.record_count(), 4);
    }

    #[test]
    fn communities_survive_archival() {
        let a = sample_archive();
        let b = MrtArchive::decode(a.encode()).unwrap();
        assert_eq!(b.rib[0].attrs.communities.to_string(), "0:6695 6695:8447");
    }

    #[test]
    fn decode_rejects_dangling_peer_index() {
        let mut a = sample_archive();
        a.rib[0].peer_index = 77;
        let err = MrtArchive::decode(a.encode()).unwrap_err();
        assert_eq!(err, BgpError::UnknownPeerIndex(77));
    }

    #[test]
    fn decode_rejects_truncation() {
        let a = sample_archive();
        let encoded = a.encode();
        for cut in [1usize, 5, 9, encoded.len() - 1] {
            let sliced = encoded.slice(..cut.min(encoded.len() - 1));
            assert!(MrtArchive::decode(sliced).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn empty_archive_roundtrip() {
        let a = MrtArchive::new();
        let b = MrtArchive::decode(a.encode()).unwrap();
        assert_eq!(a, b);
    }
}
