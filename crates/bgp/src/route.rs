//! Routes and their attributes.
//!
//! An [`Announcement`] is one NLRI (prefix) with its path attributes —
//! the unit that flows from IXP members into route servers, out to
//! other members, onward to collectors, and into the inference pipeline.

use std::fmt;
use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};

use crate::aspath::AsPath;
use crate::community::CommunitySet;
use crate::prefix::Prefix;

/// The ORIGIN attribute (RFC 4271).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum Origin {
    /// Learned from an IGP (`i`). Preferred in best-path selection.
    #[default]
    Igp,
    /// Learned from EGP (`e`). Historic.
    Egp,
    /// Incomplete (`?`), e.g. redistributed.
    Incomplete,
}

impl Origin {
    /// Wire code (RFC 4271 §4.3).
    pub const fn code(self) -> u8 {
        match self {
            Origin::Igp => 0,
            Origin::Egp => 1,
            Origin::Incomplete => 2,
        }
    }

    /// Decode from the wire code.
    pub const fn from_code(c: u8) -> Option<Self> {
        match c {
            0 => Some(Origin::Igp),
            1 => Some(Origin::Egp),
            2 => Some(Origin::Incomplete),
            _ => None,
        }
    }

    /// The single-letter form looking glasses print.
    pub const fn letter(self) -> char {
        match self {
            Origin::Igp => 'i',
            Origin::Egp => 'e',
            Origin::Incomplete => '?',
        }
    }
}

impl fmt::Display for Origin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.letter())
    }
}

/// Path attributes shared by every NLRI in one UPDATE.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RouteAttrs {
    /// AS path, leftmost = nearest hop.
    pub as_path: AsPath,
    /// BGP next hop on the shared medium (for IXP routes, the member's
    /// address on the peering LAN — route servers are transparent and do
    /// not rewrite it).
    pub next_hop: Ipv4Addr,
    /// Attached communities (optional transitive).
    pub communities: CommunitySet,
    /// LOCAL_PREF; only meaningful within one AS, used by looking-glass
    /// best-path selection (§5.1: some ASes prefer bilateral peers over
    /// route-server peers via local-pref).
    pub local_pref: u32,
    /// Multi-exit discriminator.
    pub med: u32,
    /// ORIGIN attribute.
    pub origin: Origin,
}

impl RouteAttrs {
    /// Attributes with the given path and next hop; local-pref 100
    /// (the conventional default), MED 0, origin IGP, no communities.
    pub fn new(as_path: AsPath, next_hop: Ipv4Addr) -> Self {
        RouteAttrs {
            as_path,
            next_hop,
            communities: CommunitySet::new(),
            local_pref: 100,
            med: 0,
            origin: Origin::Igp,
        }
    }

    /// Builder-style: replace the community set.
    pub fn with_communities(mut self, communities: CommunitySet) -> Self {
        self.communities = communities;
        self
    }

    /// Builder-style: set local preference.
    pub fn with_local_pref(mut self, lp: u32) -> Self {
        self.local_pref = lp;
        self
    }
}

impl Default for RouteAttrs {
    fn default() -> Self {
        RouteAttrs::new(AsPath::empty(), Ipv4Addr::UNSPECIFIED)
    }
}

/// One announced prefix with its attributes.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Announcement {
    /// The announced prefix (NLRI).
    pub prefix: Prefix,
    /// Its path attributes.
    pub attrs: RouteAttrs,
}

impl Announcement {
    /// Pair a prefix with attributes.
    pub fn new(prefix: Prefix, attrs: RouteAttrs) -> Self {
        Announcement { prefix, attrs }
    }

    /// The origin AS of the announcement, if determinable.
    pub fn origin_as(&self) -> Option<crate::asn::Asn> {
        self.attrs.as_path.origin()
    }
}

impl fmt::Display for Announcement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} via {} path [{}] comm [{}] lp {} {}",
            self.prefix,
            self.attrs.next_hop,
            self.attrs.as_path,
            self.attrs.communities,
            self.attrs.local_pref,
            self.attrs.origin,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asn::Asn;

    #[test]
    fn origin_codes_roundtrip() {
        for o in [Origin::Igp, Origin::Egp, Origin::Incomplete] {
            assert_eq!(Origin::from_code(o.code()), Some(o));
        }
        assert_eq!(Origin::from_code(3), None);
        assert_eq!(Origin::Igp.letter(), 'i');
        assert_eq!(Origin::Incomplete.to_string(), "?");
    }

    #[test]
    fn defaults() {
        let a = RouteAttrs::default();
        assert_eq!(a.local_pref, 100);
        assert_eq!(a.med, 0);
        assert_eq!(a.origin, Origin::Igp);
        assert!(a.communities.is_empty());
    }

    #[test]
    fn builder() {
        let attrs = RouteAttrs::new(
            AsPath::from_seq([Asn(6695)]),
            "80.81.192.1".parse().unwrap(),
        )
        .with_local_pref(200)
        .with_communities("0:6695 6695:8359".parse().unwrap());
        assert_eq!(attrs.local_pref, 200);
        assert_eq!(attrs.communities.len(), 2);
    }

    #[test]
    fn announcement_display_and_origin() {
        let ann = Announcement::new(
            "193.34.0.0/22".parse().unwrap(),
            RouteAttrs::new(
                AsPath::from_seq([Asn(8359), Asn(3216)]),
                "80.81.192.33".parse().unwrap(),
            ),
        );
        assert_eq!(ann.origin_as(), Some(Asn(3216)));
        let s = ann.to_string();
        assert!(
            s.contains("193.34.0.0/22") && s.contains("8359 3216"),
            "got {s}"
        );
    }
}
