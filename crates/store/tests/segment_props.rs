//! Property-based tests for the segment format: arbitrary snapshots and
//! record sequences round-trip, arbitrary corruption is rejected by the
//! checksum, and an arbitrary torn tail truncates to exactly the valid
//! prefix.
//!
//! Originally written with `proptest`; the offline build has no
//! registry, so the same properties run as seeded randomized-input
//! loops over the vendored `rand` — every case is deterministic and a
//! failure prints the iteration seed for replay.

use std::collections::{BTreeMap, BTreeSet};
use std::fs::OpenOptions;
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mlpeer::infer::MlpLinkSet;
use mlpeer::live::LinkDelta;
use mlpeer::passive::PassiveStats;
use mlpeer::validate::cross::{CorpusStats, Reason, ValidationReport, VerdictCounts};
use mlpeer_bgp::{Asn, Prefix};
use mlpeer_ixp::ixp::IxpId;
use mlpeer_ixp::policy::ExportPolicy;
use mlpeer_store::{EpochLog, PersistedSnapshot, StoreConfig};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("mlpeer-segprops-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn arb_asn(rng: &mut StdRng) -> Asn {
    Asn(rng.gen_range(1u32..100_000))
}

fn arb_prefix(rng: &mut StdRng) -> Prefix {
    let addr: u32 = rng.gen();
    let len = rng.gen_range(0..=32u8);
    Prefix::from_u32(addr, len).unwrap()
}

fn arb_asn_set(rng: &mut StdRng, max: usize) -> BTreeSet<Asn> {
    (0..rng.gen_range(0..=max)).map(|_| arb_asn(rng)).collect()
}

fn arb_policy(rng: &mut StdRng) -> ExportPolicy {
    match rng.gen_range(0..4u8) {
        0 => ExportPolicy::AllMembers,
        1 => ExportPolicy::AllExcept(arb_asn_set(rng, 4)),
        2 => ExportPolicy::OnlyTo(arb_asn_set(rng, 4)),
        _ => ExportPolicy::Nobody,
    }
}

fn arb_verdicts(rng: &mut StdRng) -> VerdictCounts {
    VerdictCounts {
        confirmed: rng.gen_range(0..1000u64),
        unknown: rng.gen_range(0..1000u64),
        contradicted: rng.gen_range(0..1000u64),
    }
}

fn arb_validation(rng: &mut StdRng) -> ValidationReport {
    ValidationReport {
        corpus: CorpusStats {
            objects: rng.gen_range(0..10_000u64),
            roas: rng.gen_range(0..10_000u64),
            quarantined: rng.gen_range(0..100u64),
            complete: rng.gen(),
        },
        totals: arb_verdicts(rng),
        per_ixp: (0..rng.gen_range(0..4u16))
            .map(|i| (IxpId(i), arb_verdicts(rng)))
            .collect(),
        reasons: {
            let mut reasons = BTreeMap::new();
            for r in Reason::ALL {
                if rng.gen_bool(0.5) {
                    reasons.insert(r, rng.gen_range(1..500u64));
                }
            }
            reasons
        },
    }
}

fn arb_snapshot(rng: &mut StdRng) -> PersistedSnapshot {
    let n_ixps = rng.gen_range(0..4u16);
    let mut links = MlpLinkSet::default();
    let mut names = BTreeMap::new();
    for i in 0..n_ixps {
        let ixp = IxpId(i);
        names.insert(ixp, format!("IXP-{i}"));
        let pairs: BTreeSet<(Asn, Asn)> = (0..rng.gen_range(0..6usize))
            .map(|_| {
                let a = arb_asn(rng);
                let b = arb_asn(rng);
                (a.min(b), a.max(b))
            })
            .collect();
        links.per_ixp.insert(ixp, pairs);
        links.covered.insert(ixp, arb_asn_set(rng, 5));
        for _ in 0..rng.gen_range(0..3usize) {
            links.policies.insert((ixp, arb_asn(rng)), arb_policy(rng));
        }
    }
    let announcements: BTreeSet<(Prefix, IxpId, Asn)> = (0..rng.gen_range(0..12usize))
        .map(|_| {
            (
                arb_prefix(rng),
                IxpId(rng.gen_range(0..n_ixps.max(1))),
                arb_asn(rng),
            )
        })
        .collect();
    PersistedSnapshot {
        scale: ["tiny", "small", "medium"][rng.gen_range(0..3usize)].to_string(),
        seed: rng.gen(),
        etag: format!("{:016x}", rng.gen::<u64>()),
        names,
        links,
        announcements: announcements.into_iter().collect(),
        observation_count: rng.gen_range(0..1_000_000u64),
        passive_stats: PassiveStats {
            routes_seen: rng.gen_range(0..1_000_000usize),
            dropped_bogon: rng.gen_range(0..1000usize),
            dropped_cycle: rng.gen_range(0..1000usize),
            dropped_transient: rng.gen_range(0..1000usize),
            unidentified: rng.gen_range(0..1000usize),
            setter_unknown: rng.gen_range(0..1000usize),
            observations: rng.gen_range(0..1_000_000usize),
            quarantined: rng.gen_range(0..1000usize),
        },
        validation: arb_validation(rng),
    }
}

fn arb_delta(rng: &mut StdRng) -> LinkDelta {
    let triple = |rng: &mut StdRng| {
        let a = arb_asn(rng);
        let b = arb_asn(rng);
        (IxpId(rng.gen_range(0..4u16)), a.min(b), a.max(b))
    };
    LinkDelta {
        added: (0..rng.gen_range(0..5usize)).map(|_| triple(rng)).collect(),
        removed: (0..rng.gen_range(0..5usize)).map(|_| triple(rng)).collect(),
    }
}

/// Append an arbitrary epoch sequence (random gaps, random
/// with/without-delta mix) under an arbitrary small segment threshold,
/// reopen, and require every record back byte-identical.
#[test]
fn arbitrary_sequences_round_trip_across_reopen() {
    for case in 0..24u64 {
        let mut rng = StdRng::seed_from_u64(0x5e9_0001 ^ (case << 8));
        let dir = temp_dir("seq");
        let cfg = StoreConfig {
            segment_bytes: rng.gen_range(256..4096u64),
            ..StoreConfig::default()
        };
        let mut expected: Vec<(u64, PersistedSnapshot, Option<LinkDelta>)> = Vec::new();
        {
            let mut log = EpochLog::open(&dir, cfg.clone()).unwrap();
            let mut epoch = 0u64;
            for _ in 0..rng.gen_range(1..24usize) {
                let snap = arb_snapshot(&mut rng);
                let delta = rng.gen_bool(0.7).then(|| arb_delta(&mut rng));
                log.append_full(epoch, &snap, delta.as_ref()).unwrap();
                expected.push((epoch, snap, delta));
                epoch += rng.gen_range(1..3u64); // occasional epoch gaps
            }
        }
        let mut log = EpochLog::open(&dir, cfg).unwrap();
        assert_eq!(
            log.stats().records,
            expected.len(),
            "case {case}: all records survive reopen"
        );
        assert_eq!(log.stats().truncated_tail_bytes, 0, "case {case}");
        for (epoch, snap, delta) in &expected {
            let (got_snap, got_delta) = log
                .snapshot_at(*epoch)
                .unwrap_or_else(|| panic!("case {case}: epoch {epoch} missing"));
            assert_eq!(&got_snap, snap, "case {case} epoch {epoch}");
            assert_eq!(&got_delta, delta, "case {case} epoch {epoch} delta");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// Flip one arbitrary byte anywhere in an arbitrary segment file: the
/// log must still open, and every record it reports must decode to the
/// original data (corruption never produces wrong data, only a shorter
/// history).
#[test]
fn arbitrary_single_byte_corruption_never_yields_wrong_data() {
    for case in 0..24u64 {
        let mut rng = StdRng::seed_from_u64(0x5e9_0002 ^ (case << 8));
        let dir = temp_dir("corrupt");
        let cfg = StoreConfig {
            segment_bytes: rng.gen_range(256..2048u64),
            ..StoreConfig::default()
        };
        let n = rng.gen_range(2..12u64);
        let mut originals: BTreeMap<u64, PersistedSnapshot> = BTreeMap::new();
        {
            let mut log = EpochLog::open(&dir, cfg.clone()).unwrap();
            for e in 0..n {
                let snap = arb_snapshot(&mut rng);
                log.append_full(e, &snap, Some(&arb_delta(&mut rng)))
                    .unwrap();
                originals.insert(e, snap);
            }
        }
        // Pick an arbitrary segment file and flip an arbitrary byte.
        let mut segs: Vec<PathBuf> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        segs.sort();
        let victim = &segs[rng.gen_range(0..segs.len())];
        let mut bytes = std::fs::read(victim).unwrap();
        let hit = rng.gen_range(0..bytes.len());
        bytes[hit] ^= 1 << rng.gen_range(0..8u32);
        std::fs::write(victim, &bytes).unwrap();

        let mut log = EpochLog::open(&dir, cfg).unwrap();
        let stats = log.stats();
        assert!(
            stats.records < n as usize,
            "case {case}: a flipped bit must cut at least the hit record \
             (hit byte {hit} of {victim:?})"
        );
        for e in 0..n {
            if let Some((got, _)) = log.snapshot_at(e) {
                assert_eq!(
                    &got, &originals[&e],
                    "case {case}: surviving epoch {e} must be unaltered"
                );
            }
        }
        // Whatever survived is a clean prefix: appending continues.
        let next = stats.latest_epoch.map_or(0, |e| e + 1);
        log.append_full(next, &arb_snapshot(&mut rng), None)
            .unwrap();
        assert_eq!(log.latest_epoch(), Some(next));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// Cut the final segment at an arbitrary byte length (simulating a
/// crash mid-append): recovery keeps exactly the records whose frames
/// fit in the cut, and the next open appends cleanly after them.
#[test]
fn arbitrary_torn_tail_truncates_to_a_valid_prefix() {
    for case in 0..24u64 {
        let mut rng = StdRng::seed_from_u64(0x5e9_0003 ^ (case << 8));
        let dir = temp_dir("torn");
        let cfg = StoreConfig {
            segment_bytes: u64::MAX, // single segment: the tear hits it
            ..StoreConfig::default()
        };
        let n = rng.gen_range(1..10u64);
        let mut boundaries: Vec<(u64, u64)> = Vec::new(); // (bytes after epoch e, e)
        let seg_path;
        {
            let mut log = EpochLog::open(&dir, cfg.clone()).unwrap();
            seg_path = log.dir().join("seg-00000000000000000000.log");
            for e in 0..n {
                log.append_full(e, &arb_snapshot(&mut rng), Some(&arb_delta(&mut rng)))
                    .unwrap();
                boundaries.push((std::fs::metadata(&seg_path).unwrap().len(), e));
            }
        }
        let full_len = boundaries.last().unwrap().0;
        let cut = rng.gen_range(0..full_len);
        {
            let f = OpenOptions::new().write(true).open(&seg_path).unwrap();
            f.set_len(cut).unwrap();
        }
        // Optionally smear garbage after the cut, like a partial write.
        if rng.gen_bool(0.5) {
            let mut f = OpenOptions::new().append(true).open(&seg_path).unwrap();
            let garbage: Vec<u8> = (0..rng.gen_range(1..64usize))
                .map(|_| rng.gen::<u32>() as u8)
                .collect();
            f.write_all(&garbage).unwrap();
        }

        let expected_latest: Option<u64> = boundaries
            .iter()
            .filter(|(len, _)| *len <= cut)
            .map(|(_, e)| *e)
            .next_back();
        let mut log = EpochLog::open(&dir, cfg.clone()).unwrap();
        assert_eq!(
            log.latest_epoch(),
            expected_latest,
            "case {case}: cut at {cut} of {full_len}"
        );
        if let Some(latest) = expected_latest {
            assert!(log.snapshot_at(latest).is_some(), "case {case}");
            // The file is truncated back to exactly that boundary.
            let kept = boundaries.iter().find(|(_, e)| *e == latest).unwrap().0;
            assert_eq!(std::fs::metadata(&seg_path).unwrap().len(), kept);
        }
        let next = expected_latest.map_or(0, |e| e + 1);
        log.append_full(next, &arb_snapshot(&mut rng), None)
            .unwrap();
        let mut re = EpochLog::open(&dir, cfg).unwrap();
        assert_eq!(re.latest_epoch(), Some(next));
        assert!(
            re.snapshot_at(next).is_some(),
            "case {case}: post-tear append"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// Compaction on arbitrary histories preserves the full `?since=`
/// answer: fold_since(0, latest) before == after, byte for byte.
#[test]
fn compaction_preserves_fold_since_on_arbitrary_histories() {
    for case in 0..12u64 {
        let mut rng = StdRng::seed_from_u64(0x5e9_0004 ^ (case << 8));
        let dir = temp_dir("compactprop");
        let cfg = StoreConfig {
            segment_bytes: rng.gen_range(400..1600u64),
            compact_keep_every: rng.gen_range(2..6u64),
        };
        let n = rng.gen_range(6..20u64);
        let mut log = EpochLog::open(&dir, cfg).unwrap();
        log.append_full(0, &arb_snapshot(&mut rng), None).unwrap();
        for e in 1..n {
            log.append_full(e, &arb_snapshot(&mut rng), Some(&arb_delta(&mut rng)))
                .unwrap();
        }
        let latest = log.latest_epoch().unwrap();
        let before: Vec<_> = (0..latest).map(|s| log.fold_since(s, latest)).collect();
        let kept_fulls = log.full_epochs();
        log.compact().unwrap();
        let after: Vec<_> = (0..latest).map(|s| log.fold_since(s, latest)).collect();
        assert_eq!(before, after, "case {case}: compaction changed history");
        // Fulls that compaction kept still decode.
        for e in log.full_epochs() {
            assert!(log.snapshot_at(e).is_some(), "case {case} epoch {e}");
        }
        assert!(
            log.full_epochs().len() <= kept_fulls.len(),
            "case {case}: compaction never adds fulls"
        );
        assert!(
            log.full_epochs().contains(&latest),
            "case {case}: the latest full survives"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
