//! # mlpeer-store — the durable epoch store
//!
//! Log-structured persistence for published serving snapshots: every
//! epoch the serving layer publishes is appended — as a checksummed,
//! length-prefixed record holding the snapshot's deterministic parts
//! plus the [`mlpeer::live::LinkDelta`] that produced it — to a
//! segmented, append-only on-disk log. On boot the log is replayed to
//! recover the full epoch history (truncating a torn tail to the last
//! valid record), which is what makes `--data-dir` restarts
//! byte-identical and `?at=<epoch>` time travel possible upstream in
//! `mlpeer-serve`.
//!
//! Layering:
//!
//! * [`codec`] — the hand-rolled little-endian binary encoding of
//!   [`codec::PersistedSnapshot`] and deltas (the vendored
//!   `serde_json` stand-in cannot parse JSON back, so JSON is not an
//!   option for durable state).
//! * [`log`] — record framing, segment files, [`log::EpochLog`]
//!   (append / recover / read / fold / compact).
//!
//! The crate is I/O + encoding only: it knows nothing about HTTP,
//! ETags, or body caches. `mlpeer-serve` owns the mapping between its
//! `Snapshot` type and [`codec::PersistedSnapshot`], and wraps
//! [`log::EpochLog`] (which takes `&mut self`) in its own lock.
//!
//! All `unsafe` lives in the vendored `mmap` shim this crate reads
//! sealed segments through; see `vendor/README.md`.

#![forbid(unsafe_code)]

pub mod codec;
pub mod log;

pub use codec::{CodecError, PersistedSnapshot, Reader, Writer};
pub use log::{CompactStats, EpochLog, LogStats, RecordKind, StoreConfig};
