//! The on-disk binary codec.
//!
//! The vendored `serde_json` stand-in can *render* JSON but cannot
//! parse it back (no deserializer — see `vendor/README.md`), so the
//! epoch store serializes with a hand-rolled, little-endian,
//! length-prefixed binary format instead. The codec is deliberately
//! dumb: fixed-width integers, `u32`-length-prefixed byte strings, and
//! explicit per-type encoders — every field written in a fixed order,
//! every decoder bounds-checked, no self-description. Versioning lives
//! one layer up, in the record header (`log::RECORD_VERSION`).
//!
//! What gets persisted per epoch is a [`PersistedSnapshot`]: the
//! deterministic *inputs* of a serving snapshot — the link set
//! (including reconstructed export policies), the deduplicated
//! announcement corpus, IXP names, and provenance — rather than any
//! rendered output. The serving layer rebuilds its `LinkIndex`, body
//! cache, and content ETag from those parts; the stored `etag` is
//! carried along and re-verified against the rebuilt value on
//! recovery, anchoring byte-identical restoration.

use std::collections::BTreeMap;
use std::fmt;

use mlpeer::infer::MlpLinkSet;
use mlpeer::live::LinkDelta;
use mlpeer::passive::PassiveStats;
use mlpeer::validate::cross::{CorpusStats, Reason, ValidationReport, VerdictCounts};
use mlpeer_bgp::{Asn, Prefix};
use mlpeer_ixp::ixp::IxpId;
use mlpeer_ixp::policy::ExportPolicy;

/// Why a decode failed. Any error means the surrounding record is
/// treated as corrupt (recovery truncates there; reads return nothing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Fewer bytes than the field needed.
    Truncated,
    /// A string field held invalid UTF-8.
    BadUtf8,
    /// A value failed domain validation (bad enum tag, prefix length
    /// out of range, …).
    BadValue(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "record truncated mid-field"),
            CodecError::BadUtf8 => write!(f, "string field is not UTF-8"),
            CodecError::BadValue(what) => write!(f, "invalid value: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Append-only little-endian writer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Nothing written yet?
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// One byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Little-endian u16.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Little-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Little-endian u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// `u32` length prefix + raw bytes.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// A string, as [`put_bytes`](Writer::put_bytes) of its UTF-8.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }
}

/// Bounds-checked little-endian reader over a byte slice.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `buf`, starting at its first byte.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Everything consumed?
    pub fn is_done(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// One byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Little-endian u16.
    pub fn u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Little-endian u32.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Little-endian u64.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// A `u32`-length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    /// A `u32`-length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, CodecError> {
        String::from_utf8(self.bytes()?.to_vec()).map_err(|_| CodecError::BadUtf8)
    }

    /// A collection length, sanity-capped so a corrupt length cannot
    /// drive a pre-allocation into the gigabytes: the count can never
    /// exceed the remaining bytes (every element is ≥ 1 byte).
    pub fn count(&mut self) -> Result<usize, CodecError> {
        let n = self.u32()? as usize;
        if n > self.remaining() {
            return Err(CodecError::Truncated);
        }
        Ok(n)
    }
}

// ---- domain types ----

/// Encode an [`Asn`] (u32).
pub fn put_asn(w: &mut Writer, a: Asn) {
    w.put_u32(a.value());
}

/// Decode an [`Asn`].
pub fn get_asn(r: &mut Reader<'_>) -> Result<Asn, CodecError> {
    Ok(Asn(r.u32()?))
}

/// Encode an [`IxpId`] (u16).
pub fn put_ixp(w: &mut Writer, i: IxpId) {
    w.put_u16(i.0);
}

/// Decode an [`IxpId`].
pub fn get_ixp(r: &mut Reader<'_>) -> Result<IxpId, CodecError> {
    Ok(IxpId(r.u16()?))
}

/// Encode a [`Prefix`] (network u32 + length u8).
pub fn put_prefix(w: &mut Writer, p: &Prefix) {
    w.put_u32(p.network_u32());
    w.put_u8(p.len());
}

/// Decode a [`Prefix`], rejecting lengths over 32.
pub fn get_prefix(r: &mut Reader<'_>) -> Result<Prefix, CodecError> {
    let addr = r.u32()?;
    let len = r.u8()?;
    Prefix::from_u32(addr, len).map_err(|_| CodecError::BadValue("prefix length"))
}

/// Encode a sorted ASN set (u32 count + ASNs).
pub fn put_asn_set(w: &mut Writer, set: &std::collections::BTreeSet<Asn>) {
    w.put_u32(set.len() as u32);
    for &a in set {
        put_asn(w, a);
    }
}

/// Decode an ASN set.
pub fn get_asn_set(r: &mut Reader<'_>) -> Result<std::collections::BTreeSet<Asn>, CodecError> {
    let n = r.count()?;
    let mut out = std::collections::BTreeSet::new();
    for _ in 0..n {
        out.insert(get_asn(r)?);
    }
    Ok(out)
}

/// Encode an [`ExportPolicy`] (tag byte + optional ASN set).
pub fn put_policy(w: &mut Writer, p: &ExportPolicy) {
    match p {
        ExportPolicy::AllMembers => w.put_u8(0),
        ExportPolicy::AllExcept(e) => {
            w.put_u8(1);
            put_asn_set(w, e);
        }
        ExportPolicy::OnlyTo(i) => {
            w.put_u8(2);
            put_asn_set(w, i);
        }
        ExportPolicy::Nobody => w.put_u8(3),
    }
}

/// Decode an [`ExportPolicy`], rejecting unknown tags.
pub fn get_policy(r: &mut Reader<'_>) -> Result<ExportPolicy, CodecError> {
    match r.u8()? {
        0 => Ok(ExportPolicy::AllMembers),
        1 => Ok(ExportPolicy::AllExcept(get_asn_set(r)?)),
        2 => Ok(ExportPolicy::OnlyTo(get_asn_set(r)?)),
        3 => Ok(ExportPolicy::Nobody),
        _ => Err(CodecError::BadValue("export policy tag")),
    }
}

/// Encode an [`MlpLinkSet`] (per-IXP pairs, covered members, policies).
pub fn put_links(w: &mut Writer, links: &MlpLinkSet) {
    w.put_u32(links.per_ixp.len() as u32);
    for (ixp, pairs) in &links.per_ixp {
        put_ixp(w, *ixp);
        w.put_u32(pairs.len() as u32);
        for &(a, b) in pairs {
            put_asn(w, a);
            put_asn(w, b);
        }
    }
    w.put_u32(links.covered.len() as u32);
    for (ixp, members) in &links.covered {
        put_ixp(w, *ixp);
        put_asn_set(w, members);
    }
    w.put_u32(links.policies.len() as u32);
    for ((ixp, asn), policy) in &links.policies {
        put_ixp(w, *ixp);
        put_asn(w, *asn);
        put_policy(w, policy);
    }
}

/// Decode an [`MlpLinkSet`].
pub fn get_links(r: &mut Reader<'_>) -> Result<MlpLinkSet, CodecError> {
    let mut links = MlpLinkSet::default();
    for _ in 0..r.count()? {
        let ixp = get_ixp(r)?;
        let n = r.count()?;
        let mut pairs = std::collections::BTreeSet::new();
        for _ in 0..n {
            pairs.insert((get_asn(r)?, get_asn(r)?));
        }
        links.per_ixp.insert(ixp, pairs);
    }
    for _ in 0..r.count()? {
        let ixp = get_ixp(r)?;
        links.covered.insert(ixp, get_asn_set(r)?);
    }
    for _ in 0..r.count()? {
        let ixp = get_ixp(r)?;
        let asn = get_asn(r)?;
        links.policies.insert((ixp, asn), get_policy(r)?);
    }
    Ok(links)
}

/// Encode [`PassiveStats`] (eight u64 counters, fixed order).
pub fn put_passive(w: &mut Writer, p: &PassiveStats) {
    for v in [
        p.routes_seen,
        p.dropped_bogon,
        p.dropped_cycle,
        p.dropped_transient,
        p.unidentified,
        p.setter_unknown,
        p.observations,
        p.quarantined,
    ] {
        w.put_u64(v as u64);
    }
}

/// Decode [`PassiveStats`].
pub fn get_passive(r: &mut Reader<'_>) -> Result<PassiveStats, CodecError> {
    Ok(PassiveStats {
        routes_seen: r.u64()? as usize,
        dropped_bogon: r.u64()? as usize,
        dropped_cycle: r.u64()? as usize,
        dropped_transient: r.u64()? as usize,
        unidentified: r.u64()? as usize,
        setter_unknown: r.u64()? as usize,
        observations: r.u64()? as usize,
        quarantined: r.u64()? as usize,
    })
}

fn put_verdicts(w: &mut Writer, v: &VerdictCounts) {
    w.put_u64(v.confirmed);
    w.put_u64(v.unknown);
    w.put_u64(v.contradicted);
}

fn get_verdicts(r: &mut Reader<'_>) -> Result<VerdictCounts, CodecError> {
    Ok(VerdictCounts {
        confirmed: r.u64()?,
        unknown: r.u64()?,
        contradicted: r.u64()?,
    })
}

/// Encode a [`ValidationReport`] (corpus stats, totals, per-IXP
/// tallies, reason histogram). Persisted rather than recomputed on
/// recovery: revival has no [`Ecosystem`] to re-derive the IRR/RPKI
/// corpus from.
///
/// [`Ecosystem`]: mlpeer_ixp::Ecosystem
pub fn put_validation(w: &mut Writer, v: &ValidationReport) {
    w.put_u64(v.corpus.objects);
    w.put_u64(v.corpus.roas);
    w.put_u64(v.corpus.quarantined);
    w.put_u8(u8::from(v.corpus.complete));
    put_verdicts(w, &v.totals);
    w.put_u32(v.per_ixp.len() as u32);
    for (ixp, counts) in &v.per_ixp {
        put_ixp(w, *ixp);
        put_verdicts(w, counts);
    }
    w.put_u32(v.reasons.len() as u32);
    for (reason, count) in &v.reasons {
        w.put_u8(reason.tag());
        w.put_u64(*count);
    }
}

/// Decode a [`ValidationReport`], rejecting unknown reason tags and
/// non-boolean completeness bytes.
pub fn get_validation(r: &mut Reader<'_>) -> Result<ValidationReport, CodecError> {
    let corpus = CorpusStats {
        objects: r.u64()?,
        roas: r.u64()?,
        quarantined: r.u64()?,
        complete: match r.u8()? {
            0 => false,
            1 => true,
            _ => return Err(CodecError::BadValue("corpus completeness flag")),
        },
    };
    let totals = get_verdicts(r)?;
    let mut per_ixp = BTreeMap::new();
    for _ in 0..r.count()? {
        let ixp = get_ixp(r)?;
        per_ixp.insert(ixp, get_verdicts(r)?);
    }
    let mut reasons = BTreeMap::new();
    for _ in 0..r.count()? {
        let reason =
            Reason::from_tag(r.u8()?).ok_or(CodecError::BadValue("validation reason tag"))?;
        reasons.insert(reason, r.u64()?);
    }
    Ok(ValidationReport {
        corpus,
        totals,
        per_ixp,
        reasons,
    })
}

/// Encode a [`LinkDelta`] into `w`.
pub fn put_delta(w: &mut Writer, d: &LinkDelta) {
    for set in [&d.added, &d.removed] {
        w.put_u32(set.len() as u32);
        for (ixp, a, b) in set {
            put_ixp(w, *ixp);
            put_asn(w, *a);
            put_asn(w, *b);
        }
    }
}

/// Decode a [`LinkDelta`] from `r`.
pub fn get_delta(r: &mut Reader<'_>) -> Result<LinkDelta, CodecError> {
    let mut d = LinkDelta::default();
    for _ in 0..r.count()? {
        d.added.push((get_ixp(r)?, get_asn(r)?, get_asn(r)?));
    }
    for _ in 0..r.count()? {
        d.removed.push((get_ixp(r)?, get_asn(r)?, get_asn(r)?));
    }
    Ok(d)
}

/// The deterministic parts of one published snapshot — everything the
/// serving layer needs to rebuild a byte-identical epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersistedSnapshot {
    /// Scale word the run was generated at ("tiny", "small", …).
    pub scale: String,
    /// The run's RNG seed.
    pub seed: u64,
    /// The content ETag the snapshot served under. Recovery recomputes
    /// the ETag from the rebuilt parts and rejects the record on
    /// mismatch — the codec's end-to-end integrity anchor.
    pub etag: String,
    /// IXP names.
    pub names: BTreeMap<IxpId, String>,
    /// The inferred link set (with per-member export policies).
    pub links: MlpLinkSet,
    /// The deduplicated, covered-member announcement corpus — exactly
    /// the set `LinkIndex` and the content ETag are derived from, in
    /// sorted order.
    pub announcements: Vec<(Prefix, IxpId, Asn)>,
    /// Observations the producing run folded.
    pub observation_count: u64,
    /// Passive-pipeline statistics of the producing harvest.
    pub passive_stats: PassiveStats,
    /// The IRR/RPKI cross-validation report published with the epoch.
    /// Stored (not recomputed) because recovery has no ecosystem to
    /// re-derive the corpus from.
    pub validation: ValidationReport,
}

impl PersistedSnapshot {
    /// Encode into `w`.
    pub fn encode_into(&self, w: &mut Writer) {
        w.put_str(&self.scale);
        w.put_u64(self.seed);
        w.put_str(&self.etag);
        w.put_u32(self.names.len() as u32);
        for (ixp, name) in &self.names {
            put_ixp(w, *ixp);
            w.put_str(name);
        }
        put_links(w, &self.links);
        w.put_u32(self.announcements.len() as u32);
        for (prefix, ixp, asn) in &self.announcements {
            put_prefix(w, prefix);
            put_ixp(w, *ixp);
            put_asn(w, *asn);
        }
        w.put_u64(self.observation_count);
        put_passive(w, &self.passive_stats);
        // Appended last: version-3 records extend version-2 bodies,
        // so every earlier field keeps its offset.
        put_validation(w, &self.validation);
    }

    /// Encode to fresh bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.encode_into(&mut w);
        w.into_bytes()
    }

    /// Decode from `r` (leaves trailing bytes unconsumed — the record
    /// layer appends the optional delta after the snapshot).
    pub fn decode_from(r: &mut Reader<'_>) -> Result<PersistedSnapshot, CodecError> {
        let scale = r.str()?;
        let seed = r.u64()?;
        let etag = r.str()?;
        let mut names = BTreeMap::new();
        for _ in 0..r.count()? {
            let ixp = get_ixp(r)?;
            names.insert(ixp, r.str()?);
        }
        let links = get_links(r)?;
        let mut announcements = Vec::new();
        for _ in 0..r.count()? {
            announcements.push((get_prefix(r)?, get_ixp(r)?, get_asn(r)?));
        }
        let observation_count = r.u64()?;
        let passive_stats = get_passive(r)?;
        let validation = get_validation(r)?;
        Ok(PersistedSnapshot {
            scale,
            seed,
            etag,
            names,
            links,
            announcements,
            observation_count,
            passive_stats,
            validation,
        })
    }

    /// Decode from exactly `buf` (trailing bytes are an error).
    pub fn decode(buf: &[u8]) -> Result<PersistedSnapshot, CodecError> {
        let mut r = Reader::new(buf);
        let out = Self::decode_from(&mut r)?;
        if !r.is_done() {
            return Err(CodecError::BadValue("trailing bytes after snapshot"));
        }
        Ok(out)
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use std::collections::BTreeSet;

    pub(crate) fn sample_snapshot(seed: u64) -> PersistedSnapshot {
        let mut links = MlpLinkSet::default();
        links.per_ixp.insert(
            IxpId(0),
            [(Asn(1), Asn(2)), (Asn(1), Asn(3))].into_iter().collect(),
        );
        links
            .per_ixp
            .insert(IxpId(1), [(Asn(2), Asn(3))].into_iter().collect());
        links
            .covered
            .insert(IxpId(0), [Asn(1), Asn(2), Asn(3)].into_iter().collect());
        links
            .policies
            .insert((IxpId(0), Asn(1)), ExportPolicy::AllMembers);
        links.policies.insert(
            (IxpId(0), Asn(2)),
            ExportPolicy::AllExcept([Asn(9)].into_iter().collect()),
        );
        links.policies.insert(
            (IxpId(1), Asn(3)),
            ExportPolicy::OnlyTo([Asn(1), Asn(2)].into_iter().collect()),
        );
        links
            .policies
            .insert((IxpId(1), Asn(2)), ExportPolicy::Nobody);
        PersistedSnapshot {
            scale: "tiny".into(),
            seed,
            etag: format!("{seed:016x}"),
            names: [
                (IxpId(0), "DE-CIX".to_string()),
                (IxpId(1), "AMS-IX".to_string()),
            ]
            .into(),
            links,
            announcements: vec![
                ("0.0.0.0/0".parse().unwrap(), IxpId(0), Asn(3)),
                ("10.1.0.0/24".parse().unwrap(), IxpId(0), Asn(1)),
                ("10.2.0.0/16".parse().unwrap(), IxpId(1), Asn(2)),
                ("203.0.113.37/32".parse().unwrap(), IxpId(0), Asn(2)),
            ],
            observation_count: 17,
            passive_stats: PassiveStats {
                routes_seen: 100,
                dropped_bogon: 1,
                dropped_cycle: 2,
                dropped_transient: 3,
                unidentified: 4,
                setter_unknown: 5,
                observations: 85,
                quarantined: 6,
            },
            validation: sample_validation(),
        }
    }

    fn sample_validation() -> ValidationReport {
        ValidationReport {
            corpus: CorpusStats {
                objects: 12,
                roas: 7,
                quarantined: 1,
                complete: true,
            },
            totals: VerdictCounts {
                confirmed: 2,
                unknown: 1,
                contradicted: 0,
            },
            per_ixp: [
                (
                    IxpId(0),
                    VerdictCounts {
                        confirmed: 2,
                        unknown: 0,
                        contradicted: 0,
                    },
                ),
                (
                    IxpId(1),
                    VerdictCounts {
                        confirmed: 0,
                        unknown: 1,
                        contradicted: 0,
                    },
                ),
            ]
            .into(),
            reasons: [
                (Reason::RouteMatchBoth, 2u64),
                (Reason::PartialCoverage, 1u64),
            ]
            .into(),
        }
    }

    #[test]
    fn snapshot_round_trips() {
        let snap = sample_snapshot(7);
        let bytes = snap.encode();
        let back = PersistedSnapshot::decode(&bytes).unwrap();
        assert_eq!(snap, back);
    }

    #[test]
    fn delta_round_trips() {
        let d = LinkDelta {
            added: vec![(IxpId(0), Asn(1), Asn(2)), (IxpId(3), Asn(7), Asn(9))],
            removed: vec![(IxpId(1), Asn(2), Asn(3))],
        };
        let mut w = Writer::new();
        put_delta(&mut w, &d);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(get_delta(&mut r).unwrap(), d);
        assert!(r.is_done());
    }

    #[test]
    fn truncation_anywhere_is_an_error_never_a_panic() {
        let bytes = sample_snapshot(3).encode();
        for cut in 0..bytes.len() {
            let err = PersistedSnapshot::decode(&bytes[..cut]);
            assert!(err.is_err(), "cut at {cut} must fail to decode");
        }
    }

    #[test]
    fn bad_tags_and_lengths_are_rejected() {
        // A policy tag outside 0..=3.
        let mut w = Writer::new();
        w.put_u8(9);
        assert_eq!(
            get_policy(&mut Reader::new(&w.into_bytes())),
            Err(CodecError::BadValue("export policy tag"))
        );
        // A prefix length > 32.
        let mut w = Writer::new();
        w.put_u32(0x0a000000);
        w.put_u8(33);
        assert_eq!(
            get_prefix(&mut Reader::new(&w.into_bytes())),
            Err(CodecError::BadValue("prefix length"))
        );
        // A huge collection count with no backing bytes must not
        // attempt a giant allocation.
        let mut w = Writer::new();
        w.put_u32(u32::MAX);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(get_asn_set(&mut r), Err(CodecError::Truncated));
        // An unknown validation reason tag.
        let mut bytes = Writer::new();
        put_validation(&mut bytes, &sample_validation());
        let mut bytes = bytes.into_bytes();
        let tag_offset = bytes.len() - 2 * (1 + 8); // first (tag, count) pair
        bytes[tag_offset] = 0xFF;
        assert_eq!(
            get_validation(&mut Reader::new(&bytes)),
            Err(CodecError::BadValue("validation reason tag"))
        );
        // A completeness byte outside 0/1.
        let mut w = Writer::new();
        put_validation(&mut w, &sample_validation());
        let mut bytes = w.into_bytes();
        bytes[24] = 7; // objects + roas + quarantined are 8 bytes each
        assert_eq!(
            get_validation(&mut Reader::new(&bytes)),
            Err(CodecError::BadValue("corpus completeness flag"))
        );
    }

    #[test]
    fn validation_report_round_trips() {
        let v = sample_validation();
        let mut w = Writer::new();
        put_validation(&mut w, &v);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(get_validation(&mut r).unwrap(), v);
        assert!(r.is_done());
    }

    #[test]
    fn trailing_bytes_after_snapshot_are_rejected() {
        let mut bytes = sample_snapshot(3).encode();
        bytes.push(0);
        assert!(PersistedSnapshot::decode(&bytes).is_err());
    }

    #[test]
    fn empty_sets_round_trip() {
        let snap = PersistedSnapshot {
            scale: String::new(),
            seed: 0,
            etag: String::new(),
            names: BTreeMap::new(),
            links: MlpLinkSet::default(),
            announcements: Vec::new(),
            observation_count: 0,
            passive_stats: PassiveStats::default(),
            validation: ValidationReport::default(),
        };
        assert_eq!(PersistedSnapshot::decode(&snap.encode()).unwrap(), snap);
        let mut w = Writer::new();
        put_delta(&mut w, &LinkDelta::default());
        let bytes = w.into_bytes();
        assert_eq!(
            get_delta(&mut Reader::new(&bytes)).unwrap(),
            LinkDelta::default()
        );
        let _ = BTreeSet::<Asn>::new(); // keep the import honest
    }
}
