//! The append-only, segmented epoch log.
//!
//! ```text
//!  data-dir/
//!    seg-00000000000000000000.log   ← sealed (read via mmap)
//!    seg-00000000000000000041.log   ← sealed
//!    seg-00000000000000000087.log   ← active (append handle)
//!
//!  one record:
//!    ┌───────┬─────┬──────┬───────┬───────┬─────────────┬─────────┬──────────┐
//!    │ magic │ ver │ kind │ flags │ epoch │ payload_len │ payload │ checksum │
//!    │ 4 B   │ 1 B │ 1 B  │ 1 B   │ 8 B   │ 4 B         │ n B     │ 8 B      │
//!    └───────┴─────┴──────┴───────┴───────┴─────────────┴─────────┴──────────┘
//! ```
//!
//! * **Append-only**: every published epoch appends exactly one record
//!   to the active segment; nothing is ever rewritten in place. When
//!   the active segment crosses the configured size threshold it is
//!   *sealed* (immutable from then on, read through the vendored
//!   [`mmap`] shim) and a new active segment named after its first
//!   epoch starts.
//! * **Checksummed**: the trailing u64 is an FxHash over everything
//!   between magic and checksum. Recovery re-verifies it per record.
//! * **Torn-tail recovery**: [`EpochLog::open`] replays every segment
//!   in order; the first invalid record (bad magic/version/checksum,
//!   truncated frame, non-monotone epoch) truncates the log right
//!   there — the file is cut back to the last valid record boundary
//!   and later segments are discarded. A crash mid-append therefore
//!   loses at most the record being written, never the log.
//! * **Record kinds**: [`RecordKind::Full`] carries a complete
//!   [`PersistedSnapshot`] (optionally preceded by the epoch's
//!   [`LinkDelta`], flag bit 0); [`RecordKind::DeltaOnly`] carries only
//!   the delta — the shape compaction leaves behind for epochs whose
//!   full snapshot was dropped.
//! * **Compaction**: [`EpochLog::compact`] rewrites *sealed* segments,
//!   keeping every `compact_keep_every`-th full snapshot (and the
//!   latest one) and demoting the rest to delta-only records, so disk
//!   stays bounded while `?since=` history stays complete. The active
//!   segment is never touched.
//!
//! Durability is flush-on-append (`File::flush`), not fsync-per-record:
//! a kernel crash can lose the tail, which recovery then truncates —
//! exactly the torn-tail contract above.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::hash::Hasher;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use mlpeer::hash::FxHasher;
use mlpeer::live::LinkDelta;
use mmap::Mmap;

use crate::codec::{get_delta, put_delta, PersistedSnapshot, Reader, Writer};

/// Record magic: `MLPS` as raw bytes.
pub const RECORD_MAGIC: [u8; 4] = *b"MLPS";
/// On-disk format version of the record *payloads*. Version 3 appended
/// the IRR/RPKI [`ValidationReport`] to full-snapshot bodies; version 2
/// added the `quarantined` counter to the persisted passive stats.
/// Older-versioned records read as invalid and recovery truncates
/// before them — the store is a cache of reproducible pipeline output,
/// so discarding a stale-format tail loses nothing that a re-harvest
/// cannot rebuild.
///
/// [`ValidationReport`]: mlpeer::validate::cross::ValidationReport
pub const RECORD_VERSION: u8 = 3;
/// Bytes before the payload (magic + version + kind + flags + epoch +
/// payload_len).
const HEADER_LEN: usize = 4 + 1 + 1 + 1 + 8 + 4;
/// Trailing checksum bytes.
const TRAILER_LEN: usize = 8;
/// Flag bit 0: a `Full` record's payload is prefixed with the epoch's
/// delta (u32 length + delta bytes) before the snapshot bytes.
const FLAG_HAS_DELTA: u8 = 1;

/// What one record holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// A complete snapshot (and, usually, the delta that produced it).
    Full,
    /// Only the epoch's delta — a compacted epoch.
    DeltaOnly,
}

impl RecordKind {
    fn to_u8(self) -> u8 {
        match self {
            RecordKind::Full => 1,
            RecordKind::DeltaOnly => 2,
        }
    }

    fn from_u8(v: u8) -> Option<RecordKind> {
        match v {
            1 => Some(RecordKind::Full),
            2 => Some(RecordKind::DeltaOnly),
            _ => None,
        }
    }
}

/// Tuning knobs of the on-disk log.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Seal the active segment once it crosses this size (bytes).
    pub segment_bytes: u64,
    /// Compaction keeps every `k`-th epoch's full snapshot (plus the
    /// latest full in the log); the rest are demoted to delta-only.
    pub compact_keep_every: u64,
}

impl Default for StoreConfig {
    fn default() -> StoreConfig {
        StoreConfig {
            segment_bytes: 4 * 1024 * 1024,
            compact_keep_every: 8,
        }
    }
}

/// Where one epoch's record lives.
#[derive(Debug, Clone, Copy)]
struct RecordEntry {
    seg: usize,
    /// Offset of the record header within the segment file.
    offset: u64,
    /// Payload length.
    payload_len: u32,
    kind: RecordKind,
    /// Does the record carry the epoch's delta (always true for
    /// `DeltaOnly`)?
    has_delta: bool,
}

#[derive(Debug)]
struct Segment {
    path: PathBuf,
    /// Total file bytes (valid records only, post-recovery).
    bytes: u64,
    /// Sealed segments are immutable; their mapping is cached.
    sealed: bool,
    map: Option<Mmap>,
}

/// Summary counters of an open log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogStats {
    /// Segment files on disk.
    pub segments: usize,
    /// Records across all segments.
    pub records: usize,
    /// Full-snapshot records among them.
    pub full_records: usize,
    /// Total valid bytes on disk.
    pub bytes: u64,
    /// The oldest epoch with any record.
    pub oldest_epoch: Option<u64>,
    /// The newest epoch with any record.
    pub latest_epoch: Option<u64>,
    /// Bytes the last [`EpochLog::open`] cut off as a torn tail.
    pub truncated_tail_bytes: u64,
}

/// What a [`EpochLog::compact`] pass did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompactStats {
    /// Sealed segments rewritten.
    pub segments_rewritten: usize,
    /// Full records demoted to delta-only.
    pub fulls_demoted: usize,
    /// Full records dropped entirely (no delta information to keep).
    pub fulls_dropped: usize,
    /// Disk bytes before the pass.
    pub bytes_before: u64,
    /// Disk bytes after the pass.
    pub bytes_after: u64,
}

/// The append-only, segmented, checksummed epoch log.
pub struct EpochLog {
    dir: PathBuf,
    cfg: StoreConfig,
    segments: Vec<Segment>,
    index: BTreeMap<u64, RecordEntry>,
    /// Append handle for the last (active) segment.
    active: Option<File>,
    truncated_tail: u64,
}

/// FxHash over the checksummed span of a serialized record.
fn record_checksum(body: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(body);
    h.finish()
}

/// One record parsed out of a raw segment at `offset`; `None` when the
/// bytes there are not a valid record (torn tail, corruption).
struct Scanned {
    epoch: u64,
    kind: RecordKind,
    has_delta: bool,
    payload_len: u32,
    total_len: usize,
}

fn scan_record(buf: &[u8], offset: usize) -> Option<Scanned> {
    let rest = buf.get(offset..)?;
    if rest.len() < HEADER_LEN + TRAILER_LEN {
        return None;
    }
    if rest[..4] != RECORD_MAGIC || rest[4] != RECORD_VERSION {
        return None;
    }
    let kind = RecordKind::from_u8(rest[5])?;
    let flags = rest[6];
    if flags & !FLAG_HAS_DELTA != 0 {
        return None;
    }
    let epoch = u64::from_le_bytes(rest[7..15].try_into().unwrap());
    let payload_len = u32::from_le_bytes(rest[15..19].try_into().unwrap());
    let total = HEADER_LEN + payload_len as usize + TRAILER_LEN;
    if rest.len() < total {
        return None;
    }
    let stored = u64::from_le_bytes(rest[total - TRAILER_LEN..total].try_into().unwrap());
    if record_checksum(&rest[4..total - TRAILER_LEN]) != stored {
        return None;
    }
    // A DeltaOnly record implicitly carries its delta.
    let has_delta = kind == RecordKind::DeltaOnly || flags & FLAG_HAS_DELTA != 0;
    Some(Scanned {
        epoch,
        kind,
        has_delta,
        payload_len,
        total_len: total,
    })
}

/// Serialize one record (header + payload + checksum).
fn frame_record(epoch: u64, kind: RecordKind, has_delta: bool, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + TRAILER_LEN);
    out.extend_from_slice(&RECORD_MAGIC);
    out.push(RECORD_VERSION);
    out.push(kind.to_u8());
    out.push(if has_delta && kind == RecordKind::Full {
        FLAG_HAS_DELTA
    } else {
        0
    });
    out.extend_from_slice(&epoch.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    let sum = record_checksum(&out[4..]);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

fn segment_path(dir: &Path, first_epoch: u64) -> PathBuf {
    dir.join(format!("seg-{first_epoch:020}.log"))
}

impl EpochLog {
    /// Open (or create) the log at `dir`, replaying every segment to
    /// rebuild the epoch index. A torn or corrupt tail is truncated to
    /// the last valid record boundary — recovery never fails on bad
    /// trailing bytes, it cuts them off (and deletes any segments
    /// after the cut, which a sequential writer could only have
    /// produced before the corruption point… i.e. never; they are
    /// garbage by construction).
    pub fn open(dir: impl Into<PathBuf>, cfg: StoreConfig) -> io::Result<EpochLog> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let mut names: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("seg-") && n.ends_with(".log"))
            })
            .collect();
        names.sort();

        let mut segments: Vec<Segment> = Vec::new();
        let mut index: BTreeMap<u64, RecordEntry> = BTreeMap::new();
        let mut truncated_tail: u64 = 0;
        let mut last_epoch: Option<u64> = None;
        let mut corrupted = false;

        for path in names {
            if corrupted {
                // Everything after the corruption point is untrusted.
                truncated_tail += std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
                std::fs::remove_file(&path)?;
                continue;
            }
            let file = File::open(&path)?;
            let map = Mmap::map(&file)?;
            let seg_idx = segments.len();
            let mut offset = 0usize;
            while offset < map.len() {
                let Some(rec) = scan_record(&map, offset) else {
                    corrupted = true;
                    break;
                };
                // Epochs must be strictly monotone across the log; a
                // regression means the writer never wrote this — treat
                // as corruption at this boundary.
                if last_epoch.is_some_and(|prev| rec.epoch <= prev) {
                    corrupted = true;
                    break;
                }
                last_epoch = Some(rec.epoch);
                index.insert(
                    rec.epoch,
                    RecordEntry {
                        seg: seg_idx,
                        offset: offset as u64,
                        payload_len: rec.payload_len,
                        kind: rec.kind,
                        has_delta: rec.has_delta,
                    },
                );
                offset += rec.total_len;
            }
            drop(map);
            if corrupted {
                truncated_tail += std::fs::metadata(&path)?.len() - offset as u64;
                let f = OpenOptions::new().write(true).open(&path)?;
                f.set_len(offset as u64)?;
                f.sync_all()?;
            }
            if offset == 0 && corrupted {
                // Nothing valid in this file at all.
                std::fs::remove_file(&path)?;
                continue;
            }
            segments.push(Segment {
                path,
                bytes: offset as u64,
                sealed: true, // demoted to active below if last
                map: None,
            });
        }

        // The last surviving segment is the active one (append target);
        // all earlier segments are sealed.
        let active = match segments.last_mut() {
            Some(seg) => {
                seg.sealed = false;
                Some(OpenOptions::new().append(true).open(&seg.path)?)
            }
            None => None,
        };

        Ok(EpochLog {
            dir,
            cfg,
            segments,
            index,
            active,
            truncated_tail,
        })
    }

    /// The directory this log lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The newest epoch with any record.
    pub fn latest_epoch(&self) -> Option<u64> {
        self.index.keys().next_back().copied()
    }

    /// The oldest epoch with any record.
    pub fn oldest_epoch(&self) -> Option<u64> {
        self.index.keys().next().copied()
    }

    /// Epochs that still have a full snapshot on disk (answerable by
    /// `?at=`), ascending.
    pub fn full_epochs(&self) -> Vec<u64> {
        self.index
            .iter()
            .filter(|(_, e)| e.kind == RecordKind::Full)
            .map(|(&epoch, _)| epoch)
            .collect()
    }

    /// Append one published epoch: its full snapshot and (when the
    /// publish carried one) the delta that produced it. Epochs must be
    /// appended in strictly increasing order.
    pub fn append_full(
        &mut self,
        epoch: u64,
        snapshot: &PersistedSnapshot,
        delta: Option<&LinkDelta>,
    ) -> io::Result<()> {
        if self.latest_epoch().is_some_and(|latest| epoch <= latest) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("epoch {epoch} not after latest {:?}", self.latest_epoch()),
            ));
        }
        let mut w = Writer::new();
        if let Some(d) = delta {
            let mut dw = Writer::new();
            put_delta(&mut dw, d);
            let bytes = dw.into_bytes();
            w.put_u32(bytes.len() as u32);
            let mut payload = w.into_bytes();
            payload.extend_from_slice(&bytes);
            let mut sw = Writer::new();
            snapshot.encode_into(&mut sw);
            payload.extend_from_slice(&sw.into_bytes());
            self.append_record(epoch, RecordKind::Full, true, &payload)
        } else {
            snapshot.encode_into(&mut w);
            self.append_record(epoch, RecordKind::Full, false, &w.into_bytes())
        }
    }

    fn append_record(
        &mut self,
        epoch: u64,
        kind: RecordKind,
        has_delta: bool,
        payload: &[u8],
    ) -> io::Result<()> {
        failpoints::failpoint!("store::append", |msg: String| Err(io::Error::other(
            format!("failpoint store::append: {msg}")
        )));
        // Roll: seal the active segment once it crossed the threshold.
        let need_new = match self.segments.last() {
            None => true,
            Some(seg) => seg.bytes >= self.cfg.segment_bytes,
        };
        if need_new {
            failpoints::failpoint!("store::seal", |msg: String| Err(io::Error::other(format!(
                "failpoint store::seal: {msg}"
            ))));
            if let Some(seg) = self.segments.last_mut() {
                seg.sealed = true;
            }
            if let Some(f) = self.active.take() {
                failpoints::failpoint!("store::fsync", |msg: String| Err(io::Error::other(
                    format!("failpoint store::fsync: {msg}")
                )));
                f.sync_all()?;
            }
            let path = segment_path(&self.dir, epoch);
            let file = OpenOptions::new()
                .create_new(true)
                .append(true)
                .open(&path)?;
            self.segments.push(Segment {
                path,
                bytes: 0,
                sealed: false,
                map: None,
            });
            self.active = Some(file);
        }
        let seg_idx = self.segments.len() - 1;
        let seg = &mut self.segments[seg_idx];
        let offset = seg.bytes;
        let frame = frame_record(epoch, kind, has_delta, payload);
        let file = self.active.as_mut().expect("active segment open");
        file.write_all(&frame)?;
        file.flush()?;
        seg.bytes += frame.len() as u64;
        self.index.insert(
            epoch,
            RecordEntry {
                seg: seg_idx,
                offset,
                payload_len: payload.len() as u32,
                kind,
                has_delta: kind == RecordKind::DeltaOnly || has_delta,
            },
        );
        Ok(())
    }

    /// Flush and fsync the active segment — the graceful-drain hook.
    /// Every appended record is already `write_all` + `flush`ed, so
    /// this only adds the `sync_all` a sealed segment would get; the
    /// segment stays the append target (a later boot reopens it as
    /// active). A no-op on an empty log.
    pub fn sync_active(&mut self) -> io::Result<()> {
        failpoints::failpoint!("store::fsync", |msg: String| Err(io::Error::other(
            format!("failpoint store::fsync: {msg}")
        )));
        match self.active.as_mut() {
            Some(f) => f.sync_all(),
            None => Ok(()),
        }
    }

    /// The raw payload bytes of one record. Sealed segments answer out
    /// of a cached mapping; the active segment is mapped fresh per read
    /// (its tail grows, so the cache would go stale).
    fn payload_bytes(&mut self, epoch: u64) -> Option<Vec<u8>> {
        failpoints::failpoint!("store::mmap_open", |_msg| None);
        let entry = *self.index.get(&epoch)?;
        let seg = &mut self.segments[entry.seg];
        let start = entry.offset as usize + HEADER_LEN;
        let end = start + entry.payload_len as usize;
        if seg.sealed {
            if seg.map.is_none() {
                let file = File::open(&seg.path).ok()?;
                seg.map = Some(Mmap::map(&file).ok()?);
            }
            seg.map.as_ref()?.get(start..end).map(<[u8]>::to_vec)
        } else {
            let file = File::open(&seg.path).ok()?;
            let map = Mmap::map(&file).ok()?;
            map.get(start..end).map(<[u8]>::to_vec)
        }
    }

    /// The full snapshot stored for `epoch`, with its delta when the
    /// record carries one. `None` when the epoch has no record or was
    /// compacted down to delta-only.
    pub fn snapshot_at(&mut self, epoch: u64) -> Option<(PersistedSnapshot, Option<LinkDelta>)> {
        let entry = *self.index.get(&epoch)?;
        if entry.kind != RecordKind::Full {
            return None;
        }
        let payload = self.payload_bytes(epoch)?;
        let mut r = Reader::new(&payload);
        let delta = if entry.has_delta {
            let len = r.u32().ok()? as usize;
            let mut dr = Reader::new(payload.get(4..4 + len)?);
            let d = get_delta(&mut dr).ok()?;
            r = Reader::new(payload.get(4 + len..)?);
            Some(d)
        } else {
            None
        };
        let snap = PersistedSnapshot::decode_from(&mut r).ok()?;
        if !r.is_done() {
            return None;
        }
        Some((snap, delta))
    }

    /// The newest epoch whose full snapshot is on disk, decoded — what
    /// recovery boots from.
    pub fn latest_full(&mut self) -> Option<(u64, PersistedSnapshot)> {
        let epoch = self
            .index
            .iter()
            .rev()
            .find(|(_, e)| e.kind == RecordKind::Full)
            .map(|(&epoch, _)| epoch)?;
        let (snap, _) = self.snapshot_at(epoch)?;
        Some((epoch, snap))
    }

    /// The delta that produced `epoch`, from either record kind.
    pub fn delta_of(&mut self, epoch: u64) -> Option<LinkDelta> {
        let entry = *self.index.get(&epoch)?;
        if !entry.has_delta {
            return None;
        }
        let payload = self.payload_bytes(epoch)?;
        let mut r = Reader::new(&payload);
        match entry.kind {
            RecordKind::DeltaOnly => {
                let d = get_delta(&mut r).ok()?;
                r.is_done().then_some(d)
            }
            RecordKind::Full => {
                let len = r.u32().ok()? as usize;
                let mut dr = Reader::new(payload.get(4..4 + len)?);
                let d = get_delta(&mut dr).ok()?;
                dr.is_done().then_some(d)
            }
        }
    }

    /// The net link-level diff from `since` to `current`, folded over
    /// the stored per-epoch deltas with add/remove cancellation —
    /// `None` when any epoch in `since+1 ..= current` lacks delta
    /// information (compacted away entirely, or published without a
    /// delta). `since == current` is the empty diff.
    #[allow(clippy::type_complexity)]
    pub fn fold_since(
        &mut self,
        since: u64,
        current: u64,
    ) -> Option<(
        std::collections::BTreeSet<(mlpeer_ixp::ixp::IxpId, mlpeer_bgp::Asn, mlpeer_bgp::Asn)>,
        std::collections::BTreeSet<(mlpeer_ixp::ixp::IxpId, mlpeer_bgp::Asn, mlpeer_bgp::Asn)>,
    )> {
        if since > current {
            return None;
        }
        let mut added = std::collections::BTreeSet::new();
        let mut removed = std::collections::BTreeSet::new();
        for epoch in since + 1..=current {
            let d = self.delta_of(epoch)?;
            for l in d.added {
                if !removed.remove(&l) {
                    added.insert(l);
                }
            }
            for l in d.removed {
                if !added.remove(&l) {
                    removed.insert(l);
                }
            }
        }
        Some((added, removed))
    }

    /// The oldest `since` value [`fold_since`](EpochLog::fold_since)
    /// can answer against `current`: the start of the contiguous delta
    /// chain ending at `current` (every epoch in `oldest+1 ..= current`
    /// has a stored delta). `since == current` is always answerable, so
    /// this is at most `current`.
    pub fn oldest_since(&self, current: u64) -> u64 {
        let mut s = current;
        while s > 0 {
            match self.index.get(&s) {
                Some(e) if e.has_delta => s -= 1,
                _ => break,
            }
        }
        s
    }

    /// Rewrite sealed segments so disk stays bounded: every
    /// `compact_keep_every`-th epoch (and the newest full in the log)
    /// keeps its full snapshot; other full records are demoted to
    /// delta-only (or dropped entirely when they carry no delta). The
    /// active segment is never touched. The in-memory index is rebuilt
    /// from disk afterwards, so a compaction is also a self-check.
    pub fn compact(&mut self) -> io::Result<CompactStats> {
        let keep_every = self.cfg.compact_keep_every.max(1);
        let latest_full = self
            .index
            .iter()
            .rev()
            .find(|(_, e)| e.kind == RecordKind::Full)
            .map(|(&epoch, _)| epoch);
        let mut stats = CompactStats {
            bytes_before: self.segments.iter().map(|s| s.bytes).sum(),
            ..CompactStats::default()
        };

        let sealed: Vec<usize> = (0..self.segments.len())
            .filter(|&i| self.segments[i].sealed)
            .collect();
        for seg_idx in sealed {
            // Records of this segment, in offset order.
            let epochs: Vec<(u64, RecordEntry)> = self
                .index
                .iter()
                .filter(|(_, e)| e.seg == seg_idx)
                .map(|(&epoch, &e)| (epoch, e))
                .collect();
            let droppable = epochs.iter().any(|(epoch, e)| {
                e.kind == RecordKind::Full && epoch % keep_every != 0 && Some(*epoch) != latest_full
            });
            if !droppable {
                continue;
            }
            let mut out: Vec<u8> = Vec::new();
            for (epoch, entry) in &epochs {
                let keep_full = *epoch % keep_every == 0 || Some(*epoch) == latest_full;
                match entry.kind {
                    RecordKind::Full if !keep_full => {
                        match self.delta_of(*epoch) {
                            Some(d) => {
                                let mut w = Writer::new();
                                put_delta(&mut w, &d);
                                out.extend_from_slice(&frame_record(
                                    *epoch,
                                    RecordKind::DeltaOnly,
                                    true,
                                    &w.into_bytes(),
                                ));
                                stats.fulls_demoted += 1;
                            }
                            None => {
                                // No delta information to preserve:
                                // the epoch is genuinely gone (the 410
                                // case).
                                stats.fulls_dropped += 1;
                            }
                        }
                    }
                    _ => {
                        // Keep the record verbatim.
                        let start = entry.offset as usize;
                        let end = start + HEADER_LEN + entry.payload_len as usize + TRAILER_LEN;
                        let seg = &mut self.segments[entry.seg];
                        if seg.map.is_none() {
                            let file = File::open(&seg.path)?;
                            seg.map = Some(Mmap::map(&file)?);
                        }
                        let map = seg.map.as_ref().expect("mapped above");
                        out.extend_from_slice(&map[start..end]);
                    }
                }
            }
            // Atomic replace: write the rewritten segment beside the
            // original, fsync, rename over it.
            let seg = &mut self.segments[seg_idx];
            let tmp = seg.path.with_extension("log.tmp");
            {
                let mut f = File::create(&tmp)?;
                f.write_all(&out)?;
                f.sync_all()?;
            }
            std::fs::rename(&tmp, &seg.path)?;
            seg.map = None;
            seg.bytes = out.len() as u64;
            stats.segments_rewritten += 1;
        }

        // Rebuild the index (and re-verify every surviving record) by
        // reopening from disk.
        let reopened = EpochLog::open(self.dir.clone(), self.cfg.clone())?;
        stats.bytes_after = reopened.segments.iter().map(|s| s.bytes).sum();
        *self = reopened;
        Ok(stats)
    }

    /// Summary counters.
    pub fn stats(&self) -> LogStats {
        LogStats {
            segments: self.segments.len(),
            records: self.index.len(),
            full_records: self
                .index
                .values()
                .filter(|e| e.kind == RecordKind::Full)
                .count(),
            bytes: self.segments.iter().map(|s| s.bytes).sum(),
            oldest_epoch: self.oldest_epoch(),
            latest_epoch: self.latest_epoch(),
            truncated_tail_bytes: self.truncated_tail,
        }
    }
}

impl std::fmt::Debug for EpochLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochLog")
            .field("dir", &self.dir)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlpeer_bgp::Asn;
    use mlpeer_ixp::ixp::IxpId;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    fn temp_dir(tag: &str) -> PathBuf {
        let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("mlpeer-store-{tag}-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn snap(seed: u64) -> PersistedSnapshot {
        crate::codec::tests::sample_snapshot(seed)
    }

    fn delta(n: u32) -> LinkDelta {
        LinkDelta {
            added: vec![(IxpId(0), Asn(n), Asn(n + 1))],
            removed: vec![],
        }
    }

    #[test]
    fn append_reopen_round_trips_every_epoch() {
        let dir = temp_dir("roundtrip");
        {
            let mut log = EpochLog::open(&dir, StoreConfig::default()).unwrap();
            log.append_full(0, &snap(0), None).unwrap();
            for e in 1..=5u64 {
                log.append_full(e, &snap(e), Some(&delta(e as u32)))
                    .unwrap();
            }
        }
        let mut log = EpochLog::open(&dir, StoreConfig::default()).unwrap();
        assert_eq!(log.latest_epoch(), Some(5));
        assert_eq!(log.oldest_epoch(), Some(0));
        assert_eq!(log.stats().truncated_tail_bytes, 0);
        for e in 0..=5u64 {
            let (s, d) = log.snapshot_at(e).unwrap();
            assert_eq!(s, snap(e), "epoch {e}");
            assert_eq!(d, (e > 0).then(|| delta(e as u32)), "epoch {e} delta");
        }
        assert!(log.snapshot_at(6).is_none());
        let (latest_epoch, latest) = log.latest_full().unwrap();
        assert_eq!((latest_epoch, latest), (5, snap(5)));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segments_roll_at_threshold_and_sealed_reads_work() {
        let dir = temp_dir("roll");
        let cfg = StoreConfig {
            segment_bytes: 512, // tiny: every few records rolls
            ..StoreConfig::default()
        };
        let mut log = EpochLog::open(&dir, cfg.clone()).unwrap();
        for e in 0..20u64 {
            log.append_full(e, &snap(e), Some(&delta(e as u32)))
                .unwrap();
        }
        assert!(
            log.stats().segments > 1,
            "tiny threshold must roll: {:?}",
            log.stats()
        );
        // Reads hit sealed (mmap-cached) and active segments alike.
        for e in 0..20u64 {
            assert_eq!(log.snapshot_at(e).unwrap().0, snap(e));
        }
        // And a reopen agrees byte for byte.
        let mut again = EpochLog::open(&dir, cfg).unwrap();
        assert_eq!(again.stats(), log.stats());
        for e in 0..20u64 {
            assert_eq!(again.snapshot_at(e).unwrap().0, snap(e));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_to_last_valid_record() {
        let dir = temp_dir("torn");
        {
            let mut log = EpochLog::open(&dir, StoreConfig::default()).unwrap();
            for e in 0..=3u64 {
                log.append_full(e, &snap(e), None).unwrap();
            }
        }
        // Append garbage: a half-written record.
        let seg = segment_path(&dir, 0);
        let valid_len = std::fs::metadata(&seg).unwrap().len();
        {
            let mut f = OpenOptions::new().append(true).open(&seg).unwrap();
            f.write_all(&RECORD_MAGIC).unwrap();
            f.write_all(&[RECORD_VERSION, 1, 0, 0, 0, 0]).unwrap();
        }
        let mut log = EpochLog::open(&dir, StoreConfig::default()).unwrap();
        assert_eq!(log.latest_epoch(), Some(3), "valid prefix survives");
        assert!(log.stats().truncated_tail_bytes > 0);
        assert_eq!(std::fs::metadata(&seg).unwrap().len(), valid_len);
        assert_eq!(log.snapshot_at(3).unwrap().0, snap(3));
        // The log keeps appending cleanly after the cut.
        log.append_full(4, &snap(4), Some(&delta(4))).unwrap();
        let mut again = EpochLog::open(&dir, StoreConfig::default()).unwrap();
        assert_eq!(again.latest_epoch(), Some(4));
        assert_eq!(again.snapshot_at(4).unwrap().0, snap(4));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn flipped_byte_invalidates_exactly_from_there() {
        let dir = temp_dir("flip");
        {
            let mut log = EpochLog::open(&dir, StoreConfig::default()).unwrap();
            for e in 0..=4u64 {
                log.append_full(e, &snap(e), Some(&delta(e as u32)))
                    .unwrap();
            }
        }
        let seg = segment_path(&dir, 0);
        let mut bytes = std::fs::read(&seg).unwrap();
        // Flip a byte well past the first record's frame.
        let hit = bytes.len() / 2;
        bytes[hit] ^= 0xff;
        std::fs::write(&seg, &bytes).unwrap();
        let mut log = EpochLog::open(&dir, StoreConfig::default()).unwrap();
        let latest = log.latest_epoch().expect("a valid prefix survives");
        assert!(latest < 4, "corruption must cut the tail");
        for e in 0..=latest {
            assert_eq!(log.snapshot_at(e).unwrap().0, snap(e), "epoch {e}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fold_since_composes_and_reports_gaps() {
        let dir = temp_dir("fold");
        let mut log = EpochLog::open(&dir, StoreConfig::default()).unwrap();
        log.append_full(0, &snap(0), None).unwrap();
        log.append_full(
            1,
            &snap(1),
            Some(&LinkDelta {
                added: vec![(IxpId(0), Asn(1), Asn(2))],
                removed: vec![],
            }),
        )
        .unwrap();
        log.append_full(
            2,
            &snap(2),
            Some(&LinkDelta {
                added: vec![(IxpId(0), Asn(3), Asn(4))],
                removed: vec![(IxpId(0), Asn(1), Asn(2))],
            }),
        )
        .unwrap();
        let (added, removed) = log.fold_since(0, 2).unwrap();
        // 1-2 added then removed: cancels. 3-4 remains.
        assert_eq!(added, [(IxpId(0), Asn(3), Asn(4))].into_iter().collect());
        assert!(removed.is_empty());
        assert_eq!(log.fold_since(2, 2), Some(Default::default()));
        // Epoch 0 has no delta: nothing before it is answerable…
        assert_eq!(log.oldest_since(2), 0);
        // …and a fold crossing a gap (epoch 0 itself) fails.
        let mut gappy = EpochLog::open(temp_dir("gap"), StoreConfig::default()).unwrap();
        gappy.append_full(5, &snap(5), None).unwrap();
        gappy.append_full(6, &snap(6), Some(&delta(6))).unwrap();
        assert!(gappy.fold_since(4, 6).is_none());
        assert_eq!(gappy.oldest_since(6), 5);
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::remove_dir_all(gappy.dir()).unwrap();
    }

    #[test]
    fn compaction_keeps_every_kth_full_and_all_deltas() {
        let dir = temp_dir("compact");
        let cfg = StoreConfig {
            segment_bytes: 600,
            compact_keep_every: 4,
        };
        let mut log = EpochLog::open(&dir, cfg).unwrap();
        log.append_full(0, &snap(0), None).unwrap();
        for e in 1..=16u64 {
            log.append_full(e, &snap(e), Some(&delta(e as u32)))
                .unwrap();
        }
        let before = log.stats();
        assert!(before.segments > 2);
        let cstats = log.compact().unwrap();
        assert!(cstats.segments_rewritten > 0);
        assert!(cstats.fulls_demoted > 0);
        assert!(cstats.bytes_after < cstats.bytes_before);
        // Every epoch still has delta info ⇒ deep since still answers.
        assert_eq!(log.oldest_since(16), 0);
        let (added, _) = log.fold_since(0, 16).unwrap();
        assert_eq!(added.len(), 16);
        // Multiples of 4 (and the sealed-segment survivors + active
        // tail) keep their fulls; demoted epochs answer None for ?at=.
        let fulls = log.full_epochs();
        for e in fulls.iter() {
            assert_eq!(log.snapshot_at(*e).unwrap().0, snap(*e));
        }
        for e in [0u64, 4, 8, 12] {
            assert!(fulls.contains(&e), "kept multiple {e} in {fulls:?}");
        }
        assert!(
            fulls.contains(&16),
            "the latest full must survive compaction"
        );
        let demoted: Vec<u64> = (0..=16).filter(|e| !fulls.contains(e)).collect();
        assert!(!demoted.is_empty());
        for e in &demoted {
            assert!(log.snapshot_at(*e).is_none(), "epoch {e} demoted");
            assert!(log.delta_of(*e).is_some(), "epoch {e} keeps its delta");
        }
        // Idempotent: a second pass rewrites nothing.
        let again = log.compact().unwrap();
        assert_eq!(again.segments_rewritten, 0);
        // And a reopen agrees.
        let mut re = EpochLog::open(log.dir().to_path_buf(), StoreConfig::default()).unwrap();
        assert_eq!(re.full_epochs(), fulls);
        assert_eq!(re.fold_since(0, 16).unwrap().0.len(), 16);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn append_rejects_non_monotone_epochs() {
        let dir = temp_dir("monotone");
        let mut log = EpochLog::open(&dir, StoreConfig::default()).unwrap();
        log.append_full(3, &snap(3), None).unwrap();
        assert!(log.append_full(3, &snap(3), None).is_err());
        assert!(log.append_full(2, &snap(2), None).is_err());
        log.append_full(4, &snap(4), None).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_dir_opens_empty() {
        let dir = temp_dir("empty");
        let log = EpochLog::open(&dir, StoreConfig::default()).unwrap();
        assert_eq!(log.latest_epoch(), None);
        assert_eq!(log.stats().records, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
