//! Seeded synthetic-Internet generator.
//!
//! Real May-2013 routing data is unavailable, so experiments run against
//! a generated AS-level internet whose *shape* matches what the paper's
//! analyses depend on: a small transit-free clique, a transit hierarchy
//! thinning toward the edge, a stub-dominated population (Fig. 7 finds
//! 55.6 % of inferred links involve a stub), content networks that peer
//! widely (the Google/Akamai repeller cases of §5.5), European regional
//! clustering (13 European IXPs, §5.2's region-specific policies), and a
//! sprinkling of 32-bit ASNs (which force the 16-bit aliasing machinery
//! of §3).
//!
//! Everything is driven by one `u64` seed; identical seeds produce
//! identical internets bit-for-bit.

use std::collections::BTreeMap;

use mlpeer_bgp::{Asn, Prefix};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::graph::{AsGraph, AsInfo, GeoScope, Region, Tier};
use crate::relationship::Relationship;

/// Generator parameters. Defaults approximate the population feeding the
/// paper's 13-IXP European study at 1:1 scale.
#[derive(Debug, Clone)]
pub struct InternetConfig {
    /// RNG seed; everything derives from it.
    pub seed: u64,
    /// Transit-free clique size.
    pub n_tier1: usize,
    /// Large transit providers.
    pub n_tier2: usize,
    /// Regional ISPs.
    pub n_regional: usize,
    /// Content / CDN networks.
    pub n_content: usize,
    /// Stub ASes (no customers).
    pub n_stub: usize,
    /// Fraction of ASes homed in Europe (split over its sub-regions).
    pub europe_fraction: f64,
    /// Fraction of stub/content ASes assigned 32-bit ASNs, exercising
    /// the community 16-bit aliasing path (§3).
    pub frac_32bit_asn: f64,
    /// Probability of a bilateral (non-IXP) p2p edge between two
    /// tier-2s in the same region.
    pub tier2_peering_prob: f64,
    /// Number of sibling families (2–3 ASes each).
    pub sibling_families: usize,
}

impl Default for InternetConfig {
    fn default() -> Self {
        InternetConfig {
            seed: 20130501, // the paper's measurement week
            n_tier1: 12,
            n_tier2: 160,
            n_regional: 600,
            n_content: 180,
            n_stub: 6500,
            europe_fraction: 0.55,
            frac_32bit_asn: 0.06,
            tier2_peering_prob: 0.08,
            sibling_families: 24,
        }
    }
}

impl InternetConfig {
    /// A small configuration for fast unit / integration tests
    /// (~330 ASes).
    pub fn tiny(seed: u64) -> Self {
        InternetConfig {
            seed,
            n_tier1: 4,
            n_tier2: 16,
            n_regional: 40,
            n_content: 12,
            n_stub: 260,
            sibling_families: 3,
            ..InternetConfig::default()
        }
    }

    /// A mid-size configuration for integration tests that need
    /// realistic distributions without full-scale cost (~1.6k ASes).
    pub fn small(seed: u64) -> Self {
        InternetConfig {
            seed,
            n_tier1: 8,
            n_tier2: 60,
            n_regional: 200,
            n_content: 60,
            n_stub: 1300,
            sibling_families: 8,
            ..InternetConfig::default()
        }
    }

    /// A half-scale configuration for serving/indexing benchmarks
    /// (~3.3k ASes): big enough that linear scans visibly lose to
    /// indexed lookups, small enough to build in seconds.
    pub fn medium(seed: u64) -> Self {
        InternetConfig {
            seed,
            n_tier1: 10,
            n_tier2: 100,
            n_regional: 360,
            n_content: 110,
            n_stub: 2700,
            sibling_families: 14,
            ..InternetConfig::default()
        }
    }

    /// A three-quarter-scale configuration (~5.5k ASes): the second
    /// point of the benchmark scale axis, between the serving bench
    /// default and the full Table 2 internet, so `BENCH_*.json` can
    /// show how hot paths scale rather than a single operating point.
    pub fn large(seed: u64) -> Self {
        InternetConfig {
            seed,
            n_tier1: 11,
            n_tier2: 130,
            n_regional: 480,
            n_content: 145,
            n_stub: 4700,
            sibling_families: 19,
            ..InternetConfig::default()
        }
    }
}

/// A generated internet: the relationship graph plus each AS's
/// originated prefixes.
#[derive(Debug, Clone)]
pub struct Internet {
    /// Relationship graph.
    pub graph: AsGraph,
    /// Prefixes originated by each AS (every AS originates ≥ 1).
    pub prefixes: BTreeMap<Asn, Vec<Prefix>>,
    /// The configuration that produced this internet.
    pub config: InternetConfig,
}

impl Internet {
    /// Generate from a configuration.
    pub fn generate(config: InternetConfig) -> Self {
        Generator::new(config).run()
    }

    /// ASNs by tier, in ascending order.
    pub fn asns_by_tier(&self, tier: Tier) -> Vec<Asn> {
        self.graph
            .nodes()
            .filter(|n| n.tier == tier)
            .map(|n| n.asn)
            .collect()
    }

    /// European ASNs, ascending.
    pub fn europe_asns(&self) -> Vec<Asn> {
        self.graph
            .nodes()
            .filter(|n| n.region.is_europe())
            .map(|n| n.asn)
            .collect()
    }

    /// Prefixes originated by an AS (empty slice if unknown).
    pub fn prefixes_of(&self, asn: Asn) -> &[Prefix] {
        self.prefixes.get(&asn).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Total prefix count.
    pub fn prefix_count(&self) -> usize {
        self.prefixes.values().map(Vec::len).sum()
    }
}

/// Deterministic prefix allocator: hands out non-overlapping blocks
/// walking upward from 20.0.0.0.
struct PrefixAllocator {
    cursor: u32,
}

impl PrefixAllocator {
    fn new() -> Self {
        PrefixAllocator { cursor: 20 << 24 }
    }

    fn alloc(&mut self, len: u8) -> Prefix {
        debug_assert!((9..=28).contains(&len));
        let size = 1u32 << (32 - len);
        // Align the cursor up to the block size.
        let aligned = (self.cursor + size - 1) & !(size - 1);
        self.cursor = aligned + size;
        Prefix::from_u32(aligned, len).expect("len validated")
    }
}

struct Generator {
    config: InternetConfig,
    rng: StdRng,
    graph: AsGraph,
    prefixes: BTreeMap<Asn, Vec<Prefix>>,
    alloc: PrefixAllocator,
    tier1: Vec<Asn>,
    tier2: Vec<Asn>,
    regional: Vec<Asn>,
}

impl Generator {
    fn new(config: InternetConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        Generator {
            config,
            rng,
            graph: AsGraph::new(),
            prefixes: BTreeMap::new(),
            alloc: PrefixAllocator::new(),
            tier1: Vec::new(),
            tier2: Vec::new(),
            regional: Vec::new(),
        }
    }

    fn run(mut self) -> Internet {
        self.make_tier1();
        self.make_tier2();
        self.make_regional();
        self.make_content();
        self.make_stubs();
        self.make_siblings();
        Internet {
            graph: self.graph,
            prefixes: self.prefixes,
            config: self.config,
        }
    }

    fn pick_region(&mut self) -> Region {
        if self.rng.gen_bool(self.config.europe_fraction) {
            // Western Europe is the heaviest (hosts the largest IXPs).
            let roll: f64 = self.rng.gen();
            if roll < 0.45 {
                Region::WesternEurope
            } else if roll < 0.75 {
                Region::EasternEurope
            } else if roll < 0.85 {
                Region::NorthernEurope
            } else {
                Region::SouthernEurope
            }
        } else {
            let roll: f64 = self.rng.gen();
            if roll < 0.5 {
                Region::NorthAmerica
            } else if roll < 0.8 {
                Region::AsiaPacific
            } else if roll < 0.9 {
                Region::LatinAmerica
            } else {
                Region::Africa
            }
        }
    }

    fn add_as(
        &mut self,
        asn: Asn,
        tier: Tier,
        region: Region,
        scope: GeoScope,
        npfx: usize,
        plen: u8,
    ) {
        self.graph.add_node(AsInfo {
            asn,
            tier,
            region,
            scope,
        });
        let mut v = Vec::with_capacity(npfx);
        for _ in 0..npfx {
            v.push(self.alloc.alloc(plen));
        }
        self.prefixes.insert(asn, v);
    }

    fn make_tier1(&mut self) {
        for i in 0..self.config.n_tier1 {
            let asn = Asn(100 + i as u32 * 7);
            let region = self.pick_region();
            let npfx = self.rng.gen_range(10..=22);
            self.add_as(asn, Tier::Tier1, region, GeoScope::Global, npfx, 16);
            self.tier1.push(asn);
        }
        // Full clique of p2p edges.
        for i in 0..self.tier1.len() {
            for j in (i + 1)..self.tier1.len() {
                self.graph
                    .add_edge(self.tier1[i], self.tier1[j], Relationship::P2p);
            }
        }
    }

    fn make_tier2(&mut self) {
        for i in 0..self.config.n_tier2 {
            let asn = Asn(1000 + i as u32 * 13);
            let region = self.pick_region();
            let scope = if self.rng.gen_bool(0.45) {
                GeoScope::Global
            } else if region.is_europe() {
                GeoScope::Europe
            } else {
                GeoScope::Regional
            };
            let npfx = self.rng.gen_range(5..=14);
            self.add_as(asn, Tier::Tier2, region, scope, npfx, 18);
            // 2–4 tier-1 providers.
            let nprov = self.rng.gen_range(2..=4.min(self.tier1.len()));
            let provs = self.sample(&self.tier1.clone(), nprov);
            for p in provs {
                self.graph.add_edge(asn, p, Relationship::C2p);
            }
            self.tier2.push(asn);
        }
        // Bilateral tier2 peering (more likely in-region).
        let t2 = self.tier2.clone();
        for i in 0..t2.len() {
            for j in (i + 1)..t2.len() {
                let same = self.graph.node(t2[i]).unwrap().region
                    == self.graph.node(t2[j]).unwrap().region;
                let prob = if same {
                    self.config.tier2_peering_prob * 3.0
                } else {
                    self.config.tier2_peering_prob
                };
                if self.rng.gen_bool(prob.min(1.0)) {
                    self.graph.add_edge(t2[i], t2[j], Relationship::P2p);
                }
            }
        }
    }

    fn make_regional(&mut self) {
        for i in 0..self.config.n_regional {
            let asn = Asn(10_000 + i as u32 * 11);
            let region = self.pick_region();
            let scope = if self.rng.gen_bool(0.2) && region.is_europe() {
                GeoScope::Europe
            } else {
                GeoScope::Regional
            };
            let npfx = self.rng.gen_range(3..=8);
            self.add_as(asn, Tier::Regional, region, scope, npfx, 20);
            let nprov = self.rng.gen_range(1..=3.min(self.tier2.len()));
            let provs = self.pick_providers(&self.tier2.clone(), region, nprov);
            for p in provs {
                self.graph.add_edge(asn, p, Relationship::C2p);
            }
            self.regional.push(asn);
        }
    }

    fn make_content(&mut self) {
        let upstream: Vec<Asn> = self
            .tier1
            .iter()
            .chain(self.tier2.iter())
            .copied()
            .collect();
        for i in 0..self.config.n_content {
            let asn = if self.rng.gen_bool(self.config.frac_32bit_asn) {
                Asn(200_000 + i as u32 * 17)
            } else {
                Asn(30_000 + i as u32 * 9)
            };
            let region = self.pick_region();
            let scope = if self.rng.gen_bool(0.55) {
                GeoScope::Global
            } else {
                GeoScope::Europe
            };
            let npfx = self.rng.gen_range(4..=12);
            self.add_as(asn, Tier::Content, region, scope, npfx, 22);
            let nprov = self.rng.gen_range(2..=3.min(upstream.len()));
            let provs = self.sample(&upstream, nprov);
            for p in provs {
                self.graph.add_edge(asn, p, Relationship::C2p);
            }
        }
    }

    fn make_stubs(&mut self) {
        let upstream: Vec<Asn> = self
            .tier2
            .iter()
            .chain(self.regional.iter())
            .copied()
            .collect();
        for i in 0..self.config.n_stub {
            let asn = if self.rng.gen_bool(self.config.frac_32bit_asn) {
                Asn(300_000 + i as u32 * 3)
            } else {
                Asn(40_000 + i as u32 * 3) // stays below the 63488 bogon floor for i < ~7800
            };
            let asn = if asn.value() >= 63_000 && asn.value() < 196_608 {
                // Overflowed the safe 16-bit window: move to 32-bit space.
                Asn(400_000 + i as u32 * 3)
            } else {
                asn
            };
            let region = self.pick_region();
            let npfx = self.rng.gen_range(1..=3);
            self.add_as(asn, Tier::Stub, region, GeoScope::Regional, npfx, 23);
            let roll: f64 = self.rng.gen();
            let nprov = if roll < 0.55 {
                1
            } else if roll < 0.88 {
                2
            } else {
                3
            };
            let provs = self.pick_providers(&upstream, region, nprov.min(upstream.len()));
            for p in provs {
                self.graph.add_edge(asn, p, Relationship::C2p);
            }
        }
    }

    fn make_siblings(&mut self) {
        let pool: Vec<Asn> = self
            .tier2
            .iter()
            .chain(self.regional.iter())
            .copied()
            .collect();
        for _ in 0..self.config.sibling_families {
            if pool.len() < 2 {
                break;
            }
            let pair = self.sample(&pool, 2);
            // Only add if not already related (keeps the hierarchy a DAG).
            if self.graph.relationship(pair[0], pair[1]).is_none() {
                self.graph.add_edge(pair[0], pair[1], Relationship::Sibling);
            }
        }
    }

    /// Sample `n` distinct elements, deterministic given the RNG state.
    fn sample(&mut self, pool: &[Asn], n: usize) -> Vec<Asn> {
        let mut v: Vec<Asn> = pool.to_vec();
        v.shuffle(&mut self.rng);
        v.truncate(n);
        v
    }

    /// Sample providers preferring the same region (threefold weight).
    fn pick_providers(&mut self, pool: &[Asn], region: Region, n: usize) -> Vec<Asn> {
        let same: Vec<Asn> = pool
            .iter()
            .filter(|a| self.graph.node(**a).is_some_and(|i| i.region == region))
            .copied()
            .collect();
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let from_same = !same.is_empty() && self.rng.gen_bool(0.75);
            let src = if from_same { &same } else { pool };
            for _ in 0..8 {
                let cand = src[self.rng.gen_range(0..src.len())];
                if !out.contains(&cand) {
                    out.push(cand);
                    break;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cone::customer_cone;

    #[test]
    fn generation_is_deterministic() {
        let a = Internet::generate(InternetConfig::tiny(7));
        let b = Internet::generate(InternetConfig::tiny(7));
        assert_eq!(a.graph.edges(), b.graph.edges());
        assert_eq!(a.prefixes, b.prefixes);
        let c = Internet::generate(InternetConfig::tiny(8));
        assert_ne!(
            a.graph.edges(),
            c.graph.edges(),
            "different seed, different internet"
        );
    }

    #[test]
    fn population_counts_match_config() {
        let cfg = InternetConfig::tiny(1);
        let net = Internet::generate(cfg.clone());
        assert_eq!(net.asns_by_tier(Tier::Tier1).len(), cfg.n_tier1);
        assert_eq!(net.asns_by_tier(Tier::Tier2).len(), cfg.n_tier2);
        assert_eq!(net.asns_by_tier(Tier::Regional).len(), cfg.n_regional);
        assert_eq!(net.asns_by_tier(Tier::Content).len(), cfg.n_content);
        assert_eq!(net.asns_by_tier(Tier::Stub).len(), cfg.n_stub);
        assert_eq!(
            net.graph.node_count(),
            cfg.n_tier1 + cfg.n_tier2 + cfg.n_regional + cfg.n_content + cfg.n_stub
        );
    }

    #[test]
    fn tier1_is_a_clique_and_transit_free() {
        let net = Internet::generate(InternetConfig::tiny(2));
        let t1 = net.asns_by_tier(Tier::Tier1);
        for &a in &t1 {
            assert!(
                net.graph.providers_of(a).is_empty(),
                "tier1 {a} has a provider"
            );
            for &b in &t1 {
                if a != b {
                    assert_eq!(net.graph.relationship(a, b), Some(Relationship::P2p));
                }
            }
        }
    }

    #[test]
    fn every_non_tier1_has_a_provider_and_stubs_have_no_customers() {
        let net = Internet::generate(InternetConfig::tiny(3));
        for n in net.graph.nodes() {
            if n.tier != Tier::Tier1 {
                assert!(
                    !net.graph.providers_of(n.asn).is_empty(),
                    "{} ({:?}) has no provider",
                    n.asn,
                    n.tier
                );
            }
            if matches!(n.tier, Tier::Stub | Tier::Content) {
                assert_eq!(net.graph.customer_degree(n.asn), 0);
            }
        }
    }

    #[test]
    fn hierarchy_is_acyclic_under_c2p() {
        // Every AS must be inside some tier-1's customer cone, and no
        // tier-1 may be inside a non-tier-1 cone (no provider loops).
        let net = Internet::generate(InternetConfig::tiny(4));
        let t1 = net.asns_by_tier(Tier::Tier1);
        let mut covered: std::collections::BTreeSet<Asn> = Default::default();
        for &a in &t1 {
            covered.extend(customer_cone(&net.graph, a));
        }
        assert_eq!(
            covered.len(),
            net.graph.node_count(),
            "clique cones cover everyone"
        );
        for n in net.graph.nodes() {
            if n.tier == Tier::Stub {
                let cone = customer_cone(&net.graph, n.asn);
                assert_eq!(cone.len(), 1, "stub {} has a non-trivial cone", n.asn);
            }
        }
    }

    #[test]
    fn prefixes_unique_and_nonempty() {
        let net = Internet::generate(InternetConfig::tiny(5));
        let mut seen = std::collections::BTreeSet::new();
        for (asn, pfxs) in &net.prefixes {
            assert!(!pfxs.is_empty(), "{asn} owns no prefix");
            for p in pfxs {
                assert!(seen.insert(*p), "duplicate prefix {p}");
            }
        }
        assert_eq!(net.prefix_count(), seen.len());
    }

    #[test]
    fn no_bogon_asns_generated() {
        let net = Internet::generate(InternetConfig::tiny(6));
        for n in net.graph.nodes() {
            assert!(n.asn.is_routable(), "generated bogon ASN {}", n.asn);
        }
    }

    #[test]
    fn some_32bit_asns_exist_at_default_rate() {
        let net = Internet::generate(InternetConfig::tiny(9));
        let n32 = net.graph.nodes().filter(|n| !n.asn.is_16bit()).count();
        assert!(n32 > 0, "expected some 32-bit ASNs");
    }

    #[test]
    fn europe_fraction_roughly_holds() {
        let net = Internet::generate(InternetConfig::tiny(10));
        let eu = net.europe_asns().len() as f64;
        let total = net.graph.node_count() as f64;
        let frac = eu / total;
        assert!((0.4..0.7).contains(&frac), "europe fraction {frac}");
    }

    #[test]
    fn allocator_blocks_never_overlap() {
        let mut alloc = PrefixAllocator::new();
        let mut got: Vec<Prefix> = Vec::new();
        for len in [24u8, 22, 24, 16, 28, 20] {
            got.push(alloc.alloc(len));
        }
        for i in 0..got.len() {
            for j in (i + 1)..got.len() {
                assert!(!got[i].overlaps(&got[j]), "{} overlaps {}", got[i], got[j]);
            }
        }
    }
}
