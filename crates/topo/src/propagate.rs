//! Gao-Rexford route propagation.
//!
//! Computes, for one origin AS, the best route every other AS selects
//! under the valley-free export rule (§2.1) with the standard economic
//! preference (customer ≻ peer ≻ provider, then shortest path, then a
//! deterministic tie-break). This is the machinery that decides *what a
//! vantage point can see* — and therefore why most p2p links are
//! invisible in public BGP (§2.3): a peer-learned route is only exported
//! downhill, so only the peers' customer cones ever observe the link.
//!
//! The IXP layer grafts route-server and bilateral peering sessions onto
//! the graph as *extra peer edges*, directed `exporter → receiver` and
//! carrying an opaque tag (which IXP, route server or bilateral). The
//! returned paths record, hop by hop, which kind of edge was used, so
//! the data layer can attach RS communities exactly where a real route
//! would carry them.
//!
//! The three-phase algorithm is the standard one for policy routing:
//!
//! 1. **uphill** — customer routes climb provider (and sibling) edges
//!    from the origin, breadth-first;
//! 2. **peer** — one peer edge may follow: an AS with a customer route
//!    exports it to its peers;
//! 3. **downhill** — routes descend provider→customer (and sibling)
//!    edges in best-first (Dijkstra) order.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap};

use mlpeer_bgp::Asn;

use crate::graph::AsGraph;
use crate::relationship::{LearnedFrom, Relationship};

/// How a hop of a path was traversed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// A provider/customer edge of the relationship graph.
    Transit,
    /// A settlement-free p2p edge of the relationship graph (private
    /// peering or direct cross-connect).
    GraphPeer,
    /// A sibling edge.
    Sibling,
    /// An IXP-layer peer edge; the tag is assigned by the IXP layer
    /// (which IXP, route-server vs bilateral) and is opaque here.
    ExtraPeer(u32),
}

/// The route one AS selected toward the origin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BestRoute {
    /// Preference class the route was learned in.
    pub class: LearnedFrom,
    /// Full AS path `[self, ..., origin]`; for the origin itself this is
    /// `[origin]`.
    pub path: Vec<Asn>,
    /// Edge kinds between consecutive path hops (`path.len() - 1`
    /// entries).
    pub via: Vec<EdgeKind>,
}

impl BestRoute {
    /// Path length in AS hops (edges).
    pub fn hops(&self) -> usize {
        self.via.len()
    }

    /// Does any hop traverse an IXP-layer (extra) peer edge? Returns the
    /// first such hop as `(index, tag)`.
    pub fn first_extra_peer_hop(&self) -> Option<(usize, u32)> {
        self.via.iter().enumerate().find_map(|(i, k)| match k {
            EdgeKind::ExtraPeer(tag) => Some((i, *tag)),
            _ => None,
        })
    }
}

/// Directed extra peer edge: `exporter` announces its customer routes to
/// `receiver` (who treats them as peer-learned).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtraPeerEdge {
    /// The announcing side.
    pub exporter: Asn,
    /// The listening side.
    pub receiver: Asn,
    /// Opaque tag assigned by the IXP layer.
    pub tag: u32,
}

/// Route propagation engine over a graph plus extra peer edges.
///
/// Immutable once built; safe to share across threads for parallel
/// per-origin sweeps.
#[derive(Debug)]
pub struct Propagator<'g> {
    graph: &'g AsGraph,
    /// receiver → [(exporter, tag)], sorted for determinism.
    extra_in: HashMap<Asn, Vec<(Asn, u32)>>,
}

impl<'g> Propagator<'g> {
    /// Engine over the bare relationship graph.
    pub fn new(graph: &'g AsGraph) -> Self {
        Propagator {
            graph,
            extra_in: HashMap::new(),
        }
    }

    /// Engine with IXP-layer peer edges grafted on.
    pub fn with_extra_peers<I>(graph: &'g AsGraph, edges: I) -> Self
    where
        I: IntoIterator<Item = ExtraPeerEdge>,
    {
        let mut extra_in: HashMap<Asn, Vec<(Asn, u32)>> = HashMap::new();
        for e in edges {
            extra_in
                .entry(e.receiver)
                .or_default()
                .push((e.exporter, e.tag));
        }
        for v in extra_in.values_mut() {
            v.sort_unstable();
            v.dedup();
        }
        Propagator { graph, extra_in }
    }

    /// Number of directed extra edges.
    pub fn extra_edge_count(&self) -> usize {
        self.extra_in.values().map(Vec::len).sum()
    }

    /// Compute every AS's best route toward `origin`.
    pub fn routes_to(&self, origin: Asn) -> RouteState {
        let mut best: HashMap<Asn, BestRoute> = HashMap::new();
        if !self.graph.contains(origin) {
            return RouteState {
                origin,
                routes: best,
            };
        }
        best.insert(
            origin,
            BestRoute {
                class: LearnedFrom::Origin,
                path: vec![origin],
                via: Vec::new(),
            },
        );

        // ---- Phase 1: uphill (customer/sibling routes). ----
        // Level-synchronized BFS; per level each new AS picks the parent
        // with the smallest ASN for determinism.
        let mut frontier: Vec<Asn> = vec![origin];
        while !frontier.is_empty() {
            // candidate receiver -> (parent, kind), smallest parent wins.
            let mut next: BTreeMap<Asn, (Asn, EdgeKind)> = BTreeMap::new();
            for &u in &frontier {
                for &(v, rel) in self.graph.neighbors(u) {
                    let kind = match rel {
                        Relationship::C2p => EdgeKind::Transit, // v is u's provider
                        Relationship::Sibling => EdgeKind::Sibling,
                        _ => continue,
                    };
                    if best.contains_key(&v) {
                        continue;
                    }
                    match next.get(&v) {
                        Some(&(p, _)) if p <= u => {}
                        _ => {
                            next.insert(v, (u, kind));
                        }
                    }
                }
            }
            frontier = Vec::with_capacity(next.len());
            for (v, (u, kind)) in next {
                let parent = &best[&u];
                let mut path = Vec::with_capacity(parent.path.len() + 1);
                path.push(v);
                path.extend_from_slice(&parent.path);
                let mut via = Vec::with_capacity(parent.via.len() + 1);
                via.push(kind);
                via.extend_from_slice(&parent.via);
                let class = if kind == EdgeKind::Sibling && parent.class == LearnedFrom::Origin {
                    // Direct sibling of the origin still re-exports freely.
                    LearnedFrom::Sibling
                } else if kind == EdgeKind::Sibling {
                    LearnedFrom::Sibling
                } else {
                    LearnedFrom::Customer
                };
                best.insert(v, BestRoute { class, path, via });
                frontier.push(v);
            }
        }

        // ---- Phase 2: peer routes. ----
        // An AS u with a customer-class (or origin/sibling) route exports
        // it over p2p and extra edges; receivers without a customer route
        // adopt the best candidate. Candidates are evaluated against the
        // *phase-1* state only (a peer route never re-exports to peers).
        let exports_to_peers = |r: &BestRoute| {
            matches!(
                r.class,
                LearnedFrom::Origin | LearnedFrom::Customer | LearnedFrom::Sibling
            )
        };
        let mut peer_candidates: BTreeMap<Asn, (usize, Asn, EdgeKind)> = BTreeMap::new();
        let consider = |cands: &mut BTreeMap<Asn, (usize, Asn, EdgeKind)>,
                        v: Asn,
                        u: Asn,
                        kind: EdgeKind,
                        len: usize| {
            match cands.get(&v) {
                Some(&(l, p, _)) if (l, p) <= (len, u) => {}
                _ => {
                    cands.insert(v, (len, u, kind));
                }
            }
        };
        for (&u, route) in &best {
            if !exports_to_peers(route) {
                continue;
            }
            for &(v, rel) in self.graph.neighbors(u) {
                if rel == Relationship::P2p && !best.contains_key(&v) {
                    consider(
                        &mut peer_candidates,
                        v,
                        u,
                        EdgeKind::GraphPeer,
                        route.path.len(),
                    );
                }
            }
        }
        // Extra (IXP) edges are directed exporter → receiver.
        for (&v, inlist) in &self.extra_in {
            if best.contains_key(&v) {
                continue;
            }
            for &(u, tag) in inlist {
                if let Some(route) = best.get(&u) {
                    if exports_to_peers(route) {
                        consider(
                            &mut peer_candidates,
                            v,
                            u,
                            EdgeKind::ExtraPeer(tag),
                            route.path.len(),
                        );
                    }
                }
            }
        }
        for (v, (_, u, kind)) in peer_candidates {
            let parent = &best[&u];
            let mut path = Vec::with_capacity(parent.path.len() + 1);
            path.push(v);
            path.extend_from_slice(&parent.path);
            let mut via = Vec::with_capacity(parent.via.len() + 1);
            via.push(kind);
            via.extend_from_slice(&parent.via);
            best.insert(
                v,
                BestRoute {
                    class: LearnedFrom::Peer,
                    path,
                    via,
                },
            );
        }

        // ---- Phase 3: downhill (provider routes), best-first. ----
        let mut heap: BinaryHeap<Reverse<(usize, u32, u32)>> = BinaryHeap::new();
        for (&u, r) in &best {
            heap.push(Reverse((r.path.len(), u.value(), u.value())));
        }
        while let Some(Reverse((len, _, u_raw))) = heap.pop() {
            let u = Asn(u_raw);
            let Some(route_u) = best.get(&u) else {
                continue;
            };
            if route_u.path.len() != len {
                continue; // stale heap entry
            }
            let (path_u, via_u) = (route_u.path.clone(), route_u.via.clone());
            for &(v, rel) in self.graph.neighbors(u) {
                let kind = match rel {
                    Relationship::P2c => EdgeKind::Transit, // v is u's customer
                    Relationship::Sibling => EdgeKind::Sibling,
                    _ => continue,
                };
                let cand_len = len + 1;
                let better = match best.get(&v) {
                    None => true,
                    Some(r) => {
                        r.class == LearnedFrom::Provider
                            && (r.path.len() > cand_len
                                || (r.path.len() == cand_len && r.path[1] > u))
                    }
                };
                if better {
                    let mut path = Vec::with_capacity(path_u.len() + 1);
                    path.push(v);
                    path.extend_from_slice(&path_u);
                    let mut via = Vec::with_capacity(via_u.len() + 1);
                    via.push(kind);
                    via.extend_from_slice(&via_u);
                    best.insert(
                        v,
                        BestRoute {
                            class: LearnedFrom::Provider,
                            path,
                            via,
                        },
                    );
                    heap.push(Reverse((cand_len, v.value(), v.value())));
                }
            }
        }

        RouteState {
            origin,
            routes: best,
        }
    }
}

/// The full routing state for one origin: each AS's selected best route.
#[derive(Debug, Clone)]
pub struct RouteState {
    /// The origin all routes lead to.
    pub origin: Asn,
    routes: HashMap<Asn, BestRoute>,
}

impl RouteState {
    /// The best route `asn` selected, if it reaches the origin at all.
    pub fn best(&self, asn: Asn) -> Option<&BestRoute> {
        self.routes.get(&asn)
    }

    /// Number of ASes that can reach the origin.
    pub fn reachable_count(&self) -> usize {
        self.routes.len()
    }

    /// Iterate `(asn, best)` in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (Asn, &BestRoute)> {
        self.routes.iter().map(|(a, r)| (*a, r))
    }

    /// Would `asn` export its best route to a neighbor related by `rel`
    /// (from `asn`'s perspective)? Encodes valley-free export of the
    /// *selected* route — an AS whose best is peer-learned advertises
    /// nothing for this origin to peers or providers.
    pub fn exports_to(&self, asn: Asn, rel: Relationship) -> bool {
        self.routes
            .get(&asn)
            .is_some_and(|r| r.class.may_export_to(rel))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{AsInfo, GeoScope, Region, Tier};

    fn node(asn: u32, tier: Tier) -> AsInfo {
        AsInfo {
            asn: Asn(asn),
            tier,
            region: Region::WesternEurope,
            scope: GeoScope::Global,
        }
    }

    /// Classic Gao-Rexford teaching topology:
    ///
    /// ```text
    ///        1 ----- 2        (tier-1 clique, p2p)
    ///       / \       \
    ///      3   4       5      (customers of 1 / 1 / 2)
    ///      |  p2p\    /
    ///      6      \  /
    ///              7          (customer of 4 and 5; 4 p2p 7? no)
    /// ```
    /// Edges: 3 c2p 1, 4 c2p 1, 5 c2p 2, 6 c2p 3, 7 c2p 4, 7 c2p 5,
    ///        4 p2p 5 (a peer edge below the clique).
    fn teaching_graph() -> AsGraph {
        let mut g = AsGraph::new();
        for (asn, tier) in [
            (1, Tier::Tier1),
            (2, Tier::Tier1),
            (3, Tier::Tier2),
            (4, Tier::Tier2),
            (5, Tier::Tier2),
            (6, Tier::Stub),
            (7, Tier::Stub),
        ] {
            g.add_node(node(asn, tier));
        }
        g.add_edge(Asn(1), Asn(2), Relationship::P2p);
        g.add_edge(Asn(3), Asn(1), Relationship::C2p);
        g.add_edge(Asn(4), Asn(1), Relationship::C2p);
        g.add_edge(Asn(5), Asn(2), Relationship::C2p);
        g.add_edge(Asn(6), Asn(3), Relationship::C2p);
        g.add_edge(Asn(7), Asn(4), Relationship::C2p);
        g.add_edge(Asn(7), Asn(5), Relationship::C2p);
        g.add_edge(Asn(4), Asn(5), Relationship::P2p);
        g
    }

    #[test]
    fn origin_route_is_trivial() {
        let g = teaching_graph();
        let state = Propagator::new(&g).routes_to(Asn(7));
        let r = state.best(Asn(7)).unwrap();
        assert_eq!(r.class, LearnedFrom::Origin);
        assert_eq!(r.path, vec![Asn(7)]);
        assert!(r.via.is_empty());
    }

    #[test]
    fn providers_learn_customer_routes_uphill() {
        let g = teaching_graph();
        let state = Propagator::new(&g).routes_to(Asn(7));
        // 4 and 5 learn directly from their customer 7.
        for p in [4u32, 5] {
            let r = state.best(Asn(p)).unwrap();
            assert_eq!(r.class, LearnedFrom::Customer, "AS{p}");
            assert_eq!(r.path, vec![Asn(p), Asn(7)]);
            assert_eq!(r.via, vec![EdgeKind::Transit]);
        }
        // 1 learns via its customer 4 (uphill, 2 hops).
        let r1 = state.best(Asn(1)).unwrap();
        assert_eq!(r1.class, LearnedFrom::Customer);
        assert_eq!(r1.path, vec![Asn(1), Asn(4), Asn(7)]);
    }

    #[test]
    fn peers_learn_customer_routes_one_hop() {
        let g = teaching_graph();
        let state = Propagator::new(&g).routes_to(Asn(6));
        // Origin 6 → customer route at 3 → at 1; 2 learns over the
        // clique p2p edge, class Peer.
        let r2 = state.best(Asn(2)).unwrap();
        assert_eq!(r2.class, LearnedFrom::Peer);
        assert_eq!(r2.path, vec![Asn(2), Asn(1), Asn(3), Asn(6)]);
        assert_eq!(r2.via[0], EdgeKind::GraphPeer);
    }

    #[test]
    fn provider_routes_descend_and_prefer_customer_first() {
        let g = teaching_graph();
        let state = Propagator::new(&g).routes_to(Asn(6));
        // 7 can reach 6 only downhill (via provider 4 → 1 → 3 → 6 or
        // 5 → 2 → 1 → 3 → 6); 4's route to 6 is provider-learned
        // (4 → 1 → 3 → 6), so 7 gets it downhill.
        let r7 = state.best(Asn(7)).unwrap();
        assert_eq!(r7.class, LearnedFrom::Provider);
        assert_eq!(r7.path, vec![Asn(7), Asn(4), Asn(1), Asn(3), Asn(6)]);
        // Everyone is reachable in a connected valley-free internet.
        assert_eq!(state.reachable_count(), 7);
    }

    #[test]
    fn peer_route_not_reexported_to_peers() {
        // 5's route to 6: 5's provider 2 has a peer route (2-1-3-6);
        // 2 exports it to its customer 5 (provider-learned at 5). But 4,
        // peering with 5, must NOT receive 5's provider route. 4's own
        // route is provider-learned via 1. Check class/via.
        let g = teaching_graph();
        let state = Propagator::new(&g).routes_to(Asn(6));
        let r4 = state.best(Asn(4)).unwrap();
        assert_eq!(r4.class, LearnedFrom::Provider);
        assert_eq!(r4.path, vec![Asn(4), Asn(1), Asn(3), Asn(6)]);
        assert_ne!(r4.via[0], EdgeKind::GraphPeer, "valley through 5 forbidden");
        // And the export predicate says 4 would only pass it downhill.
        assert!(state.exports_to(Asn(4), Relationship::P2c));
        assert!(!state.exports_to(Asn(4), Relationship::P2p));
        assert!(!state.exports_to(Asn(4), Relationship::C2p));
    }

    #[test]
    fn extra_peer_edges_create_visibility() {
        // Without extra edges, 6's routes reach 7 only via providers.
        // Add an IXP-style peer session 6 → 7 (6 exports to 7): 7 now
        // learns 6's origin route directly, tagged.
        let g = teaching_graph();
        let prop = Propagator::with_extra_peers(
            &g,
            [ExtraPeerEdge {
                exporter: Asn(6),
                receiver: Asn(7),
                tag: 42,
            }],
        );
        let state = prop.routes_to(Asn(6));
        let r7 = state.best(Asn(7)).unwrap();
        assert_eq!(r7.class, LearnedFrom::Peer);
        assert_eq!(r7.path, vec![Asn(7), Asn(6)]);
        assert_eq!(r7.via, vec![EdgeKind::ExtraPeer(42)]);
        assert_eq!(r7.first_extra_peer_hop(), Some((0, 42)));
        assert_eq!(prop.extra_edge_count(), 1);
    }

    #[test]
    fn extra_peer_edges_are_directed() {
        // Only 6 → 7 exists; routes toward 7 must NOT use the session in
        // reverse.
        let g = teaching_graph();
        let prop = Propagator::with_extra_peers(
            &g,
            [ExtraPeerEdge {
                exporter: Asn(6),
                receiver: Asn(7),
                tag: 42,
            }],
        );
        let state = prop.routes_to(Asn(7));
        let r6 = state.best(Asn(6)).unwrap();
        assert_eq!(
            r6.class,
            LearnedFrom::Provider,
            "6 must go via its provider 3"
        );
        assert!(r6.via.iter().all(|k| !matches!(k, EdgeKind::ExtraPeer(_))));
    }

    #[test]
    fn customer_route_preferred_over_shorter_peer_route() {
        // 5's route to 7: customer route (5-7, 1 hop) even though a peer
        // route via 4 would also be 2 hops; and 2 prefers its customer
        // route 2-5-7 over the peer route 2-1-4-7.
        let g = teaching_graph();
        let state = Propagator::new(&g).routes_to(Asn(7));
        let r2 = state.best(Asn(2)).unwrap();
        assert_eq!(r2.class, LearnedFrom::Customer);
        assert_eq!(r2.path, vec![Asn(2), Asn(5), Asn(7)]);
    }

    #[test]
    fn sibling_edges_relay_routes() {
        // Make 3 and 4 siblings; then 4 reaches 6 through the sibling
        // link as a sibling route (exportable onward).
        let mut g = teaching_graph();
        g.add_edge(Asn(3), Asn(4), Relationship::Sibling);
        let state = Propagator::new(&g).routes_to(Asn(6));
        let r4 = state.best(Asn(4)).unwrap();
        assert_eq!(r4.path, vec![Asn(4), Asn(3), Asn(6)]);
        assert_eq!(r4.class, LearnedFrom::Sibling);
        assert_eq!(r4.via[0], EdgeKind::Sibling);
        // And 7 now hears it from 4 (customer-of-4 side).
        let r7 = state.best(Asn(7)).unwrap();
        assert_eq!(r7.path, vec![Asn(7), Asn(4), Asn(3), Asn(6)]);
    }

    #[test]
    fn unknown_origin_reaches_nobody() {
        let g = teaching_graph();
        let state = Propagator::new(&g).routes_to(Asn(999));
        assert_eq!(state.reachable_count(), 0);
        assert!(state.best(Asn(1)).is_none());
    }

    #[test]
    fn paths_are_valley_free() {
        use crate::relationship::is_valley_free;
        let g = teaching_graph();
        for origin in [1u32, 2, 3, 4, 5, 6, 7] {
            let state = Propagator::new(&g).routes_to(Asn(origin));
            for (asn, route) in state.iter() {
                // Reconstruct the relationship sequence along the path
                // (observer → origin) and check valley-freedom.
                let rels: Vec<Relationship> = route
                    .path
                    .windows(2)
                    .map(|w| g.relationship(w[0], w[1]).expect("edge exists"))
                    .collect();
                assert!(
                    is_valley_free(&rels),
                    "valley in path {:?} (origin {origin}, at {asn})",
                    route.path
                );
            }
        }
    }
}
