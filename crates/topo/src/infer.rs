//! AS-relationship inference from observed AS paths.
//!
//! A stand-in for the paper's reference \[32\] (Luckie et al., *AS
//! Relationships, Customer Cones, and Validation*, IMC 2013), which the
//! paper uses in two places:
//!
//! * §4.2, RS-setter case 3: when an AS path contains more than two IXP
//!   participants, the p2p edge among them must be located to pick the
//!   setter;
//! * §5.6: links visible in BGP that the relationship algorithm infers
//!   as provider–customer flag candidate *hybrid* relationships.
//!
//! The implementation follows the same ingredients as AS-Rank, sized to
//! this substrate: a transit-degree-seeded clique, apex-split voting
//! over every path, and an upward-visibility test that separates true
//! transit from peering (a customer's routes are re-exported *upward*
//! by its provider; a peer's routes never are).

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use mlpeer_bgp::Asn;

use crate::relationship::Relationship;

/// The inferred relationship dataset.
#[derive(Debug, Clone, Default)]
pub struct InferredRelationships {
    /// Undirected edge `(a, b)` with `a < b`, relationship from `a`'s
    /// perspective.
    rels: BTreeMap<(Asn, Asn), Relationship>,
    /// Transit degree observed per AS.
    transit_degree: HashMap<Asn, usize>,
    /// The inferred clique.
    clique: BTreeSet<Asn>,
}

impl InferredRelationships {
    /// The relationship from `a` toward `b`, if the pair was observed.
    pub fn rel(&self, a: Asn, b: Asn) -> Option<Relationship> {
        if a < b {
            self.rels.get(&(a, b)).copied()
        } else {
            self.rels.get(&(b, a)).map(|r| r.invert())
        }
    }

    /// Is the pair inferred p2p?
    pub fn is_p2p(&self, a: Asn, b: Asn) -> bool {
        self.rel(a, b) == Some(Relationship::P2p)
    }

    /// Number of classified edges.
    pub fn edge_count(&self) -> usize {
        self.rels.len()
    }

    /// Iterate `(a, b, rel-from-a)` with `a < b`, in order.
    pub fn iter(&self) -> impl Iterator<Item = (Asn, Asn, Relationship)> + '_ {
        self.rels.iter().map(|(&(a, b), &r)| (a, b, r))
    }

    /// Observed transit degree of an AS (0 if never seen in the middle
    /// of a path).
    pub fn transit_degree(&self, a: Asn) -> usize {
        self.transit_degree.get(&a).copied().unwrap_or(0)
    }

    /// The inferred transit-free clique.
    pub fn clique(&self) -> &BTreeSet<Asn> {
        &self.clique
    }
}

/// Tuning knobs for the inference.
#[derive(Debug, Clone)]
pub struct InferConfig {
    /// Maximum clique size to seed with.
    pub clique_size: usize,
    /// Fraction of conflicting votes beyond which an edge is classified
    /// sibling.
    pub sibling_conflict_frac: f64,
    /// Degree ratio below which a context-free edge defaults to p2p.
    pub p2p_degree_ratio: f64,
}

impl Default for InferConfig {
    fn default() -> Self {
        InferConfig {
            clique_size: 16,
            sibling_conflict_frac: 0.2,
            p2p_degree_ratio: 2.5,
        }
    }
}

/// Run the inference over a set of (already sanitized, prepend-collapsed)
/// AS paths, each `[vantage, ..., origin]`.
pub fn infer_relationships(paths: &[Vec<Asn>], config: &InferConfig) -> InferredRelationships {
    // ---- Transit degree: distinct neighbors while in the middle. ----
    let mut middle_neighbors: HashMap<Asn, BTreeSet<Asn>> = HashMap::new();
    for path in paths {
        for i in 1..path.len().saturating_sub(1) {
            let entry = middle_neighbors.entry(path[i]).or_default();
            entry.insert(path[i - 1]);
            entry.insert(path[i + 1]);
        }
    }
    let transit_degree: HashMap<Asn, usize> = middle_neighbors
        .iter()
        .map(|(a, s)| (*a, s.len()))
        .collect();
    let deg = |a: Asn| transit_degree.get(&a).copied().unwrap_or(0);

    // ---- Adjacency observed anywhere. ----
    let mut adjacent: HashSet<(Asn, Asn)> = HashSet::new();
    for path in paths {
        for w in path.windows(2) {
            if w[0] != w[1] {
                let (x, y) = if w[0] < w[1] {
                    (w[0], w[1])
                } else {
                    (w[1], w[0])
                };
                adjacent.insert((x, y));
            }
        }
    }

    // ---- Clique: greedy over top transit degrees, mutual adjacency. ----
    let mut by_degree: Vec<Asn> = transit_degree.keys().copied().collect();
    by_degree.sort_unstable_by_key(|a| (std::cmp::Reverse(deg(*a)), a.value()));
    let mut clique: BTreeSet<Asn> = BTreeSet::new();
    for &cand in by_degree.iter().take(config.clique_size * 2) {
        if clique.len() >= config.clique_size {
            break;
        }
        let ok = clique.iter().all(|&m| {
            let key = if m < cand { (m, cand) } else { (cand, m) };
            adjacent.contains(&key)
        });
        if ok {
            clique.insert(cand);
        }
    }

    // ---- Apex-split voting. ----
    // votes[(x, y)] with x < y: (votes "y is customer of x",
    //                            votes "x is customer of y").
    let mut votes: HashMap<(Asn, Asn), (u32, u32)> = HashMap::new();
    // For the upward-visibility pass we remember, per directed edge
    // provider→customer candidate (a, b), the set of ASes observed
    // immediately *before* a on some path (the context x in [x, a, b]).
    let mut context_before: HashMap<(Asn, Asn), BTreeSet<Asn>> = HashMap::new();
    for path in paths {
        if path.len() < 2 {
            continue;
        }
        // Apex = highest transit degree; ties break on the smaller ASN
        // so that the same edge splits the same way in every path
        // (position-based tie-breaks make votes flip-flop).
        let apex = (0..path.len())
            .max_by_key(|&i| (deg(path[i]), std::cmp::Reverse(path[i].value())))
            .unwrap_or(0);
        for i in 0..path.len() - 1 {
            let (a, b) = (path[i], path[i + 1]);
            if a == b {
                continue;
            }
            let key = if a < b { (a, b) } else { (b, a) };
            let entry = votes.entry(key).or_insert((0, 0));
            // i < apex: climbing, so a (nearer observer) is the customer.
            // i >= apex: descending, so b (nearer origin) is the customer.
            let customer_is_b = i >= apex;
            if (key.0 == a) == customer_is_b {
                entry.0 += 1; // "key.1 is customer of key.0"
            } else {
                entry.1 += 1;
            }
            if customer_is_b && i >= 1 {
                context_before
                    .entry((a, b))
                    .or_default()
                    .insert(path[i - 1]);
            }
        }
    }

    // ---- Provisional orientation from votes. ----
    #[derive(Clone, Copy, PartialEq)]
    enum Prov {
        /// key.0 is the provider (key.1 the customer).
        FirstProvider,
        /// key.1 is the provider.
        SecondProvider,
        Sibling,
        Peer,
    }
    let mut provisional: BTreeMap<(Asn, Asn), Prov> = BTreeMap::new();
    for (&key, &(down, up)) in &votes {
        let total = down + up;
        let p = if clique.contains(&key.0) && clique.contains(&key.1) {
            Prov::Peer
        } else if down > 0
            && up > 0
            && (down.min(up) as f64 / total as f64) >= config.sibling_conflict_frac
        {
            Prov::Sibling
        } else if down >= up {
            Prov::FirstProvider
        } else {
            Prov::SecondProvider
        };
        provisional.insert(key, p);
    }

    // ---- Upward-visibility refinement. ----
    // A provisional p2c edge (provider a, customer b) is *confirmed* if
    // some path shows a exporting b's routes upward or sideways: a
    // context [x, a, b] where x is a's provider or peer under the
    // provisional map. If instead the edge is only ever seen from below,
    // and the endpoints have comparable transit degrees, it is
    // reclassified p2p (peer routes are only exported downhill). If
    // *both* directions show upward visibility, each AS transits for the
    // other — the sibling signature.
    let prov_of = |provisional: &BTreeMap<(Asn, Asn), Prov>, x: Asn, a: Asn| -> Option<Prov> {
        let key = if x < a { (x, a) } else { (a, x) };
        provisional.get(&key).copied()
    };
    let upward_visible =
        |provisional: &BTreeMap<(Asn, Asn), Prov>, provider: Asn, customer: Asn| {
            context_before
                .get(&(provider, customer))
                .is_some_and(|ctxs| {
                    ctxs.iter().any(|&x| {
                        // A clique member above the provider is definitionally
                        // upward context.
                        if clique.contains(&x) {
                            return true;
                        }
                        match prov_of(provisional, x, provider) {
                            // x is the provider of `provider` → upward.
                            Some(Prov::FirstProvider) if x < provider => true,
                            Some(Prov::SecondProvider) if provider < x => true,
                            // x peers with `provider` → sideways.
                            Some(Prov::Peer) => true,
                            _ => false,
                        }
                    })
                })
        };
    let mut rels: BTreeMap<(Asn, Asn), Relationship> = BTreeMap::new();
    for (&key, &p) in &provisional {
        let rel: Relationship = match p {
            Prov::Peer => Relationship::P2p,
            Prov::Sibling => Relationship::Sibling,
            Prov::FirstProvider | Prov::SecondProvider => {
                let (provider, customer) = if p == Prov::FirstProvider {
                    (key.0, key.1)
                } else {
                    (key.1, key.0)
                };
                // Clique members are transit-free tops: an edge from a
                // clique member down to a non-member is transit.
                if clique.contains(&provider) && !clique.contains(&customer) {
                    rels.insert(
                        key,
                        if p == Prov::FirstProvider {
                            Relationship::P2c
                        } else {
                            Relationship::C2p
                        },
                    );
                    continue;
                }
                let fwd = upward_visible(&provisional, provider, customer);
                let rev = upward_visible(&provisional, customer, provider);
                let dp = deg(provider).max(1) as f64;
                let dc = deg(customer).max(1) as f64;
                let as_transit = |provider_is_first: bool| {
                    if provider_is_first {
                        Relationship::P2c
                    } else {
                        Relationship::C2p
                    }
                };
                if fwd && rev {
                    // Mutual transit: each exports the other upward.
                    Relationship::Sibling
                } else if fwd {
                    as_transit(p == Prov::FirstProvider)
                } else if rev {
                    // Only the reverse direction shows transit: the vote
                    // majority was misled (sparse data); flip.
                    as_transit(p != Prov::FirstProvider)
                } else if dp / dc >= config.p2p_degree_ratio {
                    as_transit(p == Prov::FirstProvider)
                } else {
                    Relationship::P2p
                }
            }
        };
        rels.insert(key, rel);
    }

    InferredRelationships {
        rels,
        transit_degree,
        clique,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(asns: &[u32]) -> Vec<Asn> {
        asns.iter().map(|&a| Asn(a)).collect()
    }

    /// Star topology: 1 is the big provider; 2, 3, 5, 6 customers; 4
    /// behind 2. Paths as route collectors on 3 and 2 would see them.
    fn star_paths() -> Vec<Vec<Asn>> {
        vec![
            p(&[3, 1, 2, 4]), // 3 climbs to 1, down through 2 to 4
            p(&[3, 1, 2]),
            p(&[2, 1, 3]),
            p(&[4, 2, 1, 3]),
            p(&[4, 2, 1]),
            p(&[3, 1]),
            p(&[3, 1, 5]), // extra customers establish 1's apex degree
            p(&[3, 1, 6]),
            p(&[2, 1, 5]),
            p(&[2, 1, 6]),
        ]
    }

    #[test]
    fn transit_degree_counts_middle_neighbors() {
        let inf = infer_relationships(&star_paths(), &InferConfig::default());
        assert_eq!(inf.transit_degree(Asn(1)), 4); // neighbors 2, 3, 5, 6
        assert_eq!(inf.transit_degree(Asn(2)), 2); // neighbors 1 and 4
        assert_eq!(inf.transit_degree(Asn(4)), 0); // never in the middle
    }

    #[test]
    fn infers_transit_chain() {
        let cfg = InferConfig {
            clique_size: 1,
            ..InferConfig::default()
        };
        let inf = infer_relationships(&star_paths(), &cfg);
        assert_eq!(
            inf.rel(Asn(2), Asn(1)),
            Some(Relationship::C2p),
            "2 is customer of 1"
        );
        assert_eq!(inf.rel(Asn(1), Asn(2)), Some(Relationship::P2c));
        assert_eq!(
            inf.rel(Asn(4), Asn(2)),
            Some(Relationship::C2p),
            "4 is customer of 2"
        );
        assert_eq!(inf.rel(Asn(3), Asn(1)), Some(Relationship::C2p));
        assert_eq!(inf.rel(Asn(1), Asn(99)), None);
    }

    #[test]
    fn peer_edge_between_comparable_ases_detected() {
        // 10 and 20 are two providers of comparable degree that peer;
        // customers 11,12 behind 10 and 21,22 behind 20. The 10–20 edge
        // is only ever seen *from below* (from customers), never from a
        // provider above — the upward-visibility signal for p2p.
        let paths = vec![
            p(&[11, 10, 20, 21]),
            p(&[12, 10, 20, 22]),
            p(&[21, 20, 10, 11]),
            p(&[22, 20, 10, 12]),
            p(&[11, 10, 12]),
            p(&[21, 20, 22]),
        ];
        let cfg = InferConfig {
            clique_size: 0,
            ..InferConfig::default()
        };
        let inf = infer_relationships(&paths, &cfg);
        assert_eq!(
            inf.rel(Asn(10), Asn(20)),
            Some(Relationship::P2p),
            "10–20 should be p2p"
        );
        assert_eq!(inf.rel(Asn(11), Asn(10)), Some(Relationship::C2p));
        assert_eq!(inf.rel(Asn(22), Asn(20)), Some(Relationship::C2p));
    }

    #[test]
    fn true_transit_confirmed_by_upward_visibility() {
        // 30 provides transit to 10 (comparable transit degrees), and
        // 30's own provider 99 sees 10's routes *through* 30 —
        // [.., 99, 30, 10, ..] — the upward-visibility signal that
        // separates transit from peering. 99 is given customers of its
        // own so its apex role is established.
        let paths = vec![
            p(&[96, 99, 30, 10]),
            p(&[97, 99, 30, 10]),
            p(&[98, 99, 30, 10]),
            p(&[99, 30, 10, 11]),
            p(&[11, 10, 30, 99]),
            p(&[12, 10, 30]),
            p(&[10, 30, 99]),
        ];
        // 99 tops the hierarchy, so the clique seed resolves it.
        let cfg = InferConfig {
            clique_size: 1,
            ..InferConfig::default()
        };
        let inf = infer_relationships(&paths, &cfg);
        assert_eq!(
            inf.rel(Asn(10), Asn(30)),
            Some(Relationship::C2p),
            "10 buys from 30"
        );
        assert_eq!(
            inf.rel(Asn(30), Asn(99)),
            Some(Relationship::C2p),
            "30 buys from 99"
        );
    }

    #[test]
    fn clique_members_marked_p2p() {
        // Two giants 1, 2 adjacent with massive degrees; their edge is
        // p2p via the clique even though votes might lean one way.
        let mut paths = vec![p(&[5, 1, 2, 6]), p(&[6, 2, 1, 5])];
        for i in 0..20u32 {
            paths.push(p(&[100 + i, 1, 2, 200 + i]));
            paths.push(p(&[200 + i, 2, 1, 100 + i]));
        }
        let cfg = InferConfig {
            clique_size: 2,
            ..InferConfig::default()
        };
        let inf = infer_relationships(&paths, &cfg);
        assert!(inf.clique().contains(&Asn(1)));
        assert!(inf.clique().contains(&Asn(2)));
        assert!(inf.is_p2p(Asn(1), Asn(2)));
    }

    #[test]
    fn sibling_on_mutual_transit() {
        // Siblings 7 and 8 leak each other's routes to their respective
        // providers 99 and 98 — something neither a customer nor a peer
        // ever does in both directions. 71/81 are their customers;
        // 5xx/6xx give the providers apex-grade degrees.
        let mut paths = vec![
            p(&[99, 7, 8, 81]), // 8's customer routes exported up via 7
            p(&[98, 8, 7, 71]), // 7's customer routes exported up via 8
            p(&[71, 7, 8, 81]),
            p(&[81, 8, 7, 71]),
        ];
        for x in 500..510u32 {
            paths.push(p(&[x, 99, 7, 71]));
        }
        for y in 600..610u32 {
            paths.push(p(&[y, 98, 8, 81]));
        }
        let cfg = InferConfig {
            clique_size: 0,
            ..InferConfig::default()
        };
        let inf = infer_relationships(&paths, &cfg);
        assert_eq!(inf.rel(Asn(7), Asn(8)), Some(Relationship::Sibling));
        assert_eq!(inf.rel(Asn(7), Asn(99)), Some(Relationship::C2p));
        assert_eq!(inf.rel(Asn(8), Asn(98)), Some(Relationship::C2p));
    }

    #[test]
    fn empty_and_trivial_inputs() {
        let inf = infer_relationships(&[], &InferConfig::default());
        assert_eq!(inf.edge_count(), 0);
        let inf = infer_relationships(&[p(&[1])], &InferConfig::default());
        assert_eq!(inf.edge_count(), 0);
        let inf = infer_relationships(&[p(&[1, 1])], &InferConfig::default());
        assert_eq!(inf.edge_count(), 0, "prepending produces no edge");
    }

    #[test]
    fn iter_is_sorted_and_consistent() {
        let inf = infer_relationships(&star_paths(), &InferConfig::default());
        let edges: Vec<_> = inf.iter().collect();
        assert!(!edges.is_empty());
        for w in edges.windows(2) {
            assert!((w[0].0, w[0].1) < (w[1].0, w[1].1));
        }
        for (a, b, r) in edges {
            assert_eq!(inf.rel(a, b), Some(r));
            assert_eq!(inf.rel(b, a), Some(r.invert()));
        }
    }
}
