//! Business relationships between ASes (§2.1).

use serde::{Deserialize, Serialize};

/// The relationship an AS has with a neighbor, *from the AS's own
/// perspective*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Relationship {
    /// The neighbor is my provider (I am the customer): c2p.
    C2p,
    /// The neighbor is my customer (I am the provider): p2c.
    P2c,
    /// Settlement-free peer: p2p.
    P2p,
    /// Same organization: sibling.
    Sibling,
}

impl Relationship {
    /// The same edge from the neighbor's perspective.
    pub const fn invert(self) -> Relationship {
        match self {
            Relationship::C2p => Relationship::P2c,
            Relationship::P2c => Relationship::C2p,
            Relationship::P2p => Relationship::P2p,
            Relationship::Sibling => Relationship::Sibling,
        }
    }

    /// Short label as used in relationship datasets (`-1`/`0`/`1`
    /// conventions aside, we print symbolic names).
    pub const fn label(self) -> &'static str {
        match self {
            Relationship::C2p => "c2p",
            Relationship::P2c => "p2c",
            Relationship::P2p => "p2p",
            Relationship::Sibling => "sibling",
        }
    }
}

/// Where a route was learned from, for export decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum LearnedFrom {
    /// The AS originates the route itself.
    Origin,
    /// Learned from a customer (exportable to anyone).
    Customer,
    /// Learned from a peer (exportable only to customers).
    Peer,
    /// Learned from a provider (exportable only to customers).
    Provider,
    /// Learned from a sibling (treated like a customer route: siblings
    /// freely exchange and re-export each other's routes, §2.1).
    Sibling,
}

impl LearnedFrom {
    /// The valley-free export rule (§2.1): may a route learned this way
    /// be exported to a neighbor with relationship `to` (from the
    /// exporter's perspective)?
    ///
    /// * own/customer/sibling routes → exportable to anyone;
    /// * peer/provider routes → exportable only to customers (and
    ///   siblings, who are the same organization).
    pub const fn may_export_to(self, to: Relationship) -> bool {
        match self {
            LearnedFrom::Origin | LearnedFrom::Customer | LearnedFrom::Sibling => true,
            LearnedFrom::Peer | LearnedFrom::Provider => {
                matches!(to, Relationship::P2c | Relationship::Sibling)
            }
        }
    }

    /// Route-selection preference class: lower is preferred
    /// (customer ≻ peer ≻ provider, the standard economic ordering).
    pub const fn preference(self) -> u8 {
        match self {
            LearnedFrom::Origin => 0,
            LearnedFrom::Customer | LearnedFrom::Sibling => 1,
            LearnedFrom::Peer => 2,
            LearnedFrom::Provider => 3,
        }
    }
}

/// Is a path of relationships valley-free (§2.1)? `rels[i]` is the
/// relationship between hop *i* and hop *i+1* from hop *i*'s
/// perspective, walking from the observer toward the origin.
///
/// The paper's patterns (announcement direction) are
/// `n×c2p (+ p2p) + m×p2c`; reversing the walk and inverting each
/// relationship yields the *same* shape, so in either direction a
/// valley-free path climbs (`c2p*`), crosses at most one peer edge at
/// the apex, and then descends (`p2c*`). Sibling edges may appear
/// anywhere without affecting validity.
pub fn is_valley_free(rels: &[Relationship]) -> bool {
    // States: 0 = climbing (c2p run), 1 = descending (after the apex /
    // peer edge); a peer or upward edge while descending is a valley.
    let mut state = 0u8;
    for &r in rels {
        match (state, r) {
            (_, Relationship::Sibling) => {}
            (0, Relationship::C2p) => {}
            (0, Relationship::P2p) => state = 1,
            (0, Relationship::P2c) => state = 1,
            (_, Relationship::P2c) => {}
            (_, Relationship::C2p) | (_, Relationship::P2p) => return false,
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use Relationship::*;

    #[test]
    fn invert_is_involution() {
        for r in [C2p, P2c, P2p, Sibling] {
            assert_eq!(r.invert().invert(), r);
        }
        assert_eq!(C2p.invert(), P2c);
        assert_eq!(P2p.invert(), P2p);
    }

    #[test]
    fn export_rule_matches_gao_rexford() {
        use LearnedFrom::*;
        // Customer routes go everywhere.
        for to in [C2p, P2c, P2p, Relationship::Sibling] {
            assert!(Customer.may_export_to(to));
            assert!(Origin.may_export_to(to));
            assert!(LearnedFrom::Sibling.may_export_to(to));
        }
        // Peer and provider routes go only to customers/siblings.
        for lf in [Peer, Provider] {
            assert!(lf.may_export_to(P2c));
            assert!(lf.may_export_to(Relationship::Sibling));
            assert!(!lf.may_export_to(C2p));
            assert!(!lf.may_export_to(P2p));
        }
    }

    #[test]
    fn preference_order() {
        use LearnedFrom::*;
        assert!(Origin.preference() < Customer.preference());
        assert!(Customer.preference() < Peer.preference());
        assert!(Peer.preference() < Provider.preference());
        assert_eq!(Customer.preference(), LearnedFrom::Sibling.preference());
    }

    #[test]
    fn valley_free_patterns() {
        // Walking observer→origin: climb, at most one peer edge at the
        // apex, then descend.
        assert!(is_valley_free(&[])); // trivial
        assert!(is_valley_free(&[P2c, P2c])); // origin below the observer
        assert!(is_valley_free(&[C2p, C2p])); // origin above the observer
        assert!(is_valley_free(&[C2p, P2p, P2c])); // up, peer at apex, down
        assert!(is_valley_free(&[C2p, P2c])); // mountain
        assert!(is_valley_free(&[C2p, P2p])); // up then peer to origin
        assert!(is_valley_free(&[P2p, P2c])); // peer at observer's apex
        assert!(is_valley_free(&[Sibling, C2p, Sibling, P2p, P2c, Sibling]));
        // Valleys.
        assert!(!is_valley_free(&[P2c, C2p])); // down then up = valley
        assert!(!is_valley_free(&[P2p, P2p])); // two peer edges
        assert!(!is_valley_free(&[P2c, P2p])); // down then peer
        assert!(!is_valley_free(&[P2p, C2p])); // peer then up
        assert!(!is_valley_free(&[P2c, Sibling, C2p])); // sibling can't hide a valley
    }

    #[test]
    fn labels() {
        assert_eq!(C2p.label(), "c2p");
        assert_eq!(Sibling.label(), "sibling");
    }
}
