//! Customer cones and degrees.
//!
//! The *customer cone* of an AS is the set of ASes reachable by walking
//! provider→customer edges — "the set of ASes in the downstream path of
//! a provider" (§5.5). The paper uses cones (computed with the algorithm
//! of its reference \[32\]) to show that 77 % of EXCLUDE filters block an
//! AS inside the blocker's customer cone, and uses *customer degree*
//! (direct customers) for the stub analyses of Fig. 7.

use std::collections::{BTreeSet, HashMap, VecDeque};

use mlpeer_bgp::Asn;

use crate::graph::AsGraph;

/// The customer cone of `asn`, including `asn` itself (the convention of
/// the paper's reference \[32\]). Walks provider→customer edges only;
/// sibling edges do not extend the cone.
pub fn customer_cone(graph: &AsGraph, asn: Asn) -> BTreeSet<Asn> {
    let mut cone = BTreeSet::new();
    if !graph.contains(asn) {
        return cone;
    }
    let mut queue = VecDeque::new();
    cone.insert(asn);
    queue.push_back(asn);
    while let Some(u) = queue.pop_front() {
        for c in graph.customers_of(u) {
            if cone.insert(c) {
                queue.push_back(c);
            }
        }
    }
    cone
}

/// Is `target` inside `provider`'s customer cone (including
/// `provider == target`)? Early-exits without materializing the cone.
pub fn in_customer_cone(graph: &AsGraph, provider: Asn, target: Asn) -> bool {
    if provider == target {
        return graph.contains(provider);
    }
    let mut seen = BTreeSet::new();
    let mut queue = VecDeque::new();
    seen.insert(provider);
    queue.push_back(provider);
    while let Some(u) = queue.pop_front() {
        for c in graph.customers_of(u) {
            if c == target {
                return true;
            }
            if seen.insert(c) {
                queue.push_back(c);
            }
        }
    }
    false
}

/// Precomputed cones for a set of ASes, for repeated membership tests
/// (the repeller analysis checks every EXCLUDE application).
#[derive(Debug, Default)]
pub struct ConeIndex {
    cones: HashMap<Asn, BTreeSet<Asn>>,
}

impl ConeIndex {
    /// Build cones for every AS in `asns`.
    pub fn build<I: IntoIterator<Item = Asn>>(graph: &AsGraph, asns: I) -> Self {
        let mut cones = HashMap::new();
        for a in asns {
            cones.entry(a).or_insert_with(|| customer_cone(graph, a));
        }
        ConeIndex { cones }
    }

    /// Is `target` in `provider`'s cone? `false` if `provider` was not
    /// indexed.
    pub fn contains(&self, provider: Asn, target: Asn) -> bool {
        self.cones
            .get(&provider)
            .is_some_and(|c| c.contains(&target))
    }

    /// Cone size (0 if not indexed).
    pub fn size(&self, provider: Asn) -> usize {
        self.cones.get(&provider).map_or(0, BTreeSet::len)
    }

    /// The cone set, if indexed.
    pub fn cone(&self, provider: Asn) -> Option<&BTreeSet<Asn>> {
        self.cones.get(&provider)
    }
}

/// Customer-degree distribution helpers for Fig. 7.
///
/// Given a set of links, returns for each link the smaller and larger
/// customer degree of its two endpoints.
pub fn link_degree_pairs(
    graph: &AsGraph,
    links: impl IntoIterator<Item = (Asn, Asn)>,
) -> Vec<(usize, usize)> {
    links
        .into_iter()
        .map(|(a, b)| {
            let da = graph.customer_degree(a);
            let db = graph.customer_degree(b);
            (da.min(db), da.max(db))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{AsInfo, GeoScope, Region, Tier};
    use crate::relationship::Relationship;

    /// 1 → 2 → {3, 4}; 5 isolated peer of 1.
    ///     (arrows point provider → customer)
    fn chain() -> AsGraph {
        let mut g = AsGraph::new();
        for (asn, tier) in [
            (1, Tier::Tier1),
            (2, Tier::Tier2),
            (3, Tier::Stub),
            (4, Tier::Stub),
            (5, Tier::Tier1),
        ] {
            g.add_node(AsInfo {
                asn: Asn(asn),
                tier,
                region: Region::WesternEurope,
                scope: GeoScope::Global,
            });
        }
        g.add_edge(Asn(2), Asn(1), Relationship::C2p);
        g.add_edge(Asn(3), Asn(2), Relationship::C2p);
        g.add_edge(Asn(4), Asn(2), Relationship::C2p);
        g.add_edge(Asn(1), Asn(5), Relationship::P2p);
        g
    }

    #[test]
    fn cone_is_transitive_closure_of_customers() {
        let g = chain();
        let cone1 = customer_cone(&g, Asn(1));
        assert_eq!(
            cone1.into_iter().collect::<Vec<_>>(),
            vec![Asn(1), Asn(2), Asn(3), Asn(4)]
        );
        let cone2 = customer_cone(&g, Asn(2));
        assert_eq!(cone2.len(), 3);
        let cone3 = customer_cone(&g, Asn(3));
        assert_eq!(cone3.into_iter().collect::<Vec<_>>(), vec![Asn(3)]);
    }

    #[test]
    fn peer_edges_do_not_extend_cone() {
        let g = chain();
        assert!(!customer_cone(&g, Asn(1)).contains(&Asn(5)));
        assert_eq!(customer_cone(&g, Asn(5)).len(), 1);
    }

    #[test]
    fn membership_early_exit_matches_full_cone() {
        let g = chain();
        for p in [1u32, 2, 3, 4, 5] {
            let cone = customer_cone(&g, Asn(p));
            for t in [1u32, 2, 3, 4, 5] {
                assert_eq!(
                    in_customer_cone(&g, Asn(p), Asn(t)),
                    cone.contains(&Asn(t)),
                    "provider {p}, target {t}"
                );
            }
        }
    }

    #[test]
    fn missing_as_has_empty_cone() {
        let g = chain();
        assert!(customer_cone(&g, Asn(99)).is_empty());
        assert!(!in_customer_cone(&g, Asn(99), Asn(1)));
        assert!(!in_customer_cone(&g, Asn(99), Asn(99)));
    }

    #[test]
    fn cone_index() {
        let g = chain();
        let idx = ConeIndex::build(&g, [Asn(1), Asn(2)]);
        assert!(idx.contains(Asn(1), Asn(4)));
        assert!(idx.contains(Asn(2), Asn(3)));
        assert!(!idx.contains(Asn(2), Asn(1)));
        assert!(!idx.contains(Asn(5), Asn(5)), "AS 5 not indexed");
        assert_eq!(idx.size(Asn(1)), 4);
        assert_eq!(idx.size(Asn(5)), 0);
        assert!(idx.cone(Asn(2)).is_some());
    }

    #[test]
    fn degree_pairs_order_small_large() {
        let g = chain();
        let pairs = link_degree_pairs(&g, [(Asn(1), Asn(3)), (Asn(3), Asn(4))]);
        // deg(1)=1 (customer 2), deg(3)=0.
        assert_eq!(pairs[0], (0, 1));
        assert_eq!(pairs[1], (0, 0)); // stub–stub link
    }
}
