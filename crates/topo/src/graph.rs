//! The typed AS graph.
//!
//! Nodes carry the metadata the paper's analyses need: a coarse *tier*
//! (drives the generator and the degree analyses of Fig. 7), a home
//! *region* (drives IXP membership and the regional-policy findings of
//! §5.2), and a self-reported *geographic scope* (the PeeringDB field
//! behind Fig. 13). Edges carry business relationships.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

use mlpeer_bgp::Asn;
use serde::{Deserialize, Serialize};

use crate::relationship::Relationship;

/// Coarse role of an AS in the routing hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Tier {
    /// Transit-free backbone; member of the top clique.
    Tier1,
    /// Large transit provider buying from Tier-1s.
    Tier2,
    /// Regional ISP buying from Tier-2s.
    Regional,
    /// Content/CDN network (Google/Akamai-like in §5.5).
    Content,
    /// Stub: no customers of its own.
    Stub,
}

/// Geographic region an AS operates from. European sub-regions are
/// modeled separately because the paper's 13 IXPs cluster in Western,
/// Eastern, Northern and Southern Europe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Region {
    /// Western Europe (DE-CIX, AMS-IX, LINX, France-IX, LONAP, ECIX).
    WesternEurope,
    /// Eastern Europe (MSK-IX, PLIX, SPB-IX, DTEL-IX, BIX.BG).
    EasternEurope,
    /// Northern Europe (STHIX).
    NorthernEurope,
    /// Southern Europe (TOP-IX).
    SouthernEurope,
    /// North America.
    NorthAmerica,
    /// Asia / Pacific.
    AsiaPacific,
    /// Latin America.
    LatinAmerica,
    /// Africa.
    Africa,
}

impl Region {
    /// All regions, in a fixed order.
    pub const ALL: [Region; 8] = [
        Region::WesternEurope,
        Region::EasternEurope,
        Region::NorthernEurope,
        Region::SouthernEurope,
        Region::NorthAmerica,
        Region::AsiaPacific,
        Region::LatinAmerica,
        Region::Africa,
    ];

    /// Is this a European sub-region?
    pub const fn is_europe(self) -> bool {
        matches!(
            self,
            Region::WesternEurope
                | Region::EasternEurope
                | Region::NorthernEurope
                | Region::SouthernEurope
        )
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Region::WesternEurope => "Western Europe",
            Region::EasternEurope => "Eastern Europe",
            Region::NorthernEurope => "Northern Europe",
            Region::SouthernEurope => "Southern Europe",
            Region::NorthAmerica => "North America",
            Region::AsiaPacific => "Asia/Pacific",
            Region::LatinAmerica => "Latin America",
            Region::Africa => "Africa",
        };
        f.write_str(s)
    }
}

/// Self-reported geographic scope, the PeeringDB field used by the
/// repeller analysis (Fig. 13: Global / Europe / Regional / N/A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum GeoScope {
    /// Operates worldwide.
    Global,
    /// Operates across Europe.
    Europe,
    /// Operates in one region only.
    Regional,
    /// Did not register a scope in PeeringDB.
    NotReported,
}

impl fmt::Display for GeoScope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            GeoScope::Global => "Global",
            GeoScope::Europe => "Europe",
            GeoScope::Regional => "Regional",
            GeoScope::NotReported => "N/A",
        };
        f.write_str(s)
    }
}

/// Node metadata for one AS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AsInfo {
    /// The AS number.
    pub asn: Asn,
    /// Hierarchy role.
    pub tier: Tier,
    /// Home region.
    pub region: Region,
    /// Self-reported geographic scope.
    pub scope: GeoScope,
}

/// The AS-level graph: typed nodes plus relationship-labeled edges.
///
/// Adjacency stores each edge twice, once per endpoint, with the
/// relationship *from that endpoint's perspective*; [`AsGraph::add_edge`]
/// maintains the invariant that the two views are inverses.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AsGraph {
    nodes: BTreeMap<Asn, AsInfo>,
    adj: HashMap<Asn, Vec<(Asn, Relationship)>>,
    edge_count: usize,
}

impl AsGraph {
    /// Empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert (or update) a node.
    pub fn add_node(&mut self, info: AsInfo) {
        self.adj.entry(info.asn).or_default();
        self.nodes.insert(info.asn, info);
    }

    /// Node metadata, if present.
    pub fn node(&self, asn: Asn) -> Option<&AsInfo> {
        self.nodes.get(&asn)
    }

    /// Does the graph contain this AS?
    pub fn contains(&self, asn: Asn) -> bool {
        self.nodes.contains_key(&asn)
    }

    /// Iterate nodes in ASN order (deterministic).
    pub fn nodes(&self) -> impl Iterator<Item = &AsInfo> {
        self.nodes.values()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Add an edge; `rel` is the relationship from `a`'s perspective
    /// (e.g. `C2p` means `a` is a customer of `b`). Both endpoints must
    /// already be nodes. Re-adding an existing pair updates the
    /// relationship. Returns `true` if the edge was new.
    ///
    /// # Panics
    /// If either endpoint is not a node, or `a == b`.
    pub fn add_edge(&mut self, a: Asn, b: Asn, rel: Relationship) -> bool {
        assert!(a != b, "self-loop edge at {a}");
        assert!(self.nodes.contains_key(&a), "unknown AS {a}");
        assert!(self.nodes.contains_key(&b), "unknown AS {b}");
        let new = Self::set_half_edge(self.adj.get_mut(&a).expect("node a"), b, rel);
        Self::set_half_edge(self.adj.get_mut(&b).expect("node b"), a, rel.invert());
        if new {
            self.edge_count += 1;
        }
        new
    }

    fn set_half_edge(list: &mut Vec<(Asn, Relationship)>, to: Asn, rel: Relationship) -> bool {
        match list.iter_mut().find(|(n, _)| *n == to) {
            Some(slot) => {
                slot.1 = rel;
                false
            }
            None => {
                list.push((to, rel));
                true
            }
        }
    }

    /// The relationship from `a` toward `b`, if the edge exists.
    pub fn relationship(&self, a: Asn, b: Asn) -> Option<Relationship> {
        self.adj
            .get(&a)?
            .iter()
            .find(|(n, _)| *n == b)
            .map(|(_, r)| *r)
    }

    /// All neighbors of `a` with the relationship from `a`'s
    /// perspective.
    pub fn neighbors(&self, a: Asn) -> &[(Asn, Relationship)] {
        self.adj.get(&a).map(Vec::as_slice).unwrap_or(&[])
    }

    /// `a`'s providers.
    pub fn providers_of(&self, a: Asn) -> Vec<Asn> {
        self.neighbors_by(a, Relationship::C2p)
    }

    /// `a`'s customers.
    pub fn customers_of(&self, a: Asn) -> Vec<Asn> {
        self.neighbors_by(a, Relationship::P2c)
    }

    /// `a`'s settlement-free peers (graph edges only — route-server
    /// peerings live in the IXP layer, not here).
    pub fn peers_of(&self, a: Asn) -> Vec<Asn> {
        self.neighbors_by(a, Relationship::P2p)
    }

    /// `a`'s siblings.
    pub fn siblings_of(&self, a: Asn) -> Vec<Asn> {
        self.neighbors_by(a, Relationship::Sibling)
    }

    fn neighbors_by(&self, a: Asn, rel: Relationship) -> Vec<Asn> {
        let mut v: Vec<Asn> = self
            .neighbors(a)
            .iter()
            .filter(|(_, r)| *r == rel)
            .map(|(n, _)| *n)
            .collect();
        v.sort_unstable();
        v
    }

    /// Direct customer count (the *customer degree* of Fig. 7).
    pub fn customer_degree(&self, a: Asn) -> usize {
        self.neighbors(a)
            .iter()
            .filter(|(_, r)| *r == Relationship::P2c)
            .count()
    }

    /// Is `a` a stub in the business sense used by the paper: an AS
    /// providing transit to nobody?
    pub fn is_stub(&self, a: Asn) -> bool {
        self.customer_degree(a) == 0
    }

    /// Every undirected edge once, as `(a, b, rel-from-a)` with `a < b`.
    pub fn edges(&self) -> Vec<(Asn, Asn, Relationship)> {
        let mut out = Vec::with_capacity(self.edge_count);
        for (&a, list) in &self.adj {
            for &(b, rel) in list {
                if a < b {
                    out.push((a, b, rel));
                }
            }
        }
        out.sort_unstable_by_key(|&(a, b, _)| (a, b));
        out
    }

    /// All ASNs in order.
    pub fn asns(&self) -> Vec<Asn> {
        self.nodes.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(asn: u32, tier: Tier) -> AsInfo {
        AsInfo {
            asn: Asn(asn),
            tier,
            region: Region::WesternEurope,
            scope: GeoScope::Global,
        }
    }

    fn triangle() -> AsGraph {
        // 1 provides to 2 and 3; 2 and 3 peer.
        let mut g = AsGraph::new();
        g.add_node(node(1, Tier::Tier1));
        g.add_node(node(2, Tier::Tier2));
        g.add_node(node(3, Tier::Tier2));
        g.add_edge(Asn(2), Asn(1), Relationship::C2p);
        g.add_edge(Asn(3), Asn(1), Relationship::C2p);
        g.add_edge(Asn(2), Asn(3), Relationship::P2p);
        g
    }

    #[test]
    fn edge_views_are_inverses() {
        let g = triangle();
        assert_eq!(g.relationship(Asn(2), Asn(1)), Some(Relationship::C2p));
        assert_eq!(g.relationship(Asn(1), Asn(2)), Some(Relationship::P2c));
        assert_eq!(g.relationship(Asn(2), Asn(3)), Some(Relationship::P2p));
        assert_eq!(g.relationship(Asn(3), Asn(2)), Some(Relationship::P2p));
        assert_eq!(g.relationship(Asn(1), Asn(99)), None);
    }

    #[test]
    fn role_queries() {
        let g = triangle();
        assert_eq!(g.providers_of(Asn(2)), vec![Asn(1)]);
        assert_eq!(g.customers_of(Asn(1)), vec![Asn(2), Asn(3)]);
        assert_eq!(g.peers_of(Asn(2)), vec![Asn(3)]);
        assert_eq!(g.customer_degree(Asn(1)), 2);
        assert!(g.is_stub(Asn(2)));
        assert!(!g.is_stub(Asn(1)));
    }

    #[test]
    fn counts_and_edge_list() {
        let g = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        let edges = g.edges();
        assert_eq!(edges.len(), 3);
        // Deterministic order, a < b, relationship from a.
        assert_eq!(edges[0], (Asn(1), Asn(2), Relationship::P2c));
        assert_eq!(edges[2], (Asn(2), Asn(3), Relationship::P2p));
    }

    #[test]
    fn re_adding_updates_relationship() {
        let mut g = triangle();
        assert!(!g.add_edge(Asn(2), Asn(3), Relationship::C2p));
        assert_eq!(g.edge_count(), 3, "edge count unchanged on update");
        assert_eq!(g.relationship(Asn(3), Asn(2)), Some(Relationship::P2c));
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rejects_self_loop() {
        let mut g = triangle();
        g.add_edge(Asn(1), Asn(1), Relationship::P2p);
    }

    #[test]
    #[should_panic(expected = "unknown AS")]
    fn rejects_dangling_edge() {
        let mut g = triangle();
        g.add_edge(Asn(1), Asn(42), Relationship::P2c);
    }

    #[test]
    fn sibling_edges() {
        let mut g = triangle();
        g.add_node(node(4, Tier::Tier2));
        g.add_edge(Asn(2), Asn(4), Relationship::Sibling);
        assert_eq!(g.siblings_of(Asn(2)), vec![Asn(4)]);
        assert_eq!(g.siblings_of(Asn(4)), vec![Asn(2)]);
    }

    #[test]
    fn region_helpers() {
        assert!(Region::WesternEurope.is_europe());
        assert!(Region::SouthernEurope.is_europe());
        assert!(!Region::NorthAmerica.is_europe());
        assert_eq!(Region::ALL.len(), 8);
        assert_eq!(GeoScope::NotReported.to_string(), "N/A");
        assert_eq!(Region::AsiaPacific.to_string(), "Asia/Pacific");
    }
}
