//! # `mlpeer-topo` — AS-level topology substrate
//!
//! The paper's inference pipeline runs against the Internet's AS-level
//! routing system. This crate rebuilds that substrate:
//!
//! * [`relationship`] — the business-relationship model (§2.1):
//!   customer-to-provider, peer-to-peer, sibling, and the valley-free
//!   export rule that makes most p2p links invisible (§2.3).
//! * [`graph`] — the typed AS graph with tiers, regions and geographic
//!   scopes (PeeringDB-style, for Fig. 13).
//! * [`gen`] — a seeded synthetic-Internet generator: tier-1 clique,
//!   transit hierarchy, regional ISPs, stubs and content networks,
//!   calibrated to the stub-heavy degree mix the paper reports (Fig. 7).
//! * [`cone`] — customer cones and customer degrees (§5.5 uses cones to
//!   explain 77 % of EXCLUDE filters).
//! * [`propagate`] — Gao-Rexford route propagation with pluggable
//!   "extra" peer edges so the IXP layer can graft route-server and
//!   bilateral peering sessions onto the graph; produces the per-origin
//!   routing state that collector views, looking-glass RIBs and the
//!   public-BGP baseline are derived from.
//! * [`infer`] — a CAIDA-style relationship-inference algorithm over
//!   observed AS paths, standing in for reference \[32\]; the paper uses
//!   it to pin-point RS setters (§4.2) and for the hybrid-relationship
//!   study (§5.6).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cone;
pub mod gen;
pub mod graph;
pub mod infer;
pub mod propagate;
pub mod relationship;

pub use graph::{AsGraph, AsInfo, GeoScope, Region, Tier};
pub use relationship::Relationship;
