//! The durable-store bench, recorded to `BENCH_store.json` at the repo
//! root with a scale axis (`Scale::Small` and `Scale::Medium`):
//!
//! 1. **append throughput** — publish a run of epochs through
//!    [`DurableStore::append_epoch`] and record epochs/s and MB/s of
//!    persisted segment bytes (each append frames, checksums, and
//!    flushes one full snapshot plus its delta);
//! 2. **recovery time vs epoch count** — close and reopen the log at
//!    growing epoch counts, timing `open` (the full scan + checksum
//!    validation pass) plus `latest()` (decode + index rebuild of the
//!    newest snapshot), and asserting the recovered ETag matches what
//!    was appended;
//! 3. **`?at=` time travel vs live cache hit** — boot a real server on
//!    the recovered store and compare `GET /v1/ixps` (pre-rendered
//!    body cache) against `GET /v1/ixps?at=<old>` (on-demand revive
//!    from disk), recording the median latency of each.
//!
//! `MLPEER_BENCH_SMOKE=1` runs a reduced pass at `Scale::Tiny` with no
//! JSON rewrite, asserting the same floors — the CI bench-smoke job
//! uses it to keep recovery correctness and the append floor enforced
//! on every PR.

use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};

use mlpeer::live::LinkDelta;
use mlpeer_bench::Scale;
use mlpeer_ixp::Ecosystem;
use mlpeer_serve::{spawn_server, DurableStore, Snapshot, SnapshotStore};

/// Acceptance floor: appends must clear this rate at every scale (an
/// append is an in-memory encode + buffered write + flush; fsync only
/// on segment seal).
const APPEND_EPS_FLOOR: f64 = 20.0;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mlpeer-bench-store-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// One GET on a fresh connection; returns (status, elapsed).
fn timed_get(addr: SocketAddr, path: &str) -> (u16, Duration) {
    let t = Instant::now();
    let mut s = TcpStream::connect(addr).unwrap();
    write!(
        s,
        "GET {path} HTTP/1.1\r\nHost: b\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let parts = mlpeer_serve::http::read_response(&mut std::io::BufReader::new(s)).unwrap();
    (parts.status, t.elapsed())
}

/// Median request latency over `n` fresh-connection GETs.
fn median_us(addr: SocketAddr, path: &str, n: usize, expect: u16) -> u64 {
    let mut samples: Vec<u64> = (0..n)
        .map(|_| {
            let (status, d) = timed_get(addr, path);
            assert_eq!(status, expect, "{path}");
            d.as_micros() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// A tiny synthetic delta so every appended epoch carries one — the
/// shape `fold_since` and compaction work over.
fn nudge_delta(e: u64) -> LinkDelta {
    use mlpeer_bgp::Asn;
    use mlpeer_ixp::ixp::IxpId;
    LinkDelta {
        added: vec![(
            IxpId(0),
            Asn(9_000_000 + e as u32),
            Asn(9_000_001 + e as u32),
        )],
        removed: vec![],
    }
}

struct ScaleResult {
    json: serde_json::Value,
}

fn bench_at(scale: Scale, seed: u64, epochs: u64, checkpoints: &[u64]) -> ScaleResult {
    eprintln!("# generating ecosystem ({scale:?})…");
    let eco = Ecosystem::generate(scale.config(seed));
    let mut snapshot = Snapshot::of_pipeline(&eco, scale, seed);
    let etag = snapshot.etag.clone();
    let dir = temp_dir(scale.word());

    // -------- 1. append throughput --------
    let store = DurableStore::open(&dir).unwrap();
    let t = Instant::now();
    for e in 0..epochs {
        snapshot.epoch = e;
        let delta = (e > 0).then(|| nudge_delta(e));
        store.append_epoch(&snapshot, delta.as_ref()).unwrap();
    }
    let append_elapsed = t.elapsed();
    let stats = store.stats();
    let eps = epochs as f64 / append_elapsed.as_secs_f64();
    let mbps = stats.bytes as f64 / 1e6 / append_elapsed.as_secs_f64();
    eprintln!(
        "# append: {epochs} epochs in {:.1}ms → {eps:.0} epochs/s, {mbps:.1} MB/s \
         ({} segments, {} bytes)",
        append_elapsed.as_secs_f64() * 1e3,
        stats.segments,
        stats.bytes
    );
    assert!(
        eps >= APPEND_EPS_FLOOR,
        "acceptance: appends must clear {APPEND_EPS_FLOOR:.0} epochs/s (got {eps:.1})"
    );
    drop(store);

    // -------- 2. recovery time vs epoch count --------
    // Reopen at growing truncation points by replaying a fresh log; the
    // final point recovers the full history built above.
    let mut recovery = Vec::new();
    for &count in checkpoints.iter().filter(|&&c| c <= epochs) {
        let cdir = temp_dir(&format!("{}-recover-{count}", scale.word()));
        let store = DurableStore::open(&cdir).unwrap();
        for e in 0..count {
            snapshot.epoch = e;
            let delta = (e > 0).then(|| nudge_delta(e));
            store.append_epoch(&snapshot, delta.as_ref()).unwrap();
        }
        drop(store);
        let t = Instant::now();
        let reopened = DurableStore::open(&cdir).unwrap();
        let open_ms = t.elapsed().as_secs_f64() * 1e3;
        let t = Instant::now();
        let latest = reopened.latest().expect("recover latest epoch");
        let latest_ms = t.elapsed().as_secs_f64() * 1e3;
        assert_eq!(latest.epoch, count - 1);
        assert_eq!(
            latest.etag, etag,
            "recovered snapshot must be byte-identical"
        );
        eprintln!("# recovery at {count} epochs: open {open_ms:.1}ms, latest() {latest_ms:.1}ms");
        recovery.push(serde_json::json!({
            "epochs": count,
            "open_ms": open_ms,
            "latest_ms": latest_ms,
        }));
        let _ = std::fs::remove_dir_all(&cdir);
    }

    // -------- 3. ?at= revive vs live cache hit --------
    let durable = Arc::new(DurableStore::open(&dir).unwrap());
    let recovered = durable.latest().unwrap();
    let snap_store = SnapshotStore::resume(recovered, 8);
    snap_store.attach_durable(Arc::clone(&durable)).unwrap();
    let mut server = spawn_server(snap_store, "127.0.0.1:0", 2).unwrap();
    let reps = 12;
    let live_us = median_us(server.addr, "/v1/ixps", reps, 200);
    let at = epochs / 2;
    let travel_us = median_us(server.addr, &format!("/v1/ixps?at={at}"), reps, 200);
    eprintln!("# GET /v1/ixps: live cache hit p50 {live_us}us, ?at={at} revive p50 {travel_us}us");
    server.stop();
    let _ = std::fs::remove_dir_all(&dir);

    ScaleResult {
        json: serde_json::json!({
            "scale": scale.word(),
            "append": serde_json::json!({
                "epochs": epochs,
                "elapsed_ms": append_elapsed.as_millis() as u64,
                "epochs_per_sec": eps,
                "mb_per_sec": mbps,
                "segments": stats.segments,
                "bytes": stats.bytes,
            }),
            "recovery": recovery,
            "time_travel": serde_json::json!({
                "requests": reps,
                "live_hit_p50_us": live_us,
                "at_revive_p50_us": travel_us,
            }),
        }),
    }
}

fn bench_store(_c: &mut Criterion) {
    let seed = 20130501u64;
    if std::env::var("MLPEER_BENCH_SMOKE").is_ok() {
        eprintln!("# smoke: durable store pass at Scale::Tiny…");
        bench_at(Scale::Tiny, seed, 8, &[8]);
        return;
    }
    let results: Vec<serde_json::Value> = [
        bench_at(Scale::Small, seed, 64, &[16, 64]),
        bench_at(Scale::Medium, seed, 32, &[8, 32]),
    ]
    .into_iter()
    .map(|r| r.json)
    .collect();
    let report = serde_json::json!({
        "bench": "mlpeer-store durable epoch log",
        "seed": seed,
        "scales": results,
    });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_store.json");
    std::fs::write(path, serde_json::to_string_pretty(&report).unwrap())
        .expect("write BENCH_store.json");
    println!("wrote {path}");
}

criterion_group!(benches, bench_store);
criterion_main!(benches);
