//! The serving bench, recorded to `BENCH_serve.json` at the repo root
//! with a scale axis (`Scale::Medium` and `Scale::Large`):
//!
//! 1. **index vs linear scan** — member and prefix lookups through
//!    [`LinkIndex`] against the [`scan`] reference implementations,
//!    after asserting byte-identical results (the acceptance criterion
//!    asks for ≥ 10× on indexed lookups);
//! 2. **HTTP load** — boot a real server on an ephemeral port and run
//!    the in-repo load generator over the query endpoints, recording
//!    throughput and latency percentiles, plus a 304-revalidation run.
//!    Since the pre-rendered body cache landed, the 200 hot path is a
//!    lookup + memcpy — the recorded latencies measure that path.
//! 3. **keep-alive concurrency sweep** (Medium only) — boot the epoll
//!    reactor engine and hold 64 / 256 / 1024 / 4096 keep-alive
//!    connections open while a bounded worker pool drives requests
//!    across them (the loadgen *hold* mode). The `connections` axis in
//!    `BENCH_serve.json` records throughput per population; the bench
//!    asserts the ≥ 15k rps floor at 1024 held connections.
//!
//! `MLPEER_BENCH_SMOKE=1` skips the scales and the JSON rewrite and
//! runs only the 1024-connection reactor hold at `Scale::Small`,
//! still asserting the rps floor — the CI bench-smoke job uses it to
//! keep the floor enforced on every PR.

use std::collections::BTreeSet;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};

use mlpeer::index::{scan, LinkIndex};
use mlpeer_bench::{run_pipeline, Scale};
use mlpeer_bgp::{Asn, Prefix};
use mlpeer_ixp::Ecosystem;
use mlpeer_serve::{
    run_hold_load, run_load, spawn_reactor, HoldConfig, LoadConfig, ReactorConfig, Snapshot,
    SnapshotStore,
};
use mlpeer_serve::{spawn_server, ServerHandle};

/// Acceptance floor: held keep-alive population of 1024 must still
/// clear this throughput on the reactor engine (single-core container).
const HOLD_RPS_FLOOR: f64 = 15_000.0;

/// Hold-mode run at one connection count; returns the JSON record.
fn hold_point(server: &ServerHandle, connections: usize, targets: &[String]) -> serde_json::Value {
    let cfg = HoldConfig {
        connections,
        client_threads: 8,
        requests_total: 20_000,
        targets: targets.to_vec(),
    };
    let r = run_hold_load(server.addr, &cfg);
    assert_eq!(r.errors, 0, "hold run must be error-free at {connections}");
    let open = server
        .reactor_stats
        .as_ref()
        .map(|s| s.accepted())
        .unwrap_or(0);
    eprintln!(
        "# hold {connections} conns: {:.0} rps, p50 {}us p99 {}us ({} accepted so far)",
        r.rps(),
        r.latency_us(0.5),
        r.latency_us(0.99),
        open
    );
    if connections == 1024 {
        assert!(
            r.rps() >= HOLD_RPS_FLOOR,
            "acceptance: >=1024 held keep-alive connections must clear \
             {HOLD_RPS_FLOOR:.0} rps (got {:.0})",
            r.rps()
        );
    }
    serde_json::json!({
        "connections": connections,
        "requests": r.requests,
        "errors": r.errors,
        "elapsed_ms": r.elapsed.as_millis() as u64,
        "rps": r.rps(),
        "latency_p50_us": r.latency_us(0.5),
        "latency_p90_us": r.latency_us(0.9),
        "latency_p99_us": r.latency_us(0.99),
    })
}

fn bench_at(c: &mut Criterion, scale: Scale, seed: u64) -> serde_json::Value {
    eprintln!("# generating ecosystem ({scale:?})…");
    let eco = Ecosystem::generate(scale.config(seed));
    eprintln!("# running pipeline…");
    let p = run_pipeline(&eco, seed);
    let links = p.links.clone();
    let observations = p.observations.clone();
    let index = LinkIndex::build(&links, &observations);

    // Query corpus: every linked ASN and a spread of announced,
    // aggregated, and absent prefixes.
    let members: Vec<Asn> = links.distinct_asns().into_iter().collect();
    let announced: BTreeSet<Prefix> = scan::announcements(&links, &observations)
        .into_iter()
        .map(|(p, _, _)| p)
        .collect();
    let mut prefixes: Vec<Prefix> = announced.iter().copied().take(64).collect();
    prefixes.extend(announced.iter().filter_map(|p| p.parent()).take(32));
    prefixes.push("203.0.113.0/24".parse().unwrap());
    assert!(!members.is_empty() && prefixes.len() > 32);

    // The bench must compare identical work: byte-identical answers.
    for &m in &members {
        assert_eq!(
            index.member_links_owned(m),
            scan::member_links(&links, m),
            "index diverged from linear scan for AS{}",
            m.value()
        );
    }
    for q in &prefixes {
        assert_eq!(
            format!("{:?}", index.prefix_matches(q)),
            format!("{:?}", scan::prefix_matches(&links, &observations, q)),
            "index diverged from linear scan for {q}"
        );
    }
    eprintln!(
        "# corpus: {} members, {} prefixes, {} per-IXP links, {} announcements",
        members.len(),
        prefixes.len(),
        links.per_ixp_total(),
        index.announcement_count()
    );

    // -------- 1. indexed vs scan lookups --------
    let group_name = format!("serve_index_{}", scale.word());
    let bench_pair =
        |c: &mut Criterion, name: &str, fast: &dyn Fn() -> usize, slow: &dyn Fn() -> usize| {
            let mut group = c.benchmark_group(&group_name);
            group.sample_size(10);
            group.bench_function(&format!("{name}_indexed"), |b| {
                b.iter(|| std::hint::black_box(fast()))
            });
            group.finish();
            let fast_ns = c.last_estimate_ns().expect("bench ran");
            let mut group = c.benchmark_group(&group_name);
            group.sample_size(10);
            group.bench_function(&format!("{name}_scan"), |b| {
                b.iter(|| std::hint::black_box(slow()))
            });
            group.finish();
            let slow_ns = c.last_estimate_ns().expect("bench ran");
            (fast_ns, slow_ns)
        };

    let sample_members: Vec<Asn> = members
        .iter()
        .step_by(7.max(members.len() / 64))
        .copied()
        .collect();
    let member_fast = || {
        sample_members
            .iter()
            .map(|&m| index.member_links(m).map(|x| x.len()).unwrap_or(0))
            .sum::<usize>()
    };
    let member_slow = || {
        sample_members
            .iter()
            .map(|&m| scan::member_links(&links, m).len())
            .sum::<usize>()
    };
    let (member_fast_ns, member_slow_ns) =
        bench_pair(c, "member_lookup", &member_fast, &member_slow);

    let prefix_fast = || {
        prefixes
            .iter()
            .map(|q| index.prefix_matches(q).total())
            .sum::<usize>()
    };
    let prefix_slow = || {
        prefixes
            .iter()
            .map(|q| scan::prefix_matches(&links, &observations, q).total())
            .sum::<usize>()
    };
    let (prefix_fast_ns, prefix_slow_ns) =
        bench_pair(c, "prefix_lookup", &prefix_fast, &prefix_slow);

    let member_speedup = member_slow_ns / member_fast_ns;
    let prefix_speedup = prefix_slow_ns / prefix_fast_ns;
    eprintln!("# member lookup speedup: {member_speedup:.1}x, prefix: {prefix_speedup:.1}x");
    assert!(
        member_speedup >= 10.0 && prefix_speedup >= 10.0,
        "acceptance: indexed lookups must be >=10x the linear scan \
         (member {member_speedup:.1}x, prefix {prefix_speedup:.1}x)"
    );

    // -------- 2. HTTP load over a real server --------
    let snapshot = Snapshot::build(
        scale.word(),
        seed,
        Snapshot::names_of(&eco),
        links.clone(),
        &observations,
        p.passive_stats.clone(),
    );
    let cache_bodies = snapshot.cache.body_count();
    let cache_bytes = snapshot.cache.byte_len();
    let etag = snapshot.etag.clone();
    let store = SnapshotStore::new(snapshot);
    let mut server =
        spawn_server(Arc::clone(&store), "127.0.0.1:0", 4).expect("bind ephemeral port");
    let sample_asn = members[members.len() / 2].value();
    let sample_prefix = announced.iter().next().copied().unwrap();
    let cfg = LoadConfig {
        connections: 4,
        requests_per_connection: 500,
        targets: vec![
            "/v1/ixps".to_string(),
            format!("/v1/member/{sample_asn}"),
            format!("/v1/prefix/{sample_prefix}"),
            "/v1/stats".to_string(),
            "/healthz".to_string(),
        ],
    };
    let load = run_load(server.addr, &cfg);
    assert_eq!(load.errors, 0, "load run must be error-free");
    assert_eq!(load.ok, load.requests);
    eprintln!(
        "# load: {} requests, {:.0} rps, p50 {}us p99 {}us (cache: {cache_bodies} bodies, {cache_bytes} bytes)",
        load.requests,
        load.rps(),
        load.latency_us(0.5),
        load.latency_us(0.99)
    );

    // Revalidation run: every request carries the ETag → all 304s.
    let mut s = std::net::TcpStream::connect(server.addr).expect("connect");
    use std::io::{Read, Write};
    write!(
        s,
        "GET /v1/ixps HTTP/1.1\r\nHost: b\r\nIf-None-Match: \"{etag}\"\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut text = String::new();
    s.read_to_string(&mut text).unwrap();
    assert!(text.starts_with("HTTP/1.1 304"), "revalidation hit: {text}");
    server.stop();

    // -------- 3. reactor keep-alive concurrency sweep (Medium) --------
    let connections_axis = if scale == Scale::Medium {
        let mut reactor = spawn_reactor(store, "127.0.0.1:0", ReactorConfig::default())
            .expect("bind reactor port");
        let points: Vec<serde_json::Value> = [64usize, 256, 1024, 4096]
            .iter()
            .map(|&n| hold_point(&reactor, n, &cfg.targets))
            .collect();
        reactor.stop();
        serde_json::Value::Array(points)
    } else {
        serde_json::Value::Null
    };

    serde_json::json!({
        "scale": scale.word(),
        "corpus": serde_json::json!({
            "members": members.len(),
            "sampled_members": sample_members.len(),
            "prefixes": prefixes.len(),
            "per_ixp_links": links.per_ixp_total(),
            "announcements": index.announcement_count(),
        }),
        "index": serde_json::json!({
            "member_lookup_indexed_us": member_fast_ns / 1e3,
            "member_lookup_scan_us": member_slow_ns / 1e3,
            "member_speedup": member_speedup,
            "prefix_lookup_indexed_us": prefix_fast_ns / 1e3,
            "prefix_lookup_scan_us": prefix_slow_ns / 1e3,
            "prefix_speedup": prefix_speedup,
        }),
        "body_cache": serde_json::json!({
            "bodies": cache_bodies,
            "bytes": cache_bytes,
        }),
        "load": serde_json::json!({
            "connections": cfg.connections,
            "requests": load.requests,
            "errors": load.errors,
            "elapsed_ms": load.elapsed.as_millis() as u64,
            "rps": load.rps(),
            "latency_p50_us": load.latency_us(0.5),
            "latency_p90_us": load.latency_us(0.9),
            "latency_p99_us": load.latency_us(0.99),
        }),
        "connections": connections_axis,
    })
}

/// Smoke mode: one reactor boot at `Scale::Small`, one 1024-connection
/// hold run, floor asserted, nothing written.
fn smoke(seed: u64) {
    eprintln!("# smoke: reactor hold run at Scale::Small…");
    let eco = Ecosystem::generate(Scale::Small.config(seed));
    let snapshot = Snapshot::of_pipeline(&eco, Scale::Small, seed);
    let store = SnapshotStore::new(snapshot);
    let mut reactor =
        spawn_reactor(store, "127.0.0.1:0", ReactorConfig::default()).expect("bind reactor port");
    let targets = vec!["/v1/ixps".to_string(), "/healthz".to_string()];
    let point = hold_point(&reactor, 1024, &targets);
    reactor.stop();
    eprintln!(
        "# smoke point: {}",
        serde_json::to_string(&point).unwrap_or_default()
    );
}

fn bench_serve(c: &mut Criterion) {
    let seed = 20130501u64;
    if std::env::var("MLPEER_BENCH_SMOKE").is_ok() {
        smoke(seed);
        return;
    }
    let results: Vec<serde_json::Value> = [Scale::Medium, Scale::Large]
        .iter()
        .map(|&s| bench_at(c, s, seed))
        .collect();
    let report = serde_json::json!({
        "bench": "mlpeer-serve index + HTTP load",
        "seed": seed,
        "threads": rayon::current_num_threads(),
        "scales": results,
    });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(path, serde_json::to_string_pretty(&report).unwrap())
        .expect("write BENCH_serve.json");
    println!("wrote {path}");
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
