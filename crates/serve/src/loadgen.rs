//! In-repo load generator: keep-alive client connections hammering the
//! query API, with latency percentiles and throughput.
//!
//! The `serve_load` bench boots a real server and records this
//! generator's report to `BENCH_serve.json`; the CI smoke job and the
//! e2e tests use single requests instead. std-only, like the server.

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use crate::http::read_response;

/// What to throw at the server.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Concurrent keep-alive connections.
    pub connections: usize,
    /// Requests issued per connection.
    pub requests_per_connection: usize,
    /// Target paths, cycled per request.
    pub targets: Vec<String>,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            connections: 4,
            requests_per_connection: 250,
            targets: vec!["/v1/ixps".into(), "/healthz".into()],
        }
    }
}

/// Aggregate results of one load run.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Requests attempted.
    pub requests: usize,
    /// 2xx responses.
    pub ok: usize,
    /// 304 revalidations.
    pub not_modified: usize,
    /// Everything else (including transport errors).
    pub errors: usize,
    /// Wall-clock for the whole run.
    pub elapsed: Duration,
    /// Per-request latencies, sorted ascending (microseconds).
    pub latencies_us: Vec<u64>,
}

impl LoadReport {
    /// Requests per second over the run.
    pub fn rps(&self) -> f64 {
        self.requests as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Latency at quantile `q` (0..=1), microseconds.
    pub fn latency_us(&self, q: f64) -> u64 {
        if self.latencies_us.is_empty() {
            return 0;
        }
        let idx = ((self.latencies_us.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        self.latencies_us[idx]
    }
}

/// One keep-alive client: issue `n` requests cycling through `targets`,
/// recording per-request latency and status class. Every configured
/// request is accounted: whatever could not be attempted (failed
/// connect, broken connection mid-run) counts as both a request and an
/// error, so the merged report always sums to the configured load.
fn client(addr: SocketAddr, targets: &[String], n: usize, report: &mut LoadReport) {
    // Charge all requests from `from` onward as errors.
    let abort = |report: &mut LoadReport, from: usize| {
        report.requests += n - from;
        report.errors += n - from;
    };
    let Ok(stream) = TcpStream::connect(addr) else {
        return abort(report, 0);
    };
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return abort(report, 0),
    };
    let mut reader = BufReader::new(stream);
    for i in 0..n {
        let target = &targets[i % targets.len()];
        let t0 = Instant::now();
        if write!(writer, "GET {target} HTTP/1.1\r\nHost: loadgen\r\n\r\n").is_err() {
            return abort(report, i);
        }
        match read_response(&mut reader) {
            Ok(parts) => {
                report.requests += 1;
                report.latencies_us.push(t0.elapsed().as_micros() as u64);
                match parts.status {
                    200..=299 => report.ok += 1,
                    304 => report.not_modified += 1,
                    _ => report.errors += 1,
                }
            }
            Err(_) => return abort(report, i),
        }
    }
}

/// Run the load: `connections` client threads in parallel, merged
/// report with sorted latencies.
pub fn run_load(addr: SocketAddr, cfg: &LoadConfig) -> LoadReport {
    let t0 = Instant::now();
    let reports: Vec<LoadReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.connections.max(1))
            .map(|_| {
                scope.spawn(|| {
                    let mut r = LoadReport::default();
                    client(addr, &cfg.targets, cfg.requests_per_connection, &mut r);
                    r
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("loadgen client panicked"))
            .collect()
    });
    let mut merged = LoadReport {
        elapsed: t0.elapsed(),
        ..LoadReport::default()
    };
    for r in reports {
        merged.requests += r.requests;
        merged.ok += r.ok;
        merged.not_modified += r.not_modified;
        merged.errors += r.errors;
        merged.latencies_us.extend(r.latencies_us);
    }
    merged.latencies_us.sort_unstable();
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_on_empty_and_sorted_reports() {
        let mut r = LoadReport::default();
        assert_eq!(r.latency_us(0.5), 0);
        r.latencies_us = vec![10, 20, 30, 40, 50];
        r.requests = 5;
        r.elapsed = Duration::from_secs(1);
        assert_eq!(r.latency_us(0.0), 10);
        assert_eq!(r.latency_us(0.5), 30);
        assert_eq!(r.latency_us(1.0), 50);
        assert!((r.rps() - 5.0).abs() < 1e-9);
    }
}
