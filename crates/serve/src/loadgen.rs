//! In-repo load generator: keep-alive client connections hammering the
//! query API, with latency percentiles and throughput.
//!
//! Two modes:
//!
//! * [`run_load`] — the closed-loop sweep: one thread per connection,
//!   each issuing a fixed request count. Right for small connection
//!   counts (the bench's latency sweeps).
//! * [`run_hold_load`] — the keep-alive *hold* mode: open `connections`
//!   sockets first, **hold every one of them open for the whole run**,
//!   and drive them from a bounded worker pool. That separates "how
//!   many connections does the server hold" from "how many client
//!   threads exist", so a single machine can hold thousands of
//!   keep-alive connections against the reactor engine without
//!   spawning thousands of threads. The bench's `connections` axis in
//!   `BENCH_serve.json` is measured this way.
//!
//! The `serve_load` bench boots a real server and records this
//! generator's report to `BENCH_serve.json`; the CI smoke job and the
//! e2e tests use single requests instead. std-only, like the server.

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use crate::http::read_response;

/// What to throw at the server.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Concurrent keep-alive connections.
    pub connections: usize,
    /// Requests issued per connection.
    pub requests_per_connection: usize,
    /// Target paths, cycled per request.
    pub targets: Vec<String>,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            connections: 4,
            requests_per_connection: 250,
            targets: vec!["/v1/ixps".into(), "/healthz".into()],
        }
    }
}

/// Aggregate results of one load run.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Requests attempted.
    pub requests: usize,
    /// 2xx responses.
    pub ok: usize,
    /// 304 revalidations.
    pub not_modified: usize,
    /// Everything else (including transport errors).
    pub errors: usize,
    /// Wall-clock for the whole run.
    pub elapsed: Duration,
    /// Per-request latencies, sorted ascending (microseconds).
    pub latencies_us: Vec<u64>,
}

impl LoadReport {
    /// Requests per second over the run.
    pub fn rps(&self) -> f64 {
        self.requests as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Latency at quantile `q` (0..=1), microseconds.
    pub fn latency_us(&self, q: f64) -> u64 {
        if self.latencies_us.is_empty() {
            return 0;
        }
        let idx = ((self.latencies_us.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        self.latencies_us[idx]
    }
}

/// One keep-alive client: issue `n` requests cycling through `targets`,
/// recording per-request latency and status class. Every configured
/// request is accounted: whatever could not be attempted (failed
/// connect, broken connection mid-run) counts as both a request and an
/// error, so the merged report always sums to the configured load.
fn client(addr: SocketAddr, targets: &[String], n: usize, report: &mut LoadReport) {
    // Charge all requests from `from` onward as errors.
    let abort = |report: &mut LoadReport, from: usize| {
        report.requests += n - from;
        report.errors += n - from;
    };
    let Ok(stream) = TcpStream::connect(addr) else {
        return abort(report, 0);
    };
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return abort(report, 0),
    };
    let mut reader = BufReader::new(stream);
    for i in 0..n {
        let target = &targets[i % targets.len()];
        let t0 = Instant::now();
        if write!(writer, "GET {target} HTTP/1.1\r\nHost: loadgen\r\n\r\n").is_err() {
            return abort(report, i);
        }
        match read_response(&mut reader) {
            Ok(parts) => {
                report.requests += 1;
                report.latencies_us.push(t0.elapsed().as_micros() as u64);
                match parts.status {
                    200..=299 => report.ok += 1,
                    304 => report.not_modified += 1,
                    _ => report.errors += 1,
                }
            }
            Err(_) => return abort(report, i),
        }
    }
}

/// Run the load: `connections` client threads in parallel, merged
/// report with sorted latencies.
pub fn run_load(addr: SocketAddr, cfg: &LoadConfig) -> LoadReport {
    let t0 = Instant::now();
    let reports: Vec<LoadReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.connections.max(1))
            .map(|_| {
                scope.spawn(|| {
                    let mut r = LoadReport::default();
                    client(addr, &cfg.targets, cfg.requests_per_connection, &mut r);
                    r
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("loadgen client panicked"))
            .collect()
    });
    let mut merged = LoadReport {
        elapsed: t0.elapsed(),
        ..LoadReport::default()
    };
    for r in reports {
        merged.requests += r.requests;
        merged.ok += r.ok;
        merged.not_modified += r.not_modified;
        merged.errors += r.errors;
        merged.latencies_us.extend(r.latencies_us);
    }
    merged.latencies_us.sort_unstable();
    merged
}

/// What the keep-alive hold mode throws at the server.
#[derive(Debug, Clone)]
pub struct HoldConfig {
    /// Keep-alive connections opened up front and held for the whole
    /// run.
    pub connections: usize,
    /// Worker threads driving requests across the held connections.
    pub client_threads: usize,
    /// Total requests across the run (spread over the connections).
    pub requests_total: usize,
    /// Target paths, cycled per request.
    pub targets: Vec<String>,
}

impl Default for HoldConfig {
    fn default() -> Self {
        HoldConfig {
            connections: 256,
            client_threads: 8,
            requests_total: 20_000,
            targets: vec!["/v1/ixps".into(), "/healthz".into()],
        }
    }
}

/// Open one held connection, retrying briefly: under thousands of
/// near-simultaneous connects the kernel may transiently refuse.
fn connect_held(addr: SocketAddr) -> Option<TcpStream> {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => {
                let _ = s.set_nodelay(true);
                let _ = s.set_read_timeout(Some(Duration::from_secs(10)));
                return Some(s);
            }
            Err(_) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => return None,
        }
    }
}

/// Hold-mode run: open `cfg.connections` keep-alive sockets, then let
/// `cfg.client_threads` workers round-robin requests over their share
/// of the held connections. Every connection stays open until the run
/// ends, so the server holds the full population for the whole
/// measurement — the point of the `connections` scaling axis.
///
/// The wall clock starts *after* the connections are open: the report
/// measures steady-state keep-alive throughput, not connect storms.
pub fn run_hold_load(addr: SocketAddr, cfg: &HoldConfig) -> LoadReport {
    let connections = cfg.connections.max(1);
    let threads = cfg.client_threads.max(1).min(connections);
    // Room for held sockets on the client side too (the soft NOFILE
    // default of 1024 is below the interesting sweep points).
    #[cfg(target_os = "linux")]
    let _ = polling::os::raise_nofile_limit(connections as u64 * 2 + 64);

    let mut conns: Vec<(TcpStream, BufReader<TcpStream>)> = Vec::with_capacity(connections);
    let mut failed_connects = 0usize;
    for _ in 0..connections {
        match connect_held(addr).and_then(|s| {
            let writer = s.try_clone().ok()?;
            Some((writer, BufReader::new(s)))
        }) {
            Some(pair) => conns.push(pair),
            None => failed_connects += 1,
        }
    }

    // Split the held connections into one contiguous chunk per worker;
    // each worker cycles its chunk so every connection sees traffic.
    let per_thread = conns.len().div_ceil(threads);
    let requests_each = cfg.requests_total / threads.max(1);
    let t0 = Instant::now();
    let reports: Vec<LoadReport> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        let mut rest = conns;
        while !rest.is_empty() {
            let mut chunk: Vec<_> = rest.drain(..per_thread.min(rest.len())).collect();
            let targets = &cfg.targets;
            handles.push(scope.spawn(move || {
                let mut report = LoadReport::default();
                for i in 0..requests_each {
                    let slot = i % chunk.len();
                    let (writer, reader) = &mut chunk[slot];
                    let target = &targets[i % targets.len()];
                    let t0 = Instant::now();
                    report.requests += 1;
                    let sent =
                        write!(writer, "GET {target} HTTP/1.1\r\nHost: loadgen\r\n\r\n").is_ok();
                    match sent.then(|| read_response(reader)) {
                        Some(Ok(parts)) => {
                            report.latencies_us.push(t0.elapsed().as_micros() as u64);
                            match parts.status {
                                200..=299 => report.ok += 1,
                                304 => report.not_modified += 1,
                                _ => report.errors += 1,
                            }
                        }
                        _ => report.errors += 1,
                    }
                }
                // `chunk` drops here: connections stay open (held) for
                // the entire run and close together at the end.
                report
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("hold-load worker panicked"))
            .collect()
    });
    let mut merged = LoadReport {
        elapsed: t0.elapsed(),
        errors: failed_connects,
        requests: failed_connects,
        ..LoadReport::default()
    };
    for r in reports {
        merged.requests += r.requests;
        merged.ok += r.ok;
        merged.not_modified += r.not_modified;
        merged.errors += r.errors;
        merged.latencies_us.extend(r.latencies_us);
    }
    merged.latencies_us.sort_unstable();
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_on_empty_and_sorted_reports() {
        let mut r = LoadReport::default();
        assert_eq!(r.latency_us(0.5), 0);
        r.latencies_us = vec![10, 20, 30, 40, 50];
        r.requests = 5;
        r.elapsed = Duration::from_secs(1);
        assert_eq!(r.latency_us(0.0), 10);
        assert_eq!(r.latency_us(0.5), 30);
        assert_eq!(r.latency_us(1.0), 50);
        assert!((r.rps() - 5.0).abs() < 1e-9);
    }
}
