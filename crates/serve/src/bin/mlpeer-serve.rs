//! Boot the full serving stack at a chosen scale:
//!
//! ```text
//! mlpeer-serve [tiny|small|medium|large|paper] [--addr=HOST:PORT] [--seed=N]
//!              [--engine=reactor|threaded] [--shards=N] [--max-conns=N]
//!              [--idle-ms=N] [--refresh-secs=N] [--workers=N]
//!              [--http-workers=N] [--live] [--live-tick-ms=N]
//!              [--churn-per-tick=N] [--churn-seed=N] [--delta-ring=N]
//!              [--data-dir=PATH] [--drain-ms=N] [--admission=N]
//! ```
//!
//! Default mode generates the ecosystem, runs the inference pipeline
//! once, publishes the snapshot, and serves the query API; with
//! `--refresh-secs=N` a background refresher re-runs the whole
//! pipeline every `N` seconds.
//!
//! The default engine is the epoll **reactor** (`--shards` event-loop
//! threads, `--max-conns` connections each, `--idle-ms` keep-alive
//! read deadline) with long-poll and SSE push on `/v1/changes`;
//! `--engine=threaded` selects the original thread-per-connection
//! server with `--http-workers` pool threads. Both serve
//! byte-identical responses.
//!
//! With `--workers=N` (N > 1) the inference fold itself is distributed:
//! the coordinator re-execs this binary as `--dist-worker` processes,
//! ships work over checksummed pipes, and folds the results — byte-
//! identically to a single-process run, degrading gracefully to
//! in-process execution when spawning fails (see `mlpeer_dist`).
//! `/v1/stats` then surfaces the coordinator's `dist` counters. Works
//! in both batch (sharded passive harvest) and `--live` (IXP-
//! partitioned tick fold) modes.
//!
//! With `--live` the refresher is replaced by the incremental loop:
//! the initial snapshot comes from the route-server-state harvest, a
//! seeded churn model (`--churn-seed`) drives `--churn-per-tick`
//! events every `--live-tick-ms`, deltas are applied incrementally,
//! and a new epoch is published only when the link set changed —
//! `GET /v1/changes?since=N` then serves the link-level diff out of a
//! `--delta-ring`-deep history.
//!
//! With `--data-dir=PATH` every published epoch also appends to the
//! durable segment log there. On the next boot the latest persisted
//! epoch is recovered byte-identically (same ETag); batch mode then
//! serves it directly instead of re-running the pipeline, while live
//! mode re-bootstraps from the route servers and publishes a *bridge*
//! epoch carrying the link diff from the recovered state, so
//! `/v1/changes` composes across the restart. Snapshot-addressed
//! endpoints additionally answer `?at=<epoch>` time-travel reads, and
//! `/v1/changes?since=N` falls back to the on-disk history when `N`
//! predates the in-memory ring.
//!
//! **Graceful shutdown:** SIGTERM or SIGINT starts a drain — listeners
//! stop accepting, `/readyz` answers `draining` (503), in-flight
//! keep-alive requests finish within `--drain-ms`, SSE subscribers get
//! a terminal `shutdown` event, the active durable segment is flushed
//! and fsynced, and the process exits 0. `--admission=N` caps global
//! in-flight responses on the reactor engine; beyond it requests are
//! shed with a pre-rendered 503 + `Retry-After`.
//!
//! **Fault injection:** the `MLPEER_FAILPOINTS` environment variable
//! activates named failpoints (`site=action;site=action` with actions
//! `off`, `return(msg)`, `panic(msg)`, `delay(ms)`, `1in(n)`) across
//! store appends/fsyncs, dist worker spawns and frames, and serve
//! publish/append/render paths — see ARCHITECTURE.md's failure-model
//! section for the site list.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use mlpeer_bench::Scale;
use mlpeer_data::churn::ChurnConfig;
use mlpeer_ixp::Ecosystem;
use mlpeer_serve::refresher::spawn_refresher;
use mlpeer_serve::{
    bootstrap, spawn_live_refresher, spawn_live_refresher_dist, spawn_reactor, spawn_server,
    LiveConfig, LiveStats, ReactorConfig, Snapshot, SnapshotStore,
};

fn main() {
    // Worker mode: this same binary, re-exec'd by the coordinator with
    // frames on stdin/stdout. Intercepted before any other parsing so
    // a worker never generates an ecosystem or binds a socket.
    if std::env::args().nth(1).as_deref() == Some("--dist-worker") {
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        if let Err(err) = mlpeer_dist::run_worker(stdin.lock(), stdout.lock()) {
            eprintln!("mlpeer-serve --dist-worker: {err}");
            std::process::exit(1);
        }
        return;
    }

    let mut scale = Scale::Small;
    let mut addr = "127.0.0.1:8462".to_string();
    let mut seed: u64 = 20130501;
    let mut refresh_secs: u64 = 0;
    let mut workers: usize = 1;
    let mut http_workers: usize = 4;
    let mut engine = "reactor".to_string();
    let mut reactor_cfg = ReactorConfig::default();
    let mut live = false;
    let mut live_tick_ms: u64 = 2000;
    let mut churn_per_tick: usize = 10;
    let mut churn_seed: u64 = 20131007;
    let mut delta_ring: usize = mlpeer_serve::store::DEFAULT_CHANGE_CAPACITY;
    let mut data_dir: Option<std::path::PathBuf> = None;
    let mut drain_ms: u64 = 5000;
    for arg in std::env::args().skip(1) {
        if let Some(s) = Scale::parse(&arg) {
            scale = s;
        } else if let Some(v) = arg.strip_prefix("--addr=") {
            addr = v.to_string();
        } else if let Some(v) = arg.strip_prefix("--seed=") {
            seed = v.parse().expect("--seed=N");
        } else if let Some(v) = arg.strip_prefix("--refresh-secs=") {
            refresh_secs = v.parse().expect("--refresh-secs=N");
        } else if let Some(v) = arg.strip_prefix("--workers=") {
            workers = v.parse().expect("--workers=N");
        } else if let Some(v) = arg.strip_prefix("--http-workers=") {
            http_workers = v.parse().expect("--http-workers=N");
        } else if let Some(v) = arg.strip_prefix("--engine=") {
            if v != "reactor" && v != "threaded" {
                eprintln!("--engine must be `reactor` or `threaded`, got `{v}`");
                std::process::exit(2);
            }
            engine = v.to_string();
        } else if let Some(v) = arg.strip_prefix("--shards=") {
            reactor_cfg.shards = v.parse().expect("--shards=N");
        } else if let Some(v) = arg.strip_prefix("--max-conns=") {
            reactor_cfg.max_conns = v.parse().expect("--max-conns=N");
        } else if let Some(v) = arg.strip_prefix("--idle-ms=") {
            reactor_cfg.idle = Duration::from_millis(v.parse().expect("--idle-ms=N"));
        } else if arg == "--live" {
            live = true;
        } else if let Some(v) = arg.strip_prefix("--live-tick-ms=") {
            live_tick_ms = v.parse().expect("--live-tick-ms=N");
        } else if let Some(v) = arg.strip_prefix("--churn-per-tick=") {
            churn_per_tick = v.parse().expect("--churn-per-tick=N");
        } else if let Some(v) = arg.strip_prefix("--churn-seed=") {
            churn_seed = v.parse().expect("--churn-seed=N");
        } else if let Some(v) = arg.strip_prefix("--delta-ring=") {
            delta_ring = v.parse().expect("--delta-ring=N");
        } else if let Some(v) = arg.strip_prefix("--data-dir=") {
            data_dir = Some(v.into());
        } else if let Some(v) = arg.strip_prefix("--drain-ms=") {
            drain_ms = v.parse().expect("--drain-ms=N");
        } else if let Some(v) = arg.strip_prefix("--admission=") {
            reactor_cfg.admission = v.parse().expect("--admission=N");
        } else {
            eprintln!("unknown argument: {arg}");
            eprintln!(
                "usage: mlpeer-serve [tiny|small|medium|large|paper] [--addr=HOST:PORT] \
                 [--seed=N] [--engine=reactor|threaded] [--shards=N] [--max-conns=N] \
                 [--idle-ms=N] [--refresh-secs=N] [--workers=N] [--http-workers=N] \
                 [--live] [--live-tick-ms=N] [--churn-per-tick=N] [--churn-seed=N] \
                 [--delta-ring=N] [--data-dir=PATH] [--drain-ms=N] [--admission=N]"
            );
            std::process::exit(2);
        }
    }
    reactor_cfg.drain_grace = Duration::from_millis(drain_ms);
    if live && refresh_secs > 0 {
        eprintln!("--live and --refresh-secs are mutually exclusive");
        std::process::exit(2);
    }

    let durable = data_dir.map(|dir| {
        let d = mlpeer_serve::DurableStore::open(&dir).unwrap_or_else(|e| {
            eprintln!("cannot open --data-dir {}: {e}", dir.display());
            std::process::exit(2);
        });
        let st = d.stats();
        eprintln!(
            "# durable log {}: {} records ({} full) in {} segment(s), {} bytes",
            dir.display(),
            st.records,
            st.full_records,
            st.segments,
            st.bytes
        );
        Arc::new(d)
    });
    let recovered = durable.as_ref().and_then(|d| d.latest());
    if let Some(s) = &recovered {
        eprintln!(
            "# recovered epoch {} (etag {}) from durable log",
            s.epoch, s.etag
        );
    }
    let attach = |store: &Arc<SnapshotStore>| {
        if let Some(d) = &durable {
            store
                .attach_durable(Arc::clone(d))
                .expect("attach durable store");
        }
    };

    eprintln!("# generating ecosystem ({scale:?}, seed {seed})…");
    let eco = Ecosystem::generate(scale.config(seed));
    let scale_word = format!("{scale:?}").to_lowercase();
    let shutdown = Arc::new(AtomicBool::new(false));
    let mut refresher = None;

    // Multi-process inference: re-exec this binary as `--dist-worker`
    // frames-over-pipes workers. Falls back to the sibling worker
    // binary (or in-process degradation) if re-exec is unavailable.
    let dist = (workers > 1).then(|| {
        let worker_cmd = std::env::current_exe()
            .map(|exe| (exe, vec!["--dist-worker".to_string()]))
            .ok()
            .or_else(mlpeer_dist::default_worker_cmd);
        let cfg = mlpeer_dist::DistConfig {
            worker_cmd,
            ..mlpeer_dist::DistConfig::new(workers)
        };
        eprintln!("# dist: {workers} worker processes");
        (cfg, Arc::new(mlpeer_dist::DistStats::new(workers as u64)))
    });

    let store = if live {
        eprintln!("# live mode: harvesting route-server state…");
        let (inferencer, snapshot) = bootstrap(&eco, &scale_word, seed);
        eprintln!(
            "# snapshot ready: {} IXPs, {} unique links, etag {}",
            snapshot.names.len(),
            snapshot.unique_link_count,
            snapshot.etag
        );
        let store = if let Some(prev) = recovered {
            // Resume the epoch counter where the log left off, then
            // bridge to the fresh bootstrap: one published delta makes
            // `/v1/changes` compose across the restart.
            let store = SnapshotStore::resume(prev, delta_ring);
            attach(&store);
            let prev = store.load();
            if prev.etag == snapshot.etag {
                eprintln!(
                    "# live bootstrap matches recovered epoch {}; no bridge needed",
                    prev.epoch
                );
            } else {
                let bridge = mlpeer::live::LinkDelta::between(&prev.links, &snapshot.links);
                let (plus, minus) = (bridge.added.len(), bridge.removed.len());
                let epoch = store.publish_with_delta(snapshot, bridge);
                eprintln!("# bridge epoch {epoch}: +{plus} -{minus} links vs recovered state");
            }
            store
        } else {
            let store = SnapshotStore::with_change_capacity(snapshot, delta_ring);
            attach(&store);
            store
        };
        let stats = Arc::new(LiveStats::default());
        let live_cfg = LiveConfig {
            interval: Duration::from_millis(live_tick_ms),
            events_per_tick: churn_per_tick,
            churn: ChurnConfig {
                seed: churn_seed,
                ..ChurnConfig::default()
            },
            scale: scale_word,
            seed,
        };
        refresher = Some(if let Some((cfg, dist_stats)) = dist {
            store.set_dist_stats(Arc::clone(&dist_stats));
            let fleet = mlpeer_dist::DistLive::new(&eco, cfg, dist_stats);
            drop(inferencer);
            spawn_live_refresher_dist(
                Arc::clone(&store),
                eco,
                fleet,
                live_cfg,
                stats,
                Arc::clone(&shutdown),
            )
        } else {
            spawn_live_refresher(
                Arc::clone(&store),
                eco,
                inferencer,
                live_cfg,
                stats,
                Arc::clone(&shutdown),
            )
        });
        eprintln!(
            "# live churn: {churn_per_tick} events every {live_tick_ms}ms \
             (seed {churn_seed}, ring {delta_ring})"
        );
        store
    } else {
        let eco = Arc::new(eco);
        // One pipeline runner for the boot and the refresher: serial,
        // or fanned out across worker processes — byte-identical.
        let build = {
            let eco = Arc::clone(&eco);
            let dist = dist.clone();
            move || match &dist {
                Some((cfg, stats)) => Snapshot::of_pipeline_dist(&eco, scale, seed, cfg, stats),
                None => Snapshot::of_pipeline(&eco, scale, seed),
            }
        };
        let store = if let Some(prev) = recovered {
            // The pipeline is deterministic in (scale, seed), so the
            // recovered snapshot is exactly what a re-run would
            // publish — serve it directly and skip the pipeline.
            eprintln!(
                "# serving recovered snapshot (epoch {}, {} unique links)",
                prev.epoch, prev.unique_link_count
            );
            SnapshotStore::resume(prev, delta_ring)
        } else {
            eprintln!("# running inference pipeline…");
            let snapshot = build();
            eprintln!(
                "# snapshot ready: {} IXPs, {} unique links, {} indexed prefixes, etag {}",
                snapshot.names.len(),
                snapshot.unique_link_count,
                snapshot.index.prefix_count(),
                snapshot.etag
            );
            SnapshotStore::with_change_capacity(snapshot, delta_ring)
        };
        attach(&store);
        if let Some((_, dist_stats)) = &dist {
            store.set_dist_stats(Arc::clone(dist_stats));
        }
        if refresh_secs > 0 {
            let store = Arc::clone(&store);
            refresher = Some(spawn_refresher(
                store,
                Duration::from_secs(refresh_secs),
                Arc::clone(&shutdown),
                build,
            ));
            eprintln!("# refresher: every {refresh_secs}s");
        }
        store
    };

    let mut server = if engine == "reactor" {
        let shards = reactor_cfg.shards.max(1);
        let server = spawn_reactor(store, &addr, reactor_cfg).expect("bind address");
        eprintln!(
            "# serving on http://{} (reactor engine, {shards} shard{})",
            server.addr,
            if shards == 1 { "" } else { "s" }
        );
        server
    } else {
        let server = spawn_server(store, &addr, http_workers).expect("bind address");
        eprintln!(
            "# serving on http://{} (threaded engine, {http_workers} workers)",
            server.addr
        );
        server
    };
    eprintln!("#   try: curl http://{}/healthz", server.addr);
    if let Err(e) = polling::signal::install_term_handler() {
        eprintln!("# warning: no signal handlers ({e}); drain on request only");
    }
    // Wait for SIGTERM/SIGINT (or the serve threads exiting on their
    // own), then drain: stop accepting, finish in-flight work under
    // the --drain-ms grace, stop refreshers, flush + fsync the active
    // durable segment, exit 0.
    while !polling::signal::term_requested() {
        if server.is_finished() {
            server.join();
            drop(refresher);
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("# signal received: draining (grace {drain_ms}ms)…");
    shutdown.store(true, Ordering::Relaxed);
    server.drain();
    if let Some(r) = refresher.take() {
        let _ = r.join();
    }
    if let Some(d) = &durable {
        match d.sync() {
            Ok(()) => eprintln!("# durable log flushed and synced"),
            Err(e) => eprintln!("# warning: durable sync failed: {e}"),
        }
    }
    eprintln!("# drained cleanly; exiting");
}
