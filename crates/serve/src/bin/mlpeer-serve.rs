//! Boot the full serving stack at a chosen scale:
//!
//! ```text
//! mlpeer-serve [tiny|small|medium|paper] [--addr=HOST:PORT] [--seed=N]
//!              [--refresh-secs=N] [--workers=N]
//! ```
//!
//! Generates the ecosystem, runs the inference pipeline once, publishes
//! the snapshot, and serves the query API. With `--refresh-secs=N` a
//! background refresher re-runs the pipeline every `N` seconds and
//! publishes a new epoch (readers are never blocked; identical results
//! keep the same ETag).

use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

use mlpeer_bench::Scale;
use mlpeer_ixp::Ecosystem;
use mlpeer_serve::refresher::spawn_refresher;
use mlpeer_serve::{spawn_server, Snapshot, SnapshotStore};

fn main() {
    let mut scale = Scale::Small;
    let mut addr = "127.0.0.1:8462".to_string();
    let mut seed: u64 = 20130501;
    let mut refresh_secs: u64 = 0;
    let mut workers: usize = 4;
    for arg in std::env::args().skip(1) {
        if let Some(s) = Scale::parse(&arg) {
            scale = s;
        } else if let Some(v) = arg.strip_prefix("--addr=") {
            addr = v.to_string();
        } else if let Some(v) = arg.strip_prefix("--seed=") {
            seed = v.parse().expect("--seed=N");
        } else if let Some(v) = arg.strip_prefix("--refresh-secs=") {
            refresh_secs = v.parse().expect("--refresh-secs=N");
        } else if let Some(v) = arg.strip_prefix("--workers=") {
            workers = v.parse().expect("--workers=N");
        } else {
            eprintln!("unknown argument: {arg}");
            eprintln!(
                "usage: mlpeer-serve [tiny|small|medium|paper] [--addr=HOST:PORT] \
                 [--seed=N] [--refresh-secs=N] [--workers=N]"
            );
            std::process::exit(2);
        }
    }

    eprintln!("# generating ecosystem ({scale:?}, seed {seed})…");
    let eco = Arc::new(Ecosystem::generate(scale.config(seed)));
    eprintln!("# running inference pipeline…");
    let snapshot = Snapshot::of_pipeline(&eco, scale, seed);
    eprintln!(
        "# snapshot ready: {} IXPs, {} unique links, {} indexed prefixes, etag {}",
        snapshot.names.len(),
        snapshot.unique_link_count,
        snapshot.index.prefix_count(),
        snapshot.etag
    );
    let store = SnapshotStore::new(snapshot);

    let shutdown = Arc::new(AtomicBool::new(false));
    let mut refresher = None;
    if refresh_secs > 0 {
        let store = Arc::clone(&store);
        let eco = Arc::clone(&eco);
        refresher = Some(spawn_refresher(
            store,
            Duration::from_secs(refresh_secs),
            Arc::clone(&shutdown),
            move || Snapshot::of_pipeline(&eco, scale, seed),
        ));
        eprintln!("# refresher: every {refresh_secs}s");
    }

    let mut server = spawn_server(store, &addr, workers).expect("bind address");
    eprintln!("# serving on http://{} ({workers} workers)", server.addr);
    eprintln!("#   try: curl http://{}/healthz", server.addr);
    server.join();
    drop(refresher);
}
