//! The nonblocking reactor serve front end: one epoll event loop per
//! shard, per-connection state machines, zero-copy vectored writes.
//!
//! The [`crate::server`] threaded engine pins one pool worker per
//! connection, so its concurrency ceiling is the worker count and every
//! idle keep-alive connection wastes a thread. The reactor inverts
//! that: a single thread drives thousands of nonblocking connections
//! through a [`polling::Poller`] (epoll on Linux, `poll(2)` fallback),
//! and a connection costs only its buffers while idle.
//!
//! Per-connection state machine (one `Conn` per socket):
//!
//! ```text
//!            ┌────────────────────────────────────────────┐
//!            v                                            │
//! accept → Http ──parse head──> route ──queue──> flush ───┘ (keep-alive)
//!            │                    │                │
//!            │ idle deadline      │ /v1/changes    │ partial write:
//!            v                    v                v WRITE interest,
//!          408 + close      LongPoll / Sse      resume on writable
//!                                 │
//!                  publish_with_delta wakes (self-pipe)
//!                                 v
//!                  long-poll: respond + back to Http
//!                  SSE: push `changes` frame (or `resync` + close)
//! ```
//!
//! **Zero-copy hot path:** responses are written with
//! `write_vectored` (`writev`) as two slices — the rendered head and
//! the body. A cache-hit body is a [`crate::cache::CacheSlice`] pinned
//! by its `Arc<Snapshot>`, so cached 200s go from the publish-time
//! render straight to the socket without ever being copied, including
//! across partial-write continuations.
//!
//! **Push delivery:** `GET /v1/changes?since=N` gains two variants.
//! With `Accept: text/event-stream` the connection becomes an SSE
//! stream: an immediate catch-up `changes` event, then one event per
//! published epoch (or a terminal `resync` event when `since` fell off
//! the delta ring). With `&wait=1` the request long-polls: it answers
//! immediately when `since` is behind, otherwise parks until the next
//! publish (or answers an empty delta at the idle deadline). The
//! store's publish hook writes one byte down a per-shard self-pipe;
//! the delta JSON is rendered **once per distinct `since`** and fanned
//! out to every subscriber as a shared slice.
//!
//! **Robustness:** per-connection read deadline (idle keep-alive
//! connections draw a 408 and close, so a slowloris client cannot pin
//! memory) and a per-shard connection cap with accept backpressure
//! (the listener is deregistered at the cap and re-registered when a
//! slot frees; excess clients wait in the kernel backlog).
//!
//! With `shards > 1` the reactor runs N identical event loops on
//! `SO_REUSEPORT` listeners sharing one port; the kernel spreads
//! accepts across them. Counters are surfaced under `/v1/stats`
//! (see [`ReactorStats`]).

use std::collections::{HashMap, VecDeque};
use std::io::{self, IoSlice, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use polling::{Event, Interest, Poller};

use crate::api;
use crate::http::{parse_head, Body, Request, Response, MAX_HEAD};
use crate::server::{count_response, ServerHandle, ServerStats};
use crate::snapshot::Snapshot;
use crate::store::SnapshotStore;

pub use polling::BackendKind;

/// Poller key of the shard's listener.
const KEY_LISTENER: usize = 0;
/// Poller key of the shard's publish-wake pipe.
const KEY_WAKE: usize = 1;
/// First poller key used for connections (`slab index + KEY_CONN0`).
const KEY_CONN0: usize = 2;

/// How long a poller wait may block before the loop re-checks shutdown
/// and deadlines.
const WAIT_TIMEOUT: Duration = Duration::from_millis(250);

/// How often the deadline scan walks the connection slab.
const SCAN_INTERVAL: Duration = Duration::from_millis(100);

/// The head of an SSE stream response (no `Content-Length`: the stream
/// frames itself and lives until either side closes).
const SSE_HEAD: &[u8] = b"HTTP/1.1 200 OK\r\n\
Content-Type: text/event-stream\r\n\
Cache-Control: no-cache\r\n\
Connection: keep-alive\r\n\r\n";

/// Reactor engine knobs.
#[derive(Debug, Clone)]
pub struct ReactorConfig {
    /// Event-loop shards. 1 (the default) runs a single loop on a
    /// plain listener; N > 1 binds N `SO_REUSEPORT` listeners on the
    /// same port, one loop each.
    pub shards: usize,
    /// Maximum open connections per shard; beyond it the listener is
    /// paused and new clients wait in the kernel backlog.
    pub max_conns: usize,
    /// Read deadline for idle keep-alive connections (408 + close) and
    /// the wait cap for parked long-polls (empty delta).
    pub idle: Duration,
    /// Which poller backend to run on (epoll on Linux by default; the
    /// `poll(2)` fallback is selectable for tests and portability).
    pub backend: BackendKind,
    /// Test hook: shrink accepted sockets' send buffers to force
    /// partial writes deterministically.
    pub sndbuf: Option<usize>,
    /// Global (cross-shard) in-flight response cap. At the cap a new
    /// request is shed with a pre-rendered 503 + `Retry-After` instead
    /// of being routed — overload control that keeps latency bounded
    /// for the requests already admitted.
    pub admission: usize,
    /// How long a graceful drain lets in-flight work finish before the
    /// shard exits anyway (`--drain-ms`).
    pub drain_grace: Duration,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        ReactorConfig {
            shards: 1,
            max_conns: 8192,
            idle: Duration::from_secs(10),
            #[cfg(target_os = "linux")]
            backend: BackendKind::Epoll,
            #[cfg(not(target_os = "linux"))]
            backend: BackendKind::Poll,
            sndbuf: None,
            admission: 65_536,
            drain_grace: Duration::from_secs(5),
        }
    }
}

/// Reactor counters (all monotone except `open` and
/// `sse_subscribers`, which track current population), surfaced under
/// `/v1/stats` next to the server and body-cache counters.
#[derive(Debug, Default)]
pub struct ReactorStats {
    accepted: AtomicU64,
    open: AtomicU64,
    wakeups: AtomicU64,
    writev_continuations: AtomicU64,
    sse_subscribers: AtomicU64,
    idle_timeouts: AtomicU64,
    /// Admitted responses queued but not yet fully on the wire —
    /// global across shards (the stats handle is shared), which is
    /// what makes the admission cap global.
    inflight: AtomicU64,
    shed: AtomicU64,
}

impl ReactorStats {
    /// Connections accepted since boot.
    pub fn accepted(&self) -> u64 {
        self.accepted.load(Ordering::Relaxed)
    }

    /// Connections currently open.
    pub fn open(&self) -> u64 {
        self.open.load(Ordering::Relaxed)
    }

    /// Poller wait returns (readiness or timeout) since boot.
    pub fn wakeups(&self) -> u64 {
        self.wakeups.load(Ordering::Relaxed)
    }

    /// Partial writes left pending for a writability continuation.
    pub fn writev_continuations(&self) -> u64 {
        self.writev_continuations.load(Ordering::Relaxed)
    }

    /// SSE subscriber connections currently parked.
    pub fn sse_subscribers(&self) -> u64 {
        self.sse_subscribers.load(Ordering::Relaxed)
    }

    /// Idle keep-alive connections closed with a 408.
    pub fn idle_timeouts(&self) -> u64 {
        self.idle_timeouts.load(Ordering::Relaxed)
    }

    /// Admitted responses currently in flight (queued, not yet fully
    /// written).
    pub fn inflight(&self) -> u64 {
        self.inflight.load(Ordering::Relaxed)
    }

    /// Requests shed with a 503 at the admission cap.
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }
}

/// What a connection is currently doing.
#[derive(Debug, Clone, Copy)]
enum Mode {
    /// Plain HTTP request/response keep-alive.
    Http,
    /// Parked `GET /v1/changes?since=N&wait=1`: responds on the next
    /// publish or at the idle deadline.
    LongPoll { since: u64, keep_alive: bool },
    /// An SSE subscriber; `last_epoch` is the newest epoch already
    /// pushed to it.
    Sse { last_epoch: u64 },
}

/// One queued response segment: rendered head bytes plus a body that
/// may be a shared (zero-copy) slice. `written` counts bytes of
/// `head + body` already on the wire — the partial-write continuation
/// state.
struct OutBuf {
    head: Vec<u8>,
    body: Body,
    written: usize,
    /// Does this segment hold an in-flight admission slot? Set for
    /// routed responses (see [`Shard::queue_response`]); the slot is
    /// released when the segment fully flushes or its connection dies.
    counted: bool,
}

impl OutBuf {
    fn response(resp: Response, keep_alive: bool) -> OutBuf {
        OutBuf {
            head: resp.head_bytes(keep_alive),
            body: resp.body,
            written: 0,
            counted: false,
        }
    }

    fn raw(bytes: Vec<u8>) -> OutBuf {
        OutBuf {
            head: bytes,
            body: Body::Owned(Vec::new()),
            written: 0,
            counted: false,
        }
    }

    fn shared(bytes: &Arc<Vec<u8>>) -> OutBuf {
        OutBuf {
            head: Vec::new(),
            body: Body::Shared(Arc::clone(bytes) as Arc<dyn AsRef<[u8]> + Send + Sync>),
            written: 0,
            counted: false,
        }
    }
}

/// One nonblocking connection's state machine.
struct Conn {
    stream: TcpStream,
    /// Unparsed request bytes (bounded by [`MAX_HEAD`]).
    buf: Vec<u8>,
    /// Responses queued for the wire, in request order.
    out: VecDeque<OutBuf>,
    last_activity: Instant,
    /// When the first byte of a *partial* request head arrived — the
    /// slowloris deadline. `read_into` refreshes `last_activity` on
    /// every byte, so a client trickling one header byte per second
    /// would never look idle; this clock only resets when a complete
    /// head parses.
    head_started: Option<Instant>,
    close_after_flush: bool,
    /// Registered for write readiness right now?
    want_write: bool,
    mode: Mode,
}

enum FlushOutcome {
    /// Everything queued is on the wire (and the conn stays open).
    Drained,
    /// The socket would block; write interest continues the job.
    Pending,
    /// The connection is done (error, peer gone, or flushed-and-close).
    Closed,
}

enum ReadOutcome {
    Progress,
    Eof,
    Error,
}

/// Spawn the reactor engine on `addr`: `cfg.shards` event-loop
/// threads serving the store. Returns once every listener is bound
/// (use port 0 for an ephemeral test port).
pub fn spawn_reactor(
    store: Arc<SnapshotStore>,
    addr: &str,
    cfg: ReactorConfig,
) -> io::Result<ServerHandle> {
    let shards = cfg.shards.max(1);
    let mut listeners: Vec<TcpListener> = Vec::with_capacity(shards);
    if shards == 1 {
        listeners.push(TcpListener::bind(addr)?);
    } else {
        #[cfg(target_os = "linux")]
        {
            // SO_REUSEPORT must be set before bind, which std cannot
            // do — the vendored shim binds these by hand.
            let v4: std::net::SocketAddrV4 = addr.parse().map_err(|_| {
                io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "sharded reactor needs an IPv4 host:port",
                )
            })?;
            let first = polling::os::bind_reuseport_v4(v4, 1024)?;
            let bound = match first.local_addr()? {
                SocketAddr::V4(a) => a,
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidInput,
                        format!("unexpected bound address {other}"),
                    ))
                }
            };
            listeners.push(first);
            for _ in 1..shards {
                listeners.push(polling::os::bind_reuseport_v4(bound, 1024)?);
            }
        }
        #[cfg(not(target_os = "linux"))]
        return Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "SO_REUSEPORT sharding is Linux-only",
        ));
    }
    let addr = listeners[0].local_addr()?;

    // Best effort: make room for the configured connection count under
    // environments whose default soft NOFILE limit is 1024.
    #[cfg(target_os = "linux")]
    let _ = polling::os::raise_nofile_limit((shards * cfg.max_conns) as u64 * 2 + 64);

    let stats = Arc::new(ServerStats::default());
    let rstats = Arc::new(ReactorStats::default());
    let shutdown = Arc::new(AtomicBool::new(false));
    let mut wake_writers = Vec::with_capacity(shards);
    let mut threads = Vec::with_capacity(shards);
    for (i, listener) in listeners.into_iter().enumerate() {
        let (wake_tx, wake_rx) = UnixStream::pair()?;
        wake_tx.set_nonblocking(true)?;
        wake_rx.set_nonblocking(true)?;
        wake_writers.push(wake_tx);
        let shard = Shard::new(
            listener,
            wake_rx,
            Arc::clone(&store),
            Arc::clone(&stats),
            Arc::clone(&rstats),
            cfg.clone(),
            Arc::clone(&shutdown),
        )?;
        threads.push(
            std::thread::Builder::new()
                .name(format!("mlpeer-serve-reactor-{i}"))
                .spawn(move || shard.run())?,
        );
    }
    // One publish hook wakes every shard: each parked subscriber lives
    // on exactly one shard's slab, and a byte down the self-pipe turns
    // the publish into a poller event there.
    store.on_publish(move |_epoch| {
        for tx in &wake_writers {
            // A full pipe already holds a pending wake; ignore it.
            let _ = (&mut &*tx).write(&[1]);
        }
    });
    Ok(ServerHandle {
        addr,
        stats,
        reactor_stats: Some(rstats),
        shutdown,
        health: Arc::clone(store.health()),
        threads,
    })
}

/// One event-loop shard: a poller, its listener, and the connection
/// slab.
struct Shard {
    poller: Poller,
    listener: TcpListener,
    wake_rx: UnixStream,
    store: Arc<SnapshotStore>,
    stats: Arc<ServerStats>,
    rstats: Arc<ReactorStats>,
    cfg: ReactorConfig,
    shutdown: Arc<AtomicBool>,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    open: usize,
    listener_paused: bool,
    last_scan: Instant,
    /// `Some` once a graceful drain started: the moment in-flight work
    /// is abandoned and the shard exits anyway.
    drain_deadline: Option<Instant>,
}

impl Shard {
    fn new(
        listener: TcpListener,
        wake_rx: UnixStream,
        store: Arc<SnapshotStore>,
        stats: Arc<ServerStats>,
        rstats: Arc<ReactorStats>,
        cfg: ReactorConfig,
        shutdown: Arc<AtomicBool>,
    ) -> io::Result<Shard> {
        listener.set_nonblocking(true)?;
        let poller = Poller::with_backend(cfg.backend)?;
        poller.add(listener.as_raw_fd(), KEY_LISTENER, Interest::READ)?;
        poller.add(wake_rx.as_raw_fd(), KEY_WAKE, Interest::READ)?;
        Ok(Shard {
            poller,
            listener,
            wake_rx,
            store,
            stats,
            rstats,
            cfg,
            shutdown,
            conns: Vec::new(),
            free: Vec::new(),
            open: 0,
            listener_paused: false,
            last_scan: Instant::now(),
            drain_deadline: None,
        })
    }

    fn run(mut self) {
        let mut events: Vec<Event> = Vec::with_capacity(256);
        loop {
            events.clear();
            let _ = self.poller.wait(&mut events, Some(WAIT_TIMEOUT));
            self.rstats.wakeups.fetch_add(1, Ordering::Relaxed);
            if self.shutdown.load(Ordering::Relaxed) {
                return;
            }
            // A graceful drain: stop accepting, tell subscribers,
            // finish what is in flight, exit when the shard is empty
            // (or the grace deadline passes).
            if self.drain_deadline.is_none() && self.store.health().is_draining() {
                self.begin_drain();
            }
            if let Some(deadline) = self.drain_deadline {
                if self.open == 0 || Instant::now() >= deadline {
                    return;
                }
            }
            // Accepts are deferred to the end of the batch so a slab
            // slot freed mid-batch is never reused while stale events
            // for its old occupant are still queued.
            let mut accept_ready = false;
            let mut publish_wake = false;
            for &ev in &events {
                match ev.key {
                    KEY_LISTENER => accept_ready = true,
                    KEY_WAKE => publish_wake = true,
                    key => {
                        let idx = key - KEY_CONN0;
                        // Closed earlier in this batch: stale event.
                        if self.conns.get(idx).is_none_or(Option::is_none) {
                            continue;
                        }
                        if ev.writable {
                            self.flush(idx);
                        }
                        if ev.readable {
                            self.read_conn(idx);
                        }
                    }
                }
            }
            if publish_wake {
                self.drain_wake_pipe();
                self.fan_out();
            }
            if accept_ready {
                self.accept_ready();
            }
            if self.last_scan.elapsed() >= SCAN_INTERVAL {
                self.scan_deadlines();
                self.last_scan = Instant::now();
            }
        }
    }

    // ---- accept path ----

    fn accept_ready(&mut self) {
        if self.drain_deadline.is_some() {
            return; // draining: the listener is already deregistered
        }
        loop {
            if self.open >= self.cfg.max_conns {
                self.pause_listener();
                return;
            }
            let stream = match self.listener.accept() {
                Ok((s, _)) => s,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            };
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            let _ = stream.set_nodelay(true);
            #[cfg(target_os = "linux")]
            if let Some(bytes) = self.cfg.sndbuf {
                let _ = polling::os::set_sndbuf(stream.as_raw_fd(), bytes);
            }
            let idx = match self.free.pop() {
                Some(idx) => idx,
                None => {
                    self.conns.push(None);
                    self.conns.len() - 1
                }
            };
            if self
                .poller
                .add(stream.as_raw_fd(), idx + KEY_CONN0, Interest::READ)
                .is_err()
            {
                self.free.push(idx);
                continue;
            }
            self.conns[idx] = Some(Conn {
                stream,
                buf: Vec::new(),
                out: VecDeque::new(),
                last_activity: Instant::now(),
                head_started: None,
                close_after_flush: false,
                want_write: false,
                mode: Mode::Http,
            });
            self.open += 1;
            self.rstats.accepted.fetch_add(1, Ordering::Relaxed);
            self.rstats.open.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Accept backpressure: at the connection cap the listener leaves
    /// the poller, so the kernel backlog (not reactor memory) holds the
    /// excess.
    fn pause_listener(&mut self) {
        if !self.listener_paused && self.poller.delete(self.listener.as_raw_fd()).is_ok() {
            self.listener_paused = true;
        }
    }

    fn resume_listener(&mut self) {
        if self.listener_paused
            && self
                .poller
                .add(self.listener.as_raw_fd(), KEY_LISTENER, Interest::READ)
                .is_ok()
        {
            self.listener_paused = false;
        }
    }

    // ---- graceful drain ----

    /// Enter drain mode: deregister the listener (new clients are
    /// refused once the process exits; until then they wait in the
    /// backlog), push a terminal `shutdown` event to every SSE
    /// subscriber, complete parked long-polls with the current delta,
    /// and let plain keep-alive connections finish their buffered
    /// requests before closing. The shard then runs on until every
    /// connection has flushed and closed, or the grace deadline
    /// passes.
    fn begin_drain(&mut self) {
        self.drain_deadline = Some(Instant::now() + self.cfg.drain_grace);
        self.pause_listener();
        let snap = self.store.load();
        for idx in 0..self.conns.len() {
            let mode = match self.conns[idx].as_ref() {
                Some(conn) => conn.mode,
                None => continue,
            };
            match mode {
                Mode::Sse { .. } => {
                    if let Some(conn) = self.conns[idx].as_mut() {
                        conn.out.push_back(OutBuf::raw(sse_frame(
                            snap.epoch,
                            "shutdown",
                            b"{\"status\": \"draining\"}",
                        )));
                        conn.close_after_flush = true;
                    }
                    self.flush(idx);
                }
                Mode::LongPoll { since, .. } => {
                    // Answer now, exactly as the idle deadline would,
                    // then close: the client re-polls the next replica.
                    let resp = api::render_changes(
                        &snap,
                        self.store.changes(),
                        self.store.durable(),
                        since,
                    );
                    count_response(&self.stats, resp.status);
                    if let Some(conn) = self.conns[idx].as_mut() {
                        conn.mode = Mode::Http;
                    }
                    self.queue_response(idx, resp, false);
                    self.flush(idx);
                }
                Mode::Http => {
                    // Answer whatever the client already sent, then
                    // close once the responses are on the wire.
                    self.process_requests(idx);
                    if let Some(conn) = self.conns[idx].as_mut() {
                        conn.close_after_flush = true;
                    }
                    self.flush(idx);
                }
            }
        }
    }

    // ---- read path ----

    fn read_conn(&mut self, idx: usize) {
        let outcome = {
            let Some(conn) = self.conns[idx].as_mut() else {
                return;
            };
            let outcome = read_into(conn);
            if matches!(conn.mode, Mode::Sse { .. }) {
                // Subscribers have nothing more to say; drop stray
                // bytes so a chatty client cannot grow the buffer.
                conn.buf.clear();
            }
            if !conn.buf.is_empty() && conn.head_started.is_none() {
                // The slowloris clock starts at the first byte of a
                // (so far incomplete) head.
                conn.head_started = Some(Instant::now());
            }
            outcome
        };
        if matches!(outcome, ReadOutcome::Error) {
            self.close(idx);
            return;
        }
        // Parse and answer whatever is buffered — including requests
        // that arrived in the same segment as a FIN.
        self.process_requests(idx);
        if matches!(outcome, ReadOutcome::Eof) {
            if let Some(conn) = self.conns[idx].as_mut() {
                conn.close_after_flush = true;
            }
        }
        self.flush(idx);
    }

    /// Parse every complete pipelined head in the buffer and queue its
    /// response, until the buffer runs dry or the connection leaves
    /// plain HTTP mode (push upgrade, queued close).
    fn process_requests(&mut self, idx: usize) {
        loop {
            let req = {
                let Some(conn) = self.conns[idx].as_mut() else {
                    return;
                };
                if !matches!(conn.mode, Mode::Http) || conn.close_after_flush {
                    return;
                }
                match parse_head(&conn.buf) {
                    Ok(Some((req, consumed))) => {
                        conn.buf.drain(..consumed);
                        conn.last_activity = Instant::now();
                        // A complete head arrived: the slowloris clock
                        // restarts (leftover pipelined bytes are the
                        // start of the next head).
                        conn.head_started = (!conn.buf.is_empty()).then(Instant::now);
                        req
                    }
                    Ok(None) => return,
                    Err(_) => {
                        // Threaded-engine parity: malformed head draws
                        // a 400 and the connection closes.
                        self.stats.record_client_error();
                        conn.out.push_back(OutBuf::response(
                            api::error(400, "malformed request"),
                            false,
                        ));
                        conn.close_after_flush = true;
                        return;
                    }
                }
            };
            self.handle_request(idx, req);
        }
    }

    fn handle_request(&mut self, idx: usize, req: Request) {
        self.stats.record_request();
        // Overload control: at the global in-flight cap the request is
        // shed with a pre-rendered 503 before any routing or snapshot
        // work — the cost of a shed must stay far below the cost of
        // the work being refused, or shedding would not shed load.
        if self.rstats.inflight.load(Ordering::Relaxed) >= self.cfg.admission as u64 {
            self.rstats.shed.fetch_add(1, Ordering::Relaxed);
            count_response(&self.stats, 503);
            if let Some(conn) = self.conns[idx].as_mut() {
                conn.out.push_back(OutBuf::shared(shed_response()));
                conn.close_after_flush = true;
            }
            return;
        }
        let snap = self.store.load();
        let keep_alive = !req.wants_close();
        let path = req.path.trim_end_matches('/');
        if path == "/v1/changes" {
            let wants_sse = req
                .header("accept")
                .is_some_and(|a| a.contains("text/event-stream"));
            if wants_sse {
                match api::changes_since_param(&req, &snap) {
                    Ok(since) => self.subscribe_sse(idx, &snap, since),
                    Err(resp) => {
                        count_response(&self.stats, resp.status);
                        self.queue_response(idx, resp, keep_alive);
                    }
                }
                return;
            }
            if api::query_param(&req.query, "wait").is_some() {
                match api::changes_since_param(&req, &snap) {
                    Ok(since) if since >= snap.epoch => {
                        // Nothing to report yet: park until a publish
                        // or the idle deadline.
                        if let Some(conn) = self.conns[idx].as_mut() {
                            conn.mode = Mode::LongPoll { since, keep_alive };
                            conn.last_activity = Instant::now();
                        }
                    }
                    Ok(since) => {
                        let resp = api::render_changes(
                            &snap,
                            self.store.changes(),
                            self.store.durable(),
                            since,
                        );
                        count_response(&self.stats, resp.status);
                        self.queue_response(idx, resp, keep_alive);
                    }
                    Err(resp) => {
                        count_response(&self.stats, resp.status);
                        self.queue_response(idx, resp, keep_alive);
                    }
                }
                return;
            }
        }
        let resp = api::route(
            &req,
            &snap,
            &self.stats,
            self.store.changes(),
            self.store.durable(),
            self.store.live_stats(),
            Some(&self.rstats),
            self.store.dist_stats(),
            Some(self.store.health().as_ref()),
        );
        count_response(&self.stats, resp.status);
        self.queue_response(idx, resp, keep_alive);
    }

    /// Switch a connection into SSE mode: stream head, immediate
    /// catch-up event, then one pushed event per publish. A `since`
    /// that already fell off the ring draws a terminal `resync` event.
    fn subscribe_sse(&mut self, idx: usize, snap: &Arc<Snapshot>, since: u64) {
        let resp = api::render_changes(snap, self.store.changes(), self.store.durable(), since);
        count_response(&self.stats, resp.status);
        let resync = resp.status != 200;
        let event = if resync { "resync" } else { "changes" };
        let frame = sse_frame(snap.epoch, event, resp.body.as_slice());
        let Some(conn) = self.conns[idx].as_mut() else {
            return;
        };
        conn.out.push_back(OutBuf::raw(SSE_HEAD.to_vec()));
        conn.out.push_back(OutBuf::raw(frame));
        conn.buf.clear(); // the stream owns the connection now
        if resync {
            conn.close_after_flush = true;
        } else {
            conn.mode = Mode::Sse {
                last_epoch: snap.epoch,
            };
            self.rstats.sse_subscribers.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn queue_response(&mut self, idx: usize, resp: Response, keep_alive: bool) {
        let Some(conn) = self.conns[idx].as_mut() else {
            return;
        };
        let mut out = OutBuf::response(resp, keep_alive);
        // Every routed response holds an admission slot until it is
        // fully on the wire (shed 503s bypass this path, so shedding
        // cannot consume the capacity it protects).
        out.counted = true;
        self.rstats.inflight.fetch_add(1, Ordering::Relaxed);
        conn.out.push_back(out);
        if !keep_alive {
            conn.close_after_flush = true;
        }
    }

    // ---- push delivery ----

    fn drain_wake_pipe(&mut self) {
        let mut sink = [0u8; 64];
        while matches!((&mut &self.wake_rx).read(&mut sink), Ok(n) if n > 0) {}
    }

    /// A publish landed: complete parked long-polls and push an SSE
    /// frame to every subscriber. Delta JSON is rendered once per
    /// distinct `since` epoch and shared across subscribers.
    fn fan_out(&mut self) {
        let snap = self.store.load();
        let epoch = snap.epoch;
        // status + body per from-epoch for long-polls; full frame
        // bytes per from-epoch for SSE.
        let mut rendered: HashMap<u64, (u16, Arc<Vec<u8>>)> = HashMap::new();
        let mut frames: HashMap<u64, (bool, Arc<Vec<u8>>)> = HashMap::new();
        for idx in 0..self.conns.len() {
            let mode = match self.conns[idx].as_ref() {
                Some(conn) => conn.mode,
                None => continue,
            };
            match mode {
                Mode::Sse { last_epoch } if last_epoch < epoch => {
                    let (resync, frame) = {
                        let (resync, frame) = frames.entry(last_epoch).or_insert_with(|| {
                            let r = api::render_changes(
                                &snap,
                                self.store.changes(),
                                self.store.durable(),
                                last_epoch,
                            );
                            let resync = r.status != 200;
                            let event = if resync { "resync" } else { "changes" };
                            (resync, Arc::new(sse_frame(epoch, event, r.body.as_slice())))
                        });
                        (*resync, Arc::clone(frame))
                    };
                    let Some(conn) = self.conns[idx].as_mut() else {
                        continue;
                    };
                    conn.out.push_back(OutBuf::shared(&frame));
                    if resync {
                        // The ring cannot carry this subscriber any
                        // further: tell it to resync and hang up.
                        conn.close_after_flush = true;
                    } else {
                        conn.mode = Mode::Sse { last_epoch: epoch };
                    }
                    self.flush(idx);
                }
                Mode::LongPoll { since, keep_alive } if since < epoch => {
                    let (status, body) = {
                        let (status, body) = rendered.entry(since).or_insert_with(|| {
                            let r = api::render_changes(
                                &snap,
                                self.store.changes(),
                                self.store.durable(),
                                since,
                            );
                            (r.status, Arc::new(r.body.to_vec()))
                        });
                        (*status, Arc::clone(body))
                    };
                    count_response(&self.stats, status);
                    let resp = Response {
                        status,
                        body: Body::Shared(body as Arc<dyn AsRef<[u8]> + Send + Sync>),
                        headers: Vec::new(),
                    };
                    if let Some(conn) = self.conns[idx].as_mut() {
                        conn.mode = Mode::Http;
                        conn.last_activity = Instant::now();
                    }
                    self.queue_response(idx, resp, keep_alive);
                    // Pipelined requests buffered while parked run now.
                    self.process_requests(idx);
                    self.flush(idx);
                }
                _ => {}
            }
        }
    }

    // ---- deadlines ----

    fn scan_deadlines(&mut self) {
        let now = Instant::now();
        for idx in 0..self.conns.len() {
            enum Due {
                Idle,
                SlowHead,
                PollTimeout { since: u64, keep_alive: bool },
            }
            let due = {
                let Some(conn) = self.conns[idx].as_ref() else {
                    continue;
                };
                // Slowloris: `read_into` refreshes `last_activity` on
                // every byte, so a client trickling one header byte at
                // a time never looks idle — the head clock catches it:
                // a head must complete within one idle window of its
                // first byte no matter how steadily bytes arrive.
                let head_overdue = matches!(conn.mode, Mode::Http)
                    && conn.out.is_empty()
                    && !conn.close_after_flush
                    && conn
                        .head_started
                        .is_some_and(|t| now.duration_since(t) >= self.cfg.idle);
                if head_overdue {
                    Due::SlowHead
                } else if now.duration_since(conn.last_activity) < self.cfg.idle {
                    continue;
                } else {
                    match conn.mode {
                        // Only a connection we owe nothing is idle; a slow
                        // reader with queued output is still in flight, and
                        // SSE subscribers are parked by design.
                        Mode::Http if conn.out.is_empty() && !conn.close_after_flush => Due::Idle,
                        Mode::LongPoll { since, keep_alive } => {
                            Due::PollTimeout { since, keep_alive }
                        }
                        _ => continue,
                    }
                }
            };
            match due {
                Due::Idle => {
                    self.rstats.idle_timeouts.fetch_add(1, Ordering::Relaxed);
                    let resp = api::error(408, "idle keep-alive connection timed out");
                    count_response(&self.stats, resp.status);
                    self.queue_response(idx, resp, false);
                    self.flush(idx);
                }
                Due::SlowHead => {
                    self.rstats.idle_timeouts.fetch_add(1, Ordering::Relaxed);
                    let resp = api::error(408, "request header read timed out");
                    count_response(&self.stats, resp.status);
                    self.queue_response(idx, resp, false);
                    self.flush(idx);
                }
                Due::PollTimeout { since, keep_alive } => {
                    // The wait cap passed with no publish: answer the
                    // (empty) delta now, exactly as a plain poll would.
                    let snap = self.store.load();
                    let resp = api::render_changes(
                        &snap,
                        self.store.changes(),
                        self.store.durable(),
                        since,
                    );
                    count_response(&self.stats, resp.status);
                    if let Some(conn) = self.conns[idx].as_mut() {
                        conn.mode = Mode::Http;
                        conn.last_activity = now;
                    }
                    self.queue_response(idx, resp, keep_alive);
                    self.process_requests(idx);
                    self.flush(idx);
                }
            }
        }
    }

    // ---- write path ----

    /// Push queued output to the wire, then reconcile poller interest
    /// (write interest only while output is pending) and close when
    /// the connection is finished.
    fn flush(&mut self, idx: usize) {
        let outcome = {
            let Some(conn) = self.conns[idx].as_mut() else {
                return;
            };
            try_flush(conn, &self.rstats)
        };
        match outcome {
            FlushOutcome::Closed => self.close(idx),
            FlushOutcome::Pending => self.set_write_interest(idx, true),
            FlushOutcome::Drained => self.set_write_interest(idx, false),
        }
    }

    fn set_write_interest(&mut self, idx: usize, want: bool) {
        let Some(conn) = self.conns[idx].as_mut() else {
            return;
        };
        if conn.want_write == want {
            return;
        }
        let interest = if want { Interest::BOTH } else { Interest::READ };
        if self
            .poller
            .modify(conn.stream.as_raw_fd(), idx + KEY_CONN0, interest)
            .is_ok()
        {
            conn.want_write = want;
        }
    }

    fn close(&mut self, idx: usize) {
        let Some(conn) = self.conns[idx].take() else {
            return;
        };
        let _ = self.poller.delete(conn.stream.as_raw_fd());
        if matches!(conn.mode, Mode::Sse { .. }) {
            self.rstats.sse_subscribers.fetch_sub(1, Ordering::Relaxed);
        }
        // Release admission slots still held by unflushed responses,
        // or a burst of dying connections would pin the cap forever.
        for out in &conn.out {
            if out.counted {
                self.rstats.inflight.fetch_sub(1, Ordering::Relaxed);
            }
        }
        drop(conn);
        self.free.push(idx);
        self.open -= 1;
        self.rstats.open.fetch_sub(1, Ordering::Relaxed);
        if self.listener_paused && self.open < self.cfg.max_conns && self.drain_deadline.is_none() {
            self.resume_listener();
        }
    }
}

/// Drain the socket into the connection's parse buffer.
fn read_into(conn: &mut Conn) -> ReadOutcome {
    let mut scratch = [0u8; 8 * 1024];
    loop {
        match (&mut &conn.stream).read(&mut scratch) {
            Ok(0) => return ReadOutcome::Eof,
            Ok(n) => {
                conn.buf.extend_from_slice(&scratch[..n]);
                conn.last_activity = Instant::now();
                // A parked connection buffers without parsing; bound it
                // the same way the parser bounds a head.
                if conn.buf.len() > MAX_HEAD && !matches!(conn.mode, Mode::Http) {
                    return ReadOutcome::Error;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return ReadOutcome::Progress,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return ReadOutcome::Error,
        }
    }
}

/// Write the front of the queue with `writev`: one syscall covers the
/// rendered head and the (possibly shared, zero-copy) body slice.
fn try_flush(conn: &mut Conn, rstats: &ReactorStats) -> FlushOutcome {
    let release = |out: &OutBuf| {
        if out.counted {
            rstats.inflight.fetch_sub(1, Ordering::Relaxed);
        }
    };
    while let Some(front) = conn.out.front() {
        let total = front.head.len() + front.body.len();
        if front.written >= total {
            release(front);
            conn.out.pop_front();
            continue;
        }
        let written = {
            let head_off = front.written.min(front.head.len());
            let body_off = front.written.saturating_sub(front.head.len());
            let body = front.body.as_slice();
            let slices = [
                IoSlice::new(&front.head[head_off..]),
                IoSlice::new(&body[body_off..]),
            ];
            match (&mut &conn.stream).write_vectored(&slices) {
                Ok(0) => return FlushOutcome::Closed,
                Ok(n) => n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    // The socket buffer is full mid-response: leave the
                    // continuation state and resume on writability.
                    rstats.writev_continuations.fetch_add(1, Ordering::Relaxed);
                    return FlushOutcome::Pending;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return FlushOutcome::Closed,
            }
        };
        let front = conn.out.front_mut().expect("front still queued");
        front.written += written;
        if front.written >= total {
            release(front);
            conn.out.pop_front();
        }
    }
    if conn.close_after_flush {
        FlushOutcome::Closed
    } else {
        FlushOutcome::Drained
    }
}

/// The pre-rendered overload response (503 + `Retry-After`, framed
/// with `Connection: close`): rendered once per process and shared, so
/// shedding a request costs a counter check and a queue push — far
/// below the routing and rendering work it refuses.
fn shed_response() -> &'static Arc<Vec<u8>> {
    static SHED: std::sync::OnceLock<Arc<Vec<u8>>> = std::sync::OnceLock::new();
    SHED.get_or_init(|| {
        let resp =
            api::error(503, "server overloaded; retry shortly").with_header("Retry-After", "1");
        let mut bytes = resp.head_bytes(false);
        bytes.extend_from_slice(resp.body.as_slice());
        Arc::new(bytes)
    })
}

/// One SSE frame. JSON bodies may be pretty-printed across lines, so
/// the payload is emitted as one `data:` field per line (receivers
/// re-join them with `\n`, per the SSE spec).
fn sse_frame(epoch: u64, event: &str, data: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(data.len() + 64);
    let _ = write!(frame, "id: {epoch}\nevent: {event}\n");
    for line in data.split(|&b| b == b'\n') {
        let line = match line.last() {
            Some(b'\r') => &line[..line.len() - 1],
            _ => line,
        };
        frame.extend_from_slice(b"data: ");
        frame.extend_from_slice(line);
        frame.push(b'\n');
    }
    frame.push(b'\n');
    frame
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::read_response;
    use std::io::BufReader;

    fn boot(members: u32, cfg: ReactorConfig) -> (Arc<SnapshotStore>, ServerHandle) {
        let store = SnapshotStore::new(crate::testutil::snapshot_with(members, 7));
        let server = spawn_reactor(Arc::clone(&store), "127.0.0.1:0", cfg).expect("bind");
        (store, server)
    }

    fn rstats(server: &ServerHandle) -> &ReactorStats {
        server.reactor_stats.as_deref().expect("reactor engine")
    }

    /// One request on a fresh connection (Connection: close).
    fn raw_get(addr: SocketAddr, path: &str) -> (u16, String) {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        write!(
            s,
            "GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
        )
        .unwrap();
        let parts = read_response(&mut BufReader::new(s)).unwrap();
        (parts.status, String::from_utf8(parts.body).unwrap())
    }

    /// Read raw bytes until `pat` shows up (or panic at the deadline).
    fn read_until(s: &mut TcpStream, collected: &mut Vec<u8>, pat: &[u8]) {
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut scratch = [0u8; 4096];
        while !collected.windows(pat.len().max(1)).any(|w| w == pat) {
            assert!(
                Instant::now() < deadline,
                "timed out waiting for {:?} in {:?}",
                String::from_utf8_lossy(pat),
                String::from_utf8_lossy(collected)
            );
            match s.read(&mut scratch) {
                Ok(0) => panic!(
                    "peer closed before {:?} arrived",
                    String::from_utf8_lossy(pat)
                ),
                Ok(n) => collected.extend_from_slice(&scratch[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut => {}
                Err(e) => panic!("read failed: {e}"),
            }
        }
    }

    /// Poll a condition until it holds (or panic at the deadline).
    fn wait_for(what: &str, mut cond: impl FnMut() -> bool) {
        let deadline = Instant::now() + Duration::from_secs(5);
        while !cond() {
            assert!(Instant::now() < deadline, "timed out waiting for {what}");
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    #[test]
    fn serves_keep_alive_and_pipelined_requests() {
        let (_store, mut server) = boot(3, ReactorConfig::default());
        let mut s = TcpStream::connect(server.addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        // Three pipelined requests in a single segment, answered in
        // order on one connection.
        write!(
            s,
            "GET /v1/ixps HTTP/1.1\r\nHost: t\r\n\r\n\
             GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n\
             GET /nope HTTP/1.1\r\nHost: t\r\n\r\n"
        )
        .unwrap();
        let mut reader = BufReader::new(s);
        let first = read_response(&mut reader).unwrap();
        let second = read_response(&mut reader).unwrap();
        let third = read_response(&mut reader).unwrap();
        assert_eq!(first.status, 200);
        assert!(String::from_utf8(first.body).unwrap().contains("DE-CIX"));
        assert_eq!(second.status, 200);
        assert_eq!(third.status, 404);
        assert!(server.stats.requests() >= 3);
        assert!(server.stats.client_errors() >= 1);
        assert!(rstats(&server).accepted() >= 1);
        server.stop();
        server.stop(); // idempotent
    }

    #[test]
    fn head_split_across_many_reads_parses() {
        let (_store, server) = boot(2, ReactorConfig::default());
        let mut s = TcpStream::connect(server.addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        // Dribble the head a few bytes at a time across many segments.
        let head = b"GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n";
        for chunk in head.chunks(3) {
            s.write_all(chunk).unwrap();
            s.flush().unwrap();
            std::thread::sleep(Duration::from_millis(2));
        }
        let parts = read_response(&mut BufReader::new(s)).unwrap();
        assert_eq!(parts.status, 200);
    }

    #[test]
    fn poll_backend_serves_and_reports_kind() {
        let cfg = ReactorConfig {
            backend: BackendKind::Poll,
            ..ReactorConfig::default()
        };
        let (_store, server) = boot(2, cfg);
        let (status, body) = raw_get(server.addr, "/healthz");
        assert_eq!(status, 200);
        assert!(body.contains("\"status\": \"ok\""));
    }

    #[test]
    fn malformed_head_draws_400_and_close() {
        let (_store, server) = boot(2, ReactorConfig::default());
        let mut s = TcpStream::connect(server.addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        s.write_all(b"NOT-HTTP\r\n\r\n").unwrap();
        let mut reader = BufReader::new(s);
        let parts = read_response(&mut reader).unwrap();
        assert_eq!(parts.status, 400);
        // The connection closes after the 400.
        let mut one = [0u8; 1];
        assert_eq!(reader.get_mut().read(&mut one).unwrap(), 0);
        assert!(server.stats.client_errors() >= 1);
    }

    #[test]
    fn etag_revalidation_304_through_reactor() {
        let (store, server) = boot(3, ReactorConfig::default());
        let etag = store.load().etag.clone();
        let mut s = TcpStream::connect(server.addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        write!(
            s,
            "GET /v1/ixps HTTP/1.1\r\nHost: t\r\n\
             If-None-Match: \"{etag}\"\r\nConnection: close\r\n\r\n"
        )
        .unwrap();
        let parts = read_response(&mut BufReader::new(s)).unwrap();
        assert_eq!(parts.status, 304);
        assert!(parts.body.is_empty());
        assert_eq!(server.stats.not_modified(), 1);
    }

    /// Satellite (d): a response far larger than the socket's send
    /// buffer completes intact across partial-write continuations.
    #[test]
    fn partial_writes_continue_until_the_body_completes() {
        // 120 members → full mesh → a /v1/ixp/0/links body far larger
        // than the shrunken send buffer below.
        let cfg = ReactorConfig {
            sndbuf: Some(1), // kernel clamps to its floor (~4 KiB)
            ..ReactorConfig::default()
        };
        let (_store, server) = boot(120, cfg);
        let mut s = TcpStream::connect(server.addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        write!(
            s,
            "GET /v1/ixp/0/links HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
        )
        .unwrap();
        // Let the server hit WouldBlock before we drain anything.
        std::thread::sleep(Duration::from_millis(300));
        let parts = read_response(&mut BufReader::new(s)).unwrap();
        assert_eq!(parts.status, 200);
        let body = String::from_utf8(parts.body).unwrap();
        assert!(body.trim_end().ends_with('}'), "body complete");
        assert!(
            body.len() > 64 * 1024,
            "body big enough to fragment: {}",
            body.len()
        );
        assert!(
            rstats(&server).writev_continuations() > 0,
            "tiny SNDBUF must force at least one continuation"
        );
    }

    /// Satellite (b): idle keep-alive connections draw a 408 and close.
    #[test]
    fn idle_keep_alive_times_out_with_408() {
        let cfg = ReactorConfig {
            idle: Duration::from_millis(150),
            ..ReactorConfig::default()
        };
        let (_store, server) = boot(2, cfg);
        let mut s = TcpStream::connect(server.addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        // One successful request keeps the connection alive…
        write!(s, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let mut reader = BufReader::new(s);
        assert_eq!(read_response(&mut reader).unwrap().status, 200);
        // …then we go quiet past the deadline.
        let parts = read_response(&mut reader).unwrap();
        assert_eq!(parts.status, 408);
        let mut one = [0u8; 1];
        assert_eq!(
            reader.get_mut().read(&mut one).unwrap(),
            0,
            "closed after 408"
        );
        assert_eq!(rstats(&server).idle_timeouts(), 1);
    }

    /// Satellite (b): the connection cap pauses the accept path; the
    /// excess client waits in the kernel backlog and is served once a
    /// slot frees.
    #[test]
    fn max_conns_cap_applies_accept_backpressure() {
        let cfg = ReactorConfig {
            max_conns: 2,
            ..ReactorConfig::default()
        };
        let (_store, server) = boot(2, cfg);
        let hold = |addr| {
            let mut s = TcpStream::connect(addr).unwrap();
            s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            write!(s, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
            let mut r = BufReader::new(s);
            assert_eq!(read_response(&mut r).unwrap().status, 200);
            r
        };
        let first = hold(server.addr);
        let second = hold(server.addr);
        assert_eq!(rstats(&server).open(), 2);
        // The third connect lands in the kernel backlog: the reactor
        // must not accept it while at the cap.
        let mut third = TcpStream::connect(server.addr).unwrap();
        third
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        write!(third, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        std::thread::sleep(Duration::from_millis(200));
        assert_eq!(rstats(&server).open(), 2, "cap held");
        // Freeing a slot lets the parked client through.
        drop(first);
        let parts = read_response(&mut BufReader::new(third)).unwrap();
        assert_eq!(parts.status, 200);
        drop(second);
        wait_for("connections to close", || rstats(&server).open() == 0);
    }

    /// Satellite (d): a parked long-poll wakes on publish_with_delta
    /// and answers with exactly the published delta.
    #[test]
    fn long_poll_wakes_on_publish() {
        use mlpeer::live::LinkDelta;
        use mlpeer_bgp::Asn;
        use mlpeer_ixp::ixp::IxpId;

        let (store, server) = boot(3, ReactorConfig::default());
        let publisher = {
            let store = Arc::clone(&store);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(150));
                store.publish_with_delta(
                    crate::testutil::snapshot_with(4, 8),
                    LinkDelta {
                        added: vec![(IxpId(0), Asn(31), Asn(32))],
                        removed: vec![],
                    },
                )
            })
        };
        let t0 = Instant::now();
        let (status, body) = raw_get(server.addr, "/v1/changes?since=0&wait=1");
        publisher.join().unwrap();
        assert_eq!(status, 200);
        assert!(
            t0.elapsed() >= Duration::from_millis(100),
            "the long-poll must actually wait for the publish"
        );
        assert!(body.contains("\"epoch\": 1"), "{body}");
        assert!(body.contains("31"), "delta visible: {body}");
    }

    /// A long-poll with no publish answers an empty delta at the idle
    /// deadline instead of hanging forever.
    #[test]
    fn long_poll_times_out_with_empty_delta() {
        let cfg = ReactorConfig {
            idle: Duration::from_millis(150),
            ..ReactorConfig::default()
        };
        let (_store, server) = boot(2, cfg);
        let (status, body) = raw_get(server.addr, "/v1/changes?since=0&wait=1");
        assert_eq!(status, 200);
        assert!(body.contains("\"added\": []"), "{body}");
        assert!(body.contains("\"removed\": []"), "{body}");
    }

    /// Satellite (d): SSE subscribers get an immediate catch-up event,
    /// then one pushed event per publish — without polling.
    #[test]
    fn sse_stream_pushes_changes_events() {
        use mlpeer::live::LinkDelta;
        use mlpeer_bgp::Asn;
        use mlpeer_ixp::ixp::IxpId;

        let (store, server) = boot(3, ReactorConfig::default());
        let mut s = TcpStream::connect(server.addr).unwrap();
        s.set_read_timeout(Some(Duration::from_millis(100)))
            .unwrap();
        write!(
            s,
            "GET /v1/changes?since=0 HTTP/1.1\r\nHost: t\r\n\
             Accept: text/event-stream\r\n\r\n"
        )
        .unwrap();
        let mut collected = Vec::new();
        // Stream head + the immediate catch-up event.
        read_until(&mut s, &mut collected, b"text/event-stream");
        read_until(&mut s, &mut collected, b"event: changes\n");
        read_until(&mut s, &mut collected, b"\n\n");
        wait_for("subscriber registration", || {
            rstats(&server).sse_subscribers() == 1
        });
        // A publish pushes the delta to the parked stream.
        store.publish_with_delta(
            crate::testutil::snapshot_with(4, 8),
            LinkDelta {
                added: vec![(IxpId(0), Asn(77), Asn(78))],
                removed: vec![],
            },
        );
        read_until(&mut s, &mut collected, b"id: 1\n");
        read_until(&mut s, &mut collected, b"\n\n");
        let text = String::from_utf8_lossy(&collected);
        assert!(text.contains("HTTP/1.1 200 OK"), "{text}");
        assert!(text.contains("77"), "pushed delta visible: {text}");
        drop(s);
        wait_for("subscriber deregistration", || {
            rstats(&server).sse_subscribers() == 0
        });
    }

    /// Satellite (d): a `since` that fell off the delta ring draws a
    /// terminal `resync` event and the stream closes.
    #[test]
    fn sse_stale_since_resyncs_and_closes() {
        use mlpeer::live::LinkDelta;

        let snapshot = crate::testutil::snapshot_with(2, 7);
        let store = SnapshotStore::with_change_capacity(snapshot, 1);
        // Two delta publishes with a ring of depth 1: since=0 is gone.
        store.publish_with_delta(crate::testutil::snapshot_with(3, 8), LinkDelta::default());
        store.publish_with_delta(crate::testutil::snapshot_with(4, 9), LinkDelta::default());
        let server = spawn_reactor(Arc::clone(&store), "127.0.0.1:0", ReactorConfig::default())
            .expect("bind");
        let mut s = TcpStream::connect(server.addr).unwrap();
        s.set_read_timeout(Some(Duration::from_millis(100)))
            .unwrap();
        write!(
            s,
            "GET /v1/changes?since=0 HTTP/1.1\r\nHost: t\r\n\
             Accept: text/event-stream\r\n\r\n"
        )
        .unwrap();
        let mut collected = Vec::new();
        read_until(&mut s, &mut collected, b"event: resync\n");
        read_until(&mut s, &mut collected, b"\n\n");
        let text = String::from_utf8_lossy(&collected);
        assert!(text.contains("\"resync\": true"), "{text}");
        // Terminal: the server closes after the resync event.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match s.read(&mut [0u8; 64]) {
                Ok(0) => break,
                Ok(_) => {}
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    assert!(Instant::now() < deadline, "stream must close after resync");
                }
                Err(_) => break,
            }
        }
        assert_eq!(rstats(&server).sse_subscribers(), 0);
    }

    /// Satellite (c): the reactor counters move under load and surface
    /// under /v1/stats.
    #[test]
    fn counters_move_and_surface_in_stats() {
        let (_store, server) = boot(3, ReactorConfig::default());
        let report = crate::loadgen::run_load(
            server.addr,
            &crate::loadgen::LoadConfig {
                connections: 4,
                requests_per_connection: 50,
                targets: vec!["/v1/ixps".into(), "/healthz".into()],
            },
        );
        assert_eq!(report.errors, 0, "{report:?}");
        let r = rstats(&server);
        assert!(r.accepted() >= 4, "accepted {}", r.accepted());
        assert!(r.wakeups() > 0);
        wait_for("loadgen connections to close", || r.open() == 0);
        let (status, body) = raw_get(server.addr, "/v1/stats");
        assert_eq!(status, 200);
        assert!(body.contains("\"reactor\""), "{body}");
        assert!(body.contains("\"accepted\""), "{body}");
        assert!(body.contains("\"writev_continuations\""), "{body}");
        assert!(body.contains("\"sse_subscribers\""), "{body}");
    }

    /// Multiple SO_REUSEPORT shards share one port and all serve.
    #[cfg(target_os = "linux")]
    #[test]
    fn sharded_reactor_serves_on_one_port() {
        let cfg = ReactorConfig {
            shards: 2,
            ..ReactorConfig::default()
        };
        let (store, mut server) = boot(3, cfg);
        for _ in 0..8 {
            let (status, _) = raw_get(server.addr, "/healthz");
            assert_eq!(status, 200);
        }
        // A publish wakes every shard's pipe without incident.
        store.publish(crate::testutil::snapshot_with(4, 8));
        let (status, body) = raw_get(server.addr, "/healthz");
        assert_eq!(status, 200);
        assert!(body.contains("\"epoch\": 1"), "{body}");
        server.stop();
    }

    /// A client dribbling header bytes forever cannot hold a
    /// connection open past the idle window: per-byte activity keeps
    /// `last_activity` fresh, but the head-read clock starts at the
    /// first partial byte and only resets when a full head parses, so
    /// the dribbler draws a 408 and a close.
    #[test]
    fn slowloris_header_dribble_draws_408() {
        let cfg = ReactorConfig {
            idle: Duration::from_millis(200),
            ..ReactorConfig::default()
        };
        let (_store, server) = boot(2, cfg);
        let s = TcpStream::connect(server.addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut writer = s.try_clone().unwrap();
        let dribbler = std::thread::spawn(move || {
            // A header line that keeps growing and never terminates —
            // one byte every 60ms, well inside the 200ms idle window.
            let _ = writer.write_all(b"GET /healthz HTTP/1.1\r\nX-Pad: ");
            let _ = writer.flush();
            for _ in 0..100 {
                if writer.write_all(b"a").is_err() || writer.flush().is_err() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(60));
            }
        });
        let parts = read_response(&mut BufReader::new(s)).unwrap();
        assert_eq!(parts.status, 408, "slow header read must time out");
        assert!(rstats(&server).idle_timeouts() >= 1);
        dribbler.join().unwrap();
    }

    /// With the admission cap at zero every routed request is shed with
    /// the pre-rendered 503 + Retry-After before touching a snapshot,
    /// the shed counter moves, and no in-flight slot leaks.
    #[test]
    fn admission_cap_sheds_with_503_retry_after() {
        let cfg = ReactorConfig {
            admission: 0,
            ..ReactorConfig::default()
        };
        let (_store, server) = boot(2, cfg);
        let mut s = TcpStream::connect(server.addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        write!(s, "GET /v1/ixps HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let parts = read_response(&mut BufReader::new(s)).unwrap();
        assert_eq!(parts.status, 503);
        assert_eq!(parts.header("retry-after"), Some("1"));
        assert!(String::from_utf8(parts.body)
            .unwrap()
            .contains("overloaded"));
        assert!(rstats(&server).shed() >= 1);
        assert_eq!(
            rstats(&server).inflight(),
            0,
            "shed responses must not hold admission slots"
        );
    }

    /// Draining completes in-flight work: the SSE subscriber gets a
    /// terminal `shutdown` event and a close, the idle keep-alive
    /// connection closes, and the shard threads exit well before the
    /// grace deadline.
    #[test]
    fn drain_notifies_sse_and_exits_before_grace() {
        let cfg = ReactorConfig {
            drain_grace: Duration::from_secs(10),
            ..ReactorConfig::default()
        };
        let (store, mut server) = boot(3, cfg);
        // Park an SSE subscriber…
        let mut sse = TcpStream::connect(server.addr).unwrap();
        sse.set_read_timeout(Some(Duration::from_millis(100)))
            .unwrap();
        write!(
            sse,
            "GET /v1/changes?since=0 HTTP/1.1\r\nHost: t\r\n\
             Accept: text/event-stream\r\n\r\n"
        )
        .unwrap();
        let mut collected = Vec::new();
        read_until(&mut sse, &mut collected, b"event: changes\n");
        wait_for("subscriber registration", || {
            rstats(&server).sse_subscribers() == 1
        });
        // …and an idle keep-alive connection.
        let mut idle = TcpStream::connect(server.addr).unwrap();
        idle.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        write!(idle, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let first = read_response(&mut BufReader::new(idle.try_clone().unwrap())).unwrap();
        assert_eq!(first.status, 200);
        let t0 = Instant::now();
        server.drain();
        assert!(
            t0.elapsed() < Duration::from_secs(8),
            "drain must finish on connection count, not the grace deadline"
        );
        assert!(store.health().is_draining());
        // The parked stream got the terminal event, then EOF.
        read_until(&mut sse, &mut collected, b"event: shutdown\n");
        read_until(&mut sse, &mut collected, b"\"draining\"");
        let mut scratch = [0u8; 256];
        sse.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        loop {
            match sse.read(&mut scratch) {
                Ok(0) => break,
                Ok(_) => {}
                Err(e) => panic!("stream must close after shutdown event: {e}"),
            }
        }
        // The idle keep-alive connection was simply closed.
        assert_eq!(idle.read(&mut scratch).unwrap(), 0);
    }
}
