//! Readiness and degradation state: the registry behind `/readyz`.
//!
//! Liveness (`/healthz`) answers "is the process up"; **readiness**
//! answers "is it up *and whole*". One [`HealthState`] per
//! [`crate::store::SnapshotStore`] aggregates every subsystem that can
//! degrade without taking the process down:
//!
//! * **Durability breaker** — repeated durable-append failures (a full
//!   or failing `--data-dir` disk) trip a read-only-durability breaker
//!   after [`DURABLE_BREAKER_THRESHOLD`] consecutive failures. Reads
//!   keep serving and publishes keep swapping (availability over
//!   durability); appends stop being attempted on the publish path and
//!   a background probe retries with exponential backoff, catching the
//!   log up to the newest epoch and closing the breaker the moment the
//!   disk answers again — no restart needed.
//! * **Live refresher supervision** — a panicking tick is caught and
//!   the loop restarted with backoff
//!   (see [`crate::live::spawn_live_refresher`]); the registry reports
//!   `live-refresher` until a restarted tick completes cleanly.
//! * **Dist degradation** — the `--workers=N` fleet falling back to
//!   in-process execution reports `dist-workers` until a tick runs
//!   without new degradation.
//! * **Draining** — a SIGTERM/SIGINT drain in progress reports
//!   `draining` (and 503) so load balancers stop routing while
//!   in-flight requests finish.
//!
//! Everything here is lock-free atomics: readiness is read on the
//! request path and written from publish/supervisor threads.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Consecutive durable-append failures that trip the read-only
/// durability breaker.
pub const DURABLE_BREAKER_THRESHOLD: u64 = 3;

/// Aggregated degradation state, shared by the publish path, the
/// supervisors, and the `/readyz` handler.
#[derive(Debug, Default)]
pub struct HealthState {
    draining: AtomicBool,
    durable_breaker_open: AtomicBool,
    durable_consecutive: AtomicU64,
    durable_failures: AtomicU64,
    durable_recoveries: AtomicU64,
    probe_running: AtomicBool,
    live_restarting: AtomicBool,
    dist_degraded: AtomicBool,
}

impl HealthState {
    /// A fresh, fully-ready state.
    pub fn new() -> Arc<HealthState> {
        Arc::new(HealthState::default())
    }

    /// Flip the drain flag (set once by the signal path; never unset —
    /// a draining process exits).
    pub fn set_draining(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }

    /// Is a graceful drain in progress?
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Record one durable-append failure. Returns `true` when this
    /// failure *tripped* the breaker (the caller should start the
    /// recovery probe).
    pub fn record_durable_failure(&self) -> bool {
        self.durable_failures.fetch_add(1, Ordering::Relaxed);
        let consecutive = self.durable_consecutive.fetch_add(1, Ordering::SeqCst) + 1;
        if consecutive >= DURABLE_BREAKER_THRESHOLD {
            !self.durable_breaker_open.swap(true, Ordering::SeqCst)
        } else {
            false
        }
    }

    /// Record a durable failure and open the breaker immediately,
    /// skipping the consecutive-count grace. Boot-time attach failures
    /// use this: there is no append history to smooth over, and the
    /// boot epoch must land via the recovery probe. Returns `true`
    /// when this call *tripped* the breaker (the caller should start
    /// the probe).
    pub fn trip_durable_breaker(&self) -> bool {
        self.durable_failures.fetch_add(1, Ordering::Relaxed);
        self.durable_consecutive
            .store(DURABLE_BREAKER_THRESHOLD, Ordering::SeqCst);
        !self.durable_breaker_open.swap(true, Ordering::SeqCst)
    }

    /// Record one successful durable append: resets the consecutive
    /// count and closes the breaker if it was open.
    pub fn record_durable_success(&self) {
        self.durable_consecutive.store(0, Ordering::SeqCst);
        if self.durable_breaker_open.swap(false, Ordering::SeqCst) {
            self.durable_recoveries.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Is the read-only-durability breaker open?
    pub fn durable_breaker_open(&self) -> bool {
        self.durable_breaker_open.load(Ordering::SeqCst)
    }

    /// Total durable-append failures since boot.
    pub fn durable_failures(&self) -> u64 {
        self.durable_failures.load(Ordering::Relaxed)
    }

    /// Times the breaker closed again after opening.
    pub fn durable_recoveries(&self) -> u64 {
        self.durable_recoveries.load(Ordering::Relaxed)
    }

    /// Claim the single recovery-probe slot. Returns `true` when the
    /// caller should spawn the probe (nobody else is running one).
    pub(crate) fn claim_probe(&self) -> bool {
        !self.probe_running.swap(true, Ordering::SeqCst)
    }

    /// Release the recovery-probe slot (the probe exited).
    pub(crate) fn release_probe(&self) {
        self.probe_running.store(false, Ordering::SeqCst);
    }

    /// Mark the live refresher as crashed/restarting (`true`) or
    /// recovered (`false`).
    pub fn set_live_restarting(&self, restarting: bool) {
        self.live_restarting.store(restarting, Ordering::SeqCst);
    }

    /// Mark the dist fleet as freshly degraded (`true`) or running a
    /// clean tick again (`false`).
    pub fn set_dist_degraded(&self, degraded: bool) {
        self.dist_degraded.store(degraded, Ordering::SeqCst);
    }

    /// The active degradation reasons, stable slugs for `/readyz`.
    pub fn reasons(&self) -> Vec<&'static str> {
        let mut reasons = Vec::new();
        if self.durable_breaker_open() {
            reasons.push("durable-append");
        }
        if self.live_restarting.load(Ordering::SeqCst) {
            reasons.push("live-refresher");
        }
        if self.dist_degraded.load(Ordering::SeqCst) {
            reasons.push("dist-workers");
        }
        reasons
    }

    /// The one-word readiness status: `draining` dominates, any reason
    /// means `degraded`, otherwise `ready`.
    pub fn status(&self) -> &'static str {
        if self.is_draining() {
            "draining"
        } else if self.reasons().is_empty() {
            "ready"
        } else {
            "degraded"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breaker_trips_after_threshold_and_recovers() {
        let h = HealthState::new();
        assert_eq!(h.status(), "ready");
        for i in 1..DURABLE_BREAKER_THRESHOLD {
            assert!(!h.record_durable_failure(), "failure {i} must not trip");
            assert!(!h.durable_breaker_open());
        }
        assert!(h.record_durable_failure(), "threshold failure trips");
        assert!(h.durable_breaker_open());
        assert_eq!(h.status(), "degraded");
        assert_eq!(h.reasons(), vec!["durable-append"]);
        // Further failures keep it open without re-tripping.
        assert!(!h.record_durable_failure());
        h.record_durable_success();
        assert!(!h.durable_breaker_open());
        assert_eq!(h.status(), "ready");
        assert_eq!(h.durable_recoveries(), 1);
        assert_eq!(h.durable_failures(), DURABLE_BREAKER_THRESHOLD + 1);
    }

    #[test]
    fn success_resets_the_consecutive_count() {
        let h = HealthState::new();
        for _ in 0..DURABLE_BREAKER_THRESHOLD - 1 {
            h.record_durable_failure();
        }
        h.record_durable_success();
        // A fresh run of failures must count from zero again.
        for i in 1..DURABLE_BREAKER_THRESHOLD {
            assert!(!h.record_durable_failure(), "failure {i} after reset");
        }
        assert!(h.record_durable_failure());
    }

    #[test]
    fn reasons_compose_and_draining_dominates() {
        let h = HealthState::new();
        h.set_live_restarting(true);
        h.set_dist_degraded(true);
        assert_eq!(h.reasons(), vec!["live-refresher", "dist-workers"]);
        assert_eq!(h.status(), "degraded");
        h.set_live_restarting(false);
        assert_eq!(h.reasons(), vec!["dist-workers"]);
        h.set_draining();
        assert_eq!(h.status(), "draining");
    }

    #[test]
    fn probe_slot_is_exclusive() {
        let h = HealthState::new();
        assert!(h.claim_probe());
        assert!(!h.claim_probe());
        h.release_probe();
        assert!(h.claim_probe());
    }
}
