//! Immutable, versioned views of one inference run.
//!
//! A [`Snapshot`] owns everything a query needs — the link set, the
//! [`LinkIndex`] built over it, IXP names, and run provenance — and is
//! only ever shared as `Arc<Snapshot>`: once published it never
//! mutates, so readers hold a consistent view for as long as they keep
//! the `Arc`, across any number of store swaps.
//!
//! The **ETag is content-addressed**: a hash of the deterministic JSON
//! rendering ([`mlpeer::report::to_json`], sorted keys) of the
//! link set and announcement corpus. Two harvests that infer the same
//! links produce the same ETag even across epochs and process restarts,
//! so HTTP caches and `If-None-Match` revalidation survive refreshes
//! that change nothing.

use std::collections::{BTreeMap, BTreeSet};
use std::hash::Hasher;

use mlpeer::hash::FxHasher;
use mlpeer::index::{Announcement, LinkIndex};
use mlpeer::infer::{MlpLinkSet, Observation};
use mlpeer::passive::PassiveStats;
use mlpeer::report;
use mlpeer::validate::cross::{validate_harvest, CorpusConfig, ValidationReport};
use mlpeer_bgp::Asn;
use mlpeer_ixp::ixp::IxpId;
use mlpeer_ixp::Ecosystem;

/// One immutable, indexed view of the inference results.
#[derive(Debug)]
pub struct Snapshot {
    /// Monotone version, stamped by [`crate::SnapshotStore::publish`]
    /// (the initial snapshot is epoch 0).
    pub epoch: u64,
    /// Content hash of the deterministic JSON of the link set and
    /// announcements (no surrounding quotes; the HTTP layer adds them).
    pub etag: String,
    /// The scale word the run was generated at ("tiny", "small", …).
    pub scale: String,
    /// The run's RNG seed.
    pub seed: u64,
    /// IXP names, for human-readable responses.
    pub names: BTreeMap<IxpId, String>,
    /// The inferred link set.
    pub links: MlpLinkSet,
    /// O(result) query indexes over `links` and the announcements.
    pub index: LinkIndex,
    /// Observations the run folded (passive + active).
    pub observation_count: usize,
    /// Unique links across IXPs, precomputed once (the full
    /// `unique_links()` collect is O(total links) — too hot to redo
    /// per request).
    pub unique_link_count: usize,
    /// Distinct ASNs involved in any link, precomputed likewise.
    pub distinct_asn_count: usize,
    /// Passive-pipeline statistics of the producing harvest.
    pub passive_stats: PassiveStats,
    /// IRR/RPKI cross-validation of the inferred links (`/v1/validate`).
    /// A pure function of `(eco, links, observations)`, so the sharded
    /// and distributed harvests inherit byte-identity for free; empty
    /// (all-zero) when the producing path skipped validation.
    pub validation: ValidationReport,
    /// Pre-rendered GET bodies, built once here so the serve hot path
    /// is a lookup + memcpy (see [`crate::cache::BodyCache`]).
    pub cache: crate::cache::BodyCache,
}

impl Snapshot {
    /// Build a snapshot (index construction + ETag) from one pipeline
    /// run's outputs, pre-rendering every addressable GET body into the
    /// [`crate::cache::BodyCache`]. The epoch starts at 0; publishing
    /// through a [`crate::SnapshotStore`] re-stamps it.
    pub fn build(
        scale: &str,
        seed: u64,
        names: BTreeMap<IxpId, String>,
        links: MlpLinkSet,
        observations: &[Observation],
        passive_stats: PassiveStats,
    ) -> Snapshot {
        Snapshot::build_validated(
            scale,
            seed,
            names,
            links,
            observations,
            passive_stats,
            ValidationReport::default(),
        )
    }

    /// [`build`](Snapshot::build) carrying a cross-validation report —
    /// the path that knows the producing ecosystem computes the report
    /// (see [`of_pipeline`](Snapshot::of_pipeline)) and hands it in
    /// here so the `/v1/validate` body pre-renders with the rest.
    #[allow(clippy::too_many_arguments)]
    pub fn build_validated(
        scale: &str,
        seed: u64,
        names: BTreeMap<IxpId, String>,
        links: MlpLinkSet,
        observations: &[Observation],
        passive_stats: PassiveStats,
        validation: ValidationReport,
    ) -> Snapshot {
        let mut snapshot = Snapshot::build_uncached_validated(
            scale,
            seed,
            names,
            links,
            observations,
            passive_stats,
            validation,
        );
        // Render every addressable body once, at build time. Safe to do
        // before the store stamps the epoch: ETag-addressed bodies never
        // mention the epoch.
        snapshot.cache = crate::cache::BodyCache::build(&snapshot);
        snapshot
    }

    /// [`build`](Snapshot::build) without the body pre-render: the
    /// shape live-mode tick publishes use, where a per-link delta must
    /// not pay an O(announcement-corpus) render. Every endpoint falls
    /// back to rendering live on a cache miss, so the served bytes are
    /// identical — only the per-request cost differs.
    pub fn build_uncached(
        scale: &str,
        seed: u64,
        names: BTreeMap<IxpId, String>,
        links: MlpLinkSet,
        observations: &[Observation],
        passive_stats: PassiveStats,
    ) -> Snapshot {
        Snapshot::build_uncached_validated(
            scale,
            seed,
            names,
            links,
            observations,
            passive_stats,
            ValidationReport::default(),
        )
    }

    /// [`build_uncached`](Snapshot::build_uncached) carrying a
    /// cross-validation report.
    #[allow(clippy::too_many_arguments)]
    pub fn build_uncached_validated(
        scale: &str,
        seed: u64,
        names: BTreeMap<IxpId, String>,
        links: MlpLinkSet,
        observations: &[Observation],
        passive_stats: PassiveStats,
        validation: ValidationReport,
    ) -> Snapshot {
        let index = LinkIndex::build(&links, observations);
        let etag = content_etag(&links, observations);
        let unique = links.unique_links();
        let distinct_asn_count = unique
            .iter()
            .flat_map(|&(a, b)| [a, b])
            .collect::<std::collections::BTreeSet<Asn>>()
            .len();
        Snapshot {
            epoch: 0,
            etag,
            scale: scale.to_string(),
            seed,
            names,
            links,
            index,
            observation_count: observations.len(),
            unique_link_count: unique.len(),
            distinct_asn_count,
            passive_stats,
            validation,
            cache: crate::cache::BodyCache::default(),
        }
    }

    /// Rebuild a full serving snapshot from its persisted
    /// deterministic parts — the durable-store recovery and `?at=`
    /// time-travel path. The index comes back via
    /// [`LinkIndex::build_from_announcements`] and the ETag via the
    /// same hash [`Snapshot::build`] uses, so a recovered snapshot
    /// serves byte-identical bodies and ETags to the one originally
    /// published (the caller re-verifies the stored ETag against the
    /// rebuilt one as the end-to-end integrity check).
    pub fn from_parts(parts: SnapshotParts) -> Snapshot {
        let SnapshotParts {
            epoch,
            scale,
            seed,
            names,
            links,
            announcements,
            observation_count,
            passive_stats,
            validation,
        } = parts;
        let index = LinkIndex::build_from_announcements(&links, announcements.iter().copied());
        let etag = etag_of(&links, &announcements);
        let unique = links.unique_links();
        let distinct_asn_count = unique
            .iter()
            .flat_map(|&(a, b)| [a, b])
            .collect::<std::collections::BTreeSet<Asn>>()
            .len();
        let mut snapshot = Snapshot {
            epoch,
            etag,
            scale,
            seed,
            names,
            links,
            index,
            observation_count,
            unique_link_count: unique.len(),
            distinct_asn_count,
            passive_stats,
            validation,
            cache: crate::cache::BodyCache::default(),
        };
        snapshot.cache = crate::cache::BodyCache::build(&snapshot);
        snapshot
    }

    /// Convenience: names map from a generated ecosystem.
    pub fn names_of(eco: &Ecosystem) -> BTreeMap<IxpId, String> {
        eco.ixps.iter().map(|x| (x.id, x.name.clone())).collect()
    }

    /// Run the full inference pipeline over `eco` and snapshot the
    /// result — the one-call path the binary, the refresher, and the
    /// end-to-end tests share.
    pub fn of_pipeline(eco: &Ecosystem, scale: mlpeer_bench::Scale, seed: u64) -> Snapshot {
        let p = mlpeer_bench::run_pipeline(eco, seed);
        let validation =
            validate_harvest(eco, &p.links, &p.observations, &CorpusConfig::seeded(seed));
        Snapshot::build_validated(
            &format!("{scale:?}").to_lowercase(),
            seed,
            Snapshot::names_of(eco),
            p.links,
            &p.observations,
            p.passive_stats,
            validation,
        )
    }

    /// [`of_pipeline`](Snapshot::of_pipeline) with the passive harvest
    /// distributed across worker processes per `cfg` — the
    /// `--workers=N` boot path. Byte-identical to the serial variant on
    /// the same `(eco, seed)`: only the harvest's execution strategy
    /// differs, never its fold (see `mlpeer_dist`).
    pub fn of_pipeline_dist(
        eco: &Ecosystem,
        scale: mlpeer_bench::Scale,
        seed: u64,
        cfg: &mlpeer_dist::DistConfig,
        stats: &mlpeer_dist::DistStats,
    ) -> Snapshot {
        let p = mlpeer_bench::run_pipeline_dist(eco, scale.word(), seed, cfg, stats);
        let validation =
            validate_harvest(eco, &p.links, &p.observations, &CorpusConfig::seeded(seed));
        Snapshot::build_validated(
            scale.word(),
            seed,
            Snapshot::names_of(eco),
            p.links,
            &p.observations,
            p.passive_stats,
            validation,
        )
    }

    /// The IXP's name, or a stable placeholder for unknown ids.
    pub fn name(&self, ixp: IxpId) -> &str {
        self.names.get(&ixp).map(String::as_str).unwrap_or("?")
    }
}

/// The deterministic parts the durable store persists for one epoch —
/// everything [`Snapshot::from_parts`] needs to rebuild the serving
/// snapshot (index, body cache, content ETag) byte-identically.
#[derive(Debug, Clone)]
pub struct SnapshotParts {
    /// The epoch the snapshot served as.
    pub epoch: u64,
    /// Scale word of the producing run.
    pub scale: String,
    /// RNG seed of the producing run.
    pub seed: u64,
    /// IXP names.
    pub names: BTreeMap<IxpId, String>,
    /// The inferred link set.
    pub links: MlpLinkSet,
    /// The deduplicated covered-member announcement corpus — exactly
    /// [`LinkIndex::announcements`] of the original snapshot's index.
    pub announcements: BTreeSet<Announcement>,
    /// Observations the producing run folded.
    pub observation_count: usize,
    /// Passive-pipeline statistics of the producing harvest.
    pub passive_stats: PassiveStats,
    /// Cross-validation report of the producing run (persisted, not
    /// recomputed: recovery has no ecosystem to re-derive the corpus
    /// from).
    pub validation: ValidationReport,
}

/// The content hash behind the ETag: FxHash over the canonical JSON of
/// the link set plus the deduplicated announcement corpus.
fn content_etag(links: &MlpLinkSet, observations: &[Observation]) -> String {
    etag_of(
        links,
        &mlpeer::index::scan::announcements(links, observations),
    )
}

/// The same hash over an already-extracted corpus — shared by the
/// build path (above) and the durable-store recovery path, so the two
/// can never drift.
pub(crate) fn etag_of(links: &MlpLinkSet, announcements: &BTreeSet<Announcement>) -> String {
    let announcements: Vec<(String, u16, u32)> = announcements
        .iter()
        .map(|&(p, ixp, asn)| (p.to_string(), ixp.0, asn.value()))
        .collect();
    let corpus = report::to_json(&(links, &announcements));
    let mut h = FxHasher::default();
    h.write(corpus.as_bytes());
    format!("{:016x}", h.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlpeer::passive::PassiveStats;

    fn tiny_inputs() -> (MlpLinkSet, Vec<Observation>) {
        crate::testutil::tiny_inputs(3)
    }

    #[test]
    fn etag_is_content_addressed_and_stable() {
        let (links, observations) = tiny_inputs();
        let names: BTreeMap<IxpId, String> = [(IxpId(0), "DE-CIX".to_string())].into();
        let a = Snapshot::build(
            "tiny",
            7,
            names.clone(),
            links.clone(),
            &observations,
            PassiveStats::default(),
        );
        let b = Snapshot::build(
            "tiny",
            7,
            names.clone(),
            links.clone(),
            &observations,
            PassiveStats::default(),
        );
        assert_eq!(a.etag, b.etag, "same content, same ETag");
        assert_eq!(a.etag.len(), 16);

        // Different content must change the ETag.
        let fewer = Snapshot::build(
            "tiny",
            7,
            names,
            links,
            &observations[..2],
            PassiveStats::default(),
        );
        assert_ne!(a.etag, fewer.etag);
    }

    #[test]
    fn from_parts_rebuilds_byte_identically() {
        let (links, observations) = tiny_inputs();
        let original = Snapshot::build(
            "tiny",
            7,
            [(IxpId(0), "DE-CIX".to_string())].into(),
            links,
            &observations,
            PassiveStats::default(),
        );
        let rebuilt = Snapshot::from_parts(SnapshotParts {
            epoch: 3,
            scale: original.scale.clone(),
            seed: original.seed,
            names: original.names.clone(),
            links: original.links.clone(),
            announcements: original.index.announcements(),
            observation_count: original.observation_count,
            passive_stats: original.passive_stats.clone(),
            validation: original.validation.clone(),
        });
        assert_eq!(rebuilt.epoch, 3);
        assert_eq!(
            rebuilt.etag, original.etag,
            "content hash survives the round trip"
        );
        // Every addressable body renders byte-identically.
        assert_eq!(
            crate::api::render_ixps(&rebuilt),
            crate::api::render_ixps(&original)
        );
        assert_eq!(
            crate::api::render_ixp_links(&rebuilt, IxpId(0)),
            crate::api::render_ixp_links(&original, IxpId(0))
        );
        for &asn in original.index.members() {
            assert_eq!(
                crate::api::render_member(&rebuilt, asn),
                crate::api::render_member(&original, asn),
                "AS{}",
                asn.value()
            );
        }
        for p in original.index.announced_prefixes() {
            assert_eq!(
                crate::api::render_prefix(&rebuilt, &p),
                crate::api::render_prefix(&original, &p),
                "{p}"
            );
        }
    }

    #[test]
    fn snapshot_carries_consistent_counts() {
        let (links, observations) = tiny_inputs();
        let snap = Snapshot::build(
            "tiny",
            7,
            [(IxpId(0), "DE-CIX".to_string())].into(),
            links.clone(),
            &observations,
            PassiveStats::default(),
        );
        assert_eq!(snap.epoch, 0);
        assert_eq!(snap.observation_count, 3);
        assert_eq!(snap.index.links_total(), links.per_ixp_total());
        assert_eq!(snap.name(IxpId(0)), "DE-CIX");
        assert_eq!(snap.name(IxpId(9)), "?");
        assert_eq!(snap.distinct_asn_count, 3);
        assert_eq!(snap.unique_link_count, 3);
    }
}
