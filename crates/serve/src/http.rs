//! Minimal std-only HTTP/1.1 plumbing: request parsing, response
//! writing, and a fixed thread pool.
//!
//! The vendor tree has no async runtime, so the server is the classic
//! shape: a blocking accept loop handing connections to a
//! [`ThreadPool`], one keep-alive request loop per connection. The
//! parser covers exactly what the API needs — GET requests, a path
//! (with the raw remainder preserved so `/v1/prefix/10.0.0.0/8` keeps
//! its slash), and the handful of headers the router reads.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Longest request head (request line + headers) accepted, bytes.
pub(crate) const MAX_HEAD: usize = 16 * 1024;

/// One parsed request head.
#[derive(Debug, Clone, Default)]
pub struct Request {
    /// Uppercase method ("GET").
    pub method: String,
    /// Percent-decoded path, query string stripped.
    pub path: String,
    /// The raw query string after `?` (may be empty).
    pub query: String,
    /// Headers as (lowercased-name, value).
    pub headers: Vec<(String, String)>,
}

impl Request {
    /// First header with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Did the client ask to drop the connection after this exchange?
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Percent-decode a URL path (`%2F` → `/`, `+` left alone).
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            if let Some(hex) = bytes.get(i + 1..i + 3) {
                if let Ok(b) = u8::from_str_radix(std::str::from_utf8(hex).unwrap_or("zz"), 16) {
                    out.push(b);
                    i += 3;
                    continue;
                }
            }
        }
        out.push(bytes[i]);
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Read one `\n`-terminated line, enforcing `limit` *while buffering*:
/// a peer streaming an endless line errors out at `limit` bytes instead
/// of growing memory until a newline arrives. `Ok(None)` is EOF before
/// any byte of the line.
fn read_line_bounded(
    reader: &mut BufReader<TcpStream>,
    limit: usize,
) -> io::Result<Option<String>> {
    let mut out: Vec<u8> = Vec::new();
    loop {
        let buf = match reader.fill_buf() {
            Ok(buf) => buf,
            // A read timeout before any byte of the line is idleness,
            // reported like clean EOF; a timeout mid-line stays an
            // error (the peer abandoned a half-sent request).
            Err(e)
                if out.is_empty()
                    && matches!(
                        e.kind(),
                        io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
                    ) =>
            {
                return Ok(None)
            }
            Err(e) => return Err(e),
        };
        if buf.is_empty() {
            if out.is_empty() {
                return Ok(None);
            }
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "truncated line",
            ));
        }
        if let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            if out.len() + pos > limit {
                return Err(io::Error::new(io::ErrorKind::InvalidData, "line too long"));
            }
            out.extend_from_slice(&buf[..pos]);
            reader.consume(pos + 1);
            if out.last() == Some(&b'\r') {
                out.pop();
            }
            return Ok(Some(String::from_utf8_lossy(&out).into_owned()));
        }
        let len = buf.len();
        if out.len() + len > limit {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "line too long"));
        }
        out.extend_from_slice(buf);
        reader.consume(len);
    }
}

/// Read one request head off the stream. `Ok(None)` means the peer
/// closed cleanly between requests (normal keep-alive teardown); any
/// malformed or oversized head is an `InvalidData` error. Buffering is
/// bounded by `MAX_HEAD` (16 KiB) even mid-line.
pub fn read_request(reader: &mut BufReader<TcpStream>) -> io::Result<Option<Request>> {
    let Some(line) = read_line_bounded(reader, MAX_HEAD)? else {
        return Ok(None);
    };
    if line.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "empty request line",
        ));
    }
    let mut parts = line.split_whitespace();
    let (method, target) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) if v.starts_with("HTTP/1.") => (m, t),
        _ => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad request line: {line:?}"),
            ))
        }
    };
    let (raw_path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q.to_string()),
        None => (target, String::new()),
    };
    let mut req = Request {
        method: method.to_ascii_uppercase(),
        path: percent_decode(raw_path),
        query,
        headers: Vec::new(),
    };
    let mut head_bytes = line.len();
    loop {
        let h = read_line_bounded(reader, MAX_HEAD.saturating_sub(head_bytes))?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "truncated head"))?;
        head_bytes += h.len() + 2;
        if h.is_empty() {
            break;
        }
        if let Some((name, value)) = h.split_once(':') {
            req.headers
                .push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    // This API is GET-only and GET bodies carry no semantics; a
    // declared body is rejected outright (the connection closes after
    // the error response, so framing is moot). Draining instead would
    // hand a trickling client an unbounded worker-pinning primitive.
    if req
        .header("content-length")
        .and_then(|v| v.parse::<u64>().ok())
        .is_some_and(|n| n > 0)
        || req.header("transfer-encoding").is_some()
    {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "request bodies are not accepted",
        ));
    }
    Ok(Some(req))
}

/// Parse one request head from an in-memory buffer — the nonblocking
/// twin of [`read_request`] for the reactor's incremental reads.
/// `Ok(Some((req, consumed)))` hands back the parsed head and how many
/// buffer bytes it spanned (the caller drains them and re-parses for
/// pipelined requests); `Ok(None)` means the head is still incomplete
/// (read more). The same bounds and shape rules apply: a head that has
/// not terminated within [`MAX_HEAD`] bytes, a malformed request line,
/// or a declared body are all `InvalidData` errors.
pub(crate) fn parse_head(buf: &[u8]) -> io::Result<Option<(Request, usize)>> {
    let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
    let mut offset = 0usize;
    let mut req: Option<Request> = None;
    loop {
        let Some(nl) = buf[offset..].iter().position(|&b| b == b'\n') else {
            // No newline yet: incomplete, unless the head already blew
            // the limit while buffering (the `read_line_bounded` rule).
            if buf.len() >= MAX_HEAD {
                return Err(bad("head too large".into()));
            }
            return Ok(None);
        };
        let consumed = offset + nl + 1;
        if consumed > MAX_HEAD {
            return Err(bad("head too large".into()));
        }
        let mut line = &buf[offset..offset + nl];
        if line.last() == Some(&b'\r') {
            line = &line[..line.len() - 1];
        }
        let line = String::from_utf8_lossy(line);
        match &mut req {
            None => {
                // The request line.
                if line.is_empty() {
                    return Err(bad("empty request line".into()));
                }
                let mut parts = line.split_whitespace();
                let (method, target) = match (parts.next(), parts.next(), parts.next()) {
                    (Some(m), Some(t), Some(v)) if v.starts_with("HTTP/1.") => (m, t),
                    _ => return Err(bad(format!("bad request line: {line:?}"))),
                };
                let (raw_path, query) = match target.split_once('?') {
                    Some((p, q)) => (p, q.to_string()),
                    None => (target, String::new()),
                };
                req = Some(Request {
                    method: method.to_ascii_uppercase(),
                    path: percent_decode(raw_path),
                    query,
                    headers: Vec::new(),
                });
            }
            Some(req) if line.is_empty() => {
                // End of head. Same body rejection as `read_request`:
                // the API is GET-only, declared bodies draw an error.
                if req
                    .header("content-length")
                    .and_then(|v| v.parse::<u64>().ok())
                    .is_some_and(|n| n > 0)
                    || req.header("transfer-encoding").is_some()
                {
                    return Err(bad("request bodies are not accepted".into()));
                }
                return Ok(Some((std::mem::take(req), consumed)));
            }
            Some(req) => {
                if let Some((name, value)) = line.split_once(':') {
                    req.headers
                        .push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
                }
            }
        }
        offset = consumed;
    }
}

/// One parsed client-side response: status, headers, length-framed
/// body. The single implementation the load generator and the
/// integration tests share.
#[derive(Debug, Clone, Default)]
pub struct ResponseParts {
    /// HTTP status code.
    pub status: u16,
    /// Headers as (lowercased-name, value).
    pub headers: Vec<(String, String)>,
    /// Body bytes (exactly `Content-Length` of them).
    pub body: Vec<u8>,
}

impl ResponseParts {
    /// First header with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Read one length-framed response off a client connection.
pub fn read_response(reader: &mut BufReader<TcpStream>) -> io::Result<ResponseParts> {
    let status_line = read_line_bounded(reader, MAX_HEAD)?
        .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "closed before status line"))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
    let mut parts = ResponseParts {
        status,
        ..ResponseParts::default()
    };
    loop {
        let h = read_line_bounded(reader, MAX_HEAD)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "truncated head"))?;
        if h.is_empty() {
            break;
        }
        if let Some((name, value)) = h.split_once(':') {
            parts
                .headers
                .push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    let len: usize = parts
        .header("content-length")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    parts.body = vec![0u8; len];
    reader.read_exact(&mut parts.body)?;
    Ok(parts)
}

/// A response body: either owned bytes (rendered for this response) or
/// a shared slice pinned by an `Arc` — the zero-copy path the reactor
/// writes straight from the snapshot's pre-rendered
/// [`crate::cache::BodyCache`] without ever copying the body.
pub enum Body {
    /// Bytes owned by this response (live renders, error bodies).
    Owned(Vec<u8>),
    /// A shared view (e.g. [`crate::cache::CacheSlice`]): the `Arc`
    /// keeps the backing storage alive for as long as the response is
    /// in flight, including across partial-write continuations.
    Shared(Arc<dyn AsRef<[u8]> + Send + Sync>),
}

impl Body {
    /// The body bytes.
    pub fn as_slice(&self) -> &[u8] {
        match self {
            Body::Owned(v) => v,
            Body::Shared(s) => s.as_ref().as_ref(),
        }
    }

    /// Body length in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Is the body empty (304s, long-poll parks)?
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// Copy out as owned bytes.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Clone for Body {
    fn clone(&self) -> Body {
        match self {
            Body::Owned(v) => Body::Owned(v.clone()),
            Body::Shared(s) => Body::Shared(Arc::clone(s)),
        }
    }
}

impl std::fmt::Debug for Body {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Body::Owned(v) => write!(f, "Body::Owned({} bytes)", v.len()),
            Body::Shared(s) => write!(f, "Body::Shared({} bytes)", s.as_ref().as_ref().len()),
        }
    }
}

impl From<Vec<u8>> for Body {
    fn from(v: Vec<u8>) -> Body {
        Body::Owned(v)
    }
}

/// One response, written with explicit `Content-Length` framing.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Body bytes (empty for 304).
    pub body: Body,
    /// Extra headers (name, value) — e.g. `ETag`.
    pub headers: Vec<(String, String)>,
}

impl Response {
    /// A JSON response with an owned body.
    pub fn json<S: Into<Vec<u8>>>(status: u16, body: S) -> Response {
        Response {
            status,
            body: Body::Owned(body.into()),
            headers: Vec::new(),
        }
    }

    /// A JSON response whose body is a shared slice — no copy; the
    /// `Arc` pins the backing storage until the response is written.
    pub fn shared<S: AsRef<[u8]> + Send + Sync + 'static>(status: u16, body: S) -> Response {
        Response {
            status,
            body: Body::Shared(Arc::new(body)),
            headers: Vec::new(),
        }
    }

    /// Attach a header.
    pub fn with_header(mut self, name: &str, value: &str) -> Response {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            304 => "Not Modified",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            410 => "Gone",
            503 => "Service Unavailable",
            _ => "Internal Server Error",
        }
    }

    /// The serialized head (status line + headers + blank line) —
    /// exactly the bytes [`write_to`](Response::write_to) puts before
    /// the body, so both engines frame responses identically.
    pub fn head_bytes(&self, keep_alive: bool) -> Vec<u8> {
        let mut head = Vec::with_capacity(128);
        // Writes into a Vec cannot fail.
        let _ = write!(head, "HTTP/1.1 {} {}\r\n", self.status, self.reason());
        let _ = write!(head, "Content-Type: application/json\r\n");
        let _ = write!(head, "Content-Length: {}\r\n", self.body.len());
        let _ = write!(
            head,
            "Connection: {}\r\n",
            if keep_alive { "keep-alive" } else { "close" }
        );
        for (name, value) in &self.headers {
            let _ = write!(head, "{name}: {value}\r\n");
        }
        head.extend_from_slice(b"\r\n");
        head
    }

    /// Serialize onto the wire.
    pub fn write_to<W: Write>(&self, w: &mut W, keep_alive: bool) -> io::Result<()> {
        w.write_all(&self.head_bytes(keep_alive))?;
        w.write_all(self.body.as_slice())?;
        w.flush()
    }
}

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed pool of worker threads fed over an mpsc channel. Dropping
/// the pool closes the channel and joins every worker.
pub struct ThreadPool {
    tx: Option<mpsc::Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawn `size` workers (floored at 1).
    pub fn new(size: usize) -> ThreadPool {
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..size.max(1))
            .map(|i| {
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("mlpeer-serve-worker-{i}"))
                    .spawn(move || loop {
                        let job = match rx.lock().expect("pool lock").recv() {
                            Ok(job) => job,
                            Err(_) => break, // pool dropped
                        };
                        job();
                    })
                    .expect("spawn worker")
            })
            .collect();
        ThreadPool {
            tx: Some(tx),
            workers,
        }
    }

    /// Queue one job.
    pub fn execute<F: FnOnce() + Send + 'static>(&self, job: F) {
        if let Some(tx) = &self.tx {
            let _ = tx.send(Box::new(job));
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        drop(self.tx.take());
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// Round-trip a raw request head through a real socket pair.
    fn parse(raw: &str) -> io::Result<Option<Request>> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        client.write_all(raw.as_bytes()).unwrap();
        drop(client);
        let (server_side, _) = listener.accept().unwrap();
        read_request(&mut BufReader::new(server_side))
    }

    #[test]
    fn parses_request_line_query_and_headers() {
        let req = parse(
            "GET /v1/prefix/10.0.0.0/8?detail=1 HTTP/1.1\r\nHost: x\r\nIf-None-Match: \"abc\"\r\n\r\n",
        )
        .unwrap()
        .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(
            req.path, "/v1/prefix/10.0.0.0/8",
            "slash inside prefix survives"
        );
        assert_eq!(req.query, "detail=1");
        assert_eq!(req.header("if-none-match"), Some("\"abc\""));
        assert_eq!(req.header("If-None-Match"), Some("\"abc\""));
        assert!(!req.wants_close());
    }

    #[test]
    fn percent_encoded_paths_decode() {
        let req = parse("GET /v1/prefix/10.0.0.0%2F8 HTTP/1.1\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.path, "/v1/prefix/10.0.0.0/8");
        assert_eq!(
            percent_decode("a%20b%zz%4"),
            "a b%zz%4",
            "junk escapes pass through"
        );
    }

    #[test]
    fn eof_and_garbage_are_distinguished() {
        assert!(
            parse("").unwrap().is_none(),
            "clean EOF is keep-alive teardown"
        );
        assert!(parse("NOT-HTTP\r\n\r\n").is_err());
    }

    /// The head limit binds *while buffering*: an endless line (no
    /// newline ever sent) and an oversized header block both error out
    /// at `MAX_HEAD` instead of growing memory.
    #[test]
    fn oversized_heads_are_rejected_without_buffering_them() {
        let endless = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_HEAD + 10));
        assert!(parse(&endless).is_err(), "oversized request line");
        let no_newline = "x".repeat(MAX_HEAD + 10);
        assert!(parse(&no_newline).is_err(), "endless line with no newline");
        let fat_headers = format!(
            "GET / HTTP/1.1\r\n{}\r\n",
            format!("h: {}\r\n", "v".repeat(1000)).repeat(20)
        );
        assert!(parse(&fat_headers).is_err(), "cumulative header limit");
    }

    /// `parse_head` agrees with `read_request` on shape and limits, and
    /// reports exactly the bytes a head consumed (pipelining relies on
    /// it).
    #[test]
    fn parse_head_is_incremental_and_bounded() {
        let raw = b"GET /v1/ixps?x=1 HTTP/1.1\r\nHost: a\r\n\r\nGET /next HTTP/1.1\r\n\r\n";
        // Every strict prefix short of the first terminator is
        // incomplete, never an error.
        let first_head = b"GET /v1/ixps?x=1 HTTP/1.1\r\nHost: a\r\n\r\n".len();
        for cut in 0..first_head {
            assert!(
                parse_head(&raw[..cut]).unwrap().is_none(),
                "cut at {cut} must be incomplete"
            );
        }
        let (req, consumed) = parse_head(raw).unwrap().unwrap();
        assert_eq!(consumed, first_head);
        assert_eq!(req.path, "/v1/ixps");
        assert_eq!(req.query, "x=1");
        assert_eq!(req.header("host"), Some("a"));
        // The remainder parses as the pipelined second request.
        let (req2, consumed2) = parse_head(&raw[consumed..]).unwrap().unwrap();
        assert_eq!(req2.path, "/next");
        assert_eq!(consumed + consumed2, raw.len());

        // Same rejections as the blocking parser.
        assert!(parse_head(b"\r\n\r\n").is_err(), "empty request line");
        assert!(parse_head(b"NOT-HTTP\r\n\r\n").is_err());
        assert!(
            parse_head(b"GET / HTTP/1.1\r\nContent-Length: 3\r\n\r\n").is_err(),
            "declared bodies are rejected"
        );
        let endless = vec![b'a'; MAX_HEAD + 1];
        assert!(parse_head(&endless).is_err(), "no newline within the limit");
        let fat = format!(
            "GET / HTTP/1.1\r\n{}\r\n",
            format!("h: {}\r\n", "v".repeat(1000)).repeat(20)
        );
        assert!(parse_head(fat.as_bytes()).is_err(), "cumulative limit");
    }

    #[test]
    fn shared_bodies_write_identically_to_owned() {
        let owned = Response::json(200, "{\"ok\":true}").with_header("ETag", "\"ff\"");
        let shared = Response::shared(200, b"{\"ok\":true}".to_vec()).with_header("ETag", "\"ff\"");
        let (mut a, mut b) = (Vec::new(), Vec::new());
        owned.write_to(&mut a, true).unwrap();
        shared.write_to(&mut b, true).unwrap();
        assert_eq!(a, b);
        assert_eq!(shared.head_bytes(true), owned.head_bytes(true));
        assert_eq!(shared.body.len(), 11);
        assert!(!shared.body.is_empty());
        assert_eq!(shared.body.clone().to_vec(), owned.body.to_vec());
    }

    #[test]
    fn response_writes_length_framing() {
        let mut out = Vec::new();
        Response::json(200, "{\"ok\":true}")
            .with_header("ETag", "\"ff\"")
            .write_to(&mut out, true)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.contains("ETag: \"ff\"\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
    }

    #[test]
    fn pool_runs_jobs_and_joins_on_drop() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = Arc::new(AtomicUsize::new(0));
        let pool = ThreadPool::new(3);
        for _ in 0..20 {
            let counter = counter.clone();
            pool.execute(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        drop(pool); // joins workers, so every job ran
        assert_eq!(counter.load(Ordering::Relaxed), 20);
    }
}
