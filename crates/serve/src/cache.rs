//! The publish-time pre-rendered body cache.
//!
//! Snapshot-addressed GET bodies are pure functions of the snapshot
//! content — the same property that makes the content ETag work — so
//! rendering them per request is wasted work under read-heavy traffic.
//! [`BodyCache`] renders every addressable body **once, when the
//! snapshot is built** (`/v1/ixps`, every `/v1/ixp/{id}/links`, every
//! linked `/v1/member/{asn}`, every *announced* `/v1/prefix/{p}`), and
//! the request path becomes a lookup plus one memcpy into the response.
//!
//! Storage follows the repo's dense-id discipline
//! ([`mlpeer::intern`]): member bodies sit in a flat `Vec` behind an
//! [`AsnTable`] and prefix bodies behind a [`PrefixTable`], so a cache
//! hit is one interning probe plus a `Vec` index; per-IXP bodies index
//! a dense `Vec` by the (generator-dense) `IxpId` directly.
//!
//! Un-announced CIDR queries (aggregates, absent prefixes — an
//! unbounded key space) still render live; everything the index can
//! enumerate is cached. Total cache size is linear in the announcement
//! corpus: each announcement contributes to at most its own exact body,
//! ≤ 32 covering bodies (one per parent-chain hop) and the covered
//! section of announced ancestors — no quadratic blowup.
//!
//! The cache lives inside the immutable [`Snapshot`], so it shares the
//! store's swap semantics: readers of an old epoch keep its bodies, a
//! publish installs a freshly rendered set atomically. Epochs are
//! stamped at publish *after* the build renders bodies — which is safe
//! precisely because ETag-addressed bodies never mention the epoch
//! (asserted by `cached_bodies_match_fresh_renders`). Live-mode tick
//! publishes deliberately skip the pre-render
//! ([`Snapshot::build_uncached`]) — a per-link delta must not pay an
//! O(corpus) render — and every endpoint falls back to rendering live
//! on a cache miss, so an uncached snapshot serves identical bytes at
//! pre-cache cost.

use std::sync::Arc;

use mlpeer::intern::{AsnTable, PrefixTable};
use mlpeer_bgp::{Asn, Prefix};
use mlpeer_ixp::ixp::IxpId;

use crate::api;
use crate::snapshot::Snapshot;

/// Pre-rendered JSON bodies for every snapshot-addressed resource.
#[derive(Debug, Default)]
pub struct BodyCache {
    /// The `/v1/ixps` body (`None` in an uncached snapshot).
    ixps: Option<Vec<u8>>,
    /// The `/v1/validate` body (`None` in an uncached snapshot).
    validate: Option<Vec<u8>>,
    /// Dense by `IxpId.0` (generator ids are dense); `None` for gaps.
    ixp_links: Vec<Option<Vec<u8>>>,
    /// Linked-member ASN → dense id → body.
    member_ids: AsnTable,
    member_bodies: Vec<Vec<u8>>,
    /// Announced prefix → dense id → body.
    prefix_ids: PrefixTable,
    prefix_bodies: Vec<Vec<u8>>,
}

impl BodyCache {
    /// Render every addressable body from a fully-built snapshot.
    /// Called once by [`Snapshot::build`]; the snapshot's `cache` field
    /// is still default-empty at that point, which is fine — the
    /// renderers only read the index and link set.
    pub(crate) fn build(snap: &Snapshot) -> BodyCache {
        let mut cache = BodyCache {
            ixps: Some(api::render_ixps(snap)),
            validate: Some(api::render_validate(snap)),
            ..BodyCache::default()
        };
        for &ixp in snap.names.keys() {
            let i = usize::from(ixp.0);
            if i >= cache.ixp_links.len() {
                cache.ixp_links.resize(i + 1, None);
            }
            cache.ixp_links[i] = Some(api::render_ixp_links(snap, ixp));
        }
        for &asn in snap.index.members() {
            let id = cache.member_ids.intern(asn);
            debug_assert_eq!(id.index(), cache.member_bodies.len());
            cache
                .member_bodies
                .push(api::render_member(snap, asn).expect("indexed member has links"));
        }
        for p in snap.index.announced_prefixes() {
            let id = cache.prefix_ids.intern(p);
            debug_assert_eq!(id.index(), cache.prefix_bodies.len());
            cache.prefix_bodies.push(api::render_prefix(snap, &p));
        }
        cache
    }

    /// The `/v1/ixps` body, if pre-rendered.
    pub fn ixps_body(&self) -> Option<&[u8]> {
        self.ixps.as_deref()
    }

    /// The `/v1/validate` body, if pre-rendered.
    pub fn validate_body(&self) -> Option<&[u8]> {
        self.validate.as_deref()
    }

    /// The `/v1/ixp/{id}/links` body for a known IXP.
    pub fn ixp_links_body(&self, ixp: IxpId) -> Option<&[u8]> {
        self.ixp_links
            .get(usize::from(ixp.0))?
            .as_ref()
            .map(Vec::as_slice)
    }

    /// The `/v1/member/{asn}` body for a linked member.
    pub fn member_body(&self, asn: Asn) -> Option<&[u8]> {
        let id = self.member_ids.get(asn)?;
        Some(&self.member_bodies[id.index()])
    }

    /// The `/v1/prefix/{p}` body for an announced prefix.
    pub fn prefix_body(&self, prefix: &Prefix) -> Option<&[u8]> {
        let id = self.prefix_ids.get(*prefix)?;
        Some(&self.prefix_bodies[id.index()])
    }

    /// Number of pre-rendered bodies.
    pub fn body_count(&self) -> usize {
        usize::from(self.ixps.is_some())
            + usize::from(self.validate.is_some())
            + self.ixp_links.iter().flatten().count()
            + self.member_bodies.len()
            + self.prefix_bodies.len()
    }

    /// Total pre-rendered bytes.
    pub fn byte_len(&self) -> usize {
        self.ixps.as_ref().map(Vec::len).unwrap_or(0)
            + self.validate.as_ref().map(Vec::len).unwrap_or(0)
            + self.ixp_links.iter().flatten().map(Vec::len).sum::<usize>()
            + self.member_bodies.iter().map(Vec::len).sum::<usize>()
            + self.prefix_bodies.iter().map(Vec::len).sum::<usize>()
    }
}

/// Which pre-rendered body a [`CacheSlice`] points at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheKey {
    /// The `/v1/ixps` body.
    Ixps,
    /// The `/v1/validate` body.
    Validate,
    /// One `/v1/ixp/{id}/links` body.
    IxpLinks(IxpId),
    /// One `/v1/member/{asn}` body.
    Member(Asn),
    /// One `/v1/prefix/{p}` body.
    Prefix(Prefix),
}

/// A zero-copy view of one cached body: the `Arc<Snapshot>` pins the
/// cache storage, so the slice stays valid for as long as the response
/// is in flight — across store swaps and partial-write continuations —
/// without copying the body out of the cache.
pub struct CacheSlice {
    snap: Arc<Snapshot>,
    key: CacheKey,
}

impl CacheSlice {
    /// A slice for `key` in `snap`'s cache, or `None` on a cache miss
    /// (the caller falls back to a live render).
    pub fn new(snap: &Arc<Snapshot>, key: CacheKey) -> Option<CacheSlice> {
        probe(snap, key)?;
        Some(CacheSlice {
            snap: Arc::clone(snap),
            key,
        })
    }
}

fn probe(snap: &Snapshot, key: CacheKey) -> Option<&[u8]> {
    match key {
        CacheKey::Ixps => snap.cache.ixps_body(),
        CacheKey::Validate => snap.cache.validate_body(),
        CacheKey::IxpLinks(ixp) => snap.cache.ixp_links_body(ixp),
        CacheKey::Member(asn) => snap.cache.member_body(asn),
        CacheKey::Prefix(p) => snap.cache.prefix_body(&p),
    }
}

impl AsRef<[u8]> for CacheSlice {
    fn as_ref(&self) -> &[u8] {
        // The constructor verified the hit and the snapshot is
        // immutable, so the re-probe cannot miss.
        probe(&self.snap, self.key).expect("cache entry verified at construction")
    }
}

impl std::fmt::Debug for CacheSlice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CacheSlice")
            .field("key", &self.key)
            .field("len", &self.as_ref().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap() -> Snapshot {
        crate::testutil::snapshot_with(4, 11)
    }

    /// A `CacheSlice` yields the cached bytes, pins them across a drop
    /// of every other handle, and misses stay `None`.
    #[test]
    fn cache_slice_pins_and_matches() {
        let snap = Arc::new(snap());
        let expect = snap.cache.ixps_body().unwrap().to_vec();
        let slice = CacheSlice::new(&snap, CacheKey::Ixps).expect("hit");
        let member = CacheSlice::new(&snap, CacheKey::Member(Asn(1))).expect("hit");
        drop(snap); // the slices keep the snapshot alive
        assert_eq!(slice.as_ref(), &expect[..]);
        assert!(!member.as_ref().is_empty());
        assert!(format!("{slice:?}").contains("Ixps"));

        let uncached = Arc::new(crate::testutil::snapshot_with_uncached(4, 11));
        assert!(CacheSlice::new(&uncached, CacheKey::Ixps).is_none());
        assert!(CacheSlice::new(&uncached, CacheKey::Member(Asn(999))).is_none());
    }

    /// The cache contract: every pre-rendered body is byte-identical to
    /// a fresh render from the same snapshot, and coverage is complete
    /// — every IXP, every linked member, every announced prefix.
    #[test]
    fn cached_bodies_match_fresh_renders() {
        let snap = snap();
        assert_eq!(
            snap.cache.ixps_body().expect("ixps cached"),
            &api::render_ixps(&snap)[..]
        );
        assert_eq!(
            snap.cache.validate_body().expect("validate cached"),
            &api::render_validate(&snap)[..]
        );
        for &ixp in snap.names.keys() {
            assert_eq!(
                snap.cache.ixp_links_body(ixp).expect("ixp cached"),
                &api::render_ixp_links(&snap, ixp)[..],
                "ixp {ixp:?}"
            );
        }
        let members = snap.index.members().to_vec();
        assert!(!members.is_empty());
        for asn in members {
            assert_eq!(
                snap.cache.member_body(asn).expect("member cached"),
                &api::render_member(&snap, asn).unwrap()[..],
                "member {asn}"
            );
        }
        let prefixes = snap.index.announced_prefixes();
        assert_eq!(prefixes.len(), snap.index.prefix_count());
        for p in prefixes {
            assert_eq!(
                snap.cache.prefix_body(&p).expect("prefix cached"),
                &api::render_prefix(&snap, &p)[..],
                "prefix {p}"
            );
        }
    }

    #[test]
    fn misses_stay_misses() {
        let snap = snap();
        assert!(snap.cache.ixp_links_body(IxpId(9)).is_none());
        assert!(snap.cache.member_body(Asn(999)).is_none());
        let absent: Prefix = "192.0.2.0/24".parse().unwrap();
        assert!(snap.cache.prefix_body(&absent).is_none());
        // An aggregate covering announced prefixes is still a miss —
        // only announced prefixes are enumerable.
        let aggregate: Prefix = "10.0.0.0/8".parse().unwrap();
        assert!(snap.cache.prefix_body(&aggregate).is_none());
    }

    #[test]
    fn counters_cover_all_bodies() {
        let snap = snap();
        // 1 (ixps) + 1 (validate) + 1 IXP + 4 members + 4 announced
        // prefixes.
        assert_eq!(snap.cache.body_count(), 11);
        assert!(snap.cache.byte_len() > 0);
    }

    /// An uncached snapshot (the live-tick publish shape) serves the
    /// same bytes through the endpoints' live-render fallback.
    #[test]
    fn uncached_snapshot_is_empty_but_equivalent() {
        let cached = snap();
        let uncached = crate::testutil::snapshot_with_uncached(4, 11);
        assert_eq!(uncached.cache.body_count(), 0);
        assert_eq!(uncached.cache.byte_len(), 0);
        assert!(uncached.cache.ixps_body().is_none());
        assert_eq!(cached.etag, uncached.etag, "content identical");
        // Fallback renders from the uncached snapshot equal the cached
        // bodies bit for bit.
        assert_eq!(
            cached.cache.ixps_body().unwrap(),
            &api::render_ixps(&uncached)[..]
        );
        for &asn in cached.index.members() {
            assert_eq!(
                cached.cache.member_body(asn).unwrap(),
                &api::render_member(&uncached, asn).unwrap()[..]
            );
        }
    }
}
