//! The epoch delta ring: what changed between snapshot versions.
//!
//! Live mode publishes a new epoch only when the link set actually
//! moved; the [`ChangeLog`] keeps a bounded ring of those per-epoch
//! [`LinkDelta`]s so `GET /v1/changes?since=<epoch>` can answer with
//! the *net* link-level diff instead of forcing clients to re-download
//! the world. The ring is contiguous by construction: any gap — a
//! full-pipeline publish without delta information, or an evicted old
//! epoch — makes older `since` values unanswerable, and the API then
//! returns the documented full-resync signal (HTTP 410) instead of a
//! silently wrong diff.

use std::collections::{BTreeSet, VecDeque};
use std::sync::Mutex;

use mlpeer::live::LinkDelta;
use mlpeer_bgp::Asn;
use mlpeer_ixp::ixp::IxpId;

/// One published epoch's link-level change.
#[derive(Debug, Clone)]
pub struct EpochDelta {
    /// The epoch this delta produced (the diff `epoch-1 → epoch`).
    pub epoch: u64,
    /// The links that moved.
    pub delta: LinkDelta,
}

/// The answer to "what changed since epoch N".
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SinceAnswer {
    /// The net diff; both sets empty when `since` is current.
    Delta {
        /// Links present now but not at `since`.
        added: BTreeSet<(IxpId, Asn, Asn)>,
        /// Links present at `since` but gone now.
        removed: BTreeSet<(IxpId, Asn, Asn)>,
    },
    /// History no longer covers `since`: the client must re-sync from a
    /// full snapshot. `oldest` is the oldest answerable `since`, if any
    /// epoch is still covered.
    Truncated {
        /// Oldest `since` the ring can still answer, if any.
        oldest: Option<u64>,
    },
}

/// Bounded, contiguous ring of per-epoch deltas.
#[derive(Debug)]
pub struct ChangeLog {
    entries: Mutex<VecDeque<EpochDelta>>,
    capacity: usize,
}

impl ChangeLog {
    /// A ring holding at most `capacity` epoch deltas (older `since`
    /// values age into the full-resync signal).
    pub fn new(capacity: usize) -> Self {
        ChangeLog {
            entries: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
            capacity: capacity.max(1),
        }
    }

    /// Record the delta that produced `epoch`. A non-consecutive epoch
    /// (something was published without delta information) discards the
    /// history — a gap can never be answered honestly.
    pub fn record(&self, epoch: u64, delta: LinkDelta) {
        let mut entries = self.entries.lock().expect("changelog lock");
        if entries.back().is_some_and(|b| b.epoch + 1 != epoch) {
            entries.clear();
        }
        entries.push_back(EpochDelta { epoch, delta });
        while entries.len() > self.capacity {
            entries.pop_front();
        }
    }

    /// Forget everything (a publish with no delta information).
    pub fn reset(&self) {
        self.entries.lock().expect("changelog lock").clear();
    }

    /// Epoch deltas currently held.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("changelog lock").len()
    }

    /// Is the ring empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The net change from epoch `since` to epoch `current` (the
    /// snapshot the caller is serving). Requires every epoch in
    /// `since+1 ..= current` to be in the ring; anything else is
    /// [`SinceAnswer::Truncated`]. `since == current` answers an empty
    /// delta. Callers must reject `since > current` beforehand.
    pub fn since(&self, since: u64, current: u64) -> SinceAnswer {
        debug_assert!(since <= current);
        let mut added: BTreeSet<(IxpId, Asn, Asn)> = BTreeSet::new();
        let mut removed: BTreeSet<(IxpId, Asn, Asn)> = BTreeSet::new();
        if since == current {
            return SinceAnswer::Delta { added, removed };
        }
        let entries = self.entries.lock().expect("changelog lock");
        // Clamp to epochs the caller's snapshot can see: in the
        // ring-ahead race (a publish between the caller's load() and
        // this call) entries newer than `current` must not leak into
        // the advertised oldest answerable since.
        let oldest = entries
            .front()
            .filter(|e| e.epoch <= current)
            .map(|e| e.epoch.saturating_sub(1));
        let mut expected = since + 1;
        for e in entries.iter() {
            if e.epoch <= since || e.epoch > current {
                continue;
            }
            if e.epoch != expected {
                return SinceAnswer::Truncated { oldest };
            }
            expected = e.epoch + 1;
            for l in &e.delta.added {
                if !removed.remove(l) {
                    added.insert(*l);
                }
            }
            for l in &e.delta.removed {
                if !added.remove(l) {
                    removed.insert(*l);
                }
            }
        }
        if expected != current + 1 {
            return SinceAnswer::Truncated { oldest };
        }
        SinceAnswer::Delta { added, removed }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link(n: u32) -> (IxpId, Asn, Asn) {
        (IxpId(0), Asn(n), Asn(n + 1))
    }

    fn d(added: &[u32], removed: &[u32]) -> LinkDelta {
        LinkDelta {
            added: added.iter().map(|&n| link(n)).collect(),
            removed: removed.iter().map(|&n| link(n)).collect(),
        }
    }

    #[test]
    fn accumulates_net_diff_across_epochs() {
        let log = ChangeLog::new(8);
        log.record(1, d(&[1], &[]));
        log.record(2, d(&[2], &[9]));
        log.record(3, d(&[], &[1])); // cancels epoch 1's add
        match log.since(0, 3) {
            SinceAnswer::Delta { added, removed } => {
                assert_eq!(added, [link(2)].into_iter().collect());
                assert_eq!(removed, [link(9)].into_iter().collect());
            }
            other => panic!("expected delta, got {other:?}"),
        }
        // A later `since` sees only the tail.
        match log.since(2, 3) {
            SinceAnswer::Delta { added, removed } => {
                assert!(added.is_empty());
                assert_eq!(removed, [link(1)].into_iter().collect());
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(
            log.since(3, 3),
            SinceAnswer::Delta {
                added: BTreeSet::new(),
                removed: BTreeSet::new()
            }
        );
    }

    #[test]
    fn eviction_truncates_old_sinces() {
        let log = ChangeLog::new(2);
        log.record(1, d(&[1], &[]));
        log.record(2, d(&[2], &[]));
        log.record(3, d(&[3], &[])); // evicts epoch 1
        assert_eq!(log.len(), 2);
        assert_eq!(log.since(0, 3), SinceAnswer::Truncated { oldest: Some(1) });
        assert!(matches!(log.since(1, 3), SinceAnswer::Delta { .. }));
    }

    #[test]
    fn gap_discards_history() {
        let log = ChangeLog::new(8);
        log.record(1, d(&[1], &[]));
        log.record(5, d(&[5], &[])); // non-consecutive: full rebuild happened
        assert_eq!(log.len(), 1);
        assert_eq!(log.since(1, 5), SinceAnswer::Truncated { oldest: Some(4) });
        assert!(matches!(log.since(4, 5), SinceAnswer::Delta { .. }));
    }

    #[test]
    fn empty_and_reset_rings_truncate() {
        let log = ChangeLog::new(8);
        assert!(log.is_empty());
        assert_eq!(log.since(0, 2), SinceAnswer::Truncated { oldest: None });
        log.record(1, d(&[1], &[]));
        log.reset();
        assert_eq!(log.since(0, 1), SinceAnswer::Truncated { oldest: None });
        // since == current still answers even with no history.
        assert!(matches!(log.since(1, 1), SinceAnswer::Delta { .. }));
    }

    #[test]
    fn ring_ahead_of_served_snapshot_still_answers() {
        // A publish can land between a reader's store.load() and the
        // since() call; entries beyond `current` must be ignored.
        let log = ChangeLog::new(8);
        log.record(1, d(&[1], &[]));
        log.record(2, d(&[2], &[]));
        log.record(3, d(&[3], &[]));
        match log.since(0, 2) {
            SinceAnswer::Delta { added, .. } => {
                assert_eq!(added, [link(1), link(2)].into_iter().collect());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn ring_entirely_ahead_never_advertises_a_future_oldest() {
        // After a reset + newer publishes, a reader still holding an
        // old snapshot must not be told the oldest answerable since is
        // beyond its own epoch.
        let log = ChangeLog::new(8);
        log.record(6, d(&[6], &[]));
        log.record(7, d(&[7], &[]));
        assert_eq!(log.since(3, 4), SinceAnswer::Truncated { oldest: None });
    }
}
