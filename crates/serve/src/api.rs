//! The query API: routing, JSON rendering, conditional GETs.
//!
//! Every endpoint answers from one immutable [`Snapshot`] loaded at
//! request time, so a response is always internally consistent even if
//! a refresh lands mid-flight. The snapshot-addressed `/v1/*` endpoints
//! carry the content ETag; an `If-None-Match` hit short-circuits to an
//! empty 304 *before rendering*, which is what lets heavy read traffic
//! revalidate for free across refreshes that changed nothing. The 200
//! path is pre-rendered too: ixp, member and announced-prefix bodies
//! come out of the snapshot's publish-time [`crate::cache::BodyCache`]
//! as a lookup + memcpy — JSON rendering happens once per publish, not
//! once per request (only un-announced CIDR queries render live).
//! `/v1/stats` and `/healthz` are exempt — their bodies carry live
//! server counters the snapshot ETag does not address.
//!
//! | Endpoint | Answer |
//! |---|---|
//! | `GET /healthz` | liveness, current epoch/ETag |
//! | `GET /readyz` | readiness: `ready`/`degraded`/`draining` + reasons |
//! | `GET /v1/ixps` | per-IXP link and coverage counts |
//! | `GET /v1/ixp/{id}/links` | the IXP's multilateral link list |
//! | `GET /v1/member/{asn}` | the member's peers and policy per IXP |
//! | `GET /v1/prefix/{p}` | announcements matching a CIDR prefix |
//! | `GET /v1/changes?since=N` | link-level diff since epoch `N` |
//! | `GET /v1/stats` | snapshot + server counters |
//!
//! `/v1/changes` answers from the bounded [`ChangeLog`] ring first;
//! when the ring has evicted `since`, the durable epoch log (when the
//! process runs with `--data-dir`) folds the stored per-epoch deltas
//! instead, so arbitrarily deep `since` values answer without a
//! resync. Only a span genuinely missing delta information — compacted
//! away, published without a delta, or no data dir at all — draws the
//! documented full-resync signal: **HTTP 410 Gone** with
//! `"resync": true`, telling the client to re-fetch the full resource
//! set and restart from the current epoch. A malformed or missing
//! `since` is a 400; a `since` ahead of the served snapshot's epoch is
//! a 400 too (the client is confused, not stale). Like `/v1/stats`,
//! the endpoint is deliberately not snapshot-ETag-addressed: its body
//! depends on the query parameter and the history, not the snapshot
//! content alone.
//!
//! **Time travel:** with a durable store attached, every
//! snapshot-addressed endpoint accepts `?at=<epoch>` and answers from
//! that epoch's recovered snapshot (the live epoch answers from the
//! in-memory snapshot and its publish-time body cache; historical
//! epochs rebuild on demand from the log). An epoch beyond the current
//! one is a 400; an epoch whose full snapshot is gone — never stored,
//! compacted away, or no `--data-dir` — is a 410.

use std::sync::Arc;

use mlpeer::report;
use mlpeer_bgp::{Asn, Prefix};
use mlpeer_ixp::ixp::IxpId;
use serde_json::{json, Value};

use crate::cache::{CacheKey, CacheSlice};
use crate::delta::{ChangeLog, SinceAnswer};
use crate::http::{Request, Response};
use crate::live::LiveStats;
use crate::reactor::ReactorStats;
use crate::server::ServerStats;
use crate::snapshot::Snapshot;
use mlpeer_dist::DistStats;

/// Route one request against one snapshot view (plus the store's
/// change ring for `/v1/changes`, the durable epoch log for `?at=`
/// time travel and deep `since` history when the process runs with
/// `--data-dir`, and — when the respective subsystem runs — the live
/// loop's and the reactor's counters for `/v1/stats`).
///
/// The snapshot arrives as an `&Arc` so cache hits can answer with a
/// zero-copy [`CacheSlice`] that pins the snapshot instead of copying
/// the body out of the cache.
#[allow(clippy::too_many_arguments)] // one slot per optional subsystem
pub fn route(
    req: &Request,
    snap: &Arc<Snapshot>,
    stats: &ServerStats,
    changes: &ChangeLog,
    history: Option<&crate::durable::DurableStore>,
    live: Option<&LiveStats>,
    reactor: Option<&ReactorStats>,
    dist: Option<&DistStats>,
    health: Option<&crate::health::HealthState>,
) -> Response {
    if req.method != "GET" {
        return error(405, "only GET is supported");
    }
    let path = req.path.trim_end_matches('/');
    let path = if path.is_empty() { "/" } else { path };

    if path == "/healthz" {
        return Response::json(200, report::to_json(&healthz(snap, stats)));
    }
    if path == "/readyz" {
        return readyz(snap, health);
    }

    // Time travel: `?at=<epoch>` re-roots a snapshot-addressed request
    // at a historical epoch. The live epoch stays on the in-memory
    // snapshot (and its publish-time body cache); historical epochs
    // rebuild on demand from the durable log.
    let travelled: Arc<Snapshot>;
    let snap: &Arc<Snapshot> = match query_param(&req.query, "at") {
        Some(raw) if snapshot_addressed(path) => match resolve_at(raw, snap, history) {
            Ok(Some(historical)) => {
                travelled = historical;
                &travelled
            }
            Ok(None) => snap,
            Err(resp) => return resp,
        },
        Some(_) => {
            return error(
                400,
                "at={epoch} applies to snapshot-addressed endpoints only",
            );
        }
        None => snap,
    };

    let etag = format!("\"{}\"", snap.etag);
    if path == "/v1/ixps" {
        // The resource always exists: a matching ETag skips rendering.
        if let Some(hit) = revalidate_hit(req, &etag) {
            return hit;
        }
        // Pre-rendered at publish: the 200 path is zero-copy — the
        // response pins the cached body instead of copying it.
        // Uncached snapshots (live-tick publishes) render live, like
        // the sibling endpoints.
        let body = match CacheSlice::new(snap, CacheKey::Ixps) {
            Some(slice) => Response::shared(200, slice),
            None => Response::json(200, render_ixps(snap)),
        };
        return body.with_header("ETag", &etag);
    }
    if path == "/v1/validate" {
        // Same contract as `/v1/ixps`: always exists, content-addressed
        // by the snapshot ETag, pre-rendered at publish with a live
        // fallback for uncached (live-tick) snapshots.
        if let Some(hit) = revalidate_hit(req, &etag) {
            return hit;
        }
        let body = match CacheSlice::new(snap, CacheKey::Validate) {
            Some(slice) => Response::shared(200, slice),
            None => Response::json(200, render_validate(snap)),
        };
        return body.with_header("ETag", &etag);
    }
    if let Some(rest) = path.strip_prefix("/v1/ixp/") {
        return ixp_links(req, snap, rest, &etag);
    }
    if let Some(rest) = path.strip_prefix("/v1/member/") {
        return member(req, snap, rest, &etag);
    }
    if let Some(rest) = path.strip_prefix("/v1/prefix/") {
        return prefix(req, snap, rest, &etag);
    }
    if path == "/v1/changes" {
        // Not ETag-addressed: the body is a function of `since` and
        // the history, not the snapshot content alone.
        return match changes_since_param(req, snap) {
            Ok(since) => render_changes(snap, changes, history, since),
            Err(resp) => resp,
        };
    }
    if path == "/v1/stats" {
        // Deliberately no ETag/304: the body carries live server
        // counters, so the snapshot ETag does not address it.
        return Response::json(
            200,
            report::to_json(&stats_body(snap, stats, live, reactor, dist)),
        );
    }
    error(404, "no such endpoint")
}

/// Is this path addressed by the snapshot content (and therefore
/// eligible for `?at=` time travel)?
fn snapshot_addressed(path: &str) -> bool {
    path == "/v1/ixps"
        || path == "/v1/validate"
        || path.starts_with("/v1/ixp/")
        || path.starts_with("/v1/member/")
        || path.starts_with("/v1/prefix/")
}

/// Resolve `?at=<epoch>`: `Ok(None)` means "the live epoch — serve the
/// in-memory snapshot", `Ok(Some(snap))` is a revived historical
/// epoch, and `Err` is the response to send instead (400 for epochs
/// ahead of the present or malformed values; 410 when the epoch's full
/// snapshot is genuinely gone — never stored, compacted away, or no
/// durable store attached).
fn resolve_at(
    raw: &str,
    snap: &Arc<Snapshot>,
    history: Option<&crate::durable::DurableStore>,
) -> Result<Option<Arc<Snapshot>>, Response> {
    let Ok(at) = raw.parse::<u64>() else {
        return Err(error(
            400,
            "malformed at: expected a non-negative epoch number",
        ));
    };
    if at > snap.epoch {
        return Err(error(400, "at is ahead of the current epoch"));
    }
    if at == snap.epoch {
        return Ok(None);
    }
    let Some(history) = history else {
        return Err(error(
            410,
            "epoch history is not retained; run the server with --data-dir",
        ));
    };
    match history.snapshot_at(at) {
        Some(historical) => Ok(Some(Arc::new(historical))),
        None => Err(error(
            410,
            "this epoch's full snapshot is no longer retained",
        )),
    }
}

/// Validate the `since` query parameter of a `/v1/changes` request
/// against the served snapshot: the parsed epoch, or the 400 response
/// to send instead. Shared by the plain endpoint and the reactor's
/// long-poll/SSE variants so all three reject identically.
pub(crate) fn changes_since_param(req: &Request, snap: &Snapshot) -> Result<u64, Response> {
    let Some(raw) = query_param(&req.query, "since") else {
        return Err(error(400, "expected /v1/changes?since={epoch}"));
    };
    let Ok(since) = raw.parse::<u64>() else {
        return Err(error(
            400,
            "malformed since: expected a non-negative epoch number",
        ));
    };
    if since > snap.epoch {
        return Err(error(400, "since is ahead of the current epoch"));
    }
    Ok(since)
}

/// The `/v1/changes` answer for a validated `since`: the link-level
/// diff from epoch `since` to the served snapshot's epoch, or the 410
/// full-resync signal when no retained history covers it. The
/// in-memory ring answers first (the hot path — recent `since` values
/// under push traffic); a ring miss falls back to folding the durable
/// log's per-epoch deltas, so any epoch still on disk answers without
/// a resync. The reactor's push paths (long-poll completion, SSE
/// frames) render through this same function, so pushed deltas are
/// byte-identical to polled ones.
pub(crate) fn render_changes(
    snap: &Snapshot,
    changes: &ChangeLog,
    history: Option<&crate::durable::DurableStore>,
    since: u64,
) -> Response {
    let delta_response =
        |added: &std::collections::BTreeSet<(IxpId, Asn, Asn)>,
         removed: &std::collections::BTreeSet<(IxpId, Asn, Asn)>| {
            let render = |set: &std::collections::BTreeSet<(IxpId, Asn, Asn)>| {
                set.iter()
                    .map(|(ixp, a, b)| {
                        json!({
                            "ixp": ixp.0,
                            "name": snap.name(*ixp),
                            "a": a.value(),
                            "b": b.value(),
                        })
                    })
                    .collect::<Vec<Value>>()
            };
            let body = json!({
                "since": since,
                "epoch": snap.epoch,
                "etag": snap.etag,
                "resync": false,
                "added": render(added),
                "removed": render(removed),
            });
            Response::json(200, report::to_json(&body))
        };
    match changes.since(since, snap.epoch) {
        SinceAnswer::Delta { added, removed } => delta_response(&added, &removed),
        SinceAnswer::Truncated { oldest } => {
            // The ring evicted (or never held) this span — the durable
            // log may still cover it, delta for delta.
            if let Some((added, removed)) = history.and_then(|h| h.fold_since(since, snap.epoch)) {
                return delta_response(&added, &removed);
            }
            // Genuinely gone: 410, the documented full-resync signal.
            // The client re-fetches the full link set and resumes from
            // `epoch`. With a durable store, `oldest_since` reflects
            // what the *log* can still answer, not the ring.
            let oldest = match history {
                Some(h) => Some(h.oldest_since(snap.epoch)),
                None => oldest,
            };
            let body = json!({
                "error": "delta history no longer covers this epoch; \
                          re-sync from a full snapshot",
                "resync": true,
                "since": since,
                "epoch": snap.epoch,
                "etag": snap.etag,
                "oldest_since": oldest,
            });
            Response::json(410, report::to_json(&body))
        }
    }
}

/// The first value of `name` in a raw query string
/// (`a=1&b=2`-shaped; no percent-decoding — epochs are digits).
pub(crate) fn query_param<'q>(query: &'q str, name: &str) -> Option<&'q str> {
    query.split('&').find_map(|pair| {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        (k == name).then_some(v)
    })
}

/// Conditional-GET check, called by each handler *after* its resource
/// resolved (a 304 is only valid where the fresh response would have
/// been a 200, RFC 7232) and *before* rendering, so revalidation hits
/// cost an index probe, not a full JSON render.
fn revalidate_hit(req: &Request, etag: &str) -> Option<Response> {
    let matched = req
        .header("if-none-match")
        .is_some_and(|inm| inm.split(',').any(|t| t.trim() == etag || t.trim() == "*"));
    matched.then(|| Response::json(304, Vec::new()).with_header("ETag", etag))
}

/// A JSON error body with matching status.
pub fn error(status: u16, message: &str) -> Response {
    Response::json(status, report::to_json(&json!({ "error": message })))
}

fn healthz(snap: &Snapshot, stats: &ServerStats) -> Value {
    json!({
        "status": "ok",
        "epoch": snap.epoch,
        "etag": snap.etag,
        "scale": snap.scale,
        "uptime_ms": stats.uptime_ms(),
    })
}

/// The `/readyz` answer: liveness says "up", readiness says "up *and
/// whole*". `ready` and `degraded` both answer 200 — a degraded
/// process still serves reads, and load balancers must not evict it —
/// while `draining` answers 503 so balancers stop routing during a
/// graceful shutdown. A boot without a [`crate::health::HealthState`]
/// (tests, bare `route` calls) reports `ready` with no reasons.
fn readyz(snap: &Snapshot, health: Option<&crate::health::HealthState>) -> Response {
    let (status, reasons) = match health {
        Some(h) => (h.status(), h.reasons()),
        None => ("ready", Vec::new()),
    };
    let body = json!({
        "status": status,
        "reasons": reasons,
        "epoch": snap.epoch,
        "etag": snap.etag,
    });
    let code = if status == "draining" { 503 } else { 200 };
    Response::json(code, report::to_json(&body))
}

/// Render the `/v1/ixps` body — called once per publish by the
/// [`crate::cache::BodyCache`], never on the request path.
pub(crate) fn render_ixps(snap: &Snapshot) -> Vec<u8> {
    failpoints::failpoint!("serve::render");
    let rows: Vec<Value> = snap
        .names
        .iter()
        .map(|(id, name)| {
            json!({
                "id": id.0,
                "name": name,
                "links": snap.links.links_at(*id).len(),
                "covered_members": snap.links.covered.get(id).map(|c| c.len()).unwrap_or(0),
            })
        })
        .collect();
    report::to_json(&json!({
        "ixps": rows,
        "unique_links": snap.unique_link_count,
    }))
    .into_bytes()
}

/// Render the `/v1/validate` body — the cross-validation report of
/// the snapshot's inferred links against the derived IRR/RPKI corpus
/// (see `mlpeer::validate::cross`). Deterministic: verdicts are a pure
/// function of the snapshot content, and every map renders in sorted
/// order, so serial, sharded, and multi-process harvests serve
/// byte-identical bodies.
pub(crate) fn render_validate(snap: &Snapshot) -> Vec<u8> {
    let v = &snap.validation;
    let reasons: Vec<Value> = v
        .reasons
        .iter()
        .map(|(reason, count)| json!({ "code": reason.code(), "count": count }))
        .collect();
    let per_ixp: Vec<Value> = v
        .per_ixp
        .iter()
        .map(|(ixp, c)| {
            json!({
                "ixp": ixp.0,
                "name": snap.name(*ixp),
                "confirmed": c.confirmed,
                "unknown": c.unknown,
                "contradicted": c.contradicted,
            })
        })
        .collect();
    report::to_json(&json!({
        "corpus": json!({
            "objects": v.corpus.objects,
            "roas": v.corpus.roas,
            "quarantined": v.corpus.quarantined,
            "complete": v.corpus.complete,
        }),
        "totals": json!({
            "confirmed": v.totals.confirmed,
            "unknown": v.totals.unknown,
            "contradicted": v.totals.contradicted,
        }),
        "links_scored": v.totals.total(),
        "reasons": reasons,
        "per_ixp": per_ixp,
    }))
    .into_bytes()
}

/// Render one `/v1/ixp/{id}/links` body.
pub(crate) fn render_ixp_links(snap: &Snapshot, ixp: IxpId) -> Vec<u8> {
    let links: Vec<(u32, u32)> = snap
        .links
        .links_at(ixp)
        .iter()
        .map(|(a, b)| (a.value(), b.value()))
        .collect();
    report::to_json(&json!({
        "id": ixp.0,
        "name": snap.name(ixp),
        "count": links.len(),
        "links": links,
    }))
    .into_bytes()
}

/// Render one `/v1/member/{asn}` body; `None` when the member has no
/// inferred link anywhere (the 404 case).
pub(crate) fn render_member(snap: &Snapshot, asn: Asn) -> Option<Vec<u8>> {
    let per_ixp = snap.index.member_links(asn)?;
    let mut unique = std::collections::BTreeSet::new();
    let rows: Vec<Value> = per_ixp
        .iter()
        .map(|(ixp, peers)| {
            unique.extend(peers.iter().copied());
            json!({
                "ixp": ixp.0,
                "name": snap.name(*ixp),
                "peers": peers.iter().map(|p| p.value()).collect::<Vec<u32>>(),
                "policy": snap.links.policies.get(&(*ixp, asn)),
            })
        })
        .collect();
    Some(
        report::to_json(&json!({
            "asn": asn.value(),
            "ixps": rows,
            "unique_peers": unique.len(),
        }))
        .into_bytes(),
    )
}

/// Render one `/v1/prefix/{p}` body.
pub(crate) fn render_prefix(snap: &Snapshot, p: &Prefix) -> Vec<u8> {
    let m = snap.index.prefix_matches(p);
    let render = |set: &std::collections::BTreeSet<mlpeer::index::Announcement>| {
        set.iter()
            .map(|(pfx, ixp, member)| {
                json!({
                    "prefix": pfx.to_string(),
                    "ixp": ixp.0,
                    "name": snap.name(*ixp),
                    "member": member.value(),
                })
            })
            .collect::<Vec<Value>>()
    };
    report::to_json(&json!({
        "prefix": p.to_string(),
        "total": m.total(),
        "exact": render(&m.exact),
        "covering": render(&m.covering),
        "covered": render(&m.covered),
    }))
    .into_bytes()
}

fn ixp_links(req: &Request, snap: &Arc<Snapshot>, rest: &str, etag: &str) -> Response {
    let Some(id) = rest
        .strip_suffix("/links")
        .and_then(|s| s.parse::<u16>().ok())
    else {
        return error(400, "expected /v1/ixp/{id}/links");
    };
    let ixp = IxpId(id);
    if !snap.names.contains_key(&ixp) {
        return error(404, "unknown IXP id");
    }
    if let Some(hit) = revalidate_hit(req, etag) {
        return hit;
    }
    // Every known IXP is pre-rendered at publish; the fallback renders
    // live only if a cache ever ships without the entry.
    let body = match CacheSlice::new(snap, CacheKey::IxpLinks(ixp)) {
        Some(slice) => Response::shared(200, slice),
        None => Response::json(200, render_ixp_links(snap, ixp)),
    };
    body.with_header("ETag", etag)
}

fn member(req: &Request, snap: &Arc<Snapshot>, rest: &str, etag: &str) -> Response {
    // One optional "AS" prefix, then digits ("ASAS1" stays malformed).
    let asn = match rest.strip_prefix("AS").unwrap_or(rest).parse::<u32>() {
        Ok(n) => Asn(n),
        Err(_) => return error(400, "expected /v1/member/{asn}"),
    };
    if snap.index.member_links(asn).is_none() {
        return error(404, "no multilateral links inferred for this ASN");
    }
    if let Some(hit) = revalidate_hit(req, etag) {
        return hit;
    }
    // Every linked member is pre-rendered at publish.
    let body = match CacheSlice::new(snap, CacheKey::Member(asn)) {
        Some(slice) => Response::shared(200, slice),
        None => Response::json(200, render_member(snap, asn).expect("member has links")),
    };
    body.with_header("ETag", etag)
}

fn prefix(req: &Request, snap: &Arc<Snapshot>, rest: &str, etag: &str) -> Response {
    let Ok(p) = rest.parse::<Prefix>() else {
        return error(400, "expected /v1/prefix/{a.b.c.d/len}");
    };
    if let Some(hit) = revalidate_hit(req, etag) {
        return hit;
    }
    // Announced prefixes are pre-rendered at publish; arbitrary CIDR
    // queries (aggregates, absent prefixes) render live.
    let body = match CacheSlice::new(snap, CacheKey::Prefix(p)) {
        Some(slice) => Response::shared(200, slice),
        None => Response::json(200, render_prefix(snap, &p)),
    };
    body.with_header("ETag", etag)
}

fn stats_body(
    snap: &Snapshot,
    stats: &ServerStats,
    live: Option<&LiveStats>,
    reactor: Option<&ReactorStats>,
    dist: Option<&DistStats>,
) -> Value {
    use std::sync::atomic::Ordering;
    let p = &snap.passive_stats;
    // Live-loop counters when live mode runs, JSON null otherwise.
    let live_v = match live {
        Some(l) => json!({
            "ticks": l.ticks.load(Ordering::Relaxed),
            "events": l.events.load(Ordering::Relaxed),
            "published_epochs": l.published.load(Ordering::Relaxed),
            "restarts": l.restarts.load(Ordering::Relaxed),
        }),
        None => Value::Null,
    };
    // Reactor counters when the reactor engine serves, null under the
    // threaded engine.
    let reactor_v = match reactor {
        Some(r) => json!({
            "accepted": r.accepted(),
            "open": r.open(),
            "wakeups": r.wakeups(),
            "writev_continuations": r.writev_continuations(),
            "sse_subscribers": r.sse_subscribers(),
            "idle_timeouts": r.idle_timeouts(),
            "inflight": r.inflight(),
            "shed": r.shed(),
        }),
        None => Value::Null,
    };
    // Multi-process coordinator counters under `--workers=N`, null in
    // single-process boots.
    let dist_v = match dist {
        Some(d) => {
            let s = d.snapshot();
            json!({
                "procs": s.procs,
                "spawned": s.spawned,
                "retried": s.retried,
                "timed_out": s.timed_out,
                "degraded": s.degraded,
                "deduped": s.deduped,
                "frames": s.frames,
                "bytes": s.bytes,
            })
        }
        None => Value::Null,
    };
    json!({
        "live": live_v,
        "reactor": reactor_v,
        "dist": dist_v,
        "epoch": snap.epoch,
        "etag": snap.etag,
        "scale": snap.scale,
        "seed": snap.seed,
        "ixps": snap.names.len(),
        "links_total": snap.index.links_total(),
        "unique_links": snap.unique_link_count,
        "distinct_asns": snap.distinct_asn_count,
        "linked_members": snap.index.member_count(),
        "indexed_prefixes": snap.index.prefix_count(),
        "announcements": snap.index.announcement_count(),
        "observations": snap.observation_count,
        "cache": json!({
            "bodies": snap.cache.body_count(),
            "bytes": snap.cache.byte_len(),
        }),
        // Mirrors the `/v1/validate` totals so operational checks can
        // cross-assert the two endpoints agree.
        "validation": json!({
            "confirmed": snap.validation.totals.confirmed,
            "unknown": snap.validation.totals.unknown,
            "contradicted": snap.validation.totals.contradicted,
            "links_scored": snap.validation.totals.total(),
        }),
        "passive": json!({
            "routes_seen": p.routes_seen,
            "dropped_bogon": p.dropped_bogon,
            "dropped_cycle": p.dropped_cycle,
            "dropped_transient": p.dropped_transient,
            "unidentified": p.unidentified,
            "setter_unknown": p.setter_unknown,
            "observations": p.observations,
            "quarantined": p.quarantined,
        }),
        "server": json!({
            "requests": stats.requests(),
            "not_modified": stats.not_modified(),
            "client_errors": stats.client_errors(),
            "uptime_ms": stats.uptime_ms(),
        }),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap() -> Arc<Snapshot> {
        Arc::new(crate::testutil::snapshot_with(3, 7))
    }

    /// Route against an empty change ring (irrelevant to these tests).
    fn rt(req: &Request, snap: &Arc<Snapshot>, stats: &ServerStats) -> Response {
        route(
            req,
            snap,
            stats,
            &ChangeLog::new(8),
            None,
            None,
            None,
            None,
            None,
        )
    }

    fn get(path: &str) -> Request {
        Request {
            method: "GET".into(),
            path: path.into(),
            ..Request::default()
        }
    }

    fn body(r: &Response) -> String {
        String::from_utf8(r.body.to_vec()).unwrap()
    }

    #[test]
    fn endpoints_answer_200_with_etag() {
        let snap = snap();
        let stats = ServerStats::default();
        for path in [
            "/v1/ixps",
            "/v1/ixp/0/links",
            "/v1/member/1",
            "/v1/prefix/10.1.0.0/24",
            "/v1/validate",
            "/v1/stats",
        ] {
            let r = rt(&get(path), &snap, &stats);
            assert_eq!(r.status, 200, "{path}: {}", body(&r));
            let has_etag = r
                .headers
                .iter()
                .any(|(n, v)| n == "ETag" && *v == format!("\"{}\"", snap.etag));
            // /v1/stats carries live counters, so it is deliberately
            // not snapshot-addressed.
            assert_eq!(has_etag, path != "/v1/stats", "{path} ETag presence");
            assert!(body(&r).starts_with('{'), "{path} returns a JSON object");
        }
        let health = rt(&get("/healthz"), &snap, &stats);
        assert_eq!(health.status, 200);
        assert!(body(&health).contains("\"status\": \"ok\""));
    }

    #[test]
    fn conditional_get_hits_304_only_on_matching_etag() {
        let snap = snap();
        let stats = ServerStats::default();
        let mut req = get("/v1/ixps");
        req.headers
            .push(("if-none-match".into(), format!("\"{}\"", snap.etag)));
        let r = rt(&req, &snap, &stats);
        assert_eq!(r.status, 304);
        assert!(r.body.is_empty());

        req.headers[0].1 = "\"somethingelse\"".into();
        assert_eq!(rt(&req, &snap, &stats).status, 200);

        req.headers[0].1 = "*".into();
        assert_eq!(rt(&req, &snap, &stats).status, 304);

        // A 304 is only valid where the fresh response would be a 200:
        // misses and malformed requests pass through (RFC 7232).
        for (path, expect) in [
            ("/v1/member/99", 404),
            ("/v1/member/xyz", 400),
            ("/v1/ixp/9/links", 404),
            ("/v1/bogus", 404),
        ] {
            let mut req = get(path);
            req.headers
                .push(("if-none-match".into(), format!("\"{}\"", snap.etag)));
            assert_eq!(rt(&req, &snap, &stats).status, expect, "{path}");
        }
    }

    #[test]
    fn member_answers_match_the_index() {
        let snap = snap();
        let stats = ServerStats::default();
        let r = rt(&get("/v1/member/1"), &snap, &stats);
        let b = body(&r);
        assert!(b.contains("\"asn\": 1"));
        assert!(b.contains("\"unique_peers\": 2"));
        assert!(b.contains("DE-CIX"));
        // One AS prefix accepted; repeated prefixes stay malformed.
        assert_eq!(rt(&get("/v1/member/AS1"), &snap, &stats).status, 200);
        assert_eq!(rt(&get("/v1/member/ASAS1"), &snap, &stats).status, 400);
        // Unknown member → 404, garbage → 400.
        assert_eq!(rt(&get("/v1/member/99"), &snap, &stats).status, 404);
        assert_eq!(rt(&get("/v1/member/xyz"), &snap, &stats).status, 400);
    }

    #[test]
    fn prefix_answers_split_specificity() {
        let snap = snap();
        let stats = ServerStats::default();
        let r = rt(&get("/v1/prefix/10.1.0.0/24"), &snap, &stats);
        let b = body(&r);
        assert_eq!(r.status, 200);
        assert!(b.contains("\"exact\""));
        assert!(b.contains("\"member\": 1"));
        let wide = rt(&get("/v1/prefix/10.0.0.0/8"), &snap, &stats);
        assert!(body(&wide).contains("\"covered\""));
        assert_eq!(rt(&get("/v1/prefix/banana"), &snap, &stats).status, 400);
    }

    #[test]
    fn readyz_reports_health_state_and_drain_503s() {
        let snap = snap();
        let stats = ServerStats::default();
        let ring = ChangeLog::new(8);
        let rdy = |health: Option<&crate::health::HealthState>| {
            route(
                &get("/readyz"),
                &snap,
                &stats,
                &ring,
                None,
                None,
                None,
                None,
                health,
            )
        };
        // Without a health registry (bare route calls): ready.
        let r = rdy(None);
        assert_eq!(r.status, 200);
        assert!(body(&r).contains("\"status\": \"ready\""), "{}", body(&r));

        let h = crate::health::HealthState::new();
        let r = rdy(Some(&h));
        assert_eq!(r.status, 200);
        let b = body(&r);
        assert!(b.contains("\"status\": \"ready\""), "{b}");
        assert!(b.contains("\"reasons\": []"), "{b}");
        assert!(b.contains("\"epoch\""), "{b}");

        // Degraded: still 200 (reads keep serving) with reasons listed.
        h.set_live_restarting(true);
        let r = rdy(Some(&h));
        assert_eq!(r.status, 200);
        let b = body(&r);
        assert!(b.contains("\"status\": \"degraded\""), "{b}");
        assert!(b.contains("live-refresher"), "{b}");
        h.set_live_restarting(false);

        // Draining: 503 so load balancers stop routing.
        h.set_draining();
        let r = rdy(Some(&h));
        assert_eq!(r.status, 503);
        assert!(body(&r).contains("\"status\": \"draining\""));
    }

    #[test]
    fn unknown_routes_and_methods_fail_cleanly() {
        let snap = snap();
        let stats = ServerStats::default();
        assert_eq!(rt(&get("/nope"), &snap, &stats).status, 404);
        assert_eq!(rt(&get("/v1/ixp/9/links"), &snap, &stats).status, 404);
        assert_eq!(rt(&get("/v1/ixp/x/links"), &snap, &stats).status, 400);
        let mut post = get("/v1/ixps");
        post.method = "POST".into();
        assert_eq!(rt(&post, &snap, &stats).status, 405);
    }

    fn get_q(path: &str, query: &str) -> Request {
        Request {
            method: "GET".into(),
            path: path.into(),
            query: query.into(),
            ..Request::default()
        }
    }

    /// A test snapshot re-stamped to a given epoch (the store normally
    /// does this at publish).
    fn snap_at_epoch(epoch: u64) -> Arc<Snapshot> {
        let mut s = crate::testutil::snapshot_with(3, 7);
        s.epoch = epoch;
        Arc::new(s)
    }

    #[test]
    fn changes_answers_net_diff() {
        let snap = snap_at_epoch(2);
        let stats = ServerStats::default();
        let ring = ChangeLog::new(8);
        ring.record(
            1,
            mlpeer::live::LinkDelta {
                added: vec![(IxpId(0), Asn(1), Asn(2))],
                removed: vec![],
            },
        );
        ring.record(
            2,
            mlpeer::live::LinkDelta {
                added: vec![],
                removed: vec![(IxpId(0), Asn(2), Asn(3))],
            },
        );
        let r = route(
            &get_q("/v1/changes", "since=0"),
            &snap,
            &stats,
            &ring,
            None,
            None,
            None,
            None,
            None,
        );
        assert_eq!(r.status, 200);
        let b = body(&r);
        assert!(b.contains("\"resync\": false"), "{b}");
        assert!(b.contains("\"a\": 1"), "{b}");
        assert!(b.contains("\"removed\""), "{b}");
        assert!(
            !r.headers.iter().any(|(n, _)| n == "ETag"),
            "/v1/changes is not snapshot-addressed"
        );
        // since == current → empty diff, still 200.
        let r = route(
            &get_q("/v1/changes", "since=2"),
            &snap,
            &stats,
            &ring,
            None,
            None,
            None,
            None,
            None,
        );
        assert_eq!(r.status, 200);
        assert!(body(&r).contains("\"added\": []"));
    }

    #[test]
    fn changes_since_older_than_ring_draws_resync_410() {
        let snap = snap_at_epoch(3);
        let stats = ServerStats::default();
        let ring = ChangeLog::new(8);
        // Only epochs 3 is retained (2 was never recorded → gap).
        ring.record(
            3,
            mlpeer::live::LinkDelta {
                added: vec![(IxpId(0), Asn(1), Asn(2))],
                removed: vec![],
            },
        );
        let r = route(
            &get_q("/v1/changes", "since=1"),
            &snap,
            &stats,
            &ring,
            None,
            None,
            None,
            None,
            None,
        );
        assert_eq!(r.status, 410, "{}", body(&r));
        let b = body(&r);
        assert!(b.contains("\"resync\": true"), "{b}");
        assert!(b.contains("\"oldest_since\": 2"), "{b}");
        // The still-covered since answers normally.
        let r = route(
            &get_q("/v1/changes", "since=2"),
            &snap,
            &stats,
            &ring,
            None,
            None,
            None,
            None,
            None,
        );
        assert_eq!(r.status, 200);
    }

    /// A durable store holding epochs 0..=3 (members vary per epoch so
    /// each has a distinct ETag; epochs 1..=3 carry deltas).
    fn durable_history() -> (Arc<crate::durable::DurableStore>, std::path::PathBuf) {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "mlpeer-api-at-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let durable = Arc::new(crate::durable::DurableStore::open(&dir).unwrap());
        for e in 0..=3u64 {
            let mut s = crate::testutil::snapshot_with(2 + (e as u32 % 3), e);
            s.epoch = e;
            let delta = (e > 0).then(|| mlpeer::live::LinkDelta {
                added: vec![(IxpId(0), Asn(10 + e as u32), Asn(20 + e as u32))],
                removed: vec![],
            });
            durable.append_epoch(&s, delta.as_ref()).unwrap();
        }
        (durable, dir)
    }

    /// The snapshot that served as epoch `e` in [`durable_history`].
    fn history_snap(e: u64) -> Arc<Snapshot> {
        let mut s = crate::testutil::snapshot_with(2 + (e as u32 % 3), e);
        s.epoch = e;
        Arc::new(s)
    }

    #[test]
    fn at_param_time_travels_to_any_retained_epoch() {
        let (durable, dir) = durable_history();
        let current = history_snap(3);
        let stats = ServerStats::default();
        let ring = ChangeLog::new(8);
        let rth = |path: &str, query: &str| {
            route(
                &get_q(path, query),
                &current,
                &stats,
                &ring,
                Some(&durable),
                None,
                None,
                None,
                None,
            )
        };
        // Every historical epoch answers with its own body and ETag.
        for e in 0..3u64 {
            let expect = history_snap(e);
            let r = rth("/v1/ixps", &format!("at={e}"));
            assert_eq!(r.status, 200, "at={e}: {}", body(&r));
            assert_eq!(r.body.to_vec(), render_ixps(&expect), "at={e} body");
            assert!(
                r.headers
                    .iter()
                    .any(|(n, v)| n == "ETag" && *v == format!("\"{}\"", expect.etag)),
                "at={e} carries the historical ETag"
            );
        }
        // The live epoch stays on the in-memory snapshot.
        let r = rth("/v1/ixps", "at=3");
        assert_eq!(r.status, 200);
        assert_eq!(r.body.to_vec(), render_ixps(&current));
        // Sibling endpoints time-travel too.
        assert_eq!(rth("/v1/ixp/0/links", "at=1").status, 200);
        assert_eq!(rth("/v1/member/1", "at=1").status, 200);
        assert_eq!(rth("/v1/prefix/10.1.0.0/24", "at=1").status, 200);
        // Ahead of the present or malformed → 400.
        assert_eq!(rth("/v1/ixps", "at=9").status, 400);
        assert_eq!(rth("/v1/ixps", "at=banana").status, 400);
        // Non-snapshot-addressed endpoints reject `at`.
        assert_eq!(rth("/v1/changes", "since=0&at=1").status, 400);
        assert_eq!(rth("/v1/stats", "at=1").status, 400);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn at_param_without_history_or_retention_draws_410() {
        let stats = ServerStats::default();
        let ring = ChangeLog::new(8);
        // No durable store attached: any historical epoch is gone.
        let current = snap_at_epoch(5);
        let r = route(
            &get_q("/v1/ixps", "at=2"),
            &current,
            &stats,
            &ring,
            None,
            None,
            None,
            None,
            None,
        );
        assert_eq!(r.status, 410, "{}", body(&r));
        // With a store, an epoch that was never written is gone too.
        let (durable, dir) = durable_history();
        let current = snap_at_epoch(9);
        let r = route(
            &get_q("/v1/ixps", "at=7"),
            &current,
            &stats,
            &ring,
            Some(&durable),
            None,
            None,
            None,
            None,
        );
        assert_eq!(r.status, 410, "{}", body(&r));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// The 410-contract fix: a `since` the in-memory ring evicted but
    /// the durable log still covers is served as a normal delta — 410
    /// is reserved for epochs genuinely compacted away.
    #[test]
    fn changes_fall_back_to_durable_history_beyond_the_ring() {
        let (durable, dir) = durable_history();
        let current = history_snap(3);
        let stats = ServerStats::default();
        // A ring that only ever saw epoch 3: since=0 is evicted there.
        let ring = ChangeLog::new(2);
        ring.record(
            3,
            mlpeer::live::LinkDelta {
                added: vec![(IxpId(0), Asn(13), Asn(23))],
                removed: vec![],
            },
        );
        // Without the durable store this is the old 410.
        let r = route(
            &get_q("/v1/changes", "since=0"),
            &current,
            &stats,
            &ring,
            None,
            None,
            None,
            None,
            None,
        );
        assert_eq!(r.status, 410);
        // With it, the stored deltas fold into a full answer.
        let r = route(
            &get_q("/v1/changes", "since=0"),
            &current,
            &stats,
            &ring,
            Some(&durable),
            None,
            None,
            None,
            None,
        );
        assert_eq!(r.status, 200, "{}", body(&r));
        let b = body(&r);
        assert!(b.contains("\"resync\": false"), "{b}");
        for e in 1..=3u64 {
            assert!(
                b.contains(&format!("\"a\": {}", 10 + e)),
                "epoch {e}'s delta must be in the fold: {b}"
            );
        }
        // Epoch 0 itself has no delta on disk, so since-before-genesis
        // stays a 410 — with oldest_since reported from the *log*.
        let current_deeper = snap_at_epoch(3);
        let r = route(
            &get_q("/v1/changes", "since=0"),
            &current_deeper,
            &stats,
            &ChangeLog::new(2),
            Some(&durable),
            None,
            None,
            None,
            None,
        );
        assert_eq!(r.status, 200, "durable alone also answers: {}", body(&r));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn changes_rejects_malformed_and_future_since() {
        let snap = snap();
        let stats = ServerStats::default();
        let ring = ChangeLog::new(8);
        for q in ["", "since=banana", "since=-1", "since=1.5", "other=1"] {
            let r = route(
                &get_q("/v1/changes", q),
                &snap,
                &stats,
                &ring,
                None,
                None,
                None,
                None,
                None,
            );
            assert_eq!(r.status, 400, "query {q:?}: {}", body(&r));
        }
        // Snapshot epoch is 0; asking about the future is a 400.
        let r = route(
            &get_q("/v1/changes", "since=5"),
            &snap,
            &stats,
            &ring,
            None,
            None,
            None,
            None,
            None,
        );
        assert_eq!(r.status, 400);
    }
}
