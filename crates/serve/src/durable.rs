//! The serve ↔ store bridge: persisting published epochs and reviving
//! them.
//!
//! [`DurableStore`] wraps the `mlpeer_store` [`EpochLog`] (whose
//! methods take `&mut self`) in a [`Mutex`] and owns the two
//! conversions the serving layer needs:
//!
//! * **persist** — a serving [`Snapshot`] down to the deterministic
//!   [`PersistedSnapshot`] parts the log appends. The announcement
//!   corpus comes straight out of the snapshot's own `LinkIndex`
//!   (`announcements()` reconstructs exactly the set the trie was
//!   built from), so persistence needs no access to the raw
//!   observation stream and adds no fields to `Snapshot`.
//! * **revive** — a decoded record back up to a full `Snapshot` via
//!   [`Snapshot::from_parts`] (index, body cache, and content ETag all
//!   rebuilt). The stored ETag is re-verified against the rebuilt one;
//!   a mismatch means the record does not reproduce the snapshot it
//!   claims to be, and the revive is refused rather than served.
//!
//! Lock discipline: `SnapshotStore` calls [`append_epoch`] *inside*
//! its swap lock (so log order always matches publish order), which
//! means nothing in this module may call back into the snapshot store.
//!
//! [`append_epoch`]: DurableStore::append_epoch

use std::collections::BTreeSet;
use std::io;
use std::path::PathBuf;
use std::sync::Mutex;

use mlpeer::live::LinkDelta;
use mlpeer_bgp::Asn;
use mlpeer_ixp::ixp::IxpId;
use mlpeer_store::{CompactStats, EpochLog, LogStats, PersistedSnapshot, StoreConfig};

use crate::snapshot::{Snapshot, SnapshotParts};

/// Thread-safe handle to the on-disk epoch log, in serving terms.
pub struct DurableStore {
    log: Mutex<EpochLog>,
}

impl DurableStore {
    /// Open (or create) the log under `dir` with default tuning,
    /// running crash recovery (torn-tail truncation) as a side effect.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<DurableStore> {
        Self::open_with(dir, StoreConfig::default())
    }

    /// [`open`](DurableStore::open) with explicit tuning.
    pub fn open_with(dir: impl Into<PathBuf>, cfg: StoreConfig) -> io::Result<DurableStore> {
        Ok(DurableStore {
            log: Mutex::new(EpochLog::open(dir, cfg)?),
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, EpochLog> {
        self.log.lock().expect("epoch log lock never poisoned")
    }

    /// Append one published epoch (full snapshot + the delta that
    /// produced it, when the publish carried one).
    pub fn append_epoch(&self, snap: &Snapshot, delta: Option<&LinkDelta>) -> io::Result<()> {
        failpoints::failpoint!("serve::durable_append", |msg: String| Err(
            io::Error::other(format!("failpoint serve::durable_append: {msg}"))
        ));
        let persisted = persist(snap);
        self.lock().append_full(snap.epoch, &persisted, delta)
    }

    /// Flush and fsync the active segment — called once on graceful
    /// drain so the tail of the log is durable before exit.
    pub fn sync(&self) -> io::Result<()> {
        self.lock().sync_active()
    }

    /// The newest epoch on disk, revived as a full serving snapshot —
    /// what `--data-dir` boots from. `None` on an empty log or when no
    /// stored full record revives cleanly.
    pub fn latest(&self) -> Option<Snapshot> {
        let (epoch, persisted) = self.lock().latest_full()?;
        revive(epoch, persisted)
    }

    /// The newest epoch with any record (full or delta-only).
    pub fn latest_epoch(&self) -> Option<u64> {
        self.lock().latest_epoch()
    }

    /// The snapshot that served as `epoch`, revived — the `?at=`
    /// time-travel read. `None` when the epoch was never stored or its
    /// full record was compacted away.
    pub fn snapshot_at(&self, epoch: u64) -> Option<Snapshot> {
        let (persisted, _) = self.lock().snapshot_at(epoch)?;
        revive(epoch, persisted)
    }

    /// Epochs still answerable by [`snapshot_at`](DurableStore::snapshot_at).
    pub fn full_epochs(&self) -> Vec<u64> {
        self.lock().full_epochs()
    }

    /// The net link diff from `since` to `current`, folded over stored
    /// per-epoch deltas (add/remove cancellation) — the deep-history
    /// fallback behind `/v1/changes` once the in-memory ring has
    /// evicted an epoch. `None` when any epoch in the span lacks delta
    /// information on disk.
    #[allow(clippy::type_complexity)]
    pub fn fold_since(
        &self,
        since: u64,
        current: u64,
    ) -> Option<(BTreeSet<(IxpId, Asn, Asn)>, BTreeSet<(IxpId, Asn, Asn)>)> {
        self.lock().fold_since(since, current)
    }

    /// The oldest `since` the durable log can answer against `current`.
    pub fn oldest_since(&self, current: u64) -> u64 {
        self.lock().oldest_since(current)
    }

    /// Run a compaction pass over sealed segments.
    pub fn compact(&self) -> io::Result<CompactStats> {
        self.lock().compact()
    }

    /// Log counters, for `/v1/stats` and operational checks.
    pub fn stats(&self) -> LogStats {
        self.lock().stats()
    }
}

impl std::fmt::Debug for DurableStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableStore")
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

/// Extract the deterministic, persistable parts of a serving snapshot.
fn persist(snap: &Snapshot) -> PersistedSnapshot {
    PersistedSnapshot {
        scale: snap.scale.clone(),
        seed: snap.seed,
        etag: snap.etag.clone(),
        names: snap.names.clone(),
        links: snap.links.clone(),
        announcements: snap.index.announcements().into_iter().collect(),
        observation_count: snap.observation_count as u64,
        passive_stats: snap.passive_stats.clone(),
        validation: snap.validation.clone(),
    }
}

/// Rebuild a serving snapshot from a decoded record, refusing records
/// whose rebuilt content hash differs from the ETag they were stored
/// under (the end-to-end integrity check: checksums catch bit rot,
/// this catches logic drift between writer and reader).
fn revive(epoch: u64, persisted: PersistedSnapshot) -> Option<Snapshot> {
    let stored_etag = persisted.etag.clone();
    let snap = Snapshot::from_parts(SnapshotParts {
        epoch,
        scale: persisted.scale,
        seed: persisted.seed,
        names: persisted.names,
        links: persisted.links,
        announcements: persisted.announcements.into_iter().collect(),
        observation_count: persisted.observation_count as usize,
        passive_stats: persisted.passive_stats,
        validation: persisted.validation,
    });
    if snap.etag != stored_etag {
        eprintln!(
            "mlpeer-serve: refusing epoch {epoch} from durable store: \
             rebuilt etag {} != stored {stored_etag}",
            snap.etag
        );
        return None;
    }
    Some(snap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    fn temp_dir(tag: &str) -> PathBuf {
        let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("mlpeer-durable-{tag}-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn snap_at(epoch: u64, members: u32) -> Snapshot {
        let mut s = crate::testutil::snapshot_with(members, epoch);
        s.epoch = epoch;
        s
    }

    #[test]
    fn append_then_revive_is_byte_identical() {
        let dir = temp_dir("revive");
        let durable = DurableStore::open(&dir).unwrap();
        let original = snap_at(0, 3);
        durable.append_epoch(&original, None).unwrap();
        let revived = durable.latest().unwrap();
        assert_eq!(revived.epoch, 0);
        assert_eq!(revived.etag, original.etag);
        assert_eq!(revived.links, original.links);
        assert_eq!(
            crate::api::render_ixps(&revived),
            crate::api::render_ixps(&original)
        );
        // And again through a fresh open (a "restart").
        drop(durable);
        let reopened = DurableStore::open(&dir).unwrap();
        let back = reopened.latest().unwrap();
        assert_eq!(back.etag, original.etag);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_at_serves_history_and_fold_since_composes() {
        let dir = temp_dir("attime");
        let durable = DurableStore::open(&dir).unwrap();
        for e in 0..4u64 {
            let snap = snap_at(e, 2 + (e as u32 % 3));
            let delta = (e > 0).then(|| LinkDelta {
                added: vec![(IxpId(0), Asn(e as u32), Asn(e as u32 + 1))],
                removed: vec![],
            });
            durable.append_epoch(&snap, delta.as_ref()).unwrap();
        }
        for e in 0..4u64 {
            let hist = durable.snapshot_at(e).unwrap();
            assert_eq!(hist.epoch, e);
            assert_eq!(hist.etag, snap_at(e, 2 + (e as u32 % 3)).etag);
        }
        assert!(durable.snapshot_at(9).is_none());
        let (added, removed) = durable.fold_since(0, 3).unwrap();
        assert_eq!(added.len(), 3);
        assert!(removed.is_empty());
        assert_eq!(durable.oldest_since(3), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn revive_refuses_a_wrong_etag() {
        let snap = snap_at(0, 3);
        let mut persisted = persist(&snap);
        persisted.etag = "0000000000000000".to_string();
        assert!(revive(0, persisted).is_none());
        // The honest record revives.
        assert!(revive(0, persist(&snap)).is_some());
    }
}
