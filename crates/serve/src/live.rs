//! The live refresher: incremental epochs from an update stream, not
//! periodic re-harvests.
//!
//! The plain [`crate::refresher`] re-runs the whole pipeline each
//! interval — minutes at `paper` scale — even when nothing changed.
//! Live mode replaces it with a churn-driven delta loop: each tick
//! draws the next batch of seeded churn events, mutates the ecosystem,
//! renders the events as BGP session traffic
//! ([`mlpeer_data::churn::event_messages`]), decodes and folds them
//! into the [`LiveInferencer`], and then publishes **only if the link
//! set actually moved** — via
//! [`SnapshotStore::publish_with_delta`], so `/v1/changes` can answer
//! the diff. A tick whose net delta is empty publishes nothing: the
//! epoch *and* the content ETag stay stable, and conditional GETs keep
//! revalidating for free.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use mlpeer::live::{decode_message, LinkDelta, LiveInferencer};
use mlpeer::passive::PassiveStats;
use mlpeer::validate::cross::{validate_harvest, CorpusConfig};
use mlpeer_data::churn::{event_messages, ChurnConfig, ChurnGen};
use mlpeer_ixp::Ecosystem;

use crate::snapshot::Snapshot;
use crate::store::SnapshotStore;

/// Knobs of the live loop.
#[derive(Debug, Clone)]
pub struct LiveConfig {
    /// Time between ticks (clamped to ≥ 1 ms by the loop — a zero
    /// interval would busy-spin a core and flood the store).
    pub interval: Duration,
    /// Churn events drawn per tick (0 = a heartbeat that never
    /// changes anything — useful in tests).
    pub events_per_tick: usize,
    /// The seeded churn model.
    pub churn: ChurnConfig,
    /// Scale word stamped into published snapshots.
    pub scale: String,
    /// Seed stamped into published snapshots.
    pub seed: u64,
}

/// Counters the live loop exposes (all monotone).
#[derive(Debug, Default)]
pub struct LiveStats {
    /// Ticks run.
    pub ticks: AtomicU64,
    /// Churn events applied.
    pub events: AtomicU64,
    /// Epochs actually published (≤ ticks: no-op ticks skip).
    pub published: AtomicU64,
    /// Times the supervisor caught a tick panic and restarted the loop.
    pub restarts: AtomicU64,
}

/// The refresher supervisor: a panicking tick is caught
/// ([`std::panic::catch_unwind`]), counted, reported to the health
/// registry, and the loop restarted after exponential backoff (250 ms
/// doubling to a 5 s cap) — one bad tick must not silently kill push
/// delivery for the rest of the process lifetime. A clean tick resets
/// the backoff and clears the `live-refresher` degradation reason.
struct Supervisor {
    backoff: Duration,
}

impl Supervisor {
    const INITIAL: Duration = Duration::from_millis(250);
    const CAP: Duration = Duration::from_secs(5);

    fn new() -> Supervisor {
        Supervisor {
            backoff: Self::INITIAL,
        }
    }

    /// A tick completed cleanly: recovered.
    fn tick_ok(&mut self, health: &crate::health::HealthState) {
        self.backoff = Self::INITIAL;
        health.set_live_restarting(false);
    }

    /// A tick panicked: count, report, back off (shutdown-aware), grow.
    fn tick_panicked(
        &mut self,
        tag: &str,
        health: &crate::health::HealthState,
        stats: &LiveStats,
        shutdown: &AtomicBool,
    ) {
        let n = stats.restarts.fetch_add(1, Ordering::Relaxed) + 1;
        health.set_live_restarting(true);
        eprintln!(
            "mlpeer-serve: {tag} tick panicked; restart #{n} in {:?}",
            self.backoff
        );
        let mut slept = Duration::ZERO;
        while slept < self.backoff && !shutdown.load(Ordering::Relaxed) {
            let step = Duration::from_millis(50).min(self.backoff - slept);
            std::thread::sleep(step);
            slept += step;
        }
        self.backoff = (self.backoff * 2).min(Self::CAP);
    }
}

/// Bootstrap the live state from an ecosystem: the inferencer over the
/// current route-server state, and the initial snapshot to open the
/// store on — built from the *same* live harvest, so the first
/// `/v1/changes` delta composes against exactly what `/v1/*` serves.
pub fn bootstrap(eco: &Ecosystem, scale: &str, seed: u64) -> (LiveInferencer, Snapshot) {
    let li = LiveInferencer::from_ecosystem(eco);
    let observations = li.observations();
    let validation = validate_harvest(
        eco,
        li.current(),
        &observations,
        &CorpusConfig::seeded(seed),
    );
    let snapshot = Snapshot::build_validated(
        scale,
        seed,
        Snapshot::names_of(eco),
        li.current().clone(),
        &observations,
        PassiveStats::default(),
        validation,
    );
    (li, snapshot)
}

/// Spawn the live loop. `eco` and `inferencer` must agree (use
/// [`bootstrap`]); the loop owns both from here on. Returns the thread
/// handle; `shutdown` stops it promptly even mid-interval.
pub fn spawn_live_refresher(
    store: Arc<SnapshotStore>,
    mut eco: Ecosystem,
    mut inferencer: LiveInferencer,
    cfg: LiveConfig,
    stats: Arc<LiveStats>,
    shutdown: Arc<AtomicBool>,
) -> JoinHandle<()> {
    let mut churn = ChurnGen::new(&eco, cfg.churn.clone());
    let names = Snapshot::names_of(&eco);
    store.set_live_stats(Arc::clone(&stats));
    std::thread::Builder::new()
        .name("mlpeer-serve-live".into())
        .spawn(move || {
            // A zero interval must not become a 100% CPU busy-spin.
            let interval = cfg.interval.max(Duration::from_millis(1));
            let mut clock: u64 = 0;
            let mut supervisor = Supervisor::new();
            loop {
                let mut slept = Duration::ZERO;
                while slept < interval {
                    if shutdown.load(Ordering::Relaxed) {
                        return;
                    }
                    let step = Duration::from_millis(50).min(interval - slept);
                    std::thread::sleep(step);
                    slept += step;
                }
                if shutdown.load(Ordering::Relaxed) {
                    return;
                }

                // ---- One tick: apply a batch of churn (supervised —
                // a panic anywhere in decode/apply/publish is caught
                // and the loop restarted after backoff). ----
                let tick = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    failpoints::failpoint!("serve::live_tick");
                    let version_before = inferencer.state_version();
                    let mut delta = LinkDelta::default();
                    for _ in 0..cfg.events_per_tick {
                        let event = churn.next_event(&eco);
                        eco.apply_churn(&event);
                        let ixp = event.ixp();
                        let scheme = &eco.ixp(ixp).scheme;
                        for msg in event_messages(&eco, &event, clock) {
                            for live_event in decode_message(ixp, scheme, &msg) {
                                delta.merge(inferencer.apply(&live_event));
                            }
                        }
                        clock += 1;
                        stats.events.fetch_add(1, Ordering::Relaxed);
                    }
                    stats.ticks.fetch_add(1, Ordering::Relaxed);

                    if delta.is_empty() && inferencer.state_version() == version_before {
                        // Nothing served changed: no publish, epoch and
                        // ETag stay. The state-version check matters —
                        // prefixes and policies can change without any
                        // link moving (e.g. an open member originating a
                        // new prefix), and /v1/prefix must not go stale;
                        // such a tick publishes a new epoch whose link
                        // delta is empty.
                        return;
                    }
                    // Uncached build: a tick that moved a handful of links
                    // must not pay an O(announcement-corpus) body
                    // pre-render — live-mode GETs render on demand (the
                    // pre-cache behavior), batch publishes keep the cache.
                    // Validation re-runs against the churned ecosystem:
                    // the corpus is re-derived from current registry
                    // state, so verdicts track membership churn.
                    let observations = inferencer.observations();
                    let validation = validate_harvest(
                        &eco,
                        inferencer.current(),
                        &observations,
                        &CorpusConfig::seeded(cfg.seed),
                    );
                    let snapshot = Snapshot::build_uncached_validated(
                        &cfg.scale,
                        cfg.seed,
                        names.clone(),
                        inferencer.current().clone(),
                        &observations,
                        PassiveStats::default(),
                        validation,
                    );
                    let epoch = store.publish_with_delta(snapshot, delta);
                    stats.published.fetch_add(1, Ordering::Relaxed);
                    eprintln!(
                        "# live: epoch {epoch} after {} events ({} links)",
                        stats.events.load(Ordering::Relaxed),
                        store.load().unique_link_count,
                    );
                }));
                match tick {
                    Ok(()) => supervisor.tick_ok(store.health()),
                    Err(_) => supervisor.tick_panicked("live", store.health(), &stats, &shutdown),
                }
            }
        })
        .expect("spawn live refresher")
}

/// [`spawn_live_refresher`] with the inference fold distributed across
/// worker processes: the coordinator decodes each tick's churn into
/// live events centrally (schemes retune under churn, so decoding must
/// see the mutated ecosystem), ships each event to the worker owning
/// its IXP, and folds the acked deltas into one publishable epoch.
/// Byte-identical to the serial loop on the same `(eco, cfg)` — the
/// invariant `tests/dist_faults.rs` proves under fault injection.
pub fn spawn_live_refresher_dist(
    store: Arc<SnapshotStore>,
    mut eco: Ecosystem,
    mut dist: mlpeer_dist::DistLive,
    cfg: LiveConfig,
    stats: Arc<LiveStats>,
    shutdown: Arc<AtomicBool>,
) -> JoinHandle<()> {
    let mut churn = ChurnGen::new(&eco, cfg.churn.clone());
    let names = Snapshot::names_of(&eco);
    store.set_live_stats(Arc::clone(&stats));
    std::thread::Builder::new()
        .name("mlpeer-serve-live-dist".into())
        .spawn(move || {
            let interval = cfg.interval.max(Duration::from_millis(1));
            let mut clock: u64 = 0;
            let mut supervisor = Supervisor::new();
            loop {
                let mut slept = Duration::ZERO;
                while slept < interval {
                    if shutdown.load(Ordering::Relaxed) {
                        dist.shutdown();
                        return;
                    }
                    let step = Duration::from_millis(50).min(interval - slept);
                    std::thread::sleep(step);
                    slept += step;
                }
                if shutdown.load(Ordering::Relaxed) {
                    dist.shutdown();
                    return;
                }

                // ---- One tick: decode centrally, fold remotely
                // (supervised, like the serial loop). ----
                let degraded_before = dist.stats().snapshot().degraded;
                let tick = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    failpoints::failpoint!("serve::live_tick");
                    let mut events = Vec::new();
                    for _ in 0..cfg.events_per_tick {
                        let event = churn.next_event(&eco);
                        eco.apply_churn(&event);
                        let ixp = event.ixp();
                        let scheme = &eco.ixp(ixp).scheme;
                        for msg in event_messages(&eco, &event, clock) {
                            events.extend(decode_message(ixp, scheme, &msg));
                        }
                        clock += 1;
                        stats.events.fetch_add(1, Ordering::Relaxed);
                    }
                    let outcome = dist.tick(&events);
                    stats.ticks.fetch_add(1, Ordering::Relaxed);

                    if !outcome.changed {
                        return;
                    }
                    // Same validation pass as the serial loop, against
                    // the same churned ecosystem — byte-identity of the
                    // two loops extends to `/v1/validate`.
                    let validation = validate_harvest(
                        &eco,
                        &outcome.links,
                        &outcome.observations,
                        &CorpusConfig::seeded(cfg.seed),
                    );
                    let snapshot = Snapshot::build_uncached_validated(
                        &cfg.scale,
                        cfg.seed,
                        names.clone(),
                        outcome.links,
                        &outcome.observations,
                        PassiveStats::default(),
                        validation,
                    );
                    let epoch = store.publish_with_delta(snapshot, outcome.delta);
                    stats.published.fetch_add(1, Ordering::Relaxed);
                    eprintln!(
                        "# live[dist]: epoch {epoch} after {} events ({} links)",
                        stats.events.load(Ordering::Relaxed),
                        store.load().unique_link_count,
                    );
                }));
                // Workers falling back to in-process execution this
                // tick is answer-preserving (the fault tests prove
                // byte-identity) but still a capacity loss worth
                // surfacing: /readyz reports `dist-workers` until a
                // tick runs without fresh degradation.
                let degraded_after = dist.stats().snapshot().degraded;
                store
                    .health()
                    .set_dist_degraded(degraded_after > degraded_before);
                match tick {
                    Ok(()) => supervisor.tick_ok(store.health()),
                    Err(_) => {
                        supervisor.tick_panicked("live[dist]", store.health(), &stats, &shutdown)
                    }
                }
            }
        })
        .expect("spawn dist live refresher")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::SinceAnswer;
    use mlpeer_ixp::EcosystemConfig;

    fn live_cfg(events_per_tick: usize) -> LiveConfig {
        LiveConfig {
            interval: Duration::from_millis(10),
            events_per_tick,
            churn: ChurnConfig {
                seed: 5,
                ..ChurnConfig::default()
            },
            scale: "tiny".into(),
            seed: 11,
        }
    }

    fn boot() -> (Ecosystem, LiveInferencer, Snapshot) {
        let eco = Ecosystem::generate(EcosystemConfig::tiny(11));
        let (li, snap) = bootstrap(&eco, "tiny", 11);
        (eco, li, snap)
    }

    #[test]
    fn live_loop_publishes_deltas_that_compose() {
        let (eco, li, snap) = boot();
        let initial_links: std::collections::BTreeSet<(mlpeer_ixp::IxpId, _, _)> = snap
            .links
            .per_ixp
            .iter()
            .flat_map(|(ixp, s)| s.iter().map(move |&(a, b)| (*ixp, a, b)))
            .collect();
        let store = SnapshotStore::new(snap);
        let shutdown = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(LiveStats::default());
        let handle = spawn_live_refresher(
            Arc::clone(&store),
            eco,
            li,
            live_cfg(20),
            Arc::clone(&stats),
            Arc::clone(&shutdown),
        );
        let deadline = std::time::Instant::now() + Duration::from_secs(20);
        while store.load().epoch < 3 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        shutdown.store(true, Ordering::Relaxed);
        handle.join().unwrap();
        let current = store.load();
        assert!(current.epoch >= 3, "live loop must publish epochs");
        assert!(stats.published.load(Ordering::Relaxed) >= 3);

        // The loop registered its counters on the store, and /v1/stats
        // surfaces them.
        assert!(store.live_stats().is_some());
        let r = crate::api::route(
            &crate::http::Request {
                method: "GET".into(),
                path: "/v1/stats".into(),
                ..Default::default()
            },
            &current,
            &crate::server::ServerStats::default(),
            store.changes(),
            store.durable(),
            store.live_stats(),
            None,
            None,
            None,
        );
        let body = String::from_utf8(r.body.to_vec()).unwrap();
        assert!(body.contains("\"published_epochs\""), "{body}");
        assert!(body.contains("\"ticks\""), "{body}");

        // The net diff since 0 composes with the initial link set to
        // exactly the served snapshot's links.
        match store.changes().since(0, current.epoch) {
            SinceAnswer::Delta { added, removed } => {
                let mut expect = initial_links;
                for l in &removed {
                    assert!(expect.remove(l), "removed link {l:?} was never present");
                }
                for l in &added {
                    assert!(expect.insert(*l), "added link {l:?} already present");
                }
                let now: std::collections::BTreeSet<_> = current
                    .links
                    .per_ixp
                    .iter()
                    .flat_map(|(ixp, s)| s.iter().map(move |&(a, b)| (*ixp, a, b)))
                    .collect();
                assert_eq!(expect, now, "delta chain must compose to current");
            }
            SinceAnswer::Truncated { .. } => {
                panic!("ring should cover every epoch of a short run")
            }
        }
    }

    #[test]
    fn noop_ticks_keep_epoch_and_etag_stable() {
        let (eco, li, snap) = boot();
        let etag0 = snap.etag.clone();
        let store = SnapshotStore::new(snap);
        let shutdown = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(LiveStats::default());
        // events_per_tick = 0: every tick is a no-op delta.
        let handle = spawn_live_refresher(
            Arc::clone(&store),
            eco,
            li,
            live_cfg(0),
            Arc::clone(&stats),
            Arc::clone(&shutdown),
        );
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while stats.ticks.load(Ordering::Relaxed) < 5 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        shutdown.store(true, Ordering::Relaxed);
        handle.join().unwrap();
        assert!(stats.ticks.load(Ordering::Relaxed) >= 5, "loop must tick");
        assert_eq!(stats.published.load(Ordering::Relaxed), 0);
        let snap = store.load();
        assert_eq!(snap.epoch, 0, "no-op deltas must not bump the epoch");
        assert_eq!(snap.etag, etag0, "no-op deltas must not move the ETag");
        assert_eq!(store.swap_count(), 0);
    }

    #[test]
    fn bootstrap_snapshot_serves_live_state() {
        let (_, li, snap) = boot();
        assert_eq!(snap.epoch, 0);
        assert_eq!(snap.unique_link_count, li.current().unique_links().len());
        assert!(snap.observation_count > 0);
        assert_eq!(snap.observation_count, li.observations().len());
    }
}
