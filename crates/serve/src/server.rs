//! The TCP front end: accept loop, per-connection keep-alive request
//! loop, shared counters, graceful shutdown.
//!
//! Each accepted connection is handed to the [`ThreadPool`]; each
//! request on it loads the *current* snapshot from the store, so a
//! long-lived connection observes refreshes between requests while any
//! single response stays internally consistent.

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::api;
use crate::http::{read_request, ThreadPool};
use crate::store::SnapshotStore;

/// Read timeout for a connection's *first* request: a stalled client
/// must not pin a worker.
const READ_TIMEOUT: Duration = Duration::from_secs(10);

/// Idle timeout between keep-alive requests. The thread-per-connection
/// model pins a pool worker for the connection's lifetime, so idle
/// connections must age out quickly to bound how long a slow client
/// can hold a worker (back-to-back clients like the load generator
/// never notice).
const KEEP_ALIVE_IDLE: Duration = Duration::from_secs(2);

/// Shared server counters, surfaced by `/v1/stats` and `/healthz`.
#[derive(Debug)]
pub struct ServerStats {
    requests: AtomicU64,
    not_modified: AtomicU64,
    client_errors: AtomicU64,
    started: Instant,
}

impl Default for ServerStats {
    fn default() -> Self {
        ServerStats {
            requests: AtomicU64::new(0),
            not_modified: AtomicU64::new(0),
            client_errors: AtomicU64::new(0),
            started: Instant::now(),
        }
    }
}

impl ServerStats {
    /// Requests routed since boot.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// 304 revalidations served.
    pub fn not_modified(&self) -> u64 {
        self.not_modified.load(Ordering::Relaxed)
    }

    /// 4xx responses served.
    pub fn client_errors(&self) -> u64 {
        self.client_errors.load(Ordering::Relaxed)
    }

    /// Milliseconds since boot.
    pub fn uptime_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    /// Count one routed request (both engines call this right after a
    /// head parses, before routing).
    pub(crate) fn record_request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one malformed request (the parse-failure 400 path).
    pub(crate) fn record_client_error(&self) {
        self.client_errors.fetch_add(1, Ordering::Relaxed);
    }
}

/// A running server — threaded or reactor engine — with its bound
/// address, stats, and a shutdown handle.
pub struct ServerHandle {
    /// The actually-bound address (resolves port 0).
    pub addr: SocketAddr,
    /// Shared counters.
    pub stats: Arc<ServerStats>,
    /// Reactor counters when the reactor engine runs this server,
    /// `None` under the threaded engine.
    pub reactor_stats: Option<Arc<crate::reactor::ReactorStats>>,
    pub(crate) shutdown: Arc<AtomicBool>,
    /// The served store's health registry — the drain flag lives here
    /// so `/readyz` and the engines see the same state.
    pub(crate) health: Arc<crate::health::HealthState>,
    /// The accept thread (threaded engine) or one thread per reactor
    /// shard.
    pub(crate) threads: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// Ask the serve threads to exit and join them. Idempotent.
    pub fn stop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        // Unblock a blocking accept (threaded) or wake a poller shard
        // (reactor) with one throwaway connection; remaining reactor
        // shards notice the flag on their next wait timeout.
        let _ = TcpStream::connect(self.addr);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    /// Graceful drain: flip the health registry's drain flag (so
    /// `/readyz` answers `draining` and both engines stop accepting),
    /// let in-flight requests finish — the reactor pushes a terminal
    /// `shutdown` SSE event and completes parked long-polls; grace is
    /// bounded by [`crate::reactor::ReactorConfig::drain_grace`] — and
    /// join the serve threads. Idempotent.
    pub fn drain(&mut self) {
        self.health.set_draining();
        // Unblock a blocking accept / wake the poller shards.
        let _ = TcpStream::connect(self.addr);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    /// True once every serve thread has exited — lets a supervisor
    /// poll for liveness without consuming the handles.
    pub fn is_finished(&self) -> bool {
        self.threads.iter().all(|t| t.is_finished())
    }

    /// Block until the server exits (Ctrl-C for the binary).
    pub fn join(&mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Bind `addr` and serve the store on `workers` pooled threads. Returns
/// as soon as the listener is accepting (use port 0 for an ephemeral
/// test port).
pub fn spawn_server(
    store: Arc<SnapshotStore>,
    addr: &str,
    workers: usize,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stats = Arc::new(ServerStats::default());
    let shutdown = Arc::new(AtomicBool::new(false));
    let health = Arc::clone(store.health());
    let accept_thread = {
        let stats = Arc::clone(&stats);
        let shutdown = Arc::clone(&shutdown);
        let health = Arc::clone(&health);
        std::thread::Builder::new()
            .name("mlpeer-serve-accept".into())
            .spawn(move || {
                let pool = ThreadPool::new(workers);
                for conn in listener.incoming() {
                    if shutdown.load(Ordering::Relaxed) || health.is_draining() {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    let store = Arc::clone(&store);
                    let stats = Arc::clone(&stats);
                    pool.execute(move || handle_connection(stream, &store, &stats));
                }
                // Dropping the pool joins the workers, draining
                // in-flight connections before the handle's join
                // returns.
            })?
    };
    Ok(ServerHandle {
        addr,
        stats,
        reactor_stats: None,
        shutdown,
        health,
        threads: vec![accept_thread],
    })
}

/// Bump the post-route counters for one response — shared by both
/// engines so `/v1/stats`'s server section counts identically.
pub(crate) fn count_response(stats: &ServerStats, status: u16) {
    match status {
        304 => {
            stats.not_modified.fetch_add(1, Ordering::Relaxed);
        }
        400..=499 => {
            stats.client_errors.fetch_add(1, Ordering::Relaxed);
        }
        _ => {}
    }
}

/// Serve one connection: keep-alive loop, one snapshot load per
/// request.
fn handle_connection(stream: TcpStream, store: &SnapshotStore, stats: &ServerStats) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut write_half = write_half;
    let mut reader = BufReader::new(stream);
    loop {
        // `Ok(None)` covers both clean close and an idle timeout before
        // any byte of a request; a timeout (or garbage) mid-head is a
        // client error and draws a 400.
        let req = match read_request(&mut reader) {
            Ok(Some(req)) => req,
            Ok(None) => break,
            Err(_) => {
                stats.record_client_error();
                let _ = api::error(400, "malformed request").write_to(&mut write_half, false);
                break;
            }
        };
        stats.record_request();
        let snapshot = store.load();
        let response = api::route(
            &req,
            &snapshot,
            stats,
            store.changes(),
            store.durable(),
            store.live_stats(),
            None,
            store.dist_stats(),
            Some(store.health().as_ref()),
        );
        count_response(stats, response.status);
        // During a drain the in-flight request finishes, but the
        // response carries `Connection: close` and the worker frees up.
        let keep_alive = !req.wants_close() && !store.health().is_draining();
        if response.write_to(&mut write_half, keep_alive).is_err() || !keep_alive {
            break;
        }
        // Subsequent requests on this connection get the short idle
        // window; the worker frees up quickly if the client goes quiet.
        let _ = reader.get_ref().set_read_timeout(Some(KEEP_ALIVE_IDLE));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::Snapshot;
    use std::io::{Read, Write};

    fn tiny_snapshot(members: u32) -> Snapshot {
        crate::testutil::snapshot_with(members, u64::from(members))
    }

    /// Send one raw request over a fresh connection; return (status,
    /// body text) via the shared client-side parser.
    fn raw_get(addr: SocketAddr, path: &str, close: bool) -> (u16, String) {
        let mut s = TcpStream::connect(addr).unwrap();
        let conn = if close { "Connection: close\r\n" } else { "" };
        write!(s, "GET {path} HTTP/1.1\r\nHost: t\r\n{conn}\r\n").unwrap();
        let parts = crate::http::read_response(&mut BufReader::new(s)).unwrap();
        (parts.status, String::from_utf8(parts.body).unwrap())
    }

    #[test]
    fn serves_requests_and_counts_them() {
        let store = crate::store::SnapshotStore::new(tiny_snapshot(3));
        let mut server = spawn_server(store, "127.0.0.1:0", 2).unwrap();
        let (status, text) = raw_get(server.addr, "/healthz", true);
        assert_eq!(status, 200);
        assert!(text.contains("\"status\": \"ok\""));
        let (status, _) = raw_get(server.addr, "/nope", true);
        assert_eq!(status, 404);
        assert!(server.stats.requests() >= 2);
        assert!(server.stats.client_errors() >= 1);
        server.stop();
        server.stop(); // idempotent
    }

    #[test]
    fn refresh_is_visible_between_requests_on_one_connection() {
        let store = crate::store::SnapshotStore::new(tiny_snapshot(2));
        let mut server = spawn_server(Arc::clone(&store), "127.0.0.1:0", 2).unwrap();
        let s = TcpStream::connect(server.addr).unwrap();
        let mut writer = s.try_clone().unwrap();
        let mut reader = BufReader::new(s);
        let read_one = |reader: &mut BufReader<TcpStream>| {
            let parts = crate::http::read_response(reader).unwrap();
            String::from_utf8(parts.body).unwrap()
        };
        write!(writer, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let first = read_one(&mut reader);
        assert!(first.contains("\"epoch\": 0"));
        store.publish(tiny_snapshot(4));
        write!(writer, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let second = read_one(&mut reader);
        assert!(
            second.contains("\"epoch\": 1"),
            "same connection sees the new epoch: {second}"
        );
        // Release the keep-alive worker before joining the pool.
        drop(writer);
        drop(reader);
        server.stop();
    }

    /// Once the drain flag is up, the threaded engine finishes the
    /// in-flight request but answers it `Connection: close`, freeing
    /// the pooled worker so `drain()` returns promptly.
    #[test]
    fn drain_closes_keep_alive_connections() {
        let store = crate::store::SnapshotStore::new(tiny_snapshot(2));
        let mut server = spawn_server(Arc::clone(&store), "127.0.0.1:0", 2).unwrap();
        let s = TcpStream::connect(server.addr).unwrap();
        let mut writer = s.try_clone().unwrap();
        let mut reader = BufReader::new(s);
        write!(writer, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let first = crate::http::read_response(&mut reader).unwrap();
        assert_eq!(first.status, 200);
        assert_eq!(first.header("connection"), Some("keep-alive"));
        // Flip the drain flag directly (the binary does this via
        // ServerHandle::drain on SIGTERM) and issue the in-flight
        // request: it completes, but closes the connection.
        store.health().set_draining();
        write!(writer, "GET /readyz HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let second = crate::http::read_response(&mut reader).unwrap();
        assert_eq!(second.status, 503, "/readyz answers draining with 503");
        assert_eq!(second.header("connection"), Some("close"));
        assert!(String::from_utf8(second.body).unwrap().contains("draining"));
        let mut scratch = [0u8; 64];
        assert_eq!(
            reader.get_mut().read(&mut scratch).unwrap(),
            0,
            "server closes after the drained response"
        );
        // With the worker freed, draining the handle joins quickly.
        server.drain();
        assert!(server.is_finished());
    }
}
