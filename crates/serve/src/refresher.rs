//! The background refresher: rebuild snapshots off the read path,
//! publish new epochs atomically.
//!
//! The builder closure runs entirely outside the store's lock — for the
//! real binary it re-runs the full pipeline (ecosystem routing,
//! `harvest_passive_sharded`, active querying, link inference, index
//! construction), which takes seconds at paper scale — and only the
//! resulting pointer swap touches the store. Readers keep serving the
//! previous epoch throughout.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::snapshot::Snapshot;
use crate::store::SnapshotStore;

/// Spawn a refresher that calls `build` every `interval` and publishes
/// the result, until `shutdown` flips. Returns the thread handle; the
/// sleep is chunked so shutdown is prompt even for long intervals.
pub fn spawn_refresher<F>(
    store: Arc<SnapshotStore>,
    interval: Duration,
    shutdown: Arc<AtomicBool>,
    build: F,
) -> JoinHandle<()>
where
    F: Fn() -> Snapshot + Send + 'static,
{
    std::thread::Builder::new()
        .name("mlpeer-serve-refresher".into())
        .spawn(move || loop {
            let mut slept = Duration::ZERO;
            while slept < interval {
                if shutdown.load(Ordering::Relaxed) {
                    return;
                }
                let step = Duration::from_millis(50).min(interval - slept);
                std::thread::sleep(step);
                slept += step;
            }
            if shutdown.load(Ordering::Relaxed) {
                return;
            }
            let next = build(); // expensive, outside any lock
            let epoch = store.publish(next);
            eprintln!("# refresher published epoch {epoch}");
        })
        .expect("spawn refresher")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Snapshot {
        crate::testutil::snapshot_with(2, 0)
    }

    #[test]
    fn refresher_publishes_and_stops() {
        let store = SnapshotStore::new(tiny());
        let shutdown = Arc::new(AtomicBool::new(false));
        let handle = spawn_refresher(
            Arc::clone(&store),
            Duration::from_millis(20),
            Arc::clone(&shutdown),
            tiny,
        );
        // Wait for at least two refreshes.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while store.swap_count() < 2 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(store.swap_count() >= 2, "refresher must publish repeatedly");
        let epoch_now = store.load().epoch;
        assert!(epoch_now >= 2);
        // Identical content each refresh → the ETag never changes.
        assert_eq!(store.load().etag, tiny().etag);
        shutdown.store(true, Ordering::Relaxed);
        handle.join().unwrap();
    }
}
