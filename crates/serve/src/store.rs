//! The versioned snapshot store: atomic epoch swaps, never-blocking
//! readers.
//!
//! Readers call [`SnapshotStore::load`] and get an `Arc<Snapshot>` —
//! the mutex guards only the `Arc` clone (a reference-count increment),
//! never the snapshot contents, so a reader holds its view for as long
//! as it likes while any number of refreshes publish behind it.
//! Writers build the replacement snapshot entirely *outside* the lock
//! (index construction over a `Scale::Paper` run takes seconds; the
//! swap itself is a pointer exchange), then [`publish`] stamps the next
//! epoch and swaps.
//!
//! The `never blocked, never torn` contract is asserted by
//! `swap_under_concurrent_readers`: readers observe only complete
//! snapshots whose ETag re-verifies against their content, and a held
//! `Arc` is bit-identical before and after any number of swaps.
//!
//! [`publish`]: SnapshotStore::publish

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use mlpeer::live::LinkDelta;

use crate::delta::ChangeLog;
use crate::snapshot::Snapshot;

/// A registered publish observer (see [`SnapshotStore::on_publish`]).
type PublishHook = Box<dyn Fn(u64) + Send + Sync>;

/// Default [`ChangeLog`] depth: how many epochs back `/v1/changes` can
/// answer before signalling a full resync.
pub const DEFAULT_CHANGE_CAPACITY: usize = 64;

/// Shared handle to the current [`Snapshot`] epoch.
pub struct SnapshotStore {
    current: Mutex<Arc<Snapshot>>,
    swaps: AtomicU64,
    changes: ChangeLog,
    /// Registered by the live refresher so `/v1/stats` can surface its
    /// counters; absent outside live mode.
    live_stats: std::sync::OnceLock<Arc<crate::live::LiveStats>>,
    /// Registered by the `--workers=N` boot path so `/v1/stats` can
    /// surface the coordinator's counters; absent in single-process
    /// runs.
    dist_stats: std::sync::OnceLock<Arc<mlpeer_dist::DistStats>>,
    /// Publish observers (the reactor registers one per shard to wake
    /// parked push subscribers). Must stay cheap and non-blocking —
    /// they run on the publisher's thread after every swap.
    hooks: Mutex<Vec<PublishHook>>,
    /// The on-disk epoch log, when the process runs with `--data-dir`.
    /// Appends happen *inside* the swap lock so log order always
    /// matches publish order; an append failure is reported and served
    /// past (availability over durability), never a panic.
    durable: std::sync::OnceLock<Arc<crate::durable::DurableStore>>,
    /// Degradation registry behind `/readyz`: the durability breaker,
    /// supervisor flags, and the drain flag all live here.
    health: Arc<crate::health::HealthState>,
    /// The newest epoch that failed to persist while the durability
    /// breaker is open, kept for the recovery probe to catch up with.
    /// `Arc`-wrapped so the probe thread can share it without owning
    /// the store.
    #[allow(clippy::type_complexity)]
    pending_persist: Arc<Mutex<Option<(Arc<Snapshot>, Option<LinkDelta>)>>>,
}

impl SnapshotStore {
    /// Open a store on an initial snapshot (published as epoch 0) with
    /// the default change-ring depth.
    pub fn new(initial: Snapshot) -> Arc<SnapshotStore> {
        Self::with_change_capacity(initial, DEFAULT_CHANGE_CAPACITY)
    }

    /// Open a store with an explicit change-ring depth.
    pub fn with_change_capacity(mut initial: Snapshot, capacity: usize) -> Arc<SnapshotStore> {
        initial.epoch = 0;
        Self::resume(initial, capacity)
    }

    /// Open a store on a snapshot that keeps the epoch it already
    /// carries — the durable-recovery boot path, where the initial
    /// snapshot is a revived epoch N and the next publish must be
    /// N + 1, not 1.
    pub fn resume(initial: Snapshot, capacity: usize) -> Arc<SnapshotStore> {
        Arc::new(SnapshotStore {
            current: Mutex::new(Arc::new(initial)),
            swaps: AtomicU64::new(0),
            changes: ChangeLog::new(capacity),
            live_stats: std::sync::OnceLock::new(),
            dist_stats: std::sync::OnceLock::new(),
            hooks: Mutex::new(Vec::new()),
            durable: std::sync::OnceLock::new(),
            health: crate::health::HealthState::new(),
            pending_persist: Arc::new(Mutex::new(None)),
        })
    }

    /// The degradation registry behind `/readyz`.
    pub fn health(&self) -> &Arc<crate::health::HealthState> {
        &self.health
    }

    /// Attach the on-disk epoch log (first attach wins; a second
    /// attach is the only error). From here on, every publish also
    /// appends to the log. If the log is empty — a fresh `--data-dir`
    /// — the current snapshot is appended immediately so epoch 0 (or
    /// the resumed epoch) is on disk before any traffic is served; if
    /// that boot append fails, availability wins: the breaker opens at
    /// once, the epoch parks in the pending slot, and the recovery
    /// probe lands it when the disk answers.
    pub fn attach_durable(
        &self,
        durable: Arc<crate::durable::DurableStore>,
    ) -> std::io::Result<()> {
        // Hold the swap lock across the attach + catch-up append so a
        // concurrent publish cannot interleave between them.
        let current = self.current.lock().expect("store lock never poisoned");
        let attached = Arc::clone(&durable);
        if self.durable.set(durable).is_err() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::AlreadyExists,
                "durable store already attached",
            ));
        }
        if attached.latest_epoch().is_none() {
            if let Err(err) = attached.append_epoch(&current, None) {
                eprintln!(
                    "mlpeer-serve: failed to persist boot epoch {}: {err}; \
                     durability breaker OPEN, probing for recovery",
                    current.epoch
                );
                *self.pending_persist.lock().expect("pending lock") =
                    Some((Arc::clone(&current), None));
                if self.health.trip_durable_breaker() {
                    spawn_durable_probe(
                        attached,
                        Arc::clone(&self.health),
                        Arc::clone(&self.pending_persist),
                    );
                }
            }
        }
        Ok(())
    }

    /// The attached durable store, if this process runs with
    /// `--data-dir`.
    pub fn durable(&self) -> Option<&crate::durable::DurableStore> {
        self.durable.get().map(Arc::as_ref)
    }

    /// Append a freshly published epoch to the attached log (called
    /// with the swap lock held). Failures degrade durability, not
    /// availability: the epoch still serves, the error is reported, and
    /// [`crate::health::DURABLE_BREAKER_THRESHOLD`] consecutive
    /// failures trip the read-only-durability breaker — the publish
    /// path stops attempting appends (keeping publishes fast under a
    /// dead disk) and a background probe retries with exponential
    /// backoff until the log answers again, catching it up to the
    /// newest epoch and closing the breaker.
    fn persist_published(&self, snapshot: &Arc<Snapshot>, delta: Option<&LinkDelta>) {
        let Some(durable) = self.durable.get() else {
            return;
        };
        if self.health.durable_breaker_open() {
            // Read-only durability: remember the newest epoch for the
            // probe instead of hammering a failing disk per publish.
            *self.pending_persist.lock().expect("pending lock") =
                Some((Arc::clone(snapshot), delta.cloned()));
            return;
        }
        match durable.append_epoch(snapshot, delta) {
            Ok(()) => self.health.record_durable_success(),
            Err(err) => {
                eprintln!(
                    "mlpeer-serve: failed to persist epoch {}: {err}",
                    snapshot.epoch
                );
                *self.pending_persist.lock().expect("pending lock") =
                    Some((Arc::clone(snapshot), delta.cloned()));
                if self.health.record_durable_failure() {
                    eprintln!(
                        "mlpeer-serve: durability breaker OPEN after {} consecutive \
                         append failures; serving read-only durability, probing for recovery",
                        crate::health::DURABLE_BREAKER_THRESHOLD
                    );
                    spawn_durable_probe(
                        Arc::clone(durable),
                        Arc::clone(&self.health),
                        Arc::clone(&self.pending_persist),
                    );
                }
            }
        }
    }

    /// Register a publish observer: called with the new epoch after
    /// every successful [`publish`](SnapshotStore::publish) or
    /// [`publish_with_delta`](SnapshotStore::publish_with_delta) swap
    /// (outside the swap lock). The reactor uses this to wake parked
    /// long-poll and SSE subscribers the moment a new epoch lands.
    pub fn on_publish(&self, hook: impl Fn(u64) + Send + Sync + 'static) {
        self.hooks
            .lock()
            .expect("hook lock never poisoned")
            .push(Box::new(hook));
    }

    /// Run every publish observer (after the swap lock is released, so
    /// a hook can call [`load`](SnapshotStore::load) freely).
    fn notify(&self, epoch: u64) {
        for hook in self.hooks.lock().expect("hook lock never poisoned").iter() {
            hook(epoch);
        }
    }

    /// The per-epoch change ring behind `/v1/changes`.
    pub fn changes(&self) -> &ChangeLog {
        &self.changes
    }

    /// Register the live loop's counters (first registration wins;
    /// called by [`crate::live::spawn_live_refresher`]).
    pub fn set_live_stats(&self, stats: Arc<crate::live::LiveStats>) {
        let _ = self.live_stats.set(stats);
    }

    /// The live loop's counters, if live mode is running on this store.
    pub fn live_stats(&self) -> Option<&crate::live::LiveStats> {
        self.live_stats.get().map(Arc::as_ref)
    }

    /// Register the multi-process coordinator's counters (first
    /// registration wins; called by the `--workers=N` boot path).
    pub fn set_dist_stats(&self, stats: Arc<mlpeer_dist::DistStats>) {
        let _ = self.dist_stats.set(stats);
    }

    /// The coordinator's counters, if this store was built or is being
    /// refreshed by worker processes.
    pub fn dist_stats(&self) -> Option<&mlpeer_dist::DistStats> {
        self.dist_stats.get().map(Arc::as_ref)
    }

    /// The current snapshot. Cheap (one `Arc` clone under a
    /// momentarily-held lock); the returned view is immutable and
    /// survives any later [`publish`](SnapshotStore::publish).
    pub fn load(&self) -> Arc<Snapshot> {
        self.current
            .lock()
            .expect("store lock never poisoned")
            .clone()
    }

    /// Publish a replacement snapshot: stamp it with the next epoch and
    /// swap it in atomically. Returns the assigned epoch. In-flight
    /// readers keep whatever epoch they already loaded.
    ///
    /// The epoch is assigned *inside* the swap lock, so concurrent
    /// publishers serialize: the snapshot installed last always carries
    /// the highest epoch and `load()` never observes epochs regress.
    pub fn publish(&self, mut snapshot: Snapshot) -> u64 {
        failpoints::failpoint!("serve::publish");
        let mut current = self.current.lock().expect("store lock never poisoned");
        let epoch = current.epoch + 1;
        snapshot.epoch = epoch;
        *current = Arc::new(snapshot);
        // No delta information for this epoch: older `since` values can
        // no longer be answered honestly, so the ring resets (still
        // inside the lock, so the ring's view of epochs stays ordered).
        self.changes.reset();
        self.persist_published(&current, None);
        drop(current);
        self.swaps.fetch_add(1, Ordering::Relaxed);
        self.notify(epoch);
        epoch
    }

    /// Publish a replacement snapshot together with the link-level
    /// [`LinkDelta`] that produced it, recording the delta in the
    /// change ring under the assigned epoch (atomically with the swap,
    /// so `/v1/changes` never observes an epoch before its delta).
    pub fn publish_with_delta(&self, mut snapshot: Snapshot, delta: LinkDelta) -> u64 {
        failpoints::failpoint!("serve::publish");
        let mut current = self.current.lock().expect("store lock never poisoned");
        let epoch = current.epoch + 1;
        snapshot.epoch = epoch;
        *current = Arc::new(snapshot);
        self.changes.record(epoch, delta.clone());
        self.persist_published(&current, Some(&delta));
        drop(current);
        self.swaps.fetch_add(1, Ordering::Relaxed);
        self.notify(epoch);
        epoch
    }

    /// Number of swaps since the store opened.
    pub fn swap_count(&self) -> u64 {
        self.swaps.load(Ordering::Relaxed)
    }
}

/// The durability recovery probe: spawned once when the breaker trips
/// (the [`HealthState`] probe slot makes it exclusive), retries the
/// newest failed epoch with exponential backoff — 50 ms doubling to a
/// 2 s cap — and closes the breaker once an append lands. It then
/// drains any epoch published *during* the retry before exiting, so
/// the log always catches up to the newest snapshot without waiting
/// for the next publish. Owns only `Arc`s (log, health, the pending
/// slot), never the store, so it cannot keep a dropped store alive.
///
/// [`HealthState`]: crate::health::HealthState
#[allow(clippy::type_complexity)]
fn spawn_durable_probe(
    durable: Arc<crate::durable::DurableStore>,
    health: Arc<crate::health::HealthState>,
    pending: Arc<Mutex<Option<(Arc<Snapshot>, Option<LinkDelta>)>>>,
) {
    if !health.claim_probe() {
        return;
    }
    let thread_health = Arc::clone(&health);
    let spawned = std::thread::Builder::new()
        .name("mlpeer-serve-durable-probe".into())
        .spawn(move || {
            let health = thread_health;
            let mut backoff = std::time::Duration::from_millis(50);
            loop {
                std::thread::sleep(backoff);
                let Some((snap, delta)) = pending.lock().expect("pending lock").clone() else {
                    // Nothing left to persist: recovered.
                    health.record_durable_success();
                    break;
                };
                let result = if durable.latest_epoch().is_some_and(|l| l >= snap.epoch) {
                    Ok(()) // someone already persisted it
                } else {
                    durable.append_epoch(&snap, delta.as_ref())
                };
                match result {
                    Ok(()) => {
                        let mut slot = pending.lock().expect("pending lock");
                        if slot.as_ref().is_some_and(|(s, _)| s.epoch <= snap.epoch) {
                            *slot = None;
                        }
                        // Loop once more: a newer epoch may have landed
                        // in the slot while we were appending.
                        backoff = std::time::Duration::from_millis(50);
                    }
                    Err(err) => {
                        eprintln!(
                            "mlpeer-serve: durability probe: epoch {} still failing: {err}",
                            snap.epoch
                        );
                        backoff = (backoff * 2).min(std::time::Duration::from_secs(2));
                    }
                }
            }
            eprintln!("mlpeer-serve: durability breaker CLOSED; epoch log caught up");
            health.release_probe();
        });
    if spawned.is_err() {
        health.release_probe();
    }
}

impl std::fmt::Debug for SnapshotStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotStore")
            .field("epoch", &self.load().epoch)
            .field("swaps", &self.swap_count())
            .field("changes", &self.changes)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::time::Duration;

    /// A snapshot whose member count varies with `variant`, so each
    /// publish genuinely changes content (and ETag), and whose seed
    /// records the variant for re-derivation.
    fn snapshot_variant(variant: u32) -> Snapshot {
        crate::testutil::snapshot_with(2 + (variant % 3), u64::from(variant))
    }

    /// Re-derive the snapshot a loaded view claims to be (its seed
    /// names the variant) and check the content matches bit for bit. A
    /// torn or half-published snapshot could not re-verify.
    fn verify_etag(snap: &Snapshot) {
        let expected = snapshot_variant(snap.seed as u32);
        assert_eq!(
            expected.etag, snap.etag,
            "loaded snapshot must be exactly one published variant"
        );
        assert_eq!(expected.links, snap.links);
    }

    #[test]
    fn publish_with_delta_records_and_plain_publish_resets() {
        use crate::delta::SinceAnswer;
        use mlpeer::live::LinkDelta;
        use mlpeer_bgp::Asn;
        use mlpeer_ixp::ixp::IxpId;

        let store = SnapshotStore::new(snapshot_variant(0));
        let delta = LinkDelta {
            added: vec![(IxpId(0), Asn(1), Asn(2))],
            removed: vec![],
        };
        let e1 = store.publish_with_delta(snapshot_variant(1), delta.clone());
        assert_eq!(e1, 1);
        assert!(matches!(
            store.changes().since(0, 1),
            SinceAnswer::Delta { .. }
        ));
        // A plain publish carries no delta information: history resets
        // and older `since` values now require a full resync.
        let e2 = store.publish(snapshot_variant(2));
        assert_eq!(e2, 2);
        assert!(matches!(
            store.changes().since(0, 2),
            SinceAnswer::Truncated { .. }
        ));
        // Delta publishing resumes cleanly after the gap.
        let e3 = store.publish_with_delta(snapshot_variant(3), delta);
        assert!(matches!(
            store.changes().since(2, e3),
            SinceAnswer::Delta { .. }
        ));
        assert!(matches!(
            store.changes().since(1, e3),
            SinceAnswer::Truncated { .. }
        ));
    }

    #[test]
    fn publish_hooks_fire_on_both_publish_paths() {
        let store = SnapshotStore::new(snapshot_variant(0));
        let seen = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        store.on_publish(move |epoch| sink.lock().unwrap().push(epoch));
        store.publish(snapshot_variant(1));
        store.publish_with_delta(snapshot_variant(2), LinkDelta::default());
        assert_eq!(*seen.lock().unwrap(), vec![1, 2]);
    }

    #[test]
    fn attached_durable_log_records_every_publish_and_resume_continues() {
        use mlpeer::live::LinkDelta;
        use mlpeer_bgp::Asn;
        use mlpeer_ixp::ixp::IxpId;

        let dir = std::env::temp_dir().join(format!("mlpeer-store-attach-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let durable = Arc::new(crate::durable::DurableStore::open(&dir).unwrap());
        let store = SnapshotStore::new(snapshot_variant(0));
        store.attach_durable(Arc::clone(&durable)).unwrap();
        // Attaching to an empty log writes the current epoch first.
        assert_eq!(durable.latest_epoch(), Some(0));
        // A second attach is refused.
        assert!(store.attach_durable(Arc::clone(&durable)).is_err());

        let delta = LinkDelta {
            added: vec![(IxpId(0), Asn(1), Asn(2))],
            removed: vec![],
        };
        store.publish_with_delta(snapshot_variant(1), delta);
        store.publish(snapshot_variant(2));
        assert_eq!(durable.latest_epoch(), Some(2));
        // Every epoch revives with its original ETag; the delta rode
        // along only where the publish carried one.
        for epoch in 0..=2u64 {
            let revived = durable.snapshot_at(epoch).unwrap();
            assert_eq!(revived.etag, snapshot_variant(epoch as u32).etag);
        }
        assert!(durable.fold_since(0, 1).is_some());
        assert!(
            durable.fold_since(1, 2).is_none(),
            "plain publish has no delta"
        );
        drop(store);

        // Restart: recover the latest epoch and keep counting from it.
        let reopened = Arc::new(crate::durable::DurableStore::open(&dir).unwrap());
        let recovered = reopened.latest().unwrap();
        assert_eq!(recovered.epoch, 2);
        let resumed = SnapshotStore::resume(recovered, DEFAULT_CHANGE_CAPACITY);
        resumed.attach_durable(Arc::clone(&reopened)).unwrap();
        assert_eq!(resumed.load().epoch, 2);
        let e3 = resumed.publish(snapshot_variant(3));
        assert_eq!(e3, 3, "epochs resume, they do not restart at 1");
        assert_eq!(reopened.latest_epoch(), Some(3));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn publish_bumps_epoch_and_load_sees_latest() {
        let store = SnapshotStore::new(snapshot_variant(0));
        assert_eq!(store.load().epoch, 0);
        let e1 = store.publish(snapshot_variant(1));
        let e2 = store.publish(snapshot_variant(2));
        assert_eq!((e1, e2), (1, 2));
        assert_eq!(store.load().epoch, 2);
        assert_eq!(store.load().seed, 2);
        assert_eq!(store.swap_count(), 2);
    }

    /// The tentpole contract: concurrent readers are never blocked for
    /// the duration of a refresh (they make progress while the writer
    /// "builds"), never torn (every loaded snapshot re-verifies), and a
    /// held `Arc` stays bit-identical across arbitrarily many swaps.
    #[test]
    fn swap_under_concurrent_readers() {
        let store = SnapshotStore::new(snapshot_variant(0));
        let held = store.load();
        let held_etag = held.etag.clone();
        let held_debug = format!("{:?}", held.links);
        let stop = Arc::new(AtomicBool::new(false));
        const PUBLISHES: u32 = 40;

        std::thread::scope(|scope| {
            let mut readers = Vec::new();
            for _ in 0..4 {
                let store = &store;
                let stop = stop.clone();
                readers.push(scope.spawn(move || {
                    let mut loads = 0u64;
                    let mut last_epoch = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let snap = store.load();
                        assert!(snap.epoch >= last_epoch, "epochs never regress");
                        last_epoch = snap.epoch;
                        verify_etag(&snap);
                        loads += 1;
                    }
                    loads
                }));
            }

            // The writer builds each snapshot outside the lock —
            // simulated expensive rebuild — then publishes.
            for variant in 1..=PUBLISHES {
                let next = snapshot_variant(variant);
                std::thread::sleep(Duration::from_millis(2)); // "rebuild"
                store.publish(next);
            }
            stop.store(true, Ordering::Relaxed);

            let total_loads: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
            assert!(
                total_loads > u64::from(PUBLISHES),
                "readers starved: only {total_loads} loads across {PUBLISHES} publishes"
            );
        });

        // The Arc held since epoch 0 is untouched by every swap.
        assert_eq!(held.epoch, 0);
        assert_eq!(held.etag, held_etag);
        assert_eq!(format!("{:?}", held.links), held_debug);
        assert_eq!(store.load().epoch, u64::from(PUBLISHES));
    }
}
