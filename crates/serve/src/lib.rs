//! # `mlpeer-serve` — indexed snapshot store and HTTP query API
//!
//! The pipeline's artifact — the multilateral peering link set per IXP,
//! member, and prefix — is exactly what operators and researchers want
//! to *query*. This crate turns the one-shot report into a long-lived
//! service:
//!
//! * **index layer** — [`mlpeer::index::LinkIndex`]: inverted
//!   indexes per member ASN and per IXP plus a prefix trie, so lookups
//!   are O(result) instead of linear scans;
//! * **versioned snapshot store** — immutable [`Snapshot`]s behind
//!   [`SnapshotStore`], swapped atomically so in-flight readers are
//!   never blocked or torn while a background [`refresher`] re-runs the
//!   harvest and publishes a new epoch (content-addressed ETag from
//!   deterministic JSON);
//! * **publish-time body cache** — [`cache::BodyCache`]: every
//!   snapshot-addressed GET body (ixps, per-IXP links, per-member,
//!   announced prefixes) is rendered once when the snapshot is built,
//!   so the 200 hot path is a lookup + memcpy instead of a JSON render;
//! * **two HTTP/1.1 engines behind one handle** — the std-only
//!   threaded [`server`] (thread per connection, the original engine)
//!   and the epoll [`reactor`] (one event loop per shard, vectored
//!   zero-copy writes, massive keep-alive concurrency, push delivery
//!   for `/v1/changes`), both exposing the JSON endpoints documented
//!   in the README: `/healthz`, `/v1/ixps`, `/v1/ixp/{id}/links`,
//!   `/v1/member/{asn}`, `/v1/prefix/{p}`, `/v1/stats`,
//!   `/v1/changes` — byte-identical across engines (asserted by the
//!   `engine_equivalence` test);
//! * an in-repo [`loadgen`] (closed-loop sweeps plus a keep-alive
//!   hold mode for connection-count scaling) whose results the
//!   `serve_load` bench records to `BENCH_serve.json`;
//! * **live mode** — [`live`]: a churn-driven incremental loop
//!   ([`mlpeer::live::LiveInferencer`]) that applies per-event link
//!   deltas and publishes a new epoch *only when the link set moved*,
//!   with the per-epoch [`delta::ChangeLog`] ring behind
//!   `GET /v1/changes?since=N` (and its documented 410 full-resync
//!   signal);
//! * **durable epoch store** — [`durable::DurableStore`] over the
//!   `mlpeer_store` append-only segment log: with `--data-dir` every
//!   published epoch persists (snapshot parts + delta), a restart
//!   recovers the full history byte-identically (ETags included),
//!   snapshot-addressed endpoints answer `?at=<epoch>` time-travel
//!   queries, and `/v1/changes?since=N` reaches arbitrarily far back —
//!   410 is reserved for epochs genuinely compacted away.
//!
//! The `mlpeer-serve` binary boots the whole stack at any
//! [`mlpeer_bench::Scale`]; `--live` switches the refresher to the
//! incremental loop.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod cache;
pub mod delta;
pub mod durable;
pub mod health;
pub mod http;
pub mod live;
pub mod loadgen;
pub mod reactor;
pub mod refresher;
pub mod server;
pub mod snapshot;
pub mod store;

pub use cache::BodyCache;
pub use delta::{ChangeLog, SinceAnswer};
pub use durable::DurableStore;
pub use health::HealthState;
pub use live::{bootstrap, spawn_live_refresher, spawn_live_refresher_dist, LiveConfig, LiveStats};
pub use loadgen::{run_hold_load, run_load, HoldConfig, LoadConfig, LoadReport};
pub use reactor::{spawn_reactor, ReactorConfig, ReactorStats};
pub use server::{spawn_server, ServerHandle, ServerStats};
pub use snapshot::{Snapshot, SnapshotParts};
pub use store::SnapshotStore;

/// Shared test fixture: a one-IXP snapshot whose content is a pure
/// function of `(members, seed)`, so tests can verify loaded views
/// against a re-derived expectation.
#[cfg(test)]
pub(crate) mod testutil {
    use std::collections::BTreeMap;

    use mlpeer::connectivity::{ConnSource, ConnectivityData};
    use mlpeer::infer::{infer_links, MlpLinkSet, Observation, ObservationSource};
    use mlpeer::passive::PassiveStats;
    use mlpeer_bgp::Asn;
    use mlpeer_ixp::ixp::IxpId;
    use mlpeer_ixp::scheme::RsAction;

    use crate::snapshot::Snapshot;

    /// Members `1..=n` at one IXP, each announcing `10.<m>.0.0/24`
    /// with an open (ALL) policy, plus the inferred link set.
    pub fn tiny_inputs(members: u32) -> (MlpLinkSet, Vec<Observation>) {
        let mut conn = ConnectivityData::default();
        for m in 1..=members {
            conn.record(IxpId(0), Asn(m), ConnSource::LookingGlass);
        }
        let observations: Vec<Observation> = (1..=members)
            .map(|m| Observation {
                ixp: IxpId(0),
                member: Asn(m),
                prefix: format!("10.{m}.0.0/24").parse().unwrap(),
                actions: vec![RsAction::All],
                source: ObservationSource::Passive,
            })
            .collect();
        (infer_links(&conn, &observations), observations)
    }

    /// A built snapshot over [`tiny_inputs`], named "DE-CIX".
    pub fn snapshot_with(members: u32, seed: u64) -> Snapshot {
        let (links, observations) = tiny_inputs(members);
        let names: BTreeMap<IxpId, String> = [(IxpId(0), "DE-CIX".to_string())].into();
        Snapshot::build(
            "tiny",
            seed,
            names,
            links,
            &observations,
            PassiveStats::default(),
        )
    }

    /// [`snapshot_with`] through the cache-less live-tick build path.
    pub fn snapshot_with_uncached(members: u32, seed: u64) -> Snapshot {
        let (links, observations) = tiny_inputs(members);
        let names: BTreeMap<IxpId, String> = [(IxpId(0), "DE-CIX".to_string())].into();
        Snapshot::build_uncached(
            "tiny",
            seed,
            names,
            links,
            &observations,
            PassiveStats::default(),
        )
    }
}
