//! Prefix geolocation (the MaxMind GeoLite stand-in of §5.1).
//!
//! The validation campaign selects up to six prefixes "as geographically
//! distant from each other as possible". The simulation's ground truth
//! is simple: a prefix is located where its originating AS is homed.

use std::collections::BTreeMap;

use mlpeer_bgp::{Asn, Prefix};
use mlpeer_ixp::Ecosystem;
use mlpeer_topo::graph::Region;

/// A prefix → region database.
#[derive(Debug, Clone, Default)]
pub struct GeoDb {
    by_prefix: BTreeMap<Prefix, Region>,
    by_origin: BTreeMap<Asn, Region>,
}

impl GeoDb {
    /// Build from an ecosystem's prefix ownership.
    pub fn build(eco: &Ecosystem) -> Self {
        let mut by_prefix = BTreeMap::new();
        let mut by_origin = BTreeMap::new();
        for (asn, prefixes) in &eco.internet.prefixes {
            if let Some(info) = eco.internet.graph.node(*asn) {
                by_origin.insert(*asn, info.region);
                for p in prefixes {
                    by_prefix.insert(*p, info.region);
                }
            }
        }
        GeoDb {
            by_prefix,
            by_origin,
        }
    }

    /// Region of a prefix (exact match, then covering prefix, like a
    /// longest-prefix lookup in the real database).
    pub fn region_of(&self, prefix: &Prefix) -> Option<Region> {
        if let Some(r) = self.by_prefix.get(prefix) {
            return Some(*r);
        }
        let mut cand = *prefix;
        while let Some(parent) = cand.parent() {
            if let Some(r) = self.by_prefix.get(&parent) {
                return Some(*r);
            }
            cand = parent;
        }
        None
    }

    /// Region of an origin AS.
    pub fn region_of_asn(&self, asn: Asn) -> Option<Region> {
        self.by_origin.get(&asn).copied()
    }

    /// Pick up to `k` prefixes from `candidates` maximizing regional
    /// diversity: greedily prefer prefixes whose region is not yet
    /// represented (the §5.1 selection).
    pub fn diverse_pick(&self, candidates: &[Prefix], k: usize) -> Vec<Prefix> {
        let mut out: Vec<Prefix> = Vec::new();
        let mut seen_regions: Vec<Option<Region>> = Vec::new();
        // First pass: new regions.
        for p in candidates {
            if out.len() >= k {
                break;
            }
            let r = self.region_of(p);
            if !seen_regions.contains(&r) {
                out.push(*p);
                seen_regions.push(r);
            }
        }
        // Second pass: fill up.
        for p in candidates {
            if out.len() >= k {
                break;
            }
            if !out.contains(p) {
                out.push(*p);
            }
        }
        out
    }

    /// Number of known prefixes.
    pub fn len(&self) -> usize {
        self.by_prefix.len()
    }

    /// Is the database empty?
    pub fn is_empty(&self) -> bool {
        self.by_prefix.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlpeer_ixp::EcosystemConfig;

    #[test]
    fn regions_match_owner_homes() {
        let eco = Ecosystem::generate(EcosystemConfig::tiny(3));
        let db = GeoDb::build(&eco);
        assert!(!db.is_empty());
        for (asn, prefixes) in eco.internet.prefixes.iter().take(50) {
            let home = eco.internet.graph.node(*asn).unwrap().region;
            for p in prefixes {
                assert_eq!(db.region_of(p), Some(home), "{p} of {asn}");
            }
            assert_eq!(db.region_of_asn(*asn), Some(home));
        }
    }

    #[test]
    fn covering_lookup_falls_back() {
        let eco = Ecosystem::generate(EcosystemConfig::tiny(3));
        let db = GeoDb::build(&eco);
        let (_, prefixes) = eco.internet.prefixes.iter().next().unwrap();
        let p = prefixes[0];
        if let Some((sub, _)) = p.split() {
            assert_eq!(
                db.region_of(&sub),
                db.region_of(&p),
                "sub-prefix inherits region"
            );
        }
        assert_eq!(db.region_of(&"203.0.113.0/24".parse().unwrap()), None);
    }

    #[test]
    fn diverse_pick_prefers_distinct_regions() {
        let eco = Ecosystem::generate(EcosystemConfig::tiny(3));
        let db = GeoDb::build(&eco);
        // Gather candidates from several regions.
        let mut cands: Vec<Prefix> = Vec::new();
        for (asn, pfx) in &eco.internet.prefixes {
            let _ = asn;
            cands.extend(pfx.iter().copied());
            if cands.len() > 200 {
                break;
            }
        }
        let picked = db.diverse_pick(&cands, 6);
        assert!(picked.len() <= 6 && !picked.is_empty());
        let regions: std::collections::BTreeSet<_> =
            picked.iter().filter_map(|p| db.region_of(p)).collect();
        // At least two distinct regions when available.
        let available: std::collections::BTreeSet<_> =
            cands.iter().filter_map(|p| db.region_of(p)).collect();
        if available.len() >= 2 {
            assert!(regions.len() >= 2, "picked {regions:?} from {available:?}");
        }
    }
}
