//! Route collectors (Route Views / RIPE RIS).
//!
//! A collector passively receives BGP sessions from volunteer vantage
//! points (VPs) and archives RIB dumps plus update streams (§2.2). Two
//! properties matter for the paper:
//!
//! * most VPs treat the collector like a peer and export only customer
//!   routes ("two-thirds of all contributing ASes configure their
//!   connection with the BGP collector as a p2p link", §2.3) — which is
//!   exactly why p2p links are invisible;
//! * an *RS feeder* (§4.2) — an RS member, or a customer of one, with a
//!   full feed — leaks route-server routes *with their RS communities*
//!   to the collector, which is what passive inference mines.
//!
//! The per-IXP feeder plan is calibrated so passive coverage varies the
//! way Table 2's "Pasv" column does: member-feeders give high coverage
//! (AMS-IX-like), customer-of-member feeders moderate coverage
//! (DE-CIX-like), and IXPs without a feeder almost none (MSK-IX-like).

use mlpeer_bgp::mrt::{MrtArchive, MrtRibEntry, MrtUpdate};
use mlpeer_bgp::route::RouteAttrs;
use mlpeer_bgp::update::UpdateMessage;
use mlpeer_bgp::view::MrtBytes;
use mlpeer_bgp::{AsPath, Asn, Community, CommunitySet};
use mlpeer_topo::relationship::LearnedFrom;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::sim::Sim;

/// How a vantage point feeds the collector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeedKind {
    /// Full table (the RS-feeder case).
    Full,
    /// Customer routes only (the common p2p-style session).
    CustomerOnly,
}

/// One vantage point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VantagePoint {
    /// VP ASN.
    pub asn: Asn,
    /// Feed policy toward the collector.
    pub feed: FeedKind,
}

/// What kind of RS feeder (if any) an IXP gets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeederKind {
    /// An RS member contributes a full view (high passive coverage).
    Member,
    /// A customer of an RS member contributes (moderate coverage:
    /// only the member's *selected* routes descend to it).
    CustomerOfMember,
    /// No dedicated feeder (coverage only by accident).
    None,
}

/// Collector-construction parameters.
#[derive(Debug, Clone)]
pub struct CollectorConfig {
    /// RNG seed.
    pub seed: u64,
    /// Dedicated RS feeders per IXP name.
    pub feeder_plan: Vec<(String, FeederKind)>,
    /// Additional generic VPs (1/3 full feed, 2/3 customer-only).
    pub generic_vps: usize,
    /// Transient-noise events to inject into the update stream
    /// (misconfigured communities that appear briefly, §5's transient
    /// filtering).
    pub transient_events: usize,
    /// Poisoned/bogon paths to inject (loops, reserved ASNs).
    pub poisoned_paths: usize,
}

impl CollectorConfig {
    /// The default plan approximating Table 2's Pasv column shape.
    pub fn paper_like(seed: u64) -> Self {
        let plan = [
            ("AMS-IX", FeederKind::Member),
            ("LINX", FeederKind::Member),
            ("France-IX", FeederKind::Member),
            ("DE-CIX", FeederKind::CustomerOfMember),
            ("PLIX", FeederKind::CustomerOfMember),
            ("LONAP", FeederKind::CustomerOfMember),
            ("ECIX", FeederKind::CustomerOfMember),
            ("TOP-IX", FeederKind::CustomerOfMember),
            ("MSK-IX", FeederKind::None),
            ("SPB-IX", FeederKind::None),
            ("DTEL-IX", FeederKind::None),
            ("STHIX", FeederKind::None),
            ("BIX.BG", FeederKind::None),
        ];
        CollectorConfig {
            seed,
            feeder_plan: plan.iter().map(|(n, k)| (n.to_string(), *k)).collect(),
            generic_vps: 14,
            transient_events: 6,
            poisoned_paths: 4,
        }
    }
}

/// The archived passive dataset: named collectors with their MRT
/// archives, plus the VP roster.
#[derive(Debug)]
pub struct PassiveDataset {
    /// `(collector name, archive)`.
    pub collectors: Vec<(String, MrtArchive)>,
    /// All vantage points.
    pub vps: Vec<VantagePoint>,
}

impl PassiveDataset {
    /// Iterate all RIB entries across collectors.
    pub fn rib_entries(&self) -> impl Iterator<Item = (&MrtArchive, &MrtRibEntry)> {
        self.collectors
            .iter()
            .flat_map(|(_, a)| a.rib.iter().map(move |e| (a, e)))
    }

    /// Total RIB entry count.
    pub fn rib_len(&self) -> usize {
        self.collectors.iter().map(|(_, a)| a.rib.len()).sum()
    }

    /// Total update count.
    pub fn update_len(&self) -> usize {
        self.collectors.iter().map(|(_, a)| a.updates.len()).sum()
    }

    /// Encode the dataset into its columnar form: the same wire bytes a
    /// real collector would serve, fronted by zero-copy cursors. The
    /// view-based harvest (`mlpeer::passive::harvest_passive_bytes`)
    /// consumes this and is byte-identical to the struct path.
    pub fn to_bytes(&self) -> PassiveBytes {
        PassiveBytes {
            collectors: self
                .collectors
                .iter()
                .map(|(name, a)| (name.clone(), MrtBytes::from_archive(a)))
                .collect(),
        }
    }
}

/// The columnar passive dataset: named collectors as validated,
/// wire-encoded byte arenas ([`MrtBytes`]). This is how archives look
/// *before* the struct decoder materializes them — the shape the
/// allocation-free harvest consumes.
#[derive(Debug, Clone)]
pub struct PassiveBytes {
    /// `(collector name, wire archive)`, in the same order as
    /// [`PassiveDataset::collectors`].
    pub collectors: Vec<(String, MrtBytes)>,
}

impl PassiveBytes {
    /// Total RIB record count.
    pub fn rib_len(&self) -> usize {
        self.collectors.iter().map(|(_, a)| a.rib_len()).sum()
    }

    /// Total update record count.
    pub fn update_len(&self) -> usize {
        self.collectors.iter().map(|(_, a)| a.update_len()).sum()
    }

    /// Total arena size in bytes.
    pub fn byte_len(&self) -> usize {
        self.collectors.iter().map(|(_, a)| a.byte_len()).sum()
    }
}

/// Pick the feeder VPs according to the plan.
fn pick_feeders(sim: &Sim, cfg: &CollectorConfig, rng: &mut StdRng) -> Vec<VantagePoint> {
    let mut out = Vec::new();
    for (name, kind) in &cfg.feeder_plan {
        let Some(ixp) = sim.eco.ixp_by_name(name) else {
            continue;
        };
        match kind {
            FeederKind::None => {}
            FeederKind::Member => {
                // The best-connected RS member: the one receiving the
                // most flows sees (and re-exports) the most communities.
                let mut indeg: std::collections::BTreeMap<Asn, usize> = Default::default();
                for (_, b) in ixp.directed_flows() {
                    *indeg.entry(b).or_default() += 1;
                }
                if let Some((&best, _)) = indeg
                    .iter()
                    .max_by_key(|(a, n)| (**n, std::cmp::Reverse(a.value())))
                {
                    out.push(VantagePoint {
                        asn: best,
                        feed: FeedKind::Full,
                    });
                }
            }
            FeederKind::CustomerOfMember => {
                // A customer of a well-connected RS member.
                let mut members = ixp.rs_member_asns();
                members.sort_unstable_by_key(|a| {
                    std::cmp::Reverse(sim.eco.internet.graph.customer_degree(*a))
                });
                let cust = members.iter().find_map(|&m| {
                    let cs = sim.eco.internet.graph.customers_of(m);
                    cs.first().copied()
                });
                if let Some(c) = cust {
                    out.push(VantagePoint {
                        asn: c,
                        feed: FeedKind::Full,
                    });
                }
            }
        }
        let _ = rng;
    }
    out
}

/// Build the passive dataset: one sweep of route propagation over every
/// origin, archived from each VP's point of view.
pub fn build_passive(sim: &Sim, cfg: &CollectorConfig) -> PassiveDataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut vps = pick_feeders(sim, cfg, &mut rng);

    // Generic VPs: transit networks (they volunteer most feeds).
    let mut pool: Vec<Asn> = sim
        .eco
        .internet
        .graph
        .nodes()
        .filter(|n| {
            matches!(
                n.tier,
                mlpeer_topo::graph::Tier::Tier1 | mlpeer_topo::graph::Tier::Tier2
            )
        })
        .map(|n| n.asn)
        .collect();
    pool.shuffle(&mut rng);
    for (i, asn) in pool.into_iter().take(cfg.generic_vps).enumerate() {
        if vps.iter().any(|v| v.asn == asn) {
            continue;
        }
        let feed = if i % 3 == 0 {
            FeedKind::Full
        } else {
            FeedKind::CustomerOnly
        };
        vps.push(VantagePoint { asn, feed });
    }

    // Two collectors split the VPs, like Route Views vs RIS.
    let mut rv = MrtArchive::new();
    let mut ris = MrtArchive::new();
    let mut vp_index: Vec<(VantagePoint, bool, u16)> = Vec::new();
    for (i, vp) in vps.iter().enumerate() {
        let to_rv = i % 2 == 0;
        let addr = std::net::Ipv4Addr::from(0xC000_0200 + i as u32);
        let idx = if to_rv {
            rv.add_peer(vp.asn, addr)
        } else {
            ris.add_peer(vp.asn, addr)
        };
        vp_index.push((*vp, to_rv, idx));
    }

    // ---- The sweep. ----
    let origins: Vec<Asn> = sim.eco.internet.prefixes.keys().copied().collect();
    for origin in origins {
        let state = sim.routes_to(origin);
        for (vp, to_rv, idx) in &vp_index {
            let Some(route) = state.best(vp.asn) else {
                continue;
            };
            if vp.feed == FeedKind::CustomerOnly
                && !matches!(
                    route.class,
                    LearnedFrom::Origin | LearnedFrom::Customer | LearnedFrom::Sibling
                )
            {
                continue;
            }
            for prefix in sim.eco.internet.prefixes_of(origin) {
                let attrs = RouteAttrs::new(
                    AsPath::from_seq(route.path.iter().copied()),
                    std::net::Ipv4Addr::new(10, 0, 0, 1),
                )
                .with_communities(sim.communities_on(route, prefix));
                let entry = MrtRibEntry {
                    peer_index: *idx,
                    originated: 86_400,
                    prefix: *prefix,
                    attrs,
                };
                if *to_rv {
                    rv.rib.push(entry);
                } else {
                    ris.rib.push(entry);
                }
            }
        }
    }

    // ---- Noise injection. ----
    // Transient events: a short-lived announcement with a bogus extra
    // community, withdrawn within the hour (the passive pipeline must
    // filter these as transient).
    let all_members: Vec<Asn> = sim.eco.all_rs_member_asns().into_iter().collect();
    for k in 0..cfg.transient_events {
        if all_members.is_empty() || rv.peers.is_empty() {
            break;
        }
        let m = all_members[rng.gen_range(0..all_members.len())];
        let Some(&prefix) = sim.eco.internet.prefixes_of(m).first() else {
            continue;
        };
        let t0 = 100_000 + (k as u32) * 1_000;
        let mut cs = CommunitySet::new();
        cs.insert(Community::new(0, rng.gen_range(1..64_000) as u16));
        let attrs = RouteAttrs::new(
            AsPath::from_seq([rv.peers[0].asn, m]),
            std::net::Ipv4Addr::new(10, 0, 0, 2),
        )
        .with_communities(cs);
        rv.updates.push(MrtUpdate {
            peer_index: 0,
            timestamp: t0,
            update: UpdateMessage::announce(attrs, vec![prefix]),
        });
        rv.updates.push(MrtUpdate {
            peer_index: 0,
            timestamp: t0 + 1_800,
            update: UpdateMessage::withdraw(vec![prefix]),
        });
    }
    // Poisoned paths: loops and reserved ASNs (the §5 sanitation
    // filters must drop these).
    for k in 0..cfg.poisoned_paths {
        if rv.peers.is_empty() {
            break;
        }
        let vp = rv.peers[0].asn;
        let bad_path = if k % 2 == 0 {
            AsPath::from_seq([vp, Asn(23456), Asn(65_000)])
        } else {
            AsPath::from_seq([vp, Asn(3356), Asn(1299), Asn(3356), Asn(9002)])
        };
        let attrs = RouteAttrs::new(bad_path, std::net::Ipv4Addr::new(10, 0, 0, 3));
        rv.updates.push(MrtUpdate {
            peer_index: 0,
            timestamp: 200_000 + k as u32,
            update: UpdateMessage::announce(
                attrs,
                vec![format!("203.0.{}.0/24", 100 + k).parse().unwrap()],
            ),
        });
    }

    PassiveDataset {
        collectors: vec![
            ("route-views.sim".to_string(), rv),
            ("rrc00.sim".to_string(), ris),
        ],
        vps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlpeer_ixp::{Ecosystem, EcosystemConfig};

    fn dataset() -> (Ecosystem, CollectorConfig) {
        (
            Ecosystem::generate(EcosystemConfig::tiny(21)),
            CollectorConfig::paper_like(5),
        )
    }

    #[test]
    fn builds_nonempty_archives_with_vps() {
        let (eco, cfg) = dataset();
        let sim = Sim::new(&eco);
        let ds = build_passive(&sim, &cfg);
        assert_eq!(ds.collectors.len(), 2);
        assert!(ds.rib_len() > 100, "rib entries: {}", ds.rib_len());
        assert!(!ds.vps.is_empty());
        assert!(ds.update_len() >= cfg.transient_events, "noise injected");
    }

    #[test]
    fn some_rib_entries_carry_rs_communities() {
        let (eco, cfg) = dataset();
        let sim = Sim::new(&eco);
        let ds = build_passive(&sim, &cfg);
        // At least one archived route must carry a community mentioning
        // some IXP's RS ASN — the observable §4.2 exploits.
        let mut hits = 0;
        for (_, e) in ds.rib_entries() {
            for c in e.attrs.communities.iter() {
                if eco.ixps.iter().any(|x| x.scheme.mentions_rs(c)) {
                    hits += 1;
                    break;
                }
            }
        }
        assert!(hits > 0, "no RS communities reached any collector");
    }

    #[test]
    fn customer_only_vps_export_no_peer_routes() {
        let (eco, cfg) = dataset();
        let sim = Sim::new(&eco);
        let ds = build_passive(&sim, &cfg);
        // For customer-only VPs, every archived path must start at the
        // VP and the VP's route class was customer-ish, i.e. the origin
        // must be in the VP's customer cone (or the VP itself).
        for (name, archive) in &ds.collectors {
            for e in &archive.rib {
                let vp = archive.peers[e.peer_index as usize].asn;
                assert_eq!(
                    e.attrs.as_path.first_hop(),
                    Some(vp),
                    "{name}: path starts at VP"
                );
            }
        }
    }

    #[test]
    fn archives_roundtrip_through_mrt() {
        let (eco, cfg) = dataset();
        let sim = Sim::new(&eco);
        let ds = build_passive(&sim, &cfg);
        for (name, archive) in &ds.collectors {
            let decoded = MrtArchive::decode(archive.encode()).expect(name);
            assert_eq!(&decoded, archive, "{name} mrt roundtrip");
        }
    }

    #[test]
    fn feeder_plan_creates_full_feeds() {
        let (eco, cfg) = dataset();
        let sim = Sim::new(&eco);
        let ds = build_passive(&sim, &cfg);
        let full = ds.vps.iter().filter(|v| v.feed == FeedKind::Full).count();
        assert!(full >= 3, "member feeders exist: {full}");
    }
}
