//! Looking glasses.
//!
//! LG servers "allow the remote execution of non-privileged BGP
//! commands through a web interface" (§2.2). The paper's algorithm
//! issues three commands (§4.1):
//!
//! 1. `show ip bgp summary` — the sessions (connectivity data, `A_RS`);
//! 2. `show ip bgp neighbors <addr> routes` — prefixes per member;
//! 3. `show ip bgp <prefix>` — paths with their community values.
//!
//! The substrate renders realistic Cisco-style text and ships the
//! matching parsers, so the inference pipeline exercises the same
//! scrape-and-parse path the paper's scripts did. Both LG species
//! exist: IXP LGs onto route servers, and member LGs (third-party view,
//! §4.1's fallback and §5.1's validation instrument), in all-paths and
//! best-path-only display modes (Fig. 8). Every host keeps a query
//! ledger and a rate model (1 query / 10 s in the paper, §4.3).

use std::cell::Cell;
use std::net::Ipv4Addr;

use mlpeer_bgp::rib::{Rib, RibEntry};
use mlpeer_bgp::{AsPath, Asn, CommunitySet, Prefix};
use mlpeer_ixp::ixp::IxpId;

use crate::sim::Sim;

/// What the LG host fronts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LgTarget {
    /// The route server of an IXP (full RS view).
    RouteServer(IxpId),
    /// A member network's router (third-party view).
    Member(Asn),
}

/// Whether the LG shows all paths or only the selected best (Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LgDisplay {
    /// All received paths, best first.
    AllPaths,
    /// Only the best path.
    BestOnly,
}

/// The commands the paper issues.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LgCommand {
    /// `show ip bgp summary`.
    Summary,
    /// `show ip bgp neighbors <addr> routes`.
    NeighborRoutes(Ipv4Addr),
    /// `show ip bgp <prefix>`.
    Prefix(Prefix),
}

/// A looking-glass host.
#[derive(Debug)]
pub struct LookingGlassHost {
    /// Display name ("lg.de-cix.net", "lg.as8359.example").
    pub name: String,
    /// What it fronts.
    pub target: LgTarget,
    /// Display mode.
    pub display: LgDisplay,
    /// Rate limit: seconds per query (10 in the paper).
    pub secs_per_query: u32,
    queries: Cell<u64>,
}

impl LookingGlassHost {
    /// A new host with the paper's 1-query-per-10-seconds rate model.
    pub fn new(name: impl Into<String>, target: LgTarget, display: LgDisplay) -> Self {
        LookingGlassHost {
            name: name.into(),
            target,
            display,
            secs_per_query: 10,
            queries: Cell::new(0),
        }
    }

    /// Queries issued so far (the §4.3 cost ledger).
    pub fn queries_issued(&self) -> u64 {
        self.queries.get()
    }

    /// Estimated wall-clock spent at the rate limit.
    pub fn estimated_secs(&self) -> u64 {
        self.queries.get() * self.secs_per_query as u64
    }

    /// Reset the ledger.
    pub fn reset_ledger(&self) {
        self.queries.set(0);
    }

    /// Execute a command, returning rendered text.
    pub fn query(&self, sim: &Sim, cmd: &LgCommand) -> String {
        self.queries.set(self.queries.get() + 1);
        match (&self.target, cmd) {
            (LgTarget::RouteServer(id), LgCommand::Summary) => {
                let ixp = sim.eco.ixp(*id);
                let rows: Vec<(Asn, Ipv4Addr, usize)> = ixp
                    .members
                    .values()
                    .filter(|m| m.rs_member)
                    .map(|m| (m.asn, m.lan_addr, m.prefix_count()))
                    .collect();
                render_summary(&rows)
            }
            (LgTarget::RouteServer(id), LgCommand::NeighborRoutes(addr)) => {
                let ixp = sim.eco.ixp(*id);
                let member = ixp.members.values().find(|m| m.lan_addr == *addr);
                match member {
                    Some(m) if m.rs_member => {
                        let mut prefixes: Vec<Prefix> = m.prefixes().collect();
                        prefixes.sort_unstable();
                        render_neighbor_routes(*addr, &prefixes)
                    }
                    _ => format!("% No such neighbor: {addr}\n"),
                }
            }
            (LgTarget::RouteServer(id), LgCommand::Prefix(p)) => {
                let ixp = sim.eco.ixp(*id);
                let rib = ixp.rs_rib();
                render_prefix(*p, &rib, self.display)
            }
            (LgTarget::Member(asn), LgCommand::Prefix(p)) => {
                let mut rib = Rib::new();
                for e in sim.adj_rib_in(*asn, p) {
                    rib.insert(*p, e);
                }
                render_prefix(*p, &rib, self.display)
            }
            (LgTarget::Member(asn), LgCommand::Summary) => {
                // A member LG lists its sessions; for inference only the
                // RS sessions matter, and a third-party LG cannot
                // enumerate another IXP's members anyway.
                let mut rows: Vec<(Asn, Ipv4Addr, usize)> = Vec::new();
                for ixp in &sim.eco.ixps {
                    if let Some(m) = ixp.member(*asn) {
                        if m.rs_member {
                            rows.push((ixp.route_server.asn, ixp.route_server.addr, 0));
                        }
                    }
                }
                render_summary(&rows)
            }
            (LgTarget::Member(_), LgCommand::NeighborRoutes(addr)) => {
                format!("% Command not available for neighbor {addr}\n")
            }
        }
    }
}

// ---------------------------------------------------------------------
// Rendering (Cisco-flavored).
// ---------------------------------------------------------------------

fn render_summary(rows: &[(Asn, Ipv4Addr, usize)]) -> String {
    let mut out = String::from(
        "BGP router identifier 0.0.0.1, local AS number 0\n\
         Neighbor        V          AS MsgRcvd MsgSent   TblVer  InQ OutQ Up/Down  State/PfxRcd\n",
    );
    for (asn, addr, pfx) in rows {
        out.push_str(&format!(
            "{:<15} 4  {:>10} {:>7} {:>7} {:>8} {:>4} {:>4} {:>8} {:>12}\n",
            addr,
            asn.value(),
            1000,
            1000,
            1,
            0,
            0,
            "4w2d",
            pfx
        ));
    }
    out
}

fn render_neighbor_routes(addr: Ipv4Addr, prefixes: &[Prefix]) -> String {
    let mut out = format!("Routes received from neighbor {addr}\n     Network\n");
    for p in prefixes {
        out.push_str(&format!("*>   {p}\n"));
    }
    out
}

fn render_prefix(prefix: Prefix, rib: &Rib, display: LgDisplay) -> String {
    let paths = rib.paths_ranked(&prefix);
    if paths.is_empty() {
        return format!("% Network not in table: {prefix}\n");
    }
    let shown: Vec<&&RibEntry> = match display {
        LgDisplay::AllPaths => paths.iter().collect(),
        LgDisplay::BestOnly => paths.iter().take(1).collect(),
    };
    let mut out = format!(
        "BGP routing table entry for {prefix}\nPaths: ({} available, best #1)\n",
        shown.len()
    );
    for (i, e) in shown.iter().enumerate() {
        let path_str = if e.attrs.as_path.is_empty() {
            "Local".to_string()
        } else {
            e.attrs.as_path.to_string()
        };
        out.push_str(&format!("  {path_str}\n"));
        out.push_str(&format!(
            "    {} from {} ({})\n",
            e.attrs.next_hop, e.peer_addr, e.peer_addr
        ));
        out.push_str(&format!(
            "      Origin {}, localpref {}, valid, external{}\n",
            match e.attrs.origin {
                mlpeer_bgp::route::Origin::Igp => "IGP",
                mlpeer_bgp::route::Origin::Egp => "EGP",
                mlpeer_bgp::route::Origin::Incomplete => "incomplete",
            },
            e.attrs.local_pref,
            if i == 0 { ", best" } else { "" }
        ));
        if !e.attrs.communities.is_empty() {
            out.push_str(&format!("      Community: {}\n", e.attrs.communities));
        }
    }
    out
}

// ---------------------------------------------------------------------
// Parsing (the scrape side of the paper's scripts).
// ---------------------------------------------------------------------

/// A parsed path block from `show ip bgp <prefix>` output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LgPath {
    /// The AS path.
    pub as_path: AsPath,
    /// Attached communities.
    pub communities: CommunitySet,
    /// Local preference.
    pub local_pref: u32,
    /// Marked best?
    pub best: bool,
}

/// Parse `show ip bgp summary` output into `(asn, address, pfx_count)`
/// rows.
pub fn parse_summary(text: &str) -> Vec<(Asn, Ipv4Addr, usize)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let cols: Vec<&str> = line.split_whitespace().collect();
        if cols.len() < 10 {
            continue;
        }
        let Ok(addr) = cols[0].parse::<Ipv4Addr>() else {
            continue;
        };
        let Ok(asn) = cols[2].parse::<u32>() else {
            continue;
        };
        let pfx = cols[9].parse::<usize>().unwrap_or(0);
        out.push((Asn(asn), addr, pfx));
    }
    out
}

/// Parse `show ip bgp neighbors <addr> routes` output into prefixes.
pub fn parse_neighbor_routes(text: &str) -> Vec<Prefix> {
    text.lines()
        .filter_map(|l| l.strip_prefix("*>"))
        .filter_map(|l| l.trim().parse().ok())
        .collect()
}

/// Parse `show ip bgp <prefix>` output into path blocks.
pub fn parse_prefix_output(text: &str) -> Vec<LgPath> {
    let mut out: Vec<LgPath> = Vec::new();
    let mut current: Option<LgPath> = None;
    for line in text.lines() {
        let trimmed = line.trim_start();
        let indent = line.len() - trimmed.len();
        if line.starts_with('%')
            || trimmed.starts_with("BGP routing")
            || trimmed.starts_with("Paths:")
        {
            continue;
        }
        if indent == 2 && !trimmed.is_empty() {
            // New path block: a line of ASNs (or "Local").
            if let Some(p) = current.take() {
                out.push(p);
            }
            let as_path = if trimmed == "Local" {
                AsPath::empty()
            } else {
                match trimmed.parse::<AsPath>() {
                    Ok(p) => p,
                    Err(_) => continue,
                }
            };
            current = Some(LgPath {
                as_path,
                communities: CommunitySet::new(),
                local_pref: 100,
                best: false,
            });
        } else if let Some(cur) = current.as_mut() {
            if let Some(rest) = trimmed.strip_prefix("Community:") {
                if let Ok(cs) = rest.trim().parse::<CommunitySet>() {
                    cur.communities = cs;
                }
            } else if trimmed.starts_with("Origin") {
                if let Some(lp) = trimmed
                    .split("localpref ")
                    .nth(1)
                    .and_then(|s| s.split(',').next())
                    .and_then(|s| s.trim().parse::<u32>().ok())
                {
                    cur.local_pref = lp;
                }
                if trimmed.trim_end().ends_with("best") {
                    cur.best = true;
                }
            }
        }
    }
    if let Some(p) = current.take() {
        out.push(p);
    }
    out
}

/// Build the looking-glass roster for an ecosystem: one LG per IXP that
/// operates one (fronting its route server, all-paths), plus member LGs
/// for inference fallback and validation. `best_only_frac` of member
/// LGs display only the best path (the Fig. 8 split).
pub fn build_lg_roster(
    sim: &Sim,
    seed: u64,
    member_lgs: usize,
    best_only_frac: f64,
) -> Vec<LookingGlassHost> {
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for ixp in &sim.eco.ixps {
        if ixp.has_lg {
            out.push(LookingGlassHost::new(
                format!("lg.{}.sim", ixp.name.to_lowercase()),
                LgTarget::RouteServer(ixp.id),
                LgDisplay::AllPaths,
            ));
        }
    }
    // Member LGs: operated by RS members or their customers.
    let mut candidates: Vec<Asn> = sim.eco.all_rs_member_asns().into_iter().collect();
    candidates.shuffle(&mut rng);
    for asn in candidates.into_iter().take(member_lgs) {
        let display = if rng.gen_bool(best_only_frac) {
            LgDisplay::BestOnly
        } else {
            LgDisplay::AllPaths
        };
        out.push(LookingGlassHost::new(
            format!("lg.as{}.sim", asn.value()),
            LgTarget::Member(asn),
            display,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlpeer_ixp::{Ecosystem, EcosystemConfig};

    fn eco() -> Ecosystem {
        Ecosystem::generate(EcosystemConfig::tiny(31))
    }

    #[test]
    fn summary_renders_and_parses_roundtrip() {
        let eco = eco();
        let sim = Sim::new(&eco);
        let decix = eco.ixp_by_name("DE-CIX").unwrap();
        let lg = LookingGlassHost::new(
            "lg.de-cix.sim",
            LgTarget::RouteServer(decix.id),
            LgDisplay::AllPaths,
        );
        let text = lg.query(&sim, &LgCommand::Summary);
        let rows = parse_summary(&text);
        assert_eq!(rows.len(), decix.rs_member_count());
        for (asn, addr, pfx) in rows {
            let m = decix.member(asn).expect("parsed member exists");
            assert_eq!(m.lan_addr, addr);
            assert_eq!(m.prefix_count(), pfx);
        }
        assert_eq!(lg.queries_issued(), 1);
        assert_eq!(lg.estimated_secs(), 10);
    }

    #[test]
    fn neighbor_routes_roundtrip() {
        let eco = eco();
        let sim = Sim::new(&eco);
        let decix = eco.ixp_by_name("DE-CIX").unwrap();
        let member = decix.members.values().find(|m| m.rs_member).unwrap();
        let lg = LookingGlassHost::new("lg", LgTarget::RouteServer(decix.id), LgDisplay::AllPaths);
        let text = lg.query(&sim, &LgCommand::NeighborRoutes(member.lan_addr));
        let prefixes = parse_neighbor_routes(&text);
        let mut expected: Vec<Prefix> = member.prefixes().collect();
        expected.sort_unstable();
        assert_eq!(prefixes, expected);
        // Unknown neighbor errors gracefully.
        let err = lg.query(
            &sim,
            &LgCommand::NeighborRoutes("10.255.255.1".parse().unwrap()),
        );
        assert!(err.starts_with('%'));
    }

    #[test]
    fn prefix_output_carries_communities_roundtrip() {
        let eco = eco();
        let sim = Sim::new(&eco);
        let decix = eco.ixp_by_name("DE-CIX").unwrap();
        let lg = LookingGlassHost::new("lg", LgTarget::RouteServer(decix.id), LgDisplay::AllPaths);
        // Find a member with a non-trivial policy so communities exist.
        let rib = decix.rs_rib();
        let (prefix, _) = rib
            .iter()
            .find(|(_, entries)| entries.iter().any(|e| !e.attrs.communities.is_empty()))
            .expect("some member tags communities");
        let text = lg.query(&sim, &LgCommand::Prefix(*prefix));
        let paths = parse_prefix_output(&text);
        assert!(!paths.is_empty());
        let expected = rib.paths_ranked(prefix);
        assert_eq!(paths.len(), expected.len());
        for (got, want) in paths.iter().zip(expected.iter()) {
            assert_eq!(got.as_path, want.attrs.as_path);
            assert_eq!(got.communities, want.attrs.communities);
            assert_eq!(got.local_pref, want.attrs.local_pref);
        }
        assert!(paths[0].best);
    }

    #[test]
    fn best_only_lg_hides_alternatives() {
        let eco = eco();
        let sim = Sim::new(&eco);
        let decix = eco.ixp_by_name("DE-CIX").unwrap();
        let rib = decix.rs_rib();
        let (prefix, entries) = rib
            .iter()
            .find(|(_, entries)| entries.len() > 1)
            .expect("multi-path prefix exists (Fig. 5)");
        assert!(entries.len() > 1);
        let all = LookingGlassHost::new("a", LgTarget::RouteServer(decix.id), LgDisplay::AllPaths);
        let best = LookingGlassHost::new("b", LgTarget::RouteServer(decix.id), LgDisplay::BestOnly);
        let n_all = parse_prefix_output(&all.query(&sim, &LgCommand::Prefix(*prefix))).len();
        let n_best = parse_prefix_output(&best.query(&sim, &LgCommand::Prefix(*prefix))).len();
        assert!(n_all > 1);
        assert_eq!(n_best, 1, "best-only LG shows a single path (Fig. 8)");
    }

    #[test]
    fn member_lg_shows_adj_rib_in() {
        let eco = eco();
        let sim = Sim::new(&eco);
        let decix = eco.ixp_by_name("DE-CIX").unwrap();
        let (a, b) = decix.directed_flows().into_iter().next().unwrap();
        let p = eco.internet.prefixes_of(a)[0];
        let lg = LookingGlassHost::new("lg.member", LgTarget::Member(b), LgDisplay::AllPaths);
        let text = lg.query(&sim, &LgCommand::Prefix(p));
        let paths = parse_prefix_output(&text);
        assert!(
            paths.iter().any(|lp| lp.as_path.first_hop() == Some(a)),
            "member LG shows the RS session route from {a}"
        );
    }

    #[test]
    fn missing_prefix_renders_error() {
        let eco = eco();
        let sim = Sim::new(&eco);
        let decix = eco.ixp_by_name("DE-CIX").unwrap();
        let lg = LookingGlassHost::new("lg", LgTarget::RouteServer(decix.id), LgDisplay::AllPaths);
        let text = lg.query(&sim, &LgCommand::Prefix("203.0.113.0/24".parse().unwrap()));
        assert!(text.starts_with("% Network not in table"));
        assert!(parse_prefix_output(&text).is_empty());
    }

    #[test]
    fn roster_contains_ixp_and_member_lgs() {
        let eco = eco();
        let sim = Sim::new(&eco);
        let roster = build_lg_roster(&sim, 9, 12, 0.3);
        let rs_lgs = roster
            .iter()
            .filter(|h| matches!(h.target, LgTarget::RouteServer(_)))
            .count();
        let expected_rs = eco.ixps.iter().filter(|x| x.has_lg).count();
        assert_eq!(rs_lgs, expected_rs);
        let member_lgs = roster.len() - rs_lgs;
        assert!(member_lgs > 0 && member_lgs <= 12);
        assert!(roster.iter().any(|h| h.display == LgDisplay::BestOnly));
    }
}
