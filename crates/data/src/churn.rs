//! The seeded churn model: a valid, deterministic event schedule over a
//! live ecosystem, rendered as real BGP session traffic.
//!
//! [`ChurnGen`] draws one [`ChurnEvent`] at a time, always valid
//! against the ecosystem state it is shown — members only leave if
//! present, withdraw only what they announce, joiners come from the
//! internet substrate. The caller owns the loop:
//!
//! 1. `let event = gen.next_event(&eco);`
//! 2. `eco.apply_churn(&event);`
//! 3. `let msgs = event_messages(&eco, &event, t);` — the BGP rendering
//!    (OPEN on join, NOTIFICATION Cease on leave, UPDATEs carrying the
//!    *new* community-encoded filters on every announce/retune), on
//!    [`mlpeer_bgp::stream`] types.
//!
//! Step 3 reads the *post-apply* state on purpose: the communities on
//! the wire are whatever the member's (new) effective policy encodes,
//! and a freshly-joined 32-bit member already has its private 16-bit
//! alias registered (§3). Everything downstream — the live decoder in
//! `mlpeer::live` — sees only these messages, exactly like a collector
//! peered with the route server.

use mlpeer_bgp::stream::{TimedMessage, UpdateStream};
use mlpeer_bgp::update::{BgpMessage, NotificationCode, UpdateMessage};
use mlpeer_bgp::{AsPath, Asn, Prefix, RouteAttrs};
use mlpeer_ixp::churn::ChurnEvent;
use mlpeer_ixp::ixp::IxpId;
use mlpeer_ixp::member::{IxpMember, MemberAnnouncement};
use mlpeer_ixp::policy::ExportPolicy;
use mlpeer_ixp::route_server::RouteServer;
use mlpeer_ixp::Ecosystem;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Relative weights and knobs of the churn model.
#[derive(Debug, Clone)]
pub struct ChurnConfig {
    /// RNG seed; the schedule is a pure function of (seed, ecosystem).
    pub seed: u64,
    /// Weight of member joins.
    pub w_join: u32,
    /// Weight of member leaves.
    pub w_leave: u32,
    /// Weight of export-policy retunes (the dominant real-world event:
    /// filters change far more often than memberships).
    pub w_policy: u32,
    /// Weight of new prefix originations.
    pub w_originate: u32,
    /// Weight of prefix withdrawals.
    pub w_withdraw: u32,
    /// Max own-prefix announcements a joiner brings.
    pub joiner_prefixes: usize,
    /// Leaves are suppressed when an IXP would drop below this many
    /// members (keeps tiny test ecosystems non-degenerate).
    pub min_members: usize,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            seed: 0,
            w_join: 1,
            w_leave: 1,
            w_policy: 5,
            w_originate: 3,
            w_withdraw: 3,
            joiner_prefixes: 4,
            min_members: 2,
        }
    }
}

/// The seeded churn generator. Create once per run; feed it the
/// *current* ecosystem each call and apply what it returns.
#[derive(Debug)]
pub struct ChurnGen {
    cfg: ChurnConfig,
    rng: StdRng,
    /// Every AS in the internet substrate (the join candidate pool).
    universe: Vec<Asn>,
    /// Counter for synthetic originations (unique across the run).
    fresh_prefix: u32,
}

impl ChurnGen {
    /// A generator over `eco`'s internet substrate.
    pub fn new(eco: &Ecosystem, cfg: ChurnConfig) -> Self {
        let rng = StdRng::seed_from_u64(cfg.seed ^ 0x6c69_7665);
        let universe: Vec<Asn> = eco.internet.graph.nodes().map(|n| n.asn).collect();
        ChurnGen {
            cfg,
            rng,
            universe,
            fresh_prefix: 0,
        }
    }

    /// Draw the next event, valid against `eco`'s current state. The
    /// caller must `eco.apply_churn(&event)` before the next call, or
    /// later draws may become invalid.
    pub fn next_event(&mut self, eco: &Ecosystem) -> ChurnEvent {
        // A few rolls to find a kind that has a valid target at the
        // rolled IXP; policy retunes are the always-possible fallback.
        for _ in 0..16 {
            let ixp = IxpId(self.rng.gen_range(0..eco.ixps.len()) as u16);
            let mut weights = [
                self.cfg.w_join,
                self.cfg.w_leave,
                self.cfg.w_policy,
                self.cfg.w_originate,
                self.cfg.w_withdraw,
            ];
            let mut total: u32 = weights.iter().sum();
            if total == 0 {
                // All-zero weights would make gen_range(0..0) panic;
                // treat the degenerate config as "every kind equally".
                weights = [1; 5];
                total = 5;
            }
            let mut roll = self.rng.gen_range(0..total);
            let mut kind = weights.len() - 1;
            for (i, w) in weights.iter().enumerate() {
                if roll < *w {
                    kind = i;
                    break;
                }
                roll -= w;
            }
            let event = match kind {
                0 => self.gen_join(eco, ixp),
                1 => self.gen_leave(eco, ixp),
                2 => self.gen_policy(eco, ixp),
                3 => self.gen_originate(eco, ixp),
                _ => self.gen_withdraw(eco, ixp),
            };
            if let Some(e) = event {
                return e;
            }
        }
        // Degenerate ecosystem (no RS members anywhere with data, or
        // rejection sampling kept colliding): synthesize a join
        // deterministically — scan the universe for any AS that is not
        // yet a member of some IXP. A panic here would silently kill
        // the live refresher thread, so exhaust every option first.
        for ixp_idx in 0..eco.ixps.len() {
            let ixp = IxpId(ixp_idx as u16);
            let joiner = self
                .universe
                .iter()
                .find(|a| eco.ixp(ixp).member(**a).is_none())
                .copied();
            if let Some(asn) = joiner {
                return ChurnEvent::Join {
                    ixp,
                    member: self.make_joiner(eco, ixp, asn),
                };
            }
        }
        // Every AS in the universe is a member of every IXP: the only
        // always-valid event left is a fresh origination by an RS
        // member. Only an ecosystem with no joinable AS *and* no RS
        // session anywhere is truly unchurnable.
        self.gen_originate(eco, IxpId(0))
            .expect("no joinable AS and no RS member anywhere: ecosystem cannot churn")
    }

    fn pick_rs_member(&mut self, eco: &Ecosystem, ixp: IxpId) -> Option<Asn> {
        let members = eco.ixp(ixp).rs_member_asns();
        if members.is_empty() {
            return None;
        }
        Some(members[self.rng.gen_range(0..members.len())])
    }

    /// The one place a joiner's member record is assembled — both the
    /// weighted join path and the deterministic fallback go through it,
    /// so the joiner shape can never drift between them.
    fn make_joiner(&mut self, eco: &Ecosystem, ixp: IxpId, asn: Asn) -> IxpMember {
        let x = eco.ixp(ixp);
        let lan_base = u32::from(x.lan.network());
        let addr = std::net::Ipv4Addr::from(lan_base + 600 + (self.rng.gen_range(0..300u32)));
        let mut member = IxpMember::new(asn, addr);
        member.explicit_all = !self.rng.gen_bool(0.25);
        member.export = self.gen_export(eco, ixp, asn);
        member.announcements = eco
            .internet
            .prefixes_of(asn)
            .iter()
            .take(self.cfg.joiner_prefixes)
            .map(|p| MemberAnnouncement {
                prefix: *p,
                as_path: AsPath::from_seq([asn]),
            })
            .collect();
        member
    }

    fn gen_join(&mut self, eco: &Ecosystem, ixp: IxpId) -> Option<ChurnEvent> {
        let x = eco.ixp(ixp);
        // Rejection-sample a non-member from the universe.
        for _ in 0..32 {
            let asn = self.universe[self.rng.gen_range(0..self.universe.len())];
            if x.member(asn).is_some() {
                continue;
            }
            return Some(ChurnEvent::Join {
                ixp,
                member: self.make_joiner(eco, ixp, asn),
            });
        }
        None
    }

    fn gen_leave(&mut self, eco: &Ecosystem, ixp: IxpId) -> Option<ChurnEvent> {
        let x = eco.ixp(ixp);
        if x.member_count() <= self.cfg.min_members {
            return None;
        }
        let members = x.member_asns();
        let asn = members[self.rng.gen_range(0..members.len())];
        Some(ChurnEvent::Leave { ixp, asn })
    }

    fn gen_policy(&mut self, eco: &Ecosystem, ixp: IxpId) -> Option<ChurnEvent> {
        let asn = self.pick_rs_member(eco, ixp)?;
        let policy = self.gen_export(eco, ixp, asn);
        Some(ChurnEvent::SetExportPolicy { ixp, asn, policy })
    }

    fn gen_originate(&mut self, eco: &Ecosystem, ixp: IxpId) -> Option<ChurnEvent> {
        let asn = self.pick_rs_member(eco, ixp)?;
        // A synthetic /24 counted up from 198.18.0.0 (benchmarking
        // space), unique across the run, so origination is always
        // valid. Addition, not OR: the counter must carry into the
        // second octet once it outgrows the third.
        self.fresh_prefix += 1;
        let addr = 0xC612_0000u32 + (self.fresh_prefix << 8);
        let prefix = Prefix::from_u32(addr, 24).expect("valid /24");
        Some(ChurnEvent::Originate {
            ixp,
            asn,
            announcement: MemberAnnouncement {
                prefix,
                as_path: AsPath::from_seq([asn]),
            },
        })
    }

    fn gen_withdraw(&mut self, eco: &Ecosystem, ixp: IxpId) -> Option<ChurnEvent> {
        let asn = self.pick_rs_member(eco, ixp)?;
        let m = eco.ixp(ixp).member(asn)?;
        if m.announcements.is_empty() {
            return None;
        }
        let prefix = m.announcements[self.rng.gen_range(0..m.announcements.len())].prefix;
        Some(ChurnEvent::Withdraw { ixp, asn, prefix })
    }

    /// A fresh export policy in the bimodal shape of Fig. 11: mostly
    /// open, EXCLUDE lists next, INCLUDE lists for the selective tail.
    fn gen_export(&mut self, eco: &Ecosystem, ixp: IxpId, asn: Asn) -> ExportPolicy {
        let others: Vec<Asn> = eco
            .ixp(ixp)
            .rs_member_asns()
            .into_iter()
            .filter(|&a| a != asn)
            .collect();
        if others.is_empty() {
            return ExportPolicy::AllMembers;
        }
        let roll: f64 = self.rng.gen();
        if roll < 0.55 {
            ExportPolicy::AllMembers
        } else if roll < 0.85 {
            let n = self.rng.gen_range(1..=3.min(others.len()));
            let ex = (0..n)
                .map(|_| others[self.rng.gen_range(0..others.len())])
                .collect();
            ExportPolicy::AllExcept(ex)
        } else {
            let n = self.rng.gen_range(1..=4.min(others.len()));
            let inc = (0..n)
                .map(|_| others[self.rng.gen_range(0..others.len())])
                .collect();
            ExportPolicy::OnlyTo(inc)
        }
    }
}

/// Render one *already-applied* churn event as the BGP messages the
/// route server's session would carry at time `at`:
///
/// * `Join` → OPEN, then one UPDATE per announcement (communities
///   encoding the joiner's effective filter per prefix);
/// * `Leave` → NOTIFICATION Cease;
/// * `SetExportPolicy` → a full re-announce of every prefix with the
///   new communities (how a real retune propagates: BGP has no
///   "policy changed" message, only implicit-withdraw replacement);
/// * `Originate` → one UPDATE announce;
/// * `Withdraw` → one UPDATE withdraw.
///
/// Non-RS members produce no messages beyond session lifecycle: they
/// have no RS session to announce over.
pub fn event_messages(eco: &Ecosystem, event: &ChurnEvent, at: u64) -> UpdateStream {
    let ixp = eco.ixp(event.ixp());
    let mut out = UpdateStream::new();
    match event {
        ChurnEvent::Join { member, .. } => {
            out.push(TimedMessage::new(
                at,
                member.asn,
                BgpMessage::Open {
                    asn: member.asn,
                    hold_time: 90,
                    router_id: member.lan_addr,
                },
            ));
            if member.rs_member {
                for ann in &member.announcements {
                    out.push(announce(ixp, member, &ann.prefix, &ann.as_path, at));
                }
            }
        }
        ChurnEvent::Leave { asn, .. } => {
            out.push(TimedMessage::new(
                at,
                *asn,
                BgpMessage::Notification {
                    code: NotificationCode::Cease,
                    subcode: 0,
                },
            ));
        }
        ChurnEvent::SetExportPolicy { asn, .. } => {
            if let Some(m) = ixp.member(*asn) {
                if m.rs_member {
                    for ann in &m.announcements {
                        out.push(announce(ixp, m, &ann.prefix, &ann.as_path, at));
                    }
                }
            }
        }
        ChurnEvent::Originate {
            asn, announcement, ..
        } => {
            if let Some(m) = ixp.member(*asn) {
                if m.rs_member {
                    out.push(announce(
                        ixp,
                        m,
                        &announcement.prefix,
                        &announcement.as_path,
                        at,
                    ));
                }
            }
        }
        ChurnEvent::Withdraw { asn, prefix, .. } => {
            if let Some(m) = ixp.member(*asn) {
                if m.rs_member {
                    out.push(TimedMessage::new(
                        at,
                        *asn,
                        BgpMessage::Update(UpdateMessage::withdraw(vec![*prefix])),
                    ));
                }
            }
        }
    }
    out
}

fn announce(
    ixp: &mlpeer_ixp::Ixp,
    member: &IxpMember,
    prefix: &Prefix,
    as_path: &AsPath,
    at: u64,
) -> TimedMessage {
    let communities = RouteServer::communities_for(member, prefix, &ixp.scheme);
    let attrs = RouteAttrs::new(as_path.clone(), member.lan_addr).with_communities(communities);
    TimedMessage::new(
        at,
        member.asn,
        BgpMessage::Update(UpdateMessage::announce(attrs, vec![*prefix])),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlpeer_ixp::EcosystemConfig;

    fn eco() -> Ecosystem {
        Ecosystem::generate(EcosystemConfig::tiny(17))
    }

    #[test]
    fn schedules_are_deterministic_and_valid() {
        let mut a = eco();
        let mut b = eco();
        let mut gen_a = ChurnGen::new(&a, ChurnConfig::default());
        let mut gen_b = ChurnGen::new(&b, ChurnConfig::default());
        for step in 0..200 {
            let ea = gen_a.next_event(&a);
            let eb = gen_b.next_event(&b);
            assert_eq!(ea, eb, "step {step}: same seed, same schedule");
            assert!(a.apply_churn(&ea), "step {step}: {ea:?} must be valid");
            assert!(b.apply_churn(&eb));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut e1 = eco();
        let mut g1 = ChurnGen::new(
            &e1,
            ChurnConfig {
                seed: 1,
                ..Default::default()
            },
        );
        let mut e2 = eco();
        let mut g2 = ChurnGen::new(
            &e2,
            ChurnConfig {
                seed: 2,
                ..Default::default()
            },
        );
        let mut same = 0;
        for _ in 0..30 {
            let a = g1.next_event(&e1);
            let b = g2.next_event(&e2);
            if a == b {
                same += 1;
            }
            e1.apply_churn(&a);
            e2.apply_churn(&b);
        }
        assert!(same < 30, "schedules must depend on the seed");
    }

    #[test]
    fn all_event_kinds_appear() {
        let mut e = eco();
        let mut g = ChurnGen::new(&e, ChurnConfig::default());
        let mut kinds = [0usize; 5];
        for _ in 0..400 {
            let ev = g.next_event(&e);
            let k = match ev {
                ChurnEvent::Join { .. } => 0,
                ChurnEvent::Leave { .. } => 1,
                ChurnEvent::SetExportPolicy { .. } => 2,
                ChurnEvent::Originate { .. } => 3,
                ChurnEvent::Withdraw { .. } => 4,
            };
            kinds[k] += 1;
            assert!(e.apply_churn(&ev));
        }
        for (k, n) in kinds.iter().enumerate() {
            assert!(*n > 0, "event kind {k} never generated in 400 draws");
        }
    }

    #[test]
    fn all_zero_weights_fall_back_to_uniform_instead_of_panicking() {
        // ChurnConfig fields are public; a degenerate all-zero config
        // must not panic the live refresher thread via gen_range(0..0).
        let mut e = eco();
        let mut g = ChurnGen::new(
            &e,
            ChurnConfig {
                seed: 4,
                w_join: 0,
                w_leave: 0,
                w_policy: 0,
                w_originate: 0,
                w_withdraw: 0,
                ..ChurnConfig::default()
            },
        );
        for step in 0..50 {
            let ev = g.next_event(&e);
            assert!(e.apply_churn(&ev), "step {step}: {ev:?}");
        }
    }

    #[test]
    fn originated_prefixes_stay_unique_past_the_octet_boundary() {
        // The synthetic counter must carry into the second octet: an
        // OR-assembled address would repeat every 512 originations and
        // make `apply_churn` reject the duplicate.
        let mut e = eco();
        let mut g = ChurnGen::new(
            &e,
            ChurnConfig {
                seed: 1,
                w_join: 0,
                w_leave: 0,
                w_policy: 0,
                w_originate: 1,
                w_withdraw: 0,
                ..ChurnConfig::default()
            },
        );
        let mut seen = std::collections::BTreeSet::new();
        for step in 0..600 {
            let ev = g.next_event(&e);
            let ChurnEvent::Originate { announcement, .. } = &ev else {
                panic!("only originates are weighted");
            };
            assert!(
                seen.insert(announcement.prefix),
                "step {step}: duplicate synthetic prefix {}",
                announcement.prefix
            );
            assert!(e.apply_churn(&ev), "step {step}: originate rejected");
        }
    }

    #[test]
    fn rendering_matches_event_semantics() {
        let mut e = eco();
        let mut g = ChurnGen::new(&e, ChurnConfig::default());
        let mut saw_open = false;
        let mut saw_cease = false;
        let mut saw_announce = false;
        let mut saw_withdraw = false;
        for t in 0..400u64 {
            let ev = g.next_event(&e);
            assert!(e.apply_churn(&ev));
            for m in event_messages(&e, &ev, t) {
                assert_eq!(m.at, t);
                assert_eq!(m.from, ev.asn());
                match &m.msg {
                    BgpMessage::Open { asn, .. } => {
                        assert_eq!(*asn, ev.asn());
                        saw_open = true;
                    }
                    BgpMessage::Notification { code, .. } => {
                        assert_eq!(*code, NotificationCode::Cease);
                        saw_cease = true;
                    }
                    BgpMessage::Update(u) => {
                        if !u.nlri.is_empty() {
                            saw_announce = true;
                            // The announced path's first hop is the
                            // speaker itself.
                            let attrs = u.attrs.as_ref().expect("announce carries attrs");
                            assert_eq!(attrs.as_path.first_hop(), Some(ev.asn()));
                        }
                        if !u.withdrawn.is_empty() {
                            saw_withdraw = true;
                        }
                        assert!(!u.is_empty());
                    }
                    BgpMessage::Keepalive => panic!("churn never renders keepalives"),
                }
            }
        }
        assert!(saw_open && saw_cease && saw_announce && saw_withdraw);
    }

    #[test]
    fn policy_retune_reannounces_with_new_communities() {
        let mut e = eco();
        let ixp = IxpId(0);
        let asn = e.ixp(ixp).rs_member_asns()[0];
        let other = e.ixp(ixp).rs_member_asns()[1];
        let ev = ChurnEvent::SetExportPolicy {
            ixp,
            asn,
            policy: ExportPolicy::AllExcept([other].into_iter().collect()),
        };
        assert!(e.apply_churn(&ev));
        let msgs = event_messages(&e, &ev, 9);
        let n_prefixes = e.ixp(ixp).member(asn).unwrap().announcements.len();
        assert_eq!(msgs.len(), n_prefixes, "one re-announce per prefix");
        // Every re-announce carries the EXCLUDE community for `other`
        // (no per-prefix override shadows a freshly-set default here
        // only if none existed; check at least one does).
        let scheme = &e.ixp(ixp).scheme;
        let decoded: Vec<_> = msgs
            .iter()
            .filter_map(|m| match &m.msg {
                BgpMessage::Update(u) => u.attrs.as_ref(),
                _ => None,
            })
            .flat_map(|a| a.communities.iter())
            .filter_map(|c| scheme.decode(c))
            .collect();
        assert!(
            decoded
                .iter()
                .any(|a| matches!(a, mlpeer_ixp::scheme::RsAction::Exclude(x) if *x == other)),
            "retune must put the new EXCLUDE on the wire: {decoded:?}"
        );
    }
}
