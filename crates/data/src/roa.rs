//! RPKI Route Origin Authorizations: the second external ground-truth
//! corpus behind the cross-validation stage (the first is [`irr`]).
//!
//! A [`Roa`] attests that `origin` may announce `prefix` and any of its
//! subnets down to `max_length`. [`RoaTable`] indexes a batch of them
//! and answers RFC 6811 origin validation for a (prefix, origin) pair:
//!
//! * **Valid** — some unexpired ROA covers the prefix, the prefix is no
//!   longer than the ROA's `max-length`, and the origins match.
//! * **Invalid** — at least one unexpired ROA covers the prefix but
//!   none validates it (wrong origin, or announced longer than
//!   `max-length` allows).
//! * **NotFound** — nothing unexpired covers the prefix. An expired
//!   ROA never covers: cryptographic validity has lapsed, so the route
//!   falls back to NotFound exactly as relying parties treat it.
//!
//! ROAs render to the same hand-rolled `key: value` line format as the
//! RPSL objects in [`irr`], so the validation corpus can carry both in
//! one text stream:
//!
//! ```text
//! roa:            198.51.100.0/24
//! max-length:     24
//! origin:         AS64500
//! state:          valid
//! ```
//!
//! [`irr`]: crate::irr

use std::collections::BTreeMap;

use mlpeer_bgp::{Asn, Prefix};

/// One Route Origin Authorization.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Roa {
    /// The authorized prefix (the ROA covers this and its subnets).
    pub prefix: Prefix,
    /// Longest announcement length the authorization extends to.
    pub max_length: u8,
    /// The AS authorized to originate.
    pub origin: Asn,
    /// Whether the ROA's validity window has lapsed. Expired ROAs are
    /// kept in the corpus (registries serve stale data too) but never
    /// cover a route.
    pub expired: bool,
}

impl Roa {
    /// Render to the corpus line format (trailing newline included).
    pub fn to_text(&self) -> String {
        format!(
            "roa:            {}\nmax-length:     {}\norigin:         AS{}\nstate:          {}\n",
            self.prefix,
            self.max_length,
            self.origin,
            if self.expired { "expired" } else { "valid" }
        )
    }

    /// Parse the output of [`to_text`](Roa::to_text). `None` on any
    /// malformed line, unknown key, out-of-range length, or missing
    /// field — never panics.
    pub fn parse(text: &str) -> Option<Roa> {
        let mut prefix = None;
        let mut max_length = None;
        let mut origin = None;
        let mut expired = None;
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line.split_once(':')?;
            let value = value.trim();
            match key.trim() {
                "roa" => prefix = Some(value.parse::<Prefix>().ok()?),
                "max-length" => {
                    let len = value.parse::<u8>().ok()?;
                    if len > 32 {
                        return None;
                    }
                    max_length = Some(len);
                }
                "origin" => origin = Some(value.parse::<Asn>().ok()?),
                "state" => {
                    expired = Some(match value {
                        "valid" => false,
                        "expired" => true,
                        _ => return None,
                    })
                }
                _ => return None,
            }
        }
        let roa = Roa {
            prefix: prefix?,
            max_length: max_length?,
            origin: origin?,
            expired: expired?,
        };
        // An authorization narrower than its own prefix is malformed.
        if roa.max_length < roa.prefix.len() {
            return None;
        }
        Some(roa)
    }
}

/// RFC 6811 origin-validation outcome for one (prefix, origin) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoaOutcome {
    /// An unexpired ROA authorizes exactly this announcement.
    Valid,
    /// Covered by unexpired ROAs, but none authorizes it.
    Invalid,
    /// No unexpired ROA covers the prefix.
    NotFound,
}

/// An indexed batch of ROAs answering origin validation queries.
#[derive(Debug, Clone, Default)]
pub struct RoaTable {
    roas: Vec<Roa>,
    /// Exact ROA prefixes → indices into `roas`. Lookups walk the query
    /// prefix's parent chain (≤ 33 steps), so covering ROAs are found
    /// without a trie.
    by_prefix: BTreeMap<Prefix, Vec<usize>>,
}

impl RoaTable {
    /// Index a batch of ROAs.
    pub fn new(roas: Vec<Roa>) -> RoaTable {
        let mut by_prefix: BTreeMap<Prefix, Vec<usize>> = BTreeMap::new();
        for (i, roa) in roas.iter().enumerate() {
            by_prefix.entry(roa.prefix).or_default().push(i);
        }
        RoaTable { roas, by_prefix }
    }

    /// Number of ROAs indexed (expired ones included).
    pub fn len(&self) -> usize {
        self.roas.len()
    }

    /// Whether the table holds no ROAs at all.
    pub fn is_empty(&self) -> bool {
        self.roas.is_empty()
    }

    /// The indexed ROAs, in insertion order.
    pub fn roas(&self) -> &[Roa] {
        &self.roas
    }

    /// RFC 6811 origin validation of `origin` announcing `prefix`.
    pub fn validate(&self, prefix: Prefix, origin: Asn) -> RoaOutcome {
        let mut covered = false;
        let mut node = Some(prefix);
        while let Some(p) = node {
            if let Some(indices) = self.by_prefix.get(&p) {
                for &i in indices {
                    let roa = &self.roas[i];
                    if roa.expired {
                        continue;
                    }
                    covered = true;
                    if roa.origin == origin && prefix.len() <= roa.max_length {
                        return RoaOutcome::Valid;
                    }
                }
            }
            node = p.parent();
        }
        if covered {
            RoaOutcome::Invalid
        } else {
            RoaOutcome::NotFound
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn roa(prefix: &str, max_length: u8, origin: u32, expired: bool) -> Roa {
        Roa {
            prefix: p(prefix),
            max_length,
            origin: Asn(origin),
            expired,
        }
    }

    #[test]
    fn render_parse_round_trips() {
        for r in [
            roa("198.51.100.0/24", 24, 64500, false),
            roa("10.0.0.0/8", 16, 1, true),
            roa("0.0.0.0/0", 32, 4200000000, false),
        ] {
            let text = r.to_text();
            assert_eq!(Roa::parse(&text), Some(r.clone()), "{text}");
        }
    }

    #[test]
    fn parse_rejects_malformed_input() {
        let good = roa("198.51.100.0/24", 24, 64500, false).to_text();
        assert!(Roa::parse("").is_none(), "empty text has no fields");
        assert!(Roa::parse("roa 198.51.100.0/24").is_none(), "no colon");
        assert!(
            Roa::parse(&good.replace("state:          valid", "state:          maybe")).is_none()
        );
        assert!(
            Roa::parse(&good.replace("max-length:     24", "max-length:     33")).is_none(),
            "length beyond /32"
        );
        assert!(
            Roa::parse(&good.replace("max-length:     24", "max-length:     8")).is_none(),
            "max-length shorter than the prefix itself"
        );
        assert!(
            Roa::parse(&good.replace("origin:", "bogus-key:")).is_none(),
            "unknown keys are refused, not skipped"
        );
    }

    #[test]
    fn validation_follows_rfc_6811() {
        let table = RoaTable::new(vec![
            roa("198.51.100.0/24", 24, 64500, false),
            roa("10.0.0.0/8", 16, 100, false),
        ]);
        // Exact match, right origin.
        assert_eq!(
            table.validate(p("198.51.100.0/24"), Asn(64500)),
            RoaOutcome::Valid
        );
        // Covered, wrong origin.
        assert_eq!(
            table.validate(p("198.51.100.0/24"), Asn(64501)),
            RoaOutcome::Invalid
        );
        // Subnet within max-length bound.
        assert_eq!(
            table.validate(p("10.1.0.0/16"), Asn(100)),
            RoaOutcome::Valid
        );
        // Subnet longer than max-length: covered but not authorized.
        assert_eq!(
            table.validate(p("10.1.1.0/24"), Asn(100)),
            RoaOutcome::Invalid
        );
        // Nothing covers this at all.
        assert_eq!(
            table.validate(p("192.0.2.0/24"), Asn(64500)),
            RoaOutcome::NotFound
        );
    }

    #[test]
    fn expired_roas_never_cover() {
        let table = RoaTable::new(vec![roa("198.51.100.0/24", 24, 64500, true)]);
        // Expired: falls all the way back to NotFound, not Invalid.
        assert_eq!(
            table.validate(p("198.51.100.0/24"), Asn(64500)),
            RoaOutcome::NotFound
        );
        // A competing unexpired ROA still covers on its own terms.
        let table = RoaTable::new(vec![
            roa("198.51.100.0/24", 24, 64500, true),
            roa("198.51.100.0/23", 24, 64501, false),
        ]);
        assert_eq!(
            table.validate(p("198.51.100.0/24"), Asn(64500)),
            RoaOutcome::Invalid,
            "the expired right origin cannot rescue the live wrong one"
        );
    }

    #[test]
    fn multiple_roas_on_one_prefix_any_match_wins() {
        let table = RoaTable::new(vec![
            roa("198.51.100.0/24", 24, 64500, false),
            roa("198.51.100.0/24", 24, 64501, false),
        ]);
        assert_eq!(
            table.validate(p("198.51.100.0/24"), Asn(64501)),
            RoaOutcome::Valid
        );
        assert_eq!(
            table.validate(p("198.51.100.0/24"), Asn(64502)),
            RoaOutcome::Invalid
        );
    }
}
