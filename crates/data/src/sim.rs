//! The shared routing simulation.
//!
//! One [`Sim`] wraps an [`Ecosystem`] and answers the questions every
//! data-source simulator asks:
//!
//! * *"what is AS X's best route toward origin O?"* — Gao-Rexford
//!   propagation over the AS graph with every IXP's route-server flows
//!   and bilateral sessions grafted on (memoized per origin);
//! * *"which communities does that route carry when X re-announces
//!   it?"* — RS communities are attached by the RS *setter* (the member
//!   that announced across the route server) and survive only until the
//!   first community-stripping AS on the way to the observer;
//!   relationship/ingress-tagging communities (§5.6) are attached by the
//!   ASes that document them;
//! * *"what does AS X's Adj-RIB-In for prefix P look like?"* — every
//!   route X's neighbors (transit, sibling, route server, bilateral)
//!   would export to it, with X's local-preference applied — the table a
//!   looking glass on X displays (§5.1).

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::rc::Rc;

use mlpeer_bgp::rib::RibEntry;
use mlpeer_bgp::route::RouteAttrs;
use mlpeer_bgp::{AsPath, Asn, Community, CommunitySet, Prefix};
use mlpeer_ixp::ixp::{Ixp, IxpId};
use mlpeer_ixp::route_server::RouteServer;
use mlpeer_ixp::Ecosystem;
use mlpeer_topo::graph::Region;
use mlpeer_topo::propagate::{BestRoute, EdgeKind, Propagator, RouteState};
use mlpeer_topo::relationship::{LearnedFrom, Relationship};

/// Local-preference conventions applied by simulated routers: customers
/// above peers above providers, matching the economics of §2.1 (and the
/// §5.1 observation that customer routes hide peer routes in best-path
/// looking glasses).
pub mod local_pref {
    /// Routes learned from customers.
    pub const CUSTOMER: u32 = 300;
    /// Routes learned from bilateral IXP peers (default).
    pub const BILATERAL: u32 = 150;
    /// Routes learned from route servers (default).
    pub const RS: u32 = 100;
    /// Routes learned from transit providers.
    pub const PROVIDER: u32 = 80;
}

/// The shared simulation context.
pub struct Sim<'e> {
    /// The ecosystem being simulated.
    pub eco: &'e Ecosystem,
    prop: Propagator<'e>,
    /// ASes that strip communities when re-exporting routes.
    strippers: BTreeSet<Asn>,
    /// ASes that attach relationship/ingress tag communities (§5.6).
    taggers: BTreeSet<Asn>,
    /// Per-origin propagation memo.
    memo: RefCell<HashMap<Asn, Rc<RouteState>>>,
    /// Per-IXP prefix → announcing members index (all members).
    announcers: Vec<BTreeMap<Prefix, Vec<Asn>>>,
    /// Prefix → owning origin AS.
    origin_of: BTreeMap<Prefix, Asn>,
}

impl<'e> Sim<'e> {
    /// Build the simulation for an ecosystem.
    pub fn new(eco: &'e Ecosystem) -> Self {
        let prop = Propagator::with_extra_peers(&eco.internet.graph, eco.extra_peer_edges());
        let mut strippers = BTreeSet::new();
        for ixp in &eco.ixps {
            for m in ixp.members.values() {
                if m.strips_communities {
                    strippers.insert(m.asn);
                }
            }
        }
        let taggers = eco.defines_rel_tags.clone();
        let mut announcers: Vec<BTreeMap<Prefix, Vec<Asn>>> = Vec::with_capacity(eco.ixps.len());
        for ixp in &eco.ixps {
            let mut idx: BTreeMap<Prefix, Vec<Asn>> = BTreeMap::new();
            for m in ixp.members.values() {
                for ann in &m.announcements {
                    idx.entry(ann.prefix).or_default().push(m.asn);
                }
            }
            for v in idx.values_mut() {
                v.sort_unstable();
                v.dedup();
            }
            announcers.push(idx);
        }
        let mut origin_of = BTreeMap::new();
        for (asn, prefixes) in &eco.internet.prefixes {
            for p in prefixes {
                origin_of.insert(*p, *asn);
            }
        }
        Sim {
            eco,
            prop,
            strippers,
            taggers,
            memo: RefCell::new(HashMap::new()),
            announcers,
            origin_of,
        }
    }

    /// The propagation state toward `origin` (memoized; cloneable Rc).
    pub fn routes_to(&self, origin: Asn) -> Rc<RouteState> {
        if let Some(s) = self.memo.borrow().get(&origin) {
            return Rc::clone(s);
        }
        let state = Rc::new(self.prop.routes_to(origin));
        let mut memo = self.memo.borrow_mut();
        // Bound the memo so full-ecosystem sweeps don't hold every
        // origin's state at once.
        if memo.len() >= 512 {
            memo.clear();
        }
        memo.insert(origin, Rc::clone(&state));
        state
    }

    /// The origin AS that owns `prefix`.
    pub fn origin_of(&self, prefix: &Prefix) -> Option<Asn> {
        self.origin_of.get(prefix).copied()
    }

    /// Members of `ixp` announcing `prefix` (the multiplicity `m_p` the
    /// §4.3 query planner sorts by, and the Fig. 5 distribution).
    pub fn announcers_at(&self, ixp: IxpId, prefix: &Prefix) -> &[Asn] {
        self.announcers[ixp.0 as usize]
            .get(prefix)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Does any AS on `path[1..=upto]` strip communities? (`path[0]` is
    /// the receiver whose view we are computing; its own stripping
    /// applies only when it re-exports.)
    fn stripped_before(&self, path: &[Asn], upto: usize) -> bool {
        path.iter()
            .take(upto + 1)
            .skip(1)
            .any(|a| self.strippers.contains(a))
    }

    fn region_code(region: Region) -> u16 {
        match region {
            Region::WesternEurope => 101,
            Region::EasternEurope => 102,
            Region::NorthernEurope => 103,
            Region::SouthernEurope => 104,
            Region::NorthAmerica => 105,
            Region::AsiaPacific => 106,
            Region::LatinAmerica => 107,
            Region::Africa => 108,
        }
    }

    /// Relationship-tag community codes (§5.6): what an AS that
    /// documents tagging communities attaches at ingress.
    pub fn rel_tag_code(kind: &EdgeKind, rel: Option<Relationship>) -> u16 {
        match kind {
            EdgeKind::Transit => match rel {
                Some(Relationship::P2c) => 901, // learned from a customer
                _ => 903,                       // learned from a provider
            },
            EdgeKind::GraphPeer | EdgeKind::ExtraPeer(_) => 902,
            EdgeKind::Sibling => 904,
        }
    }

    /// The communities visible on `route` (a path `[observer, …,
    /// origin]`) for `prefix`, as received by the observer: the RS
    /// setter's communities if the path crossed a route server and no
    /// intermediate AS stripped them, plus any relationship/ingress tags
    /// attached by documenting ASes along the way.
    pub fn communities_on(&self, route: &BestRoute, prefix: &Prefix) -> CommunitySet {
        let mut out: Vec<Community> = Vec::new();
        for (i, kind) in route.via.iter().enumerate() {
            if let EdgeKind::ExtraPeer(tag) = kind {
                let (ixp_id, bilateral) = Ixp::decode_tag(*tag);
                if bilateral {
                    continue;
                }
                let ixp = self.eco.ixp(ixp_id);
                if ixp.route_server.strips_communities || ixp.filter_portal {
                    continue;
                }
                let setter = route.path[i + 1];
                if self.stripped_before(&route.path, i) {
                    continue;
                }
                if let Some(m) = ixp.member(setter) {
                    out.extend(RouteServer::communities_for(m, prefix, &ixp.scheme).iter());
                }
            }
            // Relationship/ingress tags attached by path[i] about the AS
            // it learned the route from (path[i+1]).
            let tagger = route.path[i];
            if i >= 1
                && self.taggers.contains(&tagger)
                && tagger.is_16bit()
                && !self.stripped_before(&route.path, i - 1)
            {
                let rel = self
                    .eco
                    .internet
                    .graph
                    .relationship(tagger, route.path[i + 1]);
                let code = Self::rel_tag_code(kind, rel);
                let t16 = tagger.value() as u16;
                out.push(Community::new(t16, code));
                if let Some(info) = self.eco.internet.graph.node(route.path[i + 1]) {
                    out.push(Community::new(t16, Self::region_code(info.region)));
                }
            }
        }
        CommunitySet::from_iter(out)
    }

    /// The full Adj-RIB-In of `observer` for `prefix`: one entry per
    /// neighbor session that would export the route, with the observer's
    /// local-preference conventions applied. This is what a looking
    /// glass on `observer` renders (§5.1).
    pub fn adj_rib_in(&self, observer: Asn, prefix: &Prefix) -> Vec<RibEntry> {
        let Some(origin) = self.origin_of(prefix) else {
            return Vec::new();
        };
        let state = self.routes_to(origin);
        let mut out: Vec<RibEntry> = Vec::new();
        let mut seen_sessions: BTreeSet<(Asn, u8)> = BTreeSet::new();

        // ---- Transit / sibling / private-peer neighbors. ----
        for &(n, rel) in self.eco.internet.graph.neighbors(observer) {
            let Some(route) = state.best(n) else { continue };
            if route.path.contains(&observer) {
                continue; // split horizon
            }
            // Would n export its best route to observer?
            let rel_from_n = rel.invert();
            if !route.class.may_export_to(rel_from_n) {
                continue;
            }
            let lp = match rel {
                Relationship::P2c => local_pref::CUSTOMER,
                Relationship::C2p => local_pref::PROVIDER,
                Relationship::P2p => local_pref::BILATERAL,
                Relationship::Sibling => local_pref::CUSTOMER,
            };
            if !seen_sessions.insert((n, 0)) {
                continue;
            }
            let attrs = RouteAttrs::new(
                AsPath::from_seq(route.path.iter().copied()),
                std::net::Ipv4Addr::from(0x0A00_0000 | (n.value() & 0xFFFF)),
            )
            .with_communities(self.communities_on(route, prefix))
            .with_local_pref(lp);
            out.push(RibEntry {
                peer: n,
                peer_addr: attrs.next_hop,
                attrs,
                learned_at: 0,
            });
        }

        // ---- IXP sessions. ----
        for ixp in &self.eco.ixps {
            let Some(me) = ixp.member(observer) else {
                continue;
            };
            // Route-server session: one entry per member whose
            // announcement of `prefix` the RS delivers to us.
            if me.rs_member {
                for &a in self.announcers_at(ixp.id, prefix) {
                    if a == observer {
                        continue;
                    }
                    let Some(am) = ixp.member(a) else { continue };
                    if !RouteServer::delivers(am, me, prefix) {
                        continue;
                    }
                    let ann = am
                        .announcements
                        .iter()
                        .find(|x| &x.prefix == prefix)
                        .expect("announcer index consistent");
                    if ann.as_path.contains(observer) {
                        continue;
                    }
                    if !seen_sessions.insert((a, 1)) {
                        continue;
                    }
                    let path = if ixp.route_server.inserts_own_asn {
                        ann.as_path.prepended(ixp.route_server.asn)
                    } else {
                        ann.as_path.clone()
                    };
                    let communities = if ixp.route_server.strips_communities || ixp.filter_portal {
                        CommunitySet::new()
                    } else {
                        RouteServer::communities_for(am, prefix, &ixp.scheme)
                    };
                    let attrs = RouteAttrs::new(path, am.lan_addr)
                        .with_communities(communities)
                        .with_local_pref(me.rs_local_pref);
                    out.push(RibEntry {
                        peer: a,
                        peer_addr: am.lan_addr,
                        attrs,
                        learned_at: 0,
                    });
                }
            }
            // Bilateral sessions across the fabric.
            for &b in &me.bilateral_peers {
                let Some(bm) = ixp.member(b) else { continue };
                let Some(ann) = bm.announcements.iter().find(|x| &x.prefix == prefix) else {
                    continue;
                };
                if ann.as_path.contains(observer) {
                    continue;
                }
                if !seen_sessions.insert((b, 2)) {
                    continue;
                }
                let attrs = RouteAttrs::new(ann.as_path.clone(), bm.lan_addr)
                    .with_local_pref(me.bilateral_local_pref.max(local_pref::BILATERAL));
                out.push(RibEntry {
                    peer: b,
                    peer_addr: bm.lan_addr,
                    attrs,
                    learned_at: 0,
                });
            }
        }
        out
    }

    /// The observer's *selected* best entry among its Adj-RIB-In for
    /// `prefix` (highest local-pref, then shortest path, deterministic
    /// tie-breaks) — what a best-path-only looking glass shows.
    pub fn best_of(&self, observer: Asn, prefix: &Prefix) -> Option<RibEntry> {
        let mut rib = mlpeer_bgp::rib::Rib::new();
        for e in self.adj_rib_in(observer, prefix) {
            rib.insert(*prefix, e);
        }
        rib.best(prefix).cloned()
    }

    /// Is `asn` a community stripper?
    pub fn strips(&self, asn: Asn) -> bool {
        self.strippers.contains(&asn)
    }

    /// The ASes documenting relationship-tag communities.
    pub fn taggers(&self) -> &BTreeSet<Asn> {
        &self.taggers
    }

    /// Number of directed extra (IXP) peer edges grafted onto the graph.
    pub fn extra_edge_count(&self) -> usize {
        self.prop.extra_edge_count()
    }

    /// The classification of `observer`'s best route toward `origin`
    /// (None if unreachable).
    pub fn route_class(&self, observer: Asn, origin: Asn) -> Option<LearnedFrom> {
        self.routes_to(origin).best(observer).map(|r| r.class)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlpeer_ixp::EcosystemConfig;

    fn eco() -> Ecosystem {
        Ecosystem::generate(EcosystemConfig::tiny(11))
    }

    #[test]
    fn rs_crossing_attaches_setter_communities() {
        let eco = eco();
        let sim = Sim::new(&eco);
        // Find an RS flow (a → b) at DE-CIX and check b's route to one
        // of a's own prefixes carries a's communities.
        let decix = eco.ixp_by_name("DE-CIX").unwrap();
        let flows = decix.directed_flows();
        let mut checked = 0;
        for (a, b) in flows.into_iter().take(400) {
            let Some(own_prefix) = eco.internet.prefixes_of(a).first().copied() else {
                continue;
            };
            let state = sim.routes_to(a);
            let Some(route) = state.best(b) else { continue };
            // Only meaningful when b's best actually crosses an RS edge
            // directly to a.
            if route.path.len() == 2 {
                if let Some((0, tag)) = route.first_extra_peer_hop() {
                    let (ixp_id, bilateral) = Ixp::decode_tag(tag);
                    if !bilateral {
                        let ixp = eco.ixp(ixp_id);
                        let cs = sim.communities_on(route, &own_prefix);
                        let member = ixp.member(a).unwrap();
                        let expected =
                            RouteServer::communities_for(member, &own_prefix, &ixp.scheme);
                        for c in expected.iter() {
                            assert!(cs.contains(c), "missing {c} on {a}→{b}");
                        }
                        checked += 1;
                        if checked > 10 {
                            break;
                        }
                    }
                }
            }
        }
        assert!(checked > 0, "no direct RS crossings found to check");
    }

    #[test]
    fn adj_rib_in_contains_rs_and_transit_routes() {
        let eco = eco();
        let sim = Sim::new(&eco);
        let decix = eco.ixp_by_name("DE-CIX").unwrap();
        // Pick an RS member pair with a flow and inspect the receiver's
        // Adj-RIB-In for the announcer's own prefix.
        let (a, b) = decix
            .directed_flows()
            .into_iter()
            .next()
            .expect("flows exist");
        let p = eco.internet.prefixes_of(a)[0];
        let rib = sim.adj_rib_in(b, &p);
        assert!(!rib.is_empty(), "receiver has routes for {p}");
        // At least one entry must come straight from the announcer
        // (first hop a).
        assert!(
            rib.iter().any(|e| e.attrs.as_path.first_hop() == Some(a)),
            "no direct session entry from {a} in {b}'s RIB"
        );
        // Best-of returns one of the entries.
        let best = sim.best_of(b, &p).unwrap();
        assert!(rib
            .iter()
            .any(|e| e.peer == best.peer && e.attrs.as_path == best.attrs.as_path));
    }

    #[test]
    fn origin_and_announcer_indexes() {
        let eco = eco();
        let sim = Sim::new(&eco);
        let decix = eco.ixp_by_name("DE-CIX").unwrap();
        for m in decix.members.values().take(10) {
            for ann in m.announcements.iter().take(3) {
                assert!(sim.announcers_at(decix.id, &ann.prefix).contains(&m.asn));
                let origin = sim.origin_of(&ann.prefix).expect("prefix owned");
                assert_eq!(ann.as_path.origin(), Some(origin));
            }
        }
    }

    #[test]
    fn memoization_returns_same_state() {
        let eco = eco();
        let sim = Sim::new(&eco);
        let origin = *eco.all_member_asns().iter().next().unwrap();
        let a = sim.routes_to(origin);
        let b = sim.routes_to(origin);
        assert!(Rc::ptr_eq(&a, &b));
        assert!(sim.extra_edge_count() > 0);
    }
}
