//! Traceroute-derived AS links (Ark / DIMES).
//!
//! Active topology projects run traceroutes from distributed monitors
//! and map router IPs to ASNs. Two properties matter for Fig. 6:
//!
//! * the data plane follows BGP best paths, so traceroute sees the same
//!   links BGP selected — plus nothing hidden;
//! * crossings of an IXP peering LAN resolve to the route server's ASN,
//!   so "both Ark and DIMES do not infer links across IXP Route Servers,
//!   but report them as links between the RS members and the Route
//!   Servers" (§5) — the artifact that keeps RS links out of
//!   traceroute-derived topologies.

use std::collections::BTreeSet;

use mlpeer_bgp::Asn;
use mlpeer_ixp::ixp::Ixp;
use mlpeer_topo::propagate::EdgeKind;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::sim::Sim;

/// A traceroute-derived link dataset.
#[derive(Debug, Clone)]
pub struct TracerouteDataset {
    /// Monitor ASes the traceroutes originate from.
    pub monitors: Vec<Asn>,
    /// Undirected AS links, `a < b`.
    pub links: BTreeSet<(Asn, Asn)>,
}

impl TracerouteDataset {
    /// Does the dataset contain the (undirected) link?
    pub fn contains(&self, a: Asn, b: Asn) -> bool {
        let key = if a < b { (a, b) } else { (b, a) };
        self.links.contains(&key)
    }
}

/// Build an Ark/DIMES-style dataset: `n_monitors` edge-heavy monitors
/// tracerouting toward every origin, AS-level links extracted with the
/// route-server ASN artifact.
pub fn build_traceroute(sim: &Sim, seed: u64, n_monitors: usize) -> TracerouteDataset {
    let mut rng = StdRng::seed_from_u64(seed);
    // Ark/DIMES monitors live disproportionately at the network edge.
    let mut pool: Vec<Asn> = sim
        .eco
        .internet
        .graph
        .nodes()
        .filter(|n| {
            matches!(
                n.tier,
                mlpeer_topo::graph::Tier::Stub | mlpeer_topo::graph::Tier::Regional
            )
        })
        .map(|n| n.asn)
        .collect();
    pool.shuffle(&mut rng);
    let monitors: Vec<Asn> = pool.into_iter().take(n_monitors).collect();

    let mut links: BTreeSet<(Asn, Asn)> = BTreeSet::new();
    let mut add = |a: Asn, b: Asn| {
        if a != b {
            links.insert(if a < b { (a, b) } else { (b, a) });
        }
    };
    let origins: Vec<Asn> = sim.eco.internet.prefixes.keys().copied().collect();
    for origin in origins {
        let state = sim.routes_to(origin);
        for &mon in &monitors {
            let Some(route) = state.best(mon) else {
                continue;
            };
            for (i, kind) in route.via.iter().enumerate() {
                let (a, b) = (route.path[i], route.path[i + 1]);
                match kind {
                    EdgeKind::ExtraPeer(tag) => {
                        let (ixp_id, bilateral) = Ixp::decode_tag(*tag);
                        if bilateral {
                            // Bilateral sessions still cross the IXP LAN:
                            // same artifact.
                            let rs = sim.eco.ixp(ixp_id).route_server.asn;
                            add(a, rs);
                            add(rs, b);
                        } else {
                            let rs = sim.eco.ixp(ixp_id).route_server.asn;
                            add(a, rs);
                            add(rs, b);
                        }
                    }
                    _ => add(a, b),
                }
            }
        }
    }
    TracerouteDataset { monitors, links }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlpeer_ixp::{Ecosystem, EcosystemConfig};

    #[test]
    fn rs_links_replaced_by_rs_asn_artifact() {
        let eco = Ecosystem::generate(EcosystemConfig::tiny(61));
        let sim = Sim::new(&eco);
        let ds = build_traceroute(&sim, 5, 40);
        assert!(!ds.links.is_empty());
        // No direct member–member RS link may appear *as a consequence
        // of an RS crossing*; instead member–RS-ASN links appear.
        let rs_asns: BTreeSet<Asn> = eco.ixps.iter().map(|x| x.route_server.asn).collect();
        let rs_adjacent = ds
            .links
            .iter()
            .filter(|(a, b)| rs_asns.contains(a) || rs_asns.contains(b))
            .count();
        assert!(rs_adjacent > 0, "the member–RS-ASN artifact must appear");
    }

    #[test]
    fn traceroute_misses_most_mutual_rs_links() {
        let eco = Ecosystem::generate(EcosystemConfig::tiny(61));
        let sim = Sim::new(&eco);
        let ds = build_traceroute(&sim, 5, 40);
        let mutual = eco.all_mutual_links();
        let seen = mutual.iter().filter(|(a, b)| ds.contains(*a, *b)).count();
        // Some pairs may also peer bilaterally or privately, but the
        // overwhelming majority of RS links must be invisible (§5:
        // only 3,927 of 206K overlapped).
        let frac = seen as f64 / mutual.len().max(1) as f64;
        assert!(
            frac < 0.25,
            "traceroute sees {frac:.2} of RS links; should be rare"
        );
    }

    #[test]
    fn deterministic_and_monitor_bounded() {
        let eco = Ecosystem::generate(EcosystemConfig::tiny(61));
        let sim = Sim::new(&eco);
        let a = build_traceroute(&sim, 5, 10);
        let b = build_traceroute(&sim, 5, 10);
        assert_eq!(a.links, b.links);
        assert_eq!(a.monitors, b.monitors);
        assert!(a.monitors.len() <= 10);
    }
}
