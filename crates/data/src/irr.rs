//! Internet Routing Registry (RPSL).
//!
//! The IRR is "a publicly accessible database where AS administrators
//! voluntarily and manually register adjacency and policy information"
//! (§2.2) — "frequently inaccurate, incomplete or intentionally false,
//! although certain databases — notably RIPE — are more reliable".
//!
//! The paper uses the IRR three ways, all reproduced here:
//!
//! * RS member lists via RPSL **as-set** objects (connectivity source,
//!   §4);
//! * LINX's missing member list, recovered by searching member
//!   **aut-num** objects for export lines toward the RS ASN (Table 2's
//!   asterisk);
//! * AMS-IX's IRR-generated **import/export filters**, used in §4.4 to
//!   validate the reciprocity assumption against 230 members.

use std::collections::BTreeMap;
use std::fmt;

use mlpeer_bgp::{Asn, Prefix};
use mlpeer_ixp::policy::ExportPolicy;
use mlpeer_ixp::Ecosystem;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Registry databases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Source {
    /// RIPE (the reliable one).
    Ripe,
    /// ARIN.
    Arin,
    /// RADB.
    Radb,
}

impl fmt::Display for Source {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Source::Ripe => "RIPE",
            Source::Arin => "ARIN",
            Source::Radb => "RADB",
        })
    }
}

/// One `import:`/`export:` policy line of an aut-num, simplified to the
/// per-peer allow/deny grain the §4.4 study needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyLine {
    /// The peer the line is about.
    pub peer: Asn,
    /// `accept ANY` / `announce AS-SELF` (true) vs `accept NOT ANY` /
    /// `announce NOT ANY` (false).
    pub allow: bool,
}

/// An RPSL object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RpslObject {
    /// `aut-num:` — an AS's registered routing policy.
    AutNum {
        /// The AS.
        asn: Asn,
        /// `as-name:`.
        as_name: String,
        /// `import:` lines.
        imports: Vec<PolicyLine>,
        /// `export:` lines.
        exports: Vec<PolicyLine>,
        /// Registry of record.
        source: Source,
    },
    /// `as-set:` — a named set of ASNs / nested sets.
    AsSet {
        /// Set name (`AS-DECIX-RS`).
        name: String,
        /// Direct ASN members.
        members: Vec<Asn>,
        /// Nested set members.
        sets: Vec<String>,
        /// Registry of record.
        source: Source,
    },
    /// `route:` — a prefix with its registered origin.
    Route {
        /// The prefix.
        prefix: Prefix,
        /// `origin:`.
        origin: Asn,
        /// Registry of record.
        source: Source,
    },
}

impl RpslObject {
    /// Render as RPSL text.
    pub fn to_rpsl(&self) -> String {
        match self {
            RpslObject::AutNum {
                asn,
                as_name,
                imports,
                exports,
                source,
            } => {
                let mut s = format!(
                    "aut-num:        AS{}\nas-name:        {}\n",
                    asn.value(),
                    as_name
                );
                for l in imports {
                    s.push_str(&format!(
                        "import:         from AS{} accept {}\n",
                        l.peer.value(),
                        if l.allow { "ANY" } else { "NOT ANY" }
                    ));
                }
                for l in exports {
                    s.push_str(&format!(
                        "export:         to AS{} announce {}\n",
                        l.peer.value(),
                        if l.allow { "AS-SELF" } else { "NOT ANY" }
                    ));
                }
                s.push_str(&format!("source:         {source}\n"));
                s
            }
            RpslObject::AsSet {
                name,
                members,
                sets,
                source,
            } => {
                let mut s = format!("as-set:         {name}\n");
                let all: Vec<String> = members
                    .iter()
                    .map(|a| format!("AS{}", a.value()))
                    .chain(sets.iter().cloned())
                    .collect();
                if !all.is_empty() {
                    s.push_str(&format!("members:        {}\n", all.join(", ")));
                }
                s.push_str(&format!("source:         {source}\n"));
                s
            }
            RpslObject::Route {
                prefix,
                origin,
                source,
            } => format!(
                "route:          {prefix}\norigin:         AS{}\nsource:         {source}\n",
                origin.value()
            ),
        }
    }

    /// Parse one RPSL object from text (inverse of
    /// [`RpslObject::to_rpsl`]).
    pub fn parse(text: &str) -> Option<RpslObject> {
        let mut kind: Option<&str> = None;
        let mut asn: Option<Asn> = None;
        let mut as_name = String::new();
        let mut name = String::new();
        let mut members: Vec<Asn> = Vec::new();
        let mut sets: Vec<String> = Vec::new();
        let mut imports: Vec<PolicyLine> = Vec::new();
        let mut exports: Vec<PolicyLine> = Vec::new();
        let mut prefix: Option<Prefix> = None;
        let mut origin: Option<Asn> = None;
        let mut source = Source::Ripe;
        for line in text.lines() {
            let Some((key, value)) = line.split_once(':') else {
                continue;
            };
            let (key, value) = (key.trim(), value.trim());
            match key {
                "aut-num" => {
                    kind = Some("aut-num");
                    asn = value.parse().ok();
                }
                "as-name" => as_name = value.to_string(),
                "as-set" => {
                    kind = Some("as-set");
                    name = value.to_string();
                }
                "members" => {
                    for tok in value.split(',') {
                        let tok = tok.trim();
                        if tok.is_empty() {
                            continue;
                        }
                        // A bare ASN parses; anything else is a set name.
                        match tok.parse::<Asn>() {
                            Ok(a)
                                if tok.to_ascii_uppercase().starts_with("AS")
                                    && !tok.contains('-') =>
                            {
                                members.push(a)
                            }
                            _ => sets.push(tok.to_string()),
                        }
                    }
                }
                "import" => {
                    if let Some(l) = parse_policy_line(value, "from", "accept", "ANY") {
                        imports.push(l);
                    }
                }
                "export" => {
                    if let Some(l) = parse_policy_line(value, "to", "announce", "AS-SELF") {
                        exports.push(l);
                    }
                }
                "route" => {
                    kind = Some("route");
                    prefix = value.parse().ok();
                }
                "origin" => origin = value.parse().ok(),
                "source" => {
                    source = match value {
                        "ARIN" => Source::Arin,
                        "RADB" => Source::Radb,
                        _ => Source::Ripe,
                    }
                }
                _ => {}
            }
        }
        match kind? {
            "aut-num" => Some(RpslObject::AutNum {
                asn: asn?,
                as_name,
                imports,
                exports,
                source,
            }),
            "as-set" => Some(RpslObject::AsSet {
                name,
                members,
                sets,
                source,
            }),
            "route" => Some(RpslObject::Route {
                prefix: prefix?,
                origin: origin?,
                source,
            }),
            _ => None,
        }
    }
}

fn parse_policy_line(value: &str, dir: &str, verb: &str, allow_word: &str) -> Option<PolicyLine> {
    // "from AS123 accept ANY" / "to AS123 announce NOT ANY"
    let rest = value.strip_prefix(dir)?.trim();
    let (peer_str, action) = rest.split_once(' ')?;
    let peer: Asn = peer_str.trim().parse().ok()?;
    let action = action.trim().strip_prefix(verb)?.trim();
    let allow = !action.starts_with("NOT") && (action == allow_word || action == "ANY");
    Some(PolicyLine { peer, allow })
}

/// A registry: a pile of objects with lookup helpers.
#[derive(Debug, Clone, Default)]
pub struct IrrDatabase {
    /// All objects, in registration order.
    pub objects: Vec<RpslObject>,
}

impl IrrDatabase {
    /// Find an aut-num.
    pub fn aut_num(&self, asn: Asn) -> Option<&RpslObject> {
        self.objects
            .iter()
            .find(|o| matches!(o, RpslObject::AutNum { asn: a, .. } if *a == asn))
    }

    /// Find an as-set by name.
    pub fn as_set(&self, name: &str) -> Option<&RpslObject> {
        self.objects
            .iter()
            .find(|o| matches!(o, RpslObject::AsSet { name: n, .. } if n == name))
    }

    /// Resolve an as-set to its full ASN membership (nested sets
    /// followed, cycles tolerated).
    pub fn resolve_as_set(&self, name: &str) -> Vec<Asn> {
        let mut out: Vec<Asn> = Vec::new();
        let mut seen_sets: Vec<String> = Vec::new();
        let mut stack = vec![name.to_string()];
        while let Some(n) = stack.pop() {
            if seen_sets.contains(&n) {
                continue;
            }
            seen_sets.push(n.clone());
            if let Some(RpslObject::AsSet { members, sets, .. }) = self.as_set(&n) {
                out.extend(members.iter().copied());
                stack.extend(sets.iter().cloned());
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// ASes whose aut-num exports toward `target` — the LINX recovery
    /// trick ("searching the IRR records of LINX's members for AS8714").
    pub fn ases_exporting_to(&self, target: Asn) -> Vec<Asn> {
        let mut out: Vec<Asn> = self
            .objects
            .iter()
            .filter_map(|o| match o {
                RpslObject::AutNum { asn, exports, .. }
                    if exports.iter().any(|l| l.peer == target && l.allow) =>
                {
                    Some(*asn)
                }
                _ => None,
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Serialize the whole database.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        for o in &self.objects {
            s.push_str(&o.to_rpsl());
            s.push('\n');
        }
        s
    }

    /// Parse a whole database (objects separated by blank lines).
    pub fn parse(text: &str) -> IrrDatabase {
        let objects = text
            .split("\n\n")
            .filter(|b| !b.trim().is_empty())
            .filter_map(RpslObject::parse)
            .collect();
        IrrDatabase { objects }
    }
}

/// IRR build knobs.
#[derive(Debug, Clone)]
pub struct IrrConfig {
    /// RNG seed.
    pub seed: u64,
    /// Fraction of RS members dropped from as-sets (stale records).
    pub staleness_drop: f64,
    /// Fraction of extra former members lingering in as-sets.
    pub staleness_linger: f64,
    /// Fraction of AMS-IX RS members that use IRR-based filtering
    /// (the paper extracted 230 of 444).
    pub amsix_irr_frac: f64,
}

impl Default for IrrConfig {
    fn default() -> Self {
        IrrConfig {
            seed: 99,
            staleness_drop: 0.03,
            staleness_linger: 0.02,
            amsix_irr_frac: 0.52,
        }
    }
}

/// Build the registries from an ecosystem:
///
/// * one `AS-<IXP>-RS` as-set per member-list-publishing IXP (with
///   staleness injected);
/// * aut-num objects for every RS member, with an export line toward
///   each route server they session with (how LINX membership is
///   recovered);
/// * full per-peer import/export filter lines for the AMS-IX members
///   that "use IRR filtering" (§4.4's input);
/// * route objects for member prefixes.
pub fn build_irr(eco: &Ecosystem, cfg: &IrrConfig) -> BTreeMap<Source, IrrDatabase> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut dbs: BTreeMap<Source, IrrDatabase> = BTreeMap::new();
    dbs.insert(Source::Ripe, IrrDatabase::default());
    dbs.insert(Source::Arin, IrrDatabase::default());
    dbs.insert(Source::Radb, IrrDatabase::default());

    // as-sets per IXP.
    for ixp in &eco.ixps {
        if !ixp.publishes_member_list {
            continue;
        }
        let mut members: Vec<Asn> = Vec::new();
        for m in ixp.rs_member_asns() {
            if rng.gen_bool(cfg.staleness_drop) {
                continue; // stale: missing
            }
            members.push(m);
        }
        // Lingering former members: non-members of this IXP.
        let all: Vec<Asn> = eco.all_member_asns().into_iter().collect();
        for a in all {
            if !ixp.members.contains_key(&a) && rng.gen_bool(cfg.staleness_linger / 10.0) {
                members.push(a);
            }
        }
        members.sort_unstable();
        members.dedup();
        let name = format!("AS-{}-RS", ixp.name.to_uppercase().replace(['-', '.'], ""));
        dbs.get_mut(&Source::Ripe)
            .unwrap()
            .objects
            .push(RpslObject::AsSet {
                name,
                members,
                sets: Vec::new(),
                source: Source::Ripe,
            });
    }

    // aut-num per RS member with RS export lines; AMS-IX members get
    // full per-peer filters.
    let amsix = eco.ixp_by_name("AMS-IX");
    for asn in eco.all_rs_member_asns() {
        let mut exports = Vec::new();
        let mut imports = Vec::new();
        for ixp in &eco.ixps {
            if let Some(m) = ixp.member(asn) {
                if m.rs_member {
                    exports.push(PolicyLine {
                        peer: ixp.route_server.asn,
                        allow: true,
                    });
                    imports.push(PolicyLine {
                        peer: ixp.route_server.asn,
                        allow: true,
                    });
                }
            }
        }
        if let Some(amsix) = amsix {
            if let Some(m) = amsix.member(asn) {
                if m.rs_member && rng.gen_bool(cfg.amsix_irr_frac) {
                    // Full per-peer filters, mirroring router config.
                    for peer in amsix.rs_member_asns() {
                        if peer == asn {
                            continue;
                        }
                        exports.push(PolicyLine {
                            peer,
                            allow: m.export.allows(peer),
                        });
                        imports.push(PolicyLine {
                            peer,
                            allow: m.import.accepts(peer),
                        });
                    }
                }
            }
        }
        let source = match asn.value() % 10 {
            0..=6 => Source::Ripe,
            7..=8 => Source::Radb,
            _ => Source::Arin,
        };
        dbs.get_mut(&source)
            .unwrap()
            .objects
            .push(RpslObject::AutNum {
                asn,
                as_name: format!("NET-{}", asn.value()),
                imports,
                exports,
                source,
            });
        // A route object for the member's first prefix.
        if let Some(&p) = eco.internet.prefixes_of(asn).first() {
            dbs.get_mut(&source)
                .unwrap()
                .objects
                .push(RpslObject::Route {
                    prefix: p,
                    origin: asn,
                    source,
                });
        }
    }
    dbs
}

/// Reconstruct a member's AMS-IX export policy from its IRR lines — the
/// §4.4 comparison input.
pub fn export_policy_from_lines(lines: &[PolicyLine], rs_members: &[Asn]) -> ExportPolicy {
    let denied: std::collections::BTreeSet<Asn> =
        lines.iter().filter(|l| !l.allow).map(|l| l.peer).collect();
    let allowed: std::collections::BTreeSet<Asn> = lines
        .iter()
        .filter(|l| l.allow && rs_members.contains(&l.peer))
        .map(|l| l.peer)
        .collect();
    if denied.is_empty() {
        ExportPolicy::AllMembers
    } else if denied.len() > allowed.len() {
        ExportPolicy::OnlyTo(allowed)
    } else {
        ExportPolicy::AllExcept(denied)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlpeer_ixp::EcosystemConfig;

    #[test]
    fn rpsl_roundtrip_aut_num() {
        let obj = RpslObject::AutNum {
            asn: Asn(8359),
            as_name: "MTS".into(),
            imports: vec![PolicyLine {
                peer: Asn(6777),
                allow: true,
            }],
            exports: vec![
                PolicyLine {
                    peer: Asn(6777),
                    allow: true,
                },
                PolicyLine {
                    peer: Asn(5410),
                    allow: false,
                },
            ],
            source: Source::Ripe,
        };
        let text = obj.to_rpsl();
        assert!(
            text.contains("export:         to AS5410 announce NOT ANY"),
            "{text}"
        );
        assert_eq!(RpslObject::parse(&text), Some(obj));
    }

    #[test]
    fn rpsl_roundtrip_as_set_and_route() {
        let set = RpslObject::AsSet {
            name: "AS-DECIX-RS".into(),
            members: vec![Asn(8359), Asn(8447)],
            sets: vec!["AS-FOO".into()],
            source: Source::Radb,
        };
        assert_eq!(RpslObject::parse(&set.to_rpsl()), Some(set));
        let route = RpslObject::Route {
            prefix: "193.34.0.0/22".parse().unwrap(),
            origin: Asn(8359),
            source: Source::Arin,
        };
        assert_eq!(RpslObject::parse(&route.to_rpsl()), Some(route));
    }

    #[test]
    fn database_roundtrip_and_resolution() {
        let mut db = IrrDatabase::default();
        db.objects.push(RpslObject::AsSet {
            name: "AS-TOP".into(),
            members: vec![Asn(1)],
            sets: vec!["AS-SUB".into(), "AS-TOP".into()], // self-cycle tolerated
            source: Source::Ripe,
        });
        db.objects.push(RpslObject::AsSet {
            name: "AS-SUB".into(),
            members: vec![Asn(2), Asn(3)],
            sets: vec![],
            source: Source::Ripe,
        });
        let parsed = IrrDatabase::parse(&db.to_text());
        assert_eq!(parsed.objects.len(), 2);
        assert_eq!(
            parsed.resolve_as_set("AS-TOP"),
            vec![Asn(1), Asn(2), Asn(3)]
        );
        assert!(parsed.as_set("AS-NOPE").is_none());
    }

    #[test]
    fn build_produces_ixp_sets_and_linx_recovery() {
        let eco = Ecosystem::generate(EcosystemConfig::tiny(41));
        let dbs = build_irr(&eco, &IrrConfig::default());
        let ripe = &dbs[&Source::Ripe];
        // DE-CIX publishes a set; LINX does not.
        let decix_set = ripe.resolve_as_set("AS-DECIX-RS");
        assert!(!decix_set.is_empty());
        assert!(ripe.as_set("AS-LINX-RS").is_none());
        // But LINX membership is recoverable from aut-num export lines.
        let linx = eco.ixp_by_name("LINX").unwrap();
        let mut recovered = Vec::new();
        for db in dbs.values() {
            recovered.extend(db.ases_exporting_to(linx.route_server.asn));
        }
        recovered.sort_unstable();
        recovered.dedup();
        assert!(
            !recovered.is_empty(),
            "LINX members recoverable via AS8714-style search"
        );
        for a in &recovered {
            assert!(
                linx.member(*a).is_some_and(|m| m.rs_member),
                "recovered {a} is a real LINX RS member"
            );
        }
    }

    #[test]
    fn as_set_staleness_is_bounded() {
        let eco = Ecosystem::generate(EcosystemConfig::tiny(41));
        let dbs = build_irr(&eco, &IrrConfig::default());
        let ripe = &dbs[&Source::Ripe];
        let decix = eco.ixp_by_name("DE-CIX").unwrap();
        let set = ripe.resolve_as_set("AS-DECIX-RS");
        let truth: std::collections::BTreeSet<Asn> = decix.rs_member_asns().into_iter().collect();
        let present = set.iter().filter(|a| truth.contains(a)).count();
        // Mostly accurate (the paper found these sources "accurate and
        // current"), but not perfect.
        assert!(present as f64 >= truth.len() as f64 * 0.85);
    }

    #[test]
    fn amsix_members_have_filter_lines_for_reciprocity_study() {
        let eco = Ecosystem::generate(EcosystemConfig::tiny(41));
        let dbs = build_irr(&eco, &IrrConfig::default());
        let amsix = eco.ixp_by_name("AMS-IX").unwrap();
        let rs_members = amsix.rs_member_asns();
        let mut with_filters = 0;
        for db in dbs.values() {
            for asn in &rs_members {
                if let Some(RpslObject::AutNum { exports, .. }) = db.aut_num(*asn) {
                    if exports
                        .iter()
                        .filter(|l| rs_members.contains(&l.peer))
                        .count()
                        > 1
                    {
                        with_filters += 1;
                    }
                }
            }
        }
        assert!(
            with_filters > 0,
            "some AMS-IX members registered per-peer filters"
        );
    }

    #[test]
    fn export_policy_reconstruction() {
        let members = vec![Asn(1), Asn(2), Asn(3), Asn(4)];
        // AllExcept(2).
        let lines = vec![
            PolicyLine {
                peer: Asn(1),
                allow: true,
            },
            PolicyLine {
                peer: Asn(2),
                allow: false,
            },
            PolicyLine {
                peer: Asn(3),
                allow: true,
            },
            PolicyLine {
                peer: Asn(4),
                allow: true,
            },
        ];
        assert_eq!(
            export_policy_from_lines(&lines, &members),
            ExportPolicy::AllExcept([Asn(2)].into_iter().collect())
        );
        // OnlyTo(1).
        let lines = vec![
            PolicyLine {
                peer: Asn(1),
                allow: true,
            },
            PolicyLine {
                peer: Asn(2),
                allow: false,
            },
            PolicyLine {
                peer: Asn(3),
                allow: false,
            },
            PolicyLine {
                peer: Asn(4),
                allow: false,
            },
        ];
        assert_eq!(
            export_policy_from_lines(&lines, &members),
            ExportPolicy::OnlyTo([Asn(1)].into_iter().collect())
        );
        assert_eq!(
            export_policy_from_lines(&[], &members),
            ExportPolicy::AllMembers
        );
    }
}
