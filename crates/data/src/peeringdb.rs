//! PeeringDB.
//!
//! The registry where networks self-report peering policy, geographic
//! scope and looking-glass addresses. The paper pulls from it: the
//! policy labels behind Figs. 9–11 (coverage was partial: 904 of 1,667
//! IXP members), the geographic scopes of Fig. 13, and the 70 validation
//! looking glasses of §5.1.

use std::collections::BTreeMap;

use mlpeer_bgp::Asn;
use mlpeer_ixp::{Ecosystem, PeeringPolicy};
use mlpeer_topo::graph::GeoScope;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One network record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetworkRecord {
    /// The AS.
    pub asn: Asn,
    /// Display name.
    pub name: String,
    /// Self-reported policy (absent for the uncovered fraction).
    pub policy: Option<PeeringPolicy>,
    /// Self-reported geographic scope (`NotReported` when unset).
    pub scope: GeoScope,
    /// Looking-glass URL if the network runs one.
    pub lg_url: Option<String>,
    /// IXPs the network lists itself at.
    pub ixps: Vec<String>,
}

/// The registry.
#[derive(Debug, Clone, Default)]
pub struct PeeringDb {
    records: BTreeMap<Asn, NetworkRecord>,
}

/// Build knobs.
#[derive(Debug, Clone)]
pub struct PeeringDbConfig {
    /// RNG seed.
    pub seed: u64,
    /// Fraction of members with a reported policy (904/1667 ≈ 0.54).
    pub policy_coverage: f64,
    /// Fraction of members that registered no geographic scope.
    pub scope_missing: f64,
    /// Number of networks advertising a looking glass (70 in §5.1).
    pub lg_count: usize,
}

impl Default for PeeringDbConfig {
    fn default() -> Self {
        PeeringDbConfig {
            seed: 17,
            policy_coverage: 0.54,
            scope_missing: 0.12,
            lg_count: 70,
        }
    }
}

impl PeeringDb {
    /// Build from an ecosystem. Reported policies come from the
    /// ecosystem's (possibly misreported) `reported_policies`; coverage
    /// and scope gaps are injected here.
    pub fn build(eco: &Ecosystem, cfg: &PeeringDbConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut records = BTreeMap::new();
        let members: Vec<Asn> = eco.all_member_asns().into_iter().collect();
        let lg_count = cfg.lg_count.min(members.len());
        // LG operators: prefer RS members (they are "relevant to the
        // inferred links", §5.1).
        let mut lg_holders: Vec<Asn> = eco.all_rs_member_asns().into_iter().collect();
        lg_holders.truncate(lg_count);
        for asn in &members {
            let covered = rng.gen_bool(cfg.policy_coverage);
            let policy = if covered {
                eco.reported_policies.get(asn).copied()
            } else {
                None
            };
            let scope = if rng.gen_bool(cfg.scope_missing) {
                GeoScope::NotReported
            } else {
                eco.internet
                    .graph
                    .node(*asn)
                    .map(|n| n.scope)
                    .unwrap_or(GeoScope::NotReported)
            };
            let lg_url = if lg_holders.contains(asn) {
                Some(format!("https://lg.as{}.sim/", asn.value()))
            } else {
                None
            };
            let ixps: Vec<String> = eco
                .ixps
                .iter()
                .filter(|x| x.members.contains_key(asn))
                .map(|x| x.name.clone())
                .collect();
            records.insert(
                *asn,
                NetworkRecord {
                    asn: *asn,
                    name: format!("NET-{}", asn.value()),
                    policy,
                    scope,
                    lg_url,
                    ixps,
                },
            );
        }
        PeeringDb { records }
    }

    /// Look up a network.
    pub fn get(&self, asn: Asn) -> Option<&NetworkRecord> {
        self.records.get(&asn)
    }

    /// All records, ascending by ASN.
    pub fn iter(&self) -> impl Iterator<Item = &NetworkRecord> {
        self.records.values()
    }

    /// Networks advertising a looking glass (the §5.1 discovery query).
    pub fn networks_with_lg(&self) -> Vec<&NetworkRecord> {
        self.records
            .values()
            .filter(|r| r.lg_url.is_some())
            .collect()
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Is the registry empty?
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Count of records with a reported policy.
    pub fn policy_coverage_count(&self) -> usize {
        self.records.values().filter(|r| r.policy.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlpeer_ixp::EcosystemConfig;

    fn db() -> (Ecosystem, PeeringDb) {
        let eco = Ecosystem::generate(EcosystemConfig::tiny(51));
        let db = PeeringDb::build(&eco, &PeeringDbConfig::default());
        (eco, db)
    }

    #[test]
    fn covers_all_members_with_partial_policies() {
        let (eco, db) = db();
        assert_eq!(db.len(), eco.all_member_asns().len());
        let covered = db.policy_coverage_count();
        let frac = covered as f64 / db.len() as f64;
        assert!(
            (0.35..0.75).contains(&frac),
            "policy coverage {frac:.2} (target ≈ 0.54)"
        );
    }

    #[test]
    fn records_list_ixps_consistently() {
        let (eco, db) = db();
        for rec in db.iter().take(40) {
            for ixp_name in &rec.ixps {
                let ixp = eco.ixp_by_name(ixp_name).unwrap();
                assert!(ixp.members.contains_key(&rec.asn));
            }
        }
    }

    #[test]
    fn some_scopes_not_reported() {
        let (_, db) = db();
        let na = db
            .iter()
            .filter(|r| r.scope == GeoScope::NotReported)
            .count();
        assert!(na > 0, "the Fig. 13 N/A bucket must exist");
    }

    #[test]
    fn lg_holders_bounded_and_queryable() {
        let (_, db) = db();
        let lgs = db.networks_with_lg();
        assert!(!lgs.is_empty() && lgs.len() <= 70);
        for r in lgs {
            assert!(r
                .lg_url
                .as_ref()
                .unwrap()
                .contains(&r.asn.value().to_string()));
        }
    }

    #[test]
    fn deterministic() {
        let eco = Ecosystem::generate(EcosystemConfig::tiny(51));
        let a = PeeringDb::build(&eco, &PeeringDbConfig::default());
        let b = PeeringDb::build(&eco, &PeeringDbConfig::default());
        assert_eq!(a.policy_coverage_count(), b.policy_coverage_count());
        assert_eq!(
            a.iter().map(|r| r.asn).collect::<Vec<_>>(),
            b.iter().map(|r| r.asn).collect::<Vec<_>>()
        );
    }
}
