//! # `mlpeer-data` — measurement data-source substrates
//!
//! The paper's pipeline consumes *public measurement data*: Route Views
//! / RIPE RIS archives, looking glasses, the IRR, PeeringDB, and
//! traceroute-derived topologies. None of the 2013 data exists here, so
//! this crate rebuilds each source as a faithful-in-shape simulator fed
//! by an [`mlpeer_ixp::Ecosystem`]:
//!
//! * [`sim`] — the shared routing simulation: grafts every IXP's
//!   route-server and bilateral sessions onto the AS graph and answers
//!   "what does AS X's best route to origin O look like", with
//!   community attachment exactly where a real route would carry it.
//! * [`collector`] — Route Views / RIS style collectors: vantage points
//!   with full or customer-only feeds, RS feeders (§4.2), MRT archives.
//! * [`lg`] — looking glasses: IXP route-server LGs and member LGs,
//!   `show ip bgp` text rendering *and* parsing (the paper scripted
//!   HTTP queries and scraped responses), all-paths vs best-path
//!   display, token-bucket rate limiting, query accounting for §4.3.
//! * [`irr`] — RPSL registries (RIPE/ARIN/RADB): aut-num, as-set and
//!   route objects, serializer + parser, IRR-based AMS-IX filters for
//!   the §4.4 reciprocity study, staleness injection.
//! * [`roa`] — RPKI Route Origin Authorizations: RFC 6811 origin
//!   validation (Valid/Invalid/NotFound, max-length, expiry) plus the
//!   line format the cross-validation corpus embeds them in.
//! * [`peeringdb`] — the PeeringDB registry: self-reported policies
//!   (partial coverage, sometimes misreported), geographic scope,
//!   looking-glass URLs.
//! * [`traceroute`] — Ark/DIMES style AS-link datasets, reproducing the
//!   artifact that route-server links appear as member–RS-ASN links.
//! * [`geo`] — MaxMind-style prefix geolocation for the validation
//!   campaign's geographically diverse prefix picks (§5.1).
//! * [`churn`] — the seeded churn model for live mode: valid
//!   join/leave/retune/originate/withdraw schedules over a mutable
//!   ecosystem, rendered as the BGP session traffic
//!   ([`mlpeer_bgp::stream`]) the incremental inferencer consumes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;
pub mod collector;
pub mod geo;
pub mod irr;
pub mod lg;
pub mod peeringdb;
pub mod roa;
pub mod sim;
pub mod traceroute;

pub use geo::GeoDb;
pub use sim::Sim;
