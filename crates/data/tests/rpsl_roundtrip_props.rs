//! Property tests for the RPSL / ROA line formats: arbitrary objects
//! round-trip through render→parse, and the parsers never panic on
//! truncated or byte-corrupted input — they are the untrusted-text
//! edge of the validation corpus, so "reject, don't crash" is the
//! contract (the corpus's `sig:` layer handles *detecting* damage; the
//! parsers only have to survive it).
//!
//! Written as seeded randomized-input loops over the vendored `rand`
//! (the offline build has no proptest); every case is deterministic
//! and a failure prints enough to replay.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mlpeer_bgp::{Asn, Prefix};
use mlpeer_data::irr::{PolicyLine, RpslObject, Source};
use mlpeer_data::roa::Roa;

fn arb_asn(rng: &mut StdRng) -> Asn {
    Asn(rng.gen_range(1u32..4_000_000_000))
}

fn arb_prefix(rng: &mut StdRng) -> Prefix {
    let addr: u32 = rng.gen();
    let len = rng.gen_range(0..=32u8);
    Prefix::from_u32(addr, len).unwrap()
}

fn arb_source(rng: &mut StdRng) -> Source {
    match rng.gen_range(0..3u8) {
        0 => Source::Ripe,
        1 => Source::Radb,
        _ => Source::Arin,
    }
}

fn arb_policy_lines(rng: &mut StdRng) -> Vec<PolicyLine> {
    (0..rng.gen_range(0..6usize))
        .map(|_| PolicyLine {
            peer: arb_asn(rng),
            allow: rng.gen(),
        })
        .collect()
}

/// An object the renderer can produce — names stay in the grammar the
/// parser classifies on (set names are `AS-…`, AS names are bare
/// alphanumerics), exactly like every real corpus block.
fn arb_object(rng: &mut StdRng) -> RpslObject {
    match rng.gen_range(0..3u8) {
        0 => RpslObject::AutNum {
            asn: arb_asn(rng),
            as_name: format!("MLP-AS{}", rng.gen_range(1u32..1_000_000)),
            imports: arb_policy_lines(rng),
            exports: arb_policy_lines(rng),
            source: arb_source(rng),
        },
        1 => RpslObject::AsSet {
            name: format!("AS-SET{}-RS", rng.gen_range(0u32..10_000)),
            members: (0..rng.gen_range(0..8usize))
                .map(|_| arb_asn(rng))
                .collect(),
            sets: (0..rng.gen_range(0..3usize))
                .map(|_| format!("AS-NESTED{}", rng.gen_range(0u32..10_000)))
                .collect(),
            source: arb_source(rng),
        },
        _ => RpslObject::Route {
            prefix: arb_prefix(rng),
            origin: arb_asn(rng),
            source: arb_source(rng),
        },
    }
}

fn arb_roa(rng: &mut StdRng) -> Roa {
    let prefix = arb_prefix(rng);
    Roa {
        prefix,
        max_length: rng.gen_range(prefix.len()..=32),
        origin: arb_asn(rng),
        expired: rng.gen(),
    }
}

#[test]
fn rpsl_objects_round_trip_render_then_parse() {
    let mut rng = StdRng::seed_from_u64(0x5959);
    for case in 0..256 {
        let obj = arb_object(&mut rng);
        let text = obj.to_rpsl();
        assert_eq!(
            RpslObject::parse(&text),
            Some(obj.clone()),
            "case {case}: {text}"
        );
    }
}

#[test]
fn roas_round_trip_render_then_parse() {
    let mut rng = StdRng::seed_from_u64(0x6060);
    for case in 0..256 {
        let roa = arb_roa(&mut rng);
        let text = roa.to_text();
        assert_eq!(Roa::parse(&text), Some(roa.clone()), "case {case}: {text}");
    }
}

#[test]
fn every_truncation_of_rendered_text_parses_without_panic() {
    let mut rng = StdRng::seed_from_u64(0x6161);
    for _ in 0..64 {
        let obj_text = arb_object(&mut rng).to_rpsl();
        for cut in 0..obj_text.len() {
            // No assertion on the value: a truncated block may parse
            // to a *different* object (a digit cut in half), which the
            // corpus's signature layer rejects upstream. The parser's
            // own contract is only "never panic".
            let _ = RpslObject::parse(&obj_text[..cut]);
        }
        let roa_text = arb_roa(&mut rng).to_text();
        for cut in 0..roa_text.len() {
            let _ = Roa::parse(&roa_text[..cut]);
        }
    }
}

#[test]
fn single_byte_corruption_parses_without_panic() {
    let mut rng = StdRng::seed_from_u64(0x6262);
    for _ in 0..64 {
        let obj = arb_object(&mut rng);
        let text = obj.to_rpsl();
        for _ in 0..32 {
            let mut bytes = text.as_bytes().to_vec();
            let pos = rng.gen_range(0..bytes.len());
            // Stay in printable ASCII so the damaged text is still a
            // valid &str — byte-level (non-UTF-8) damage cannot reach
            // the parser, which only accepts &str.
            bytes[pos] = rng.gen_range(0x20u8..0x7f);
            let damaged = String::from_utf8(bytes).unwrap();
            let _ = RpslObject::parse(&damaged);
        }
        let roa = arb_roa(&mut rng);
        let text = roa.to_text();
        for _ in 0..32 {
            let mut bytes = text.as_bytes().to_vec();
            let pos = rng.gen_range(0..bytes.len());
            bytes[pos] = rng.gen_range(0x20u8..0x7f);
            let damaged = String::from_utf8(bytes).unwrap();
            let _ = Roa::parse(&damaged);
        }
    }
}
