//! The calibrated European IXP ecosystem.
//!
//! Builds the measurement target of the paper: the 13 large European
//! IXPs of Table 2 populated from a synthetic internet, with
//!
//! * member and RS-member counts matching Table 2 (scalable for tests);
//! * the self-reported-policy mix of §5.2 (72 % open / 24 % selective /
//!   4 % restrictive) driving both RS participation rates (Fig. 9) and
//!   export-filter shapes (the bimodal pattern of Fig. 11);
//! * repellers (§5.5): EXCLUDE targets drawn from the blocker's customer
//!   cone (77 % in the paper), direct customers (12 %), and content
//!   giants — including a Google-like AS blocked by members that prefer
//!   their direct private peering with it;
//! * a region-scoped-policy case study (the paper's AS9002: open in
//!   Western Europe, closed in Eastern Europe);
//! * hybrid transit-over-IXP pairs for the §5.6 study;
//! * failure-injection knobs: implicit-ALL members (bare EXCLUDE lists),
//!   per-prefix policy overrides, community-stripping members, an
//!   optional Netnod-style stripping IXP and VIX-style portal IXP.
//!
//! Everything derives deterministically from one seed.

use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

use mlpeer_bgp::{AsPath, Asn, Prefix};
use mlpeer_topo::gen::{Internet, InternetConfig};
use mlpeer_topo::graph::{Region, Tier};
use mlpeer_topo::propagate::ExtraPeerEdge;
use mlpeer_topo::relationship::Relationship;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::ixp::{Ixp, IxpId};
use crate::member::{IxpMember, MemberAnnouncement};
use crate::policy::{ExportPolicy, ImportFilter};
use crate::route_server::RouteServer;
use crate::scheme::{CommunityScheme, SchemeStyle};

/// A network's peering policy, as used in PeeringDB self-reports (§5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum PeeringPolicy {
    /// Peers with anyone.
    Open,
    /// Peers subject to conditions (traffic ratios, volume).
    Selective,
    /// Peers only by explicit arrangement.
    Restrictive,
}

impl std::fmt::Display for PeeringPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            PeeringPolicy::Open => "Open",
            PeeringPolicy::Selective => "Selective",
            PeeringPolicy::Restrictive => "Restrictive",
        })
    }
}

/// Static description of one IXP to build (Table 2 row).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IxpSpec {
    /// IXP name.
    pub name: String,
    /// Home region.
    pub region: Region,
    /// Route-server ASN (16-bit).
    pub rs_asn: u32,
    /// Member count target (the "ASes" column).
    pub members_target: usize,
    /// RS-member count target (the "RS" column).
    pub rs_target: usize,
    /// Does the IXP run a public RS looking glass (the "LG" column)?
    pub has_lg: bool,
    /// Offset-style community scheme (ECIX) instead of rs-asn style.
    pub offset_style: bool,
    /// Does the IXP publish its member list (LINX does not)?
    pub publishes_member_list: bool,
    /// Netnod-style community stripping on RS egress.
    pub strips_communities: bool,
    /// VIX-style web-portal filters: no RS communities anywhere.
    pub filter_portal: bool,
}

impl IxpSpec {
    fn new(
        name: &str,
        region: Region,
        rs_asn: u32,
        members_target: usize,
        rs_target: usize,
        has_lg: bool,
    ) -> Self {
        IxpSpec {
            name: name.to_string(),
            region,
            rs_asn,
            members_target,
            rs_target,
            has_lg,
            offset_style: false,
            publishes_member_list: true,
            strips_communities: false,
            filter_portal: false,
        }
    }
}

/// The 13 IXPs of Table 2. RS ASNs for DE-CIX (6695), MSK-IX (8631),
/// ECIX (9033) and LINX (8714) are the paper's; the rest are plausible
/// stand-ins.
pub fn paper_ixp_specs() -> Vec<IxpSpec> {
    use Region::*;
    let mut v = vec![
        IxpSpec::new("AMS-IX", WesternEurope, 6777, 574, 444, false),
        IxpSpec::new("DE-CIX", WesternEurope, 6695, 483, 369, true),
        IxpSpec::new("LINX", WesternEurope, 8714, 457, 177, false),
        IxpSpec::new("MSK-IX", EasternEurope, 8631, 374, 348, true),
        IxpSpec::new("PLIX", EasternEurope, 8545, 222, 211, true),
        IxpSpec::new("France-IX", WesternEurope, 51706, 193, 169, true),
        IxpSpec::new("LONAP", WesternEurope, 8550, 120, 109, false),
        IxpSpec::new("ECIX", WesternEurope, 9033, 102, 83, true),
        IxpSpec::new("SPB-IX", EasternEurope, 43690, 89, 78, true),
        IxpSpec::new("DTEL-IX", EasternEurope, 31210, 74, 71, true),
        IxpSpec::new("TOP-IX", SouthernEurope, 5397, 71, 52, true),
        IxpSpec::new("STHIX", NorthernEurope, 52005, 69, 42, false),
        IxpSpec::new("BIX.BG", EasternEurope, 57463, 53, 52, true),
    ];
    // ECIX uses the offset scheme (Table 1); LINX hides its member list
    // (Table 2's asterisk).
    v.iter_mut()
        .find(|s| s.name == "ECIX")
        .unwrap()
        .offset_style = true;
    v.iter_mut()
        .find(|s| s.name == "LINX")
        .unwrap()
        .publishes_member_list = false;
    v
}

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct EcosystemConfig {
    /// Seed for everything IXP-level (independent of the internet seed).
    pub seed: u64,
    /// The underlying internet.
    pub internet: InternetConfig,
    /// IXPs to build.
    pub specs: Vec<IxpSpec>,
    /// Scale factor on member targets (1.0 = Table 2 scale).
    pub scale: f64,
    /// Fraction of members that omit the redundant explicit ALL tag.
    pub frac_implicit_all: f64,
    /// Fraction of RS members with rare per-prefix policy deviations.
    pub per_prefix_override_frac: f64,
    /// Fraction of members that strip communities when re-exporting
    /// routes onward (failure injection for passive inference).
    pub frac_stripping_members: f64,
    /// Cap on announced prefixes per member (real members filter what
    /// they send to the RS).
    pub max_announcements: usize,
    /// Append a Netnod-style community-stripping IXP (not among the 13;
    /// used to test the §5.8 limitation).
    pub include_stripping_ixp: bool,
    /// Append a VIX-style portal-filter IXP (same purpose).
    pub include_portal_ixp: bool,
}

impl EcosystemConfig {
    /// Full Table 2 scale.
    pub fn paper_scale(seed: u64) -> Self {
        EcosystemConfig {
            seed,
            internet: InternetConfig {
                seed: seed.wrapping_mul(31).wrapping_add(7),
                ..InternetConfig::default()
            },
            specs: paper_ixp_specs(),
            scale: 1.0,
            frac_implicit_all: 0.25,
            per_prefix_override_frac: 0.005,
            frac_stripping_members: 0.02,
            max_announcements: 400,
            include_stripping_ixp: false,
            include_portal_ixp: false,
        }
    }

    /// Tiny scale for unit tests (~8–45 members per IXP).
    pub fn tiny(seed: u64) -> Self {
        EcosystemConfig {
            scale: 0.08,
            internet: InternetConfig::tiny(seed.wrapping_mul(31).wrapping_add(7)),
            max_announcements: 60,
            ..EcosystemConfig::paper_scale(seed)
        }
    }

    /// Quarter scale for integration tests.
    pub fn small(seed: u64) -> Self {
        EcosystemConfig {
            scale: 0.25,
            internet: InternetConfig::small(seed.wrapping_mul(31).wrapping_add(7)),
            max_announcements: 150,
            ..EcosystemConfig::paper_scale(seed)
        }
    }

    /// Half scale for serving/indexing benchmarks.
    pub fn medium(seed: u64) -> Self {
        EcosystemConfig {
            scale: 0.5,
            internet: InternetConfig::medium(seed.wrapping_mul(31).wrapping_add(7)),
            max_announcements: 250,
            ..EcosystemConfig::paper_scale(seed)
        }
    }

    /// Three-quarter scale: the benchmark scale axis's second point
    /// (between [`medium`](EcosystemConfig::medium) and full
    /// [`paper_scale`](EcosystemConfig::paper_scale)).
    pub fn large(seed: u64) -> Self {
        EcosystemConfig {
            scale: 0.75,
            internet: InternetConfig::large(seed.wrapping_mul(31).wrapping_add(7)),
            max_announcements: 320,
            ..EcosystemConfig::paper_scale(seed)
        }
    }
}

/// The generated ecosystem.
#[derive(Debug, Clone)]
pub struct Ecosystem {
    /// The underlying internet (graph + prefix ownership).
    pub internet: Internet,
    /// The IXPs, indexed by `IxpId(i)`.
    pub ixps: Vec<Ixp>,
    /// True behavioral peering policy of every AS.
    pub policies: BTreeMap<Asn, PeeringPolicy>,
    /// Policy each AS *reports* (sometimes stricter than behavior —
    /// the §5.2/Fig. 11 mismatch).
    pub reported_policies: BTreeMap<Asn, PeeringPolicy>,
    /// The widely-blocked content giant (the paper's AS15169 analog).
    pub google_like: Asn,
    /// The second content giant (AS20940 / Akamai analog).
    pub akamai_like: Asn,
    /// The region-scoped-policy case study (AS9002 analog).
    pub regional_case: Asn,
    /// Hybrid transit-over-IXP pairs `(provider, customer, ixp)` (§5.6).
    pub hybrid_pairs: Vec<(Asn, Asn, IxpId)>,
    /// Providers that define relationship-tagging communities (§5.6
    /// verification coverage).
    pub defines_rel_tags: BTreeSet<Asn>,
}

impl Ecosystem {
    /// Generate deterministically from a configuration.
    pub fn generate(config: EcosystemConfig) -> Self {
        Builder::new(config).run()
    }

    /// IXP by id.
    pub fn ixp(&self, id: IxpId) -> &Ixp {
        &self.ixps[id.0 as usize]
    }

    /// IXP by name.
    pub fn ixp_by_name(&self, name: &str) -> Option<&Ixp> {
        self.ixps.iter().find(|x| x.name == name)
    }

    /// Every AS that is a member of at least one IXP.
    pub fn all_member_asns(&self) -> BTreeSet<Asn> {
        self.ixps.iter().flat_map(|x| x.member_asns()).collect()
    }

    /// Every AS connected to at least one route server.
    pub fn all_rs_member_asns(&self) -> BTreeSet<Asn> {
        self.ixps.iter().flat_map(|x| x.rs_member_asns()).collect()
    }

    /// The IXPs an AS is present at.
    pub fn ixps_of(&self, asn: Asn) -> Vec<IxpId> {
        self.ixps
            .iter()
            .filter(|x| x.members.contains_key(&asn))
            .map(|x| x.id)
            .collect()
    }

    /// How many route servers an AS participates in.
    pub fn rs_participations_of(&self, asn: Asn) -> usize {
        self.ixps
            .iter()
            .filter(|x| x.member(asn).is_some_and(|m| m.rs_member))
            .count()
    }

    /// All ground-truth MLP links (union over IXPs, deduped).
    pub fn all_ground_truth_links(&self) -> BTreeSet<(Asn, Asn)> {
        self.ixps
            .iter()
            .flat_map(|x| x.ground_truth_links())
            .collect()
    }

    /// All mutually-allowed MLP links (what reciprocal inference can
    /// find), deduped across IXPs.
    pub fn all_mutual_links(&self) -> BTreeSet<(Asn, Asn)> {
        self.ixps.iter().flat_map(|x| x.mutual_links()).collect()
    }

    /// Directed peer edges for the propagation layer: RS flows plus
    /// bilateral sessions at every IXP, tagged per IXP.
    pub fn extra_peer_edges(&self) -> Vec<ExtraPeerEdge> {
        let mut out = Vec::new();
        for ixp in &self.ixps {
            let tag = ixp.rs_tag();
            for (a, b) in ixp.directed_flows() {
                out.push(ExtraPeerEdge {
                    exporter: a,
                    receiver: b,
                    tag,
                });
            }
            let btag = ixp.bilateral_tag();
            for (a, b) in ixp.bilateral_links() {
                out.push(ExtraPeerEdge {
                    exporter: a,
                    receiver: b,
                    tag: btag,
                });
                out.push(ExtraPeerEdge {
                    exporter: b,
                    receiver: a,
                    tag: btag,
                });
            }
        }
        out
    }
}

struct Builder {
    cfg: EcosystemConfig,
    rng: StdRng,
    internet: Internet,
    policies: BTreeMap<Asn, PeeringPolicy>,
    announcements: BTreeMap<Asn, Vec<MemberAnnouncement>>,
    cone_cache: BTreeMap<Asn, BTreeSet<Asn>>,
}

impl Builder {
    fn new(cfg: EcosystemConfig) -> Self {
        let internet = Internet::generate(cfg.internet.clone());
        let rng = StdRng::seed_from_u64(cfg.seed);
        Builder {
            cfg,
            rng,
            internet,
            policies: BTreeMap::new(),
            announcements: BTreeMap::new(),
            cone_cache: BTreeMap::new(),
        }
    }

    fn run(mut self) -> Ecosystem {
        self.assign_policies();
        let google_like = self.pick_content_giant(0);
        let akamai_like = self.pick_content_giant(1);
        self.add_private_peering(google_like, 0.35);
        self.add_private_peering(akamai_like, 0.15);
        let regional_case = self.pick_regional_case();

        let mut specs = self.cfg.specs.clone();
        for s in &mut specs {
            s.members_target = ((s.members_target as f64) * self.cfg.scale)
                .round()
                .max(6.0) as usize;
            s.rs_target = ((s.rs_target as f64) * self.cfg.scale).round().max(4.0) as usize;
            s.rs_target = s.rs_target.min(s.members_target);
        }
        if self.cfg.include_stripping_ixp {
            let mut s = IxpSpec::new("NETNOD-SIM", Region::NorthernEurope, 52100, 60, 50, true);
            s.strips_communities = true;
            s.members_target = ((s.members_target as f64) * self.cfg.scale)
                .round()
                .max(6.0) as usize;
            s.rs_target = ((s.rs_target as f64) * self.cfg.scale).round().max(4.0) as usize;
            specs.push(s);
        }
        if self.cfg.include_portal_ixp {
            let mut s = IxpSpec::new("VIX-SIM", Region::WesternEurope, 52101, 60, 50, true);
            s.filter_portal = true;
            s.members_target = ((s.members_target as f64) * self.cfg.scale)
                .round()
                .max(6.0) as usize;
            s.rs_target = ((s.rs_target as f64) * self.cfg.scale).round().max(4.0) as usize;
            specs.push(s);
        }

        let mut ixps = Vec::with_capacity(specs.len());
        for (i, spec) in specs.iter().enumerate() {
            let ixp = self.build_ixp(
                IxpId(i as u16),
                spec,
                google_like,
                akamai_like,
                regional_case,
            );
            ixps.push(ixp);
        }

        let hybrid_pairs = self.find_hybrid_pairs(&ixps);
        let mut defines_rel_tags = BTreeSet::new();
        for (i, (p, _, _)) in hybrid_pairs.iter().enumerate() {
            // Roughly half the providers involved document relationship
            // tags (§5.6 verified 202 of 440).
            if i % 2 == 0 {
                defines_rel_tags.insert(*p);
            }
        }

        let reported_policies = self.misreport_policies();

        Ecosystem {
            internet: self.internet,
            ixps,
            policies: self.policies,
            reported_policies,
            google_like,
            akamai_like,
            regional_case,
            hybrid_pairs,
            defines_rel_tags,
        }
    }

    fn assign_policies(&mut self) {
        let nodes: Vec<(Asn, Tier)> = self
            .internet
            .graph
            .nodes()
            .map(|n| (n.asn, n.tier))
            .collect();
        for (asn, tier) in nodes {
            let roll: f64 = self.rng.gen();
            let policy = match tier {
                Tier::Stub => {
                    if roll < 0.85 {
                        PeeringPolicy::Open
                    } else if roll < 0.97 {
                        PeeringPolicy::Selective
                    } else {
                        PeeringPolicy::Restrictive
                    }
                }
                Tier::Regional => {
                    if roll < 0.75 {
                        PeeringPolicy::Open
                    } else if roll < 0.95 {
                        PeeringPolicy::Selective
                    } else {
                        PeeringPolicy::Restrictive
                    }
                }
                Tier::Content => {
                    if roll < 0.80 {
                        PeeringPolicy::Open
                    } else if roll < 0.95 {
                        PeeringPolicy::Selective
                    } else {
                        PeeringPolicy::Restrictive
                    }
                }
                Tier::Tier2 => {
                    if roll < 0.45 {
                        PeeringPolicy::Open
                    } else if roll < 0.88 {
                        PeeringPolicy::Selective
                    } else {
                        PeeringPolicy::Restrictive
                    }
                }
                Tier::Tier1 => {
                    if roll < 0.10 {
                        PeeringPolicy::Open
                    } else if roll < 0.50 {
                        PeeringPolicy::Selective
                    } else {
                        PeeringPolicy::Restrictive
                    }
                }
            };
            self.policies.insert(asn, policy);
        }
    }

    /// Some networks report a policy stricter than how they behave at
    /// route servers — the mismatch Figs. 9/11 quantify.
    fn misreport_policies(&mut self) -> BTreeMap<Asn, PeeringPolicy> {
        let mut reported = BTreeMap::new();
        for (&asn, &p) in &self.policies {
            let roll: f64 = self.rng.gen();
            let r = match p {
                PeeringPolicy::Open if roll < 0.10 => PeeringPolicy::Selective,
                PeeringPolicy::Open if roll < 0.13 => PeeringPolicy::Restrictive,
                PeeringPolicy::Selective if roll < 0.08 => PeeringPolicy::Restrictive,
                other => other,
            };
            reported.insert(asn, r);
        }
        reported
    }

    fn pick_content_giant(&mut self, rank: usize) -> Asn {
        let mut contents: Vec<Asn> = self
            .internet
            .asns_by_tier(Tier::Content)
            .into_iter()
            .filter(|a| a.is_16bit())
            .collect();
        contents.sort_unstable_by_key(|a| {
            (
                std::cmp::Reverse(self.internet.prefixes_of(*a).len()),
                a.value(),
            )
        });
        let giant = contents[rank.min(contents.len() - 1)];
        // Giants behave openly via route servers (Google invites sub-
        // 100Mbps networks to peer via RS, §3).
        self.policies.insert(giant, PeeringPolicy::Open);
        giant
    }

    /// Give the content giant direct private-peering edges with a
    /// fraction of European transit networks — the reason those networks
    /// later EXCLUDE it at route servers (§5.5).
    fn add_private_peering(&mut self, giant: Asn, frac: f64) {
        let candidates: Vec<Asn> = self
            .internet
            .graph
            .nodes()
            .filter(|n| {
                n.region.is_europe()
                    && matches!(n.tier, Tier::Tier2 | Tier::Regional)
                    && n.asn != giant
            })
            .map(|n| n.asn)
            .collect();
        for cand in candidates {
            if self.rng.gen_bool(frac) && self.internet.graph.relationship(cand, giant).is_none() {
                self.internet.graph.add_edge(cand, giant, Relationship::P2p);
            }
        }
    }

    fn pick_regional_case(&mut self) -> Asn {
        // A European tier-2 with a selective policy: open in the west,
        // closed in the east (the AS9002 story).
        let cand = self
            .internet
            .asns_by_tier(Tier::Tier2)
            .into_iter()
            .find(|a| {
                self.internet
                    .graph
                    .node(*a)
                    .is_some_and(|n| n.region.is_europe())
            })
            .expect("internet has a European tier-2");
        self.policies.insert(cand, PeeringPolicy::Selective);
        cand
    }

    fn cone_of(&mut self, asn: Asn) -> &BTreeSet<Asn> {
        if !self.cone_cache.contains_key(&asn) {
            let cone = mlpeer_topo::cone::customer_cone(&self.internet.graph, asn);
            self.cone_cache.insert(asn, cone);
        }
        &self.cone_cache[&asn]
    }

    /// Member announcements: own prefixes plus the customer cone's, with
    /// customer-chain AS paths, capped at `max_announcements`.
    fn announcements_for(&mut self, asn: Asn) -> Vec<MemberAnnouncement> {
        if let Some(a) = self.announcements.get(&asn) {
            return a.clone();
        }
        let mut out = Vec::new();
        for p in self.internet.prefixes_of(asn) {
            out.push(MemberAnnouncement {
                prefix: *p,
                as_path: AsPath::from_seq([asn]),
            });
        }
        // BFS down the cone recording the customer chain.
        let mut queue = std::collections::VecDeque::new();
        let mut paths: BTreeMap<Asn, Vec<Asn>> = BTreeMap::new();
        paths.insert(asn, vec![asn]);
        queue.push_back(asn);
        let cap = self.cfg.max_announcements;
        'bfs: while let Some(u) = queue.pop_front() {
            for c in self.internet.graph.customers_of(u) {
                if paths.contains_key(&c) {
                    continue;
                }
                let mut path = paths[&u].clone();
                path.push(c);
                for p in self.internet.prefixes_of(c) {
                    if out.len() >= cap {
                        break 'bfs;
                    }
                    out.push(MemberAnnouncement {
                        prefix: *p,
                        as_path: AsPath::from_seq(path.iter().copied()),
                    });
                }
                paths.insert(c, path);
                queue.push_back(c);
            }
        }
        self.announcements.insert(asn, out.clone());
        out
    }

    /// Weighted sample without replacement (A-Res reservoir keys).
    fn weighted_sample(&mut self, pool: &[(Asn, f64)], k: usize) -> Vec<Asn> {
        let mut keyed: Vec<(f64, Asn)> = pool
            .iter()
            .map(|&(a, w)| {
                let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
                (u.powf(1.0 / w.max(1e-9)), a)
            })
            .collect();
        keyed.sort_unstable_by(|x, y| y.0.partial_cmp(&x.0).unwrap().then(x.1.cmp(&y.1)));
        keyed.truncate(k);
        let mut out: Vec<Asn> = keyed.into_iter().map(|(_, a)| a).collect();
        out.sort_unstable();
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn build_ixp(
        &mut self,
        id: IxpId,
        spec: &IxpSpec,
        google_like: Asn,
        akamai_like: Asn,
        regional_case: Asn,
    ) -> Ixp {
        // ---- Select members. ----
        let mut pool: Vec<(Asn, f64)> = Vec::new();
        for n in self.internet.graph.nodes() {
            let tier_w = match n.tier {
                Tier::Tier1 => 0.5,
                Tier::Tier2 => 2.2,
                Tier::Content => 2.5,
                Tier::Regional => 1.3,
                Tier::Stub => 1.0,
            };
            let region_w = if n.region == spec.region {
                4.0
            } else if n.region.is_europe() {
                1.0
            } else {
                0.12 + (spec.members_target as f64 / 4000.0)
            };
            pool.push((n.asn, tier_w * region_w));
        }
        let mut members_list = self.weighted_sample(&pool, spec.members_target);
        // Force the case-study ASes in where the narrative needs them.
        let force: Vec<Asn> = match spec.name.as_str() {
            "DE-CIX" | "AMS-IX" => vec![google_like, akamai_like, regional_case],
            "MSK-IX" | "DTEL-IX" => vec![regional_case, google_like],
            "LINX" | "France-IX" | "PLIX" => vec![google_like, akamai_like],
            _ => vec![google_like],
        };
        let missing: Vec<Asn> = force
            .into_iter()
            .filter(|f| !members_list.contains(f))
            .collect();
        // Make room by evicting non-forced members, then add the forced
        // ones (keeps the member count on target).
        let evict: BTreeSet<Asn> = members_list
            .iter()
            .rev()
            .filter(|a| !missing.contains(a))
            .take(missing.len())
            .copied()
            .collect();
        members_list.retain(|a| !evict.contains(a));
        members_list.extend(missing);
        members_list.sort_unstable();
        members_list.dedup();

        // ---- RS participation. ----
        let rs_pool: Vec<(Asn, f64)> = members_list
            .iter()
            .map(|&a| {
                let w = match self
                    .policies
                    .get(&a)
                    .copied()
                    .unwrap_or(PeeringPolicy::Open)
                {
                    PeeringPolicy::Open => 1.0,
                    PeeringPolicy::Selective => 0.55,
                    PeeringPolicy::Restrictive => 0.16,
                };
                (a, w)
            })
            .collect();
        let mut rs_members: BTreeSet<Asn> = self
            .weighted_sample(&rs_pool, spec.rs_target)
            .into_iter()
            .collect();
        // Narrative ASes participate in the RS where the story needs it.
        if members_list.contains(&google_like) {
            rs_members.insert(google_like);
        }
        if members_list.contains(&regional_case) {
            rs_members.insert(regional_case);
        }

        // ---- Scheme and route server. ----
        let style = if spec.offset_style {
            SchemeStyle::OffsetBased {
                exclude_upper: 64960,
                action_upper: 65000,
            }
        } else {
            SchemeStyle::AsnBased
        };
        let mut scheme = CommunityScheme::new(Asn(spec.rs_asn), style);
        for &m in &members_list {
            scheme.register_member(m);
        }
        let lan_base: u32 = (80 << 24) | (81 << 16) | ((id.0 as u32) << 10);
        let lan = Prefix::from_u32(lan_base, 22).expect("valid LAN");
        let route_server = {
            let mut rs = RouteServer::new(Asn(spec.rs_asn), Ipv4Addr::from(lan_base + 1021));
            rs.strips_communities = spec.strips_communities;
            rs
        };

        // ---- Build members. ----
        let member_set: BTreeSet<Asn> = members_list.iter().copied().collect();
        let mut members: BTreeMap<Asn, IxpMember> = BTreeMap::new();
        for (i, &asn) in members_list.iter().enumerate() {
            let mut m = IxpMember::new(asn, Ipv4Addr::from(lan_base + 2 + i as u32));
            m.rs_member = rs_members.contains(&asn);
            m.announcements = self.announcements_for(asn);
            m.explicit_all = !self.rng.gen_bool(self.cfg.frac_implicit_all);
            m.strips_communities = self.rng.gen_bool(self.cfg.frac_stripping_members);
            members.insert(asn, m);
        }

        // ---- Export policies. ----
        let rs_set: BTreeSet<Asn> = rs_members.iter().copied().collect();
        for &asn in &members_list {
            if !rs_set.contains(&asn) {
                continue;
            }
            let policy = self
                .policies
                .get(&asn)
                .copied()
                .unwrap_or(PeeringPolicy::Open);
            let export = self.gen_export_policy(asn, policy, &rs_set, &member_set);
            let m = members.get_mut(&asn).expect("member exists");
            m.export = export;
        }

        // ---- Case studies. ----
        // Members with private peering to a giant exclude it here.
        for giant in [google_like, akamai_like] {
            if !rs_set.contains(&giant) {
                continue;
            }
            let blockers: Vec<Asn> = members_list
                .iter()
                .filter(|&&a| {
                    a != giant
                        && rs_set.contains(&a)
                        && self.internet.graph.relationship(a, giant) == Some(Relationship::P2p)
                })
                .copied()
                .collect();
            for b in blockers {
                if !self.rng.gen_bool(0.8) {
                    continue;
                }
                let m = members.get_mut(&b).expect("blocker is a member");
                match &mut m.export {
                    ExportPolicy::AllMembers => {
                        m.export = ExportPolicy::AllExcept([giant].into_iter().collect());
                    }
                    ExportPolicy::AllExcept(ex) => {
                        ex.insert(giant);
                    }
                    ExportPolicy::OnlyTo(inc) => {
                        inc.remove(&giant);
                    }
                    ExportPolicy::Nobody => {}
                }
            }
        }
        // The region-scoped case: open in the west, closed in the east.
        if let Some(m) = members.get_mut(&regional_case) {
            if m.rs_member {
                m.export = if matches!(spec.region, Region::EasternEurope) {
                    let include: BTreeSet<Asn> = rs_set
                        .iter()
                        .copied()
                        .filter(|&a| a != regional_case)
                        .take(3)
                        .collect();
                    ExportPolicy::OnlyTo(include)
                } else {
                    ExportPolicy::AllMembers
                };
            }
        }

        // ---- Import filters (never more restrictive than export). ----
        for m in members.values_mut() {
            if !m.rs_member {
                continue;
            }
            let blocked: BTreeSet<Asn> = match &m.export {
                ExportPolicy::AllExcept(ex) => ex.clone(),
                ExportPolicy::OnlyTo(inc) => rs_set
                    .iter()
                    .copied()
                    .filter(|a| !inc.contains(a) && *a != m.asn)
                    .collect(),
                _ => BTreeSet::new(),
            };
            // Half the members run an import filter equal to the export
            // filter; the other half are more permissive (§4.4).
            let import_blocked: BTreeSet<Asn> = if self.rng.gen_bool(0.5) {
                blocked
            } else {
                blocked
                    .into_iter()
                    .filter(|_| self.rng.gen_bool(0.6))
                    .collect()
            };
            m.import = ImportFilter {
                blocked: import_blocked,
            };
        }

        // ---- Per-prefix overrides (§4.3's < 0.5 % inconsistency). ----
        let override_members: Vec<Asn> = rs_set
            .iter()
            .copied()
            .filter(|_| self.rng.gen_bool(self.cfg.per_prefix_override_frac))
            .collect();
        for asn in override_members {
            let extra = match members_list
                .iter()
                .find(|&&x| x != asn && rs_set.contains(&x))
            {
                Some(&x) => x,
                None => continue,
            };
            let m = members.get_mut(&asn).expect("member exists");
            let n_over = (m.announcements.len() / 50).max(1);
            let prefixes: Vec<Prefix> = m
                .announcements
                .iter()
                .take(n_over)
                .map(|a| a.prefix)
                .collect();
            for p in prefixes {
                let over = match &m.export {
                    ExportPolicy::AllMembers => {
                        ExportPolicy::AllExcept([extra].into_iter().collect())
                    }
                    ExportPolicy::AllExcept(ex) => {
                        let mut ex = ex.clone();
                        ex.insert(extra);
                        ExportPolicy::AllExcept(ex)
                    }
                    other => other.clone(),
                };
                m.per_prefix_overrides.insert(p, over);
            }
        }

        // ---- Bilateral fabric. ----
        let non_rs: Vec<Asn> = members_list
            .iter()
            .copied()
            .filter(|a| !rs_set.contains(a))
            .collect();
        for &asn in &non_rs {
            let frac = self.rng.gen_range(0.10..0.35);
            let peers: Vec<Asn> = members_list
                .iter()
                .copied()
                .filter(|&p| p != asn && self.rng.gen_bool(frac))
                .collect();
            let m = members.get_mut(&asn).expect("member");
            m.bilateral_peers.extend(peers.iter().copied());
            for p in peers {
                members
                    .get_mut(&p)
                    .expect("member")
                    .bilateral_peers
                    .insert(asn);
            }
        }
        // A sprinkle of RS members also peer bilaterally and *prefer*
        // those sessions (the §5.1 validation-hiding cases).
        let preferers: Vec<Asn> = rs_set
            .iter()
            .copied()
            .filter(|_| self.rng.gen_bool(0.05))
            .collect();
        for asn in preferers {
            let peer = match members_list
                .iter()
                .find(|&&x| x != asn && rs_set.contains(&x))
            {
                Some(&x) => x,
                None => continue,
            };
            let m = members.get_mut(&asn).expect("member");
            m.bilateral_peers.insert(peer);
            m.bilateral_local_pref = 200;
            members
                .get_mut(&peer)
                .expect("member")
                .bilateral_peers
                .insert(asn);
        }

        Ixp {
            id,
            name: spec.name.clone(),
            region: spec.region,
            lan,
            scheme,
            route_server,
            session_redundancy: 2,
            members,
            has_lg: spec.has_lg,
            filter_portal: spec.filter_portal,
            publishes_member_list: spec.publishes_member_list,
        }
    }

    /// The Fig. 11 bimodal export-filter generator.
    fn gen_export_policy(
        &mut self,
        asn: Asn,
        policy: PeeringPolicy,
        rs_set: &BTreeSet<Asn>,
        _members: &BTreeSet<Asn>,
    ) -> ExportPolicy {
        let others: Vec<Asn> = rs_set.iter().copied().filter(|&a| a != asn).collect();
        if others.is_empty() {
            return ExportPolicy::AllMembers;
        }
        let roll: f64 = self.rng.gen();
        let (open_mode, max_excl, incl_frac) = match policy {
            PeeringPolicy::Open => (roll < 0.80, 4usize, 0.10),
            PeeringPolicy::Selective => (roll < 0.80, 8, 0.12),
            PeeringPolicy::Restrictive => (roll < 0.62, 10, 0.08),
        };
        if open_mode {
            // Transit networks with downstream customers at the IXP are
            // the main users of EXCLUDE lists (§5.5); pure stubs mostly
            // run plain ALL.
            let has_cone_here = self.cone_of(asn).len() > 1;
            let all_prob = match (policy, has_cone_here) {
                (PeeringPolicy::Open, false) => 0.88,
                (PeeringPolicy::Open, true) => 0.45,
                (_, false) => 0.55,
                (_, true) => 0.25,
            };
            if self.rng.gen_bool(all_prob) {
                ExportPolicy::AllMembers
            } else {
                let n = self.rng.gen_range(1..=max_excl.min(others.len()));
                let targets = self.pick_exclusion_targets(asn, &others, n);
                if targets.is_empty() {
                    ExportPolicy::AllMembers
                } else {
                    ExportPolicy::AllExcept(targets)
                }
            }
        } else {
            let n = ((others.len() as f64 * incl_frac).round() as usize).clamp(1, others.len());
            let pool: Vec<(Asn, f64)> = others.iter().map(|&a| (a, 1.0)).collect();
            let include: BTreeSet<Asn> = self.weighted_sample(&pool, n).into_iter().collect();
            ExportPolicy::OnlyTo(include)
        }
    }

    /// EXCLUDE targets, calibrated to §5.5: most EXCLUDEs are applied by
    /// transit networks against ASes in their own customer cone (the
    /// paper measured 77 % in-cone, of which 12 %-points are direct
    /// co-located customers); the remainder hit arbitrary members
    /// (dominated by the privately-peered content giants).
    fn pick_exclusion_targets(&mut self, blocker: Asn, others: &[Asn], n: usize) -> BTreeSet<Asn> {
        let direct: Vec<Asn> = {
            let customers = self.internet.graph.customers_of(blocker);
            others
                .iter()
                .copied()
                .filter(|a| customers.contains(a))
                .collect()
        };
        let cone: Vec<Asn> = {
            let cone = self.cone_of(blocker).clone();
            others
                .iter()
                .copied()
                .filter(|a| cone.contains(a) && *a != blocker)
                .collect()
        };
        let mut out = BTreeSet::new();
        for _ in 0..n {
            let roll: f64 = self.rng.gen();
            let pick = if roll < 0.15 && !direct.is_empty() {
                direct[self.rng.gen_range(0..direct.len())]
            } else if roll < 0.90 && !cone.is_empty() {
                cone[self.rng.gen_range(0..cone.len())]
            } else {
                others[self.rng.gen_range(0..others.len())]
            };
            out.insert(pick);
        }
        out
    }

    /// Hybrid pairs (§5.6): provider–customer edges of the relationship
    /// graph whose endpoints are both RS members of the same IXP and
    /// mutually allowed — transit and multilateral peering coexisting.
    fn find_hybrid_pairs(&self, ixps: &[Ixp]) -> Vec<(Asn, Asn, IxpId)> {
        let mut out = Vec::new();
        for ixp in ixps {
            let mutual = ixp.mutual_links();
            for &(a, b) in &mutual {
                match self.internet.graph.relationship(a, b) {
                    Some(Relationship::P2c) => out.push((a, b, ixp.id)),
                    Some(Relationship::C2p) => out.push((b, a, ixp.id)),
                    _ => {}
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eco() -> Ecosystem {
        Ecosystem::generate(EcosystemConfig::tiny(42))
    }

    #[test]
    fn deterministic_generation() {
        let a = Ecosystem::generate(EcosystemConfig::tiny(7));
        let b = Ecosystem::generate(EcosystemConfig::tiny(7));
        assert_eq!(a.all_member_asns(), b.all_member_asns());
        assert_eq!(a.all_ground_truth_links(), b.all_ground_truth_links());
        let c = Ecosystem::generate(EcosystemConfig::tiny(8));
        assert_ne!(a.all_ground_truth_links(), c.all_ground_truth_links());
    }

    #[test]
    fn thirteen_ixps_with_table2_shape() {
        let e = eco();
        assert_eq!(e.ixps.len(), 13);
        let decix = e.ixp_by_name("DE-CIX").unwrap();
        assert!(decix.has_lg);
        let amsix = e.ixp_by_name("AMS-IX").unwrap();
        assert!(!amsix.has_lg);
        let linx = e.ixp_by_name("LINX").unwrap();
        assert!(!linx.publishes_member_list);
        // Member ordering matches Table 2: AMS-IX ≥ DE-CIX ≥ … ≥ BIX.BG.
        assert!(amsix.member_count() >= decix.member_count());
        assert!(decix.member_count() > e.ixp_by_name("BIX.BG").unwrap().member_count());
        // RS membership is a strict subset of membership everywhere.
        for ixp in &e.ixps {
            assert!(ixp.rs_member_count() <= ixp.member_count(), "{}", ixp.name);
            assert!(ixp.rs_member_count() >= 4, "{}", ixp.name);
        }
    }

    #[test]
    fn ecix_uses_offset_scheme() {
        let e = eco();
        let ecix = e.ixp_by_name("ECIX").unwrap();
        assert!(matches!(ecix.scheme.style, SchemeStyle::OffsetBased { .. }));
        let decix = e.ixp_by_name("DE-CIX").unwrap();
        assert!(matches!(decix.scheme.style, SchemeStyle::AsnBased));
        assert_eq!(decix.scheme.rs_asn, Asn(6695));
    }

    #[test]
    fn members_exist_in_internet_and_lan_addrs_in_lan() {
        let e = eco();
        for ixp in &e.ixps {
            for m in ixp.members.values() {
                assert!(e.internet.graph.contains(m.asn), "member {} unknown", m.asn);
                assert!(
                    ixp.lan.contains_addr(m.lan_addr),
                    "{} outside LAN",
                    m.lan_addr
                );
                assert!(
                    !m.announcements.is_empty(),
                    "member {} announces nothing",
                    m.asn
                );
            }
        }
    }

    #[test]
    fn ground_truth_links_are_dense_among_rs_members() {
        let e = eco();
        let decix = e.ixp_by_name("DE-CIX").unwrap();
        let n = decix.rs_member_count();
        let possible = n * (n - 1) / 2;
        let links = decix.ground_truth_links().len();
        let density = links as f64 / possible as f64;
        assert!(
            density > 0.6,
            "RS peering density should be high (Fig. 12): {density:.2} ({links}/{possible})"
        );
    }

    #[test]
    fn mutual_links_subset_of_ground_truth() {
        let e = eco();
        for ixp in &e.ixps {
            let gt = ixp.ground_truth_links();
            for l in ixp.mutual_links() {
                assert!(gt.contains(&l));
            }
        }
    }

    #[test]
    fn import_filters_respect_reciprocity_invariant() {
        let e = eco();
        for ixp in &e.ixps {
            for m in ixp.members.values() {
                if m.rs_member {
                    assert!(
                        m.import.respects_reciprocity(&m.export),
                        "member {} at {} violates §4.4",
                        m.asn,
                        ixp.name
                    );
                }
            }
        }
    }

    #[test]
    fn google_like_is_widely_blocked() {
        let e = eco();
        let mut blocks = 0usize;
        for ixp in &e.ixps {
            for m in ixp.members.values() {
                if m.rs_member && m.export.excluded_iter().any(|x| x == e.google_like) {
                    blocks += 1;
                }
            }
        }
        assert!(
            blocks >= 2,
            "the content giant should be repelled (got {blocks})"
        );
    }

    #[test]
    fn regional_case_policy_differs_by_region() {
        let e = eco();
        let west = e.ixp_by_name("DE-CIX").unwrap().member(e.regional_case);
        let east = e.ixp_by_name("MSK-IX").unwrap().member(e.regional_case);
        let west = west.expect("case AS at DE-CIX");
        let east = east.expect("case AS at MSK-IX");
        assert_eq!(west.export, ExportPolicy::AllMembers);
        assert!(matches!(east.export, ExportPolicy::OnlyTo(_)));
    }

    #[test]
    fn multi_ixp_membership_exists() {
        let e = eco();
        let multi = e
            .all_member_asns()
            .into_iter()
            .filter(|&a| e.ixps_of(a).len() > 1)
            .count();
        assert!(
            multi > 3,
            "some ASes must co-locate at multiple IXPs (got {multi})"
        );
        assert!(
            e.ixps_of(e.google_like).len() >= 4,
            "the giant is everywhere"
        );
    }

    #[test]
    fn extra_peer_edges_cover_rs_flows() {
        let e = eco();
        let edges = e.extra_peer_edges();
        assert!(!edges.is_empty());
        let decix = e.ixp_by_name("DE-CIX").unwrap();
        let rs_tagged = edges.iter().filter(|ed| ed.tag == decix.rs_tag()).count();
        assert_eq!(rs_tagged, decix.directed_flows().len());
        // Bilateral tags decode correctly.
        for ed in edges.iter().take(50) {
            let (id, _) = Ixp::decode_tag(ed.tag);
            assert!((id.0 as usize) < e.ixps.len());
        }
    }

    #[test]
    fn hybrid_pairs_are_real_transit_pairs() {
        let e = eco();
        for (p, c, ixp) in &e.hybrid_pairs {
            assert_eq!(
                e.internet.graph.relationship(*p, *c),
                Some(Relationship::P2c),
                "hybrid pair {p}–{c} is not transit"
            );
            let ixp = e.ixp(*ixp);
            assert!(ixp.member(*p).is_some_and(|m| m.rs_member));
            assert!(ixp.member(*c).is_some_and(|m| m.rs_member));
        }
    }

    #[test]
    fn stripping_and_portal_ixps_optional() {
        let mut cfg = EcosystemConfig::tiny(5);
        cfg.include_stripping_ixp = true;
        cfg.include_portal_ixp = true;
        let e = Ecosystem::generate(cfg);
        assert_eq!(e.ixps.len(), 15);
        let netnod = e.ixp_by_name("NETNOD-SIM").unwrap();
        assert!(netnod.route_server.strips_communities);
        let vix = e.ixp_by_name("VIX-SIM").unwrap();
        assert!(vix.filter_portal);
        // Portal IXP: RS RIB shows no communities at all.
        let rib = vix.rs_rib();
        for (_, entries) in rib.iter() {
            for e in entries {
                assert!(e.attrs.communities.is_empty());
            }
        }
    }

    #[test]
    fn policies_reported_at_most_once_per_member() {
        let e = eco();
        for asn in e.all_member_asns() {
            assert!(e.policies.contains_key(&asn));
            assert!(e.reported_policies.contains_key(&asn));
        }
    }
}
