//! The IXP: peering LAN, members, route server, bilateral fabric.

use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

use mlpeer_bgp::rib::Rib;
use mlpeer_bgp::{Announcement, Asn, Prefix};
use mlpeer_topo::graph::Region;
use serde::{Deserialize, Serialize};

use crate::member::IxpMember;
use crate::route_server::RouteServer;
use crate::scheme::CommunityScheme;

/// Identifier of an IXP within an ecosystem (stable index).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct IxpId(pub u16);

/// An Internet exchange point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ixp {
    /// Stable identifier.
    pub id: IxpId,
    /// Human name ("DE-CIX", …).
    pub name: String,
    /// Home region.
    pub region: Region,
    /// The peering LAN prefix; member addresses live inside it.
    pub lan: Prefix,
    /// The documented RS community scheme.
    pub scheme: CommunityScheme,
    /// The (logical) route server.
    pub route_server: RouteServer,
    /// How many physical route servers carry the sessions (Fig. 1's
    /// `c`; purely informational for the session-count economics).
    pub session_redundancy: u8,
    /// Members by ASN.
    pub members: BTreeMap<Asn, IxpMember>,
    /// Does the IXP run a public looking glass onto its route server
    /// (the LG column of Table 2)?
    pub has_lg: bool,
    /// VIX/HKIX-style web-portal filter configuration: export filters
    /// exist but are *not* expressed as communities on routes (§5.8) —
    /// passive inference sees nothing here.
    pub filter_portal: bool,
    /// Does the IXP publish its member list (website / AS-SET)? LINX
    /// does not (Table 2's asterisk), forcing partial connectivity data.
    pub publishes_member_list: bool,
}

impl Ixp {
    /// Member record by ASN.
    pub fn member(&self, asn: Asn) -> Option<&IxpMember> {
        self.members.get(&asn)
    }

    /// Mutable member record.
    pub fn member_mut(&mut self, asn: Asn) -> Option<&mut IxpMember> {
        self.members.get_mut(&asn)
    }

    /// All member ASNs, ascending.
    pub fn member_asns(&self) -> Vec<Asn> {
        self.members.keys().copied().collect()
    }

    /// ASNs connected to the route server (`A_RS` in §4.1), ascending.
    pub fn rs_member_asns(&self) -> Vec<Asn> {
        self.members
            .values()
            .filter(|m| m.rs_member)
            .map(|m| m.asn)
            .collect()
    }

    /// Member count (the "ASes" column of Table 2).
    pub fn member_count(&self) -> usize {
        self.members.len()
    }

    /// RS member count (the "RS" column of Table 2).
    pub fn rs_member_count(&self) -> usize {
        self.members.values().filter(|m| m.rs_member).count()
    }

    /// The route server's Adj-RIB-In. At a web-portal-filter IXP
    /// (VIX/HKIX style, §5.8) the filters exist but are configured out
    /// of band, so no RS communities appear on any route.
    pub fn rs_rib(&self) -> Rib {
        let mut rib = self
            .route_server
            .build_rib(self.members.values(), &self.scheme);
        if self.filter_portal {
            let cleaned: Vec<(Prefix, mlpeer_bgp::rib::RibEntry)> = rib
                .iter()
                .flat_map(|(p, entries)| {
                    entries.iter().map(|e| {
                        let mut e = e.clone();
                        e.attrs.communities.clear();
                        (*p, e)
                    })
                })
                .collect();
            let mut stripped = Rib::new();
            for (p, e) in cleaned {
                stripped.insert(p, e);
            }
            rib = stripped;
        }
        rib
    }

    /// What `member` receives from the route server.
    pub fn rs_export_to(&self, member: Asn) -> Vec<Announcement> {
        let mut out = match self.members.get(&member) {
            Some(m) => self
                .route_server
                .export_to(m, self.members.values(), &self.scheme),
            None => Vec::new(),
        };
        if self.filter_portal {
            for ann in &mut out {
                ann.attrs.communities.clear();
            }
        }
        out
    }

    /// Directed ground-truth flows over the route server: `(a, b)` when
    /// at least one of `a`'s prefixes is delivered to `b`. These are the
    /// edges the propagation layer grafts onto the AS graph.
    pub fn directed_flows(&self) -> Vec<(Asn, Asn)> {
        let rs: Vec<&IxpMember> = self.members.values().filter(|m| m.rs_member).collect();
        let mut out = Vec::new();
        for a in &rs {
            for b in &rs {
                if a.asn == b.asn {
                    continue;
                }
                if a.announcements
                    .iter()
                    .any(|ann| RouteServer::delivers(a, b, &ann.prefix))
                {
                    out.push((a.asn, b.asn));
                }
            }
        }
        out
    }

    /// Undirected ground-truth MLP links at this IXP: pairs with traffic
    /// flowing in at least one direction (the paper's inference is the
    /// *mutual* subset; asymmetric pairs are the links §4.4 says the
    /// reciprocity assumption will miss).
    pub fn ground_truth_links(&self) -> BTreeSet<(Asn, Asn)> {
        let mut set = BTreeSet::new();
        for (a, b) in self.directed_flows() {
            set.insert(if a < b { (a, b) } else { (b, a) });
        }
        set
    }

    /// Undirected pairs with flow in *both* directions — what a sound
    /// reciprocal inference can hope to find.
    pub fn mutual_links(&self) -> BTreeSet<(Asn, Asn)> {
        let flows: BTreeSet<(Asn, Asn)> = self.directed_flows().into_iter().collect();
        flows
            .iter()
            .filter(|&&(a, b)| a < b && flows.contains(&(b, a)))
            .copied()
            .collect()
    }

    /// Bilateral peering links across the fabric (undirected, deduped).
    pub fn bilateral_links(&self) -> BTreeSet<(Asn, Asn)> {
        let mut set = BTreeSet::new();
        for m in self.members.values() {
            for &p in &m.bilateral_peers {
                if self.members.contains_key(&p) {
                    set.insert(if m.asn < p { (m.asn, p) } else { (p, m.asn) });
                }
            }
        }
        set
    }

    /// The LAN address of a member.
    pub fn lan_addr_of(&self, asn: Asn) -> Option<Ipv4Addr> {
        self.members.get(&asn).map(|m| m.lan_addr)
    }

    /// Propagation tag for RS-mediated edges at this IXP.
    pub fn rs_tag(&self) -> u32 {
        (self.id.0 as u32) << 1
    }

    /// Propagation tag for bilateral edges at this IXP.
    pub fn bilateral_tag(&self) -> u32 {
        ((self.id.0 as u32) << 1) | 1
    }

    /// Decode a propagation tag back to `(ixp id, is_bilateral)`.
    pub fn decode_tag(tag: u32) -> (IxpId, bool) {
        (IxpId((tag >> 1) as u16), tag & 1 == 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::member::MemberAnnouncement;
    use crate::policy::ExportPolicy;
    use mlpeer_bgp::AsPath;

    fn small_ixp() -> Ixp {
        let mut members = BTreeMap::new();
        for (i, asn) in [1001u32, 1002, 1003].into_iter().enumerate() {
            let mut m = IxpMember::new(Asn(asn), Ipv4Addr::new(80, 81, 192, (i + 1) as u8));
            m.announcements = vec![MemberAnnouncement {
                prefix: Prefix::from_u32((100 << 24) | (asn << 8), 24).unwrap(),
                as_path: AsPath::from_seq([Asn(asn)]),
            }];
            members.insert(Asn(asn), m);
        }
        // 1001 blocks 1003.
        members.get_mut(&Asn(1001)).unwrap().export =
            ExportPolicy::AllExcept([Asn(1003)].into_iter().collect());
        Ixp {
            id: IxpId(3),
            name: "TEST-IX".into(),
            region: Region::WesternEurope,
            lan: "80.81.192.0/22".parse().unwrap(),
            scheme: CommunityScheme::decix(),
            route_server: RouteServer::new(Asn(6695), "80.81.192.253".parse().unwrap()),
            session_redundancy: 2,
            members,
            has_lg: true,
            filter_portal: false,
            publishes_member_list: true,
        }
    }

    #[test]
    fn counts_and_membership() {
        let mut ixp = small_ixp();
        assert_eq!(ixp.member_count(), 3);
        assert_eq!(ixp.rs_member_count(), 3);
        ixp.member_mut(Asn(1003)).unwrap().rs_member = false;
        assert_eq!(ixp.rs_member_count(), 2);
        assert_eq!(ixp.member_asns(), vec![Asn(1001), Asn(1002), Asn(1003)]);
        assert_eq!(ixp.rs_member_asns(), vec![Asn(1001), Asn(1002)]);
        assert_eq!(
            ixp.lan_addr_of(Asn(1001)),
            Some("80.81.192.1".parse().unwrap())
        );
        assert_eq!(ixp.lan_addr_of(Asn(9999)), None);
    }

    #[test]
    fn directed_flows_respect_one_sided_block() {
        let ixp = small_ixp();
        let flows: BTreeSet<(Asn, Asn)> = ixp.directed_flows().into_iter().collect();
        // 1001 → 1002 yes, 1001 → 1003 no (export filter), all others yes.
        assert!(flows.contains(&(Asn(1001), Asn(1002))));
        assert!(!flows.contains(&(Asn(1001), Asn(1003))));
        assert!(
            flows.contains(&(Asn(1003), Asn(1001))),
            "1003 is open toward 1001"
        );
        assert!(flows.contains(&(Asn(1002), Asn(1003))));
    }

    #[test]
    fn ground_truth_vs_mutual_links() {
        let ixp = small_ixp();
        // Ground truth counts the asymmetric 1001–1003 pair (one-way
        // flow); the mutual set drops it.
        let gt = ixp.ground_truth_links();
        assert_eq!(gt.len(), 3);
        let mutual = ixp.mutual_links();
        assert_eq!(mutual.len(), 2);
        assert!(!mutual.contains(&(Asn(1001), Asn(1003))));
    }

    #[test]
    fn rs_rib_and_export() {
        let ixp = small_ixp();
        let rib = ixp.rs_rib();
        assert_eq!(rib.prefix_count(), 3);
        let to_1003 = ixp.rs_export_to(Asn(1003));
        let from: Vec<Asn> = to_1003
            .iter()
            .filter_map(|a| a.attrs.as_path.first_hop())
            .collect();
        assert_eq!(from, vec![Asn(1002)], "only 1002's route reaches 1003");
        assert!(ixp.rs_export_to(Asn(4040)).is_empty(), "unknown member");
    }

    #[test]
    fn bilateral_links_dedupe_and_ignore_outsiders() {
        let mut ixp = small_ixp();
        ixp.member_mut(Asn(1001))
            .unwrap()
            .bilateral_peers
            .insert(Asn(1002));
        ixp.member_mut(Asn(1002))
            .unwrap()
            .bilateral_peers
            .insert(Asn(1001));
        ixp.member_mut(Asn(1002))
            .unwrap()
            .bilateral_peers
            .insert(Asn(7777)); // not a member
        let links = ixp.bilateral_links();
        assert_eq!(links.len(), 1);
        assert!(links.contains(&(Asn(1001), Asn(1002))));
    }

    #[test]
    fn tags_roundtrip() {
        let ixp = small_ixp();
        assert_eq!(Ixp::decode_tag(ixp.rs_tag()), (IxpId(3), false));
        assert_eq!(Ixp::decode_tag(ixp.bilateral_tag()), (IxpId(3), true));
    }
}
