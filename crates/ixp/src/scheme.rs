//! RS community schemes (Table 1 of the paper).
//!
//! Every IXP documents community values its route server interprets as
//! export-filter actions. Two families cover the paper's 13 IXPs:
//!
//! | action  | `rs-asn` style (DE-CIX, MSK-IX) | offset style (ECIX)   |
//! |---------|----------------------------------|-----------------------|
//! | ALL     | `rs:rs` (6695:6695)              | `rs:rs` (9033:9033)   |
//! | EXCLUDE | `0:peer`                         | `64960:peer`          |
//! | NONE    | `0:rs`                           | `65000:0`             |
//! | INCLUDE | `rs:peer`                        | `65000:peer`          |
//!
//! The `peer` half is 16 bits, so members with 32-bit ASNs are mapped
//! onto aliases in the 16-bit private range (§3: "Many IXP operators map
//! the 32-bit ASNs of their members to 16-bit ASNs in the private ASN
//! range").

use std::collections::BTreeMap;

use mlpeer_bgp::asn::{PRIVATE16_END, PRIVATE16_START};
use mlpeer_bgp::{Asn, Community};
use serde::{Deserialize, Serialize};

/// An export-filter action encoded in an RS community.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum RsAction {
    /// Announce to all RS members (the default behavior).
    All,
    /// Block the announcement toward one member.
    Exclude(Asn),
    /// Block the announcement toward all members.
    None,
    /// Allow the announcement toward one member.
    Include(Asn),
}

/// Which encoding family the IXP uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchemeStyle {
    /// DE-CIX / MSK-IX style: the RS ASN appears in the community
    /// (`ALL = rs:rs`, `EXCLUDE = 0:peer`, `NONE = 0:rs`,
    /// `INCLUDE = rs:peer`).
    AsnBased,
    /// ECIX style: fixed action values in the upper half
    /// (`EXCLUDE = exclude_upper:peer`, `NONE = action_upper:0`,
    /// `INCLUDE = action_upper:peer`; `ALL = rs:rs`).
    OffsetBased {
        /// Upper half for EXCLUDE (ECIX: 64960).
        exclude_upper: u16,
        /// Upper half for NONE / INCLUDE (ECIX: 65000).
        action_upper: u16,
    },
}

/// One IXP's documented community scheme, plus its 32-bit-ASN alias
/// table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommunityScheme {
    /// The route server's ASN (16-bit at every IXP the paper studies).
    pub rs_asn: Asn,
    /// Encoding family.
    pub style: SchemeStyle,
    /// 32-bit member ASN → private 16-bit alias.
    alias: BTreeMap<Asn, u16>,
    /// Reverse alias map.
    alias_rev: BTreeMap<u16, Asn>,
    /// Next alias to hand out.
    next_alias: u16,
}

impl CommunityScheme {
    /// A new scheme for a route server; `rs_asn` must be 16-bit.
    ///
    /// # Panics
    /// If `rs_asn` does not fit in 16 bits.
    pub fn new(rs_asn: Asn, style: SchemeStyle) -> Self {
        assert!(rs_asn.is_16bit(), "route-server ASN must be 16-bit");
        CommunityScheme {
            rs_asn,
            style,
            alias: BTreeMap::new(),
            alias_rev: BTreeMap::new(),
            next_alias: PRIVATE16_START as u16,
        }
    }

    /// The DE-CIX scheme from Table 1 (rs-asn 6695).
    pub fn decix() -> Self {
        CommunityScheme::new(Asn(6695), SchemeStyle::AsnBased)
    }

    /// The MSK-IX scheme from Table 1 (rs-asn 8631).
    pub fn mskix() -> Self {
        CommunityScheme::new(Asn(8631), SchemeStyle::AsnBased)
    }

    /// The ECIX scheme from Table 1 (rs-asn 9033, offsets 64960/65000).
    pub fn ecix() -> Self {
        CommunityScheme::new(
            Asn(9033),
            SchemeStyle::OffsetBased {
                exclude_upper: 64960,
                action_upper: 65000,
            },
        )
    }

    /// Register a member, allocating a private 16-bit alias if its ASN
    /// needs 32 bits. Returns the 16-bit representation used on the
    /// wire. Idempotent.
    pub fn register_member(&mut self, member: Asn) -> u16 {
        if member.is_16bit() {
            return member.value() as u16;
        }
        if let Some(&a) = self.alias.get(&member) {
            return a;
        }
        let alias = self.next_alias;
        assert!(
            (alias as u32) <= PRIVATE16_END,
            "private alias range exhausted at {alias}"
        );
        self.next_alias += 1;
        self.alias.insert(member, alias);
        self.alias_rev.insert(alias, member);
        alias
    }

    /// The 16-bit wire representation for a member, if representable
    /// (i.e. 16-bit ASN, or a previously registered alias).
    pub fn peer_repr(&self, member: Asn) -> Option<u16> {
        if member.is_16bit() {
            Some(member.value() as u16)
        } else {
            self.alias.get(&member).copied()
        }
    }

    /// Resolve a 16-bit wire value back to the member ASN (alias-aware).
    pub fn resolve_peer(&self, wire: u16) -> Asn {
        self.alias_rev
            .get(&wire)
            .copied()
            .unwrap_or(Asn(wire as u32))
    }

    /// Encode an action as a community value.
    ///
    /// Returns `None` for `Exclude`/`Include` of a member with an
    /// unregistered 32-bit ASN (there is nothing the operator could
    /// type).
    pub fn encode(&self, action: RsAction) -> Option<Community> {
        let rs = self.rs_asn.value() as u16;
        Some(match (self.style, action) {
            (_, RsAction::All) => Community::new(rs, rs),
            (SchemeStyle::AsnBased, RsAction::Exclude(p)) => Community::new(0, self.peer_repr(p)?),
            (SchemeStyle::AsnBased, RsAction::None) => Community::new(0, rs),
            (SchemeStyle::AsnBased, RsAction::Include(p)) => Community::new(rs, self.peer_repr(p)?),
            (SchemeStyle::OffsetBased { exclude_upper, .. }, RsAction::Exclude(p)) => {
                Community::new(exclude_upper, self.peer_repr(p)?)
            }
            (SchemeStyle::OffsetBased { action_upper, .. }, RsAction::None) => {
                Community::new(action_upper, 0)
            }
            (SchemeStyle::OffsetBased { action_upper, .. }, RsAction::Include(p)) => {
                Community::new(action_upper, self.peer_repr(p)?)
            }
        })
    }

    /// Decode a community under this scheme.
    ///
    /// Mirrors what the route server itself does; the *inference* side
    /// (which must also determine which IXP a value belongs to, §4.2)
    /// lives in the `mlpeer` core crate and builds on this.
    pub fn decode(&self, c: Community) -> Option<RsAction> {
        let rs = self.rs_asn.value() as u16;
        match self.style {
            SchemeStyle::AsnBased => {
                if c.upper() == rs && c.lower() == rs {
                    Some(RsAction::All)
                } else if c.upper() == 0 && c.lower() == rs {
                    Some(RsAction::None)
                } else if c.upper() == 0 {
                    Some(RsAction::Exclude(self.resolve_peer(c.lower())))
                } else if c.upper() == rs {
                    Some(RsAction::Include(self.resolve_peer(c.lower())))
                } else {
                    None
                }
            }
            SchemeStyle::OffsetBased {
                exclude_upper,
                action_upper,
            } => {
                if c.upper() == rs && c.lower() == rs {
                    Some(RsAction::All)
                } else if c.upper() == exclude_upper {
                    Some(RsAction::Exclude(self.resolve_peer(c.lower())))
                } else if c.upper() == action_upper && c.lower() == 0 {
                    Some(RsAction::None)
                } else if c.upper() == action_upper {
                    Some(RsAction::Include(self.resolve_peer(c.lower())))
                } else {
                    None
                }
            }
        }
    }

    /// Does this community *mention* the RS ASN in either half — the
    /// IXP-identification heuristic of §4.2 ("we are able to determine
    /// the IXP based either on the upper or the lower 16 bits")?
    pub fn mentions_rs(&self, c: Community) -> bool {
        let rs = self.rs_asn.value() as u16;
        c.upper() == rs || c.lower() == rs
    }

    /// Number of allocated 32-bit aliases.
    pub fn alias_count(&self) -> usize {
        self.alias.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(s: &str) -> Community {
        s.parse().unwrap()
    }

    #[test]
    fn table1_decix_values() {
        let s = CommunityScheme::decix();
        assert_eq!(s.encode(RsAction::All), Some(c("6695:6695")));
        assert_eq!(s.encode(RsAction::Exclude(Asn(8359))), Some(c("0:8359")));
        assert_eq!(s.encode(RsAction::None), Some(c("0:6695")));
        assert_eq!(s.encode(RsAction::Include(Asn(8447))), Some(c("6695:8447")));
    }

    #[test]
    fn table1_mskix_values() {
        let s = CommunityScheme::mskix();
        assert_eq!(s.encode(RsAction::All), Some(c("8631:8631")));
        assert_eq!(s.encode(RsAction::Exclude(Asn(2854))), Some(c("0:2854")));
        assert_eq!(s.encode(RsAction::None), Some(c("0:8631")));
        assert_eq!(s.encode(RsAction::Include(Asn(2854))), Some(c("8631:2854")));
    }

    #[test]
    fn table1_ecix_values() {
        let s = CommunityScheme::ecix();
        assert_eq!(s.encode(RsAction::All), Some(c("9033:9033")));
        assert_eq!(
            s.encode(RsAction::Exclude(Asn(8447))),
            Some(c("64960:8447"))
        );
        assert_eq!(s.encode(RsAction::None), Some(c("65000:0")));
        assert_eq!(
            s.encode(RsAction::Include(Asn(8447))),
            Some(c("65000:8447"))
        );
    }

    #[test]
    fn decode_is_encode_inverse() {
        for scheme in [
            CommunityScheme::decix(),
            CommunityScheme::mskix(),
            CommunityScheme::ecix(),
        ] {
            for action in [
                RsAction::All,
                RsAction::None,
                RsAction::Exclude(Asn(8359)),
                RsAction::Include(Asn(8447)),
            ] {
                let encoded = scheme.encode(action).unwrap();
                assert_eq!(
                    scheme.decode(encoded),
                    Some(action),
                    "{encoded} in {scheme:?}"
                );
            }
        }
    }

    #[test]
    fn alias_for_32bit_member_roundtrips() {
        let mut s = CommunityScheme::decix();
        let big = Asn(196_800);
        assert_eq!(
            s.peer_repr(big),
            None,
            "unregistered 32-bit ASN has no repr"
        );
        assert_eq!(s.encode(RsAction::Exclude(big)), None);
        let alias = s.register_member(big);
        assert!((PRIVATE16_START..=PRIVATE16_END).contains(&(alias as u32)));
        assert_eq!(s.register_member(big), alias, "idempotent");
        let encoded = s.encode(RsAction::Exclude(big)).unwrap();
        assert_eq!(encoded, Community::new(0, alias));
        assert_eq!(
            s.decode(encoded),
            Some(RsAction::Exclude(big)),
            "alias resolves back"
        );
        assert_eq!(s.alias_count(), 1);
    }

    #[test]
    fn sixteen_bit_members_need_no_alias() {
        let mut s = CommunityScheme::decix();
        assert_eq!(s.register_member(Asn(8359)), 8359);
        assert_eq!(s.alias_count(), 0);
    }

    #[test]
    fn distinct_32bit_members_get_distinct_aliases() {
        let mut s = CommunityScheme::ecix();
        let a1 = s.register_member(Asn(200_001));
        let a2 = s.register_member(Asn(200_002));
        assert_ne!(a1, a2);
        assert_eq!(s.resolve_peer(a1), Asn(200_001));
        assert_eq!(s.resolve_peer(a2), Asn(200_002));
    }

    #[test]
    fn decode_rejects_foreign_values() {
        let s = CommunityScheme::decix();
        assert_eq!(s.decode(c("3356:100")), None, "unrelated community");
        assert_eq!(s.decode(c("8631:8631")), None, "another IXP's ALL");
        // But 0:8631 *does* parse as EXCLUDE(8631) under DE-CIX — the
        // genuine cross-IXP ambiguity §4.2 disambiguates by member sets.
        assert_eq!(s.decode(c("0:8631")), Some(RsAction::Exclude(Asn(8631))));
    }

    #[test]
    fn none_beats_exclude_of_rs_asn() {
        // 0:6695 must decode as NONE, not Exclude(6695).
        let s = CommunityScheme::decix();
        assert_eq!(s.decode(c("0:6695")), Some(RsAction::None));
    }

    #[test]
    fn mentions_rs_heuristic() {
        let s = CommunityScheme::decix();
        assert!(s.mentions_rs(c("6695:6695")));
        assert!(s.mentions_rs(c("0:6695")));
        assert!(s.mentions_rs(c("6695:8359")));
        assert!(
            !s.mentions_rs(c("0:8359")),
            "bare EXCLUDE hides the IXP — the §4.2 hard case"
        );
    }

    #[test]
    #[should_panic(expected = "16-bit")]
    fn rejects_32bit_rs_asn() {
        CommunityScheme::new(Asn(196_608), SchemeStyle::AsnBased);
    }
}
