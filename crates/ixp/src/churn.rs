//! Membership and policy churn: the ecosystem as a *moving* target.
//!
//! The paper harvests one frozen snapshot of every route server; the
//! real ecosystem never holds still — members join and leave route
//! servers (the session churn §5.1 had to filter out of the validation
//! window), retune their community-encoded export filters, and
//! originate or retire prefixes. A [`ChurnEvent`] is one such atomic
//! change; [`Ecosystem::apply_churn`] applies it to the mutable
//! ecosystem state, keeping every derived invariant (scheme alias
//! registration, membership maps) intact.
//!
//! The seeded *generator* of valid event schedules lives in
//! `mlpeer_data::churn` (it needs the internet substrate to draw
//! joiners and prefixes from); the BGP rendering of each event — OPEN,
//! UPDATE announce/withdraw, NOTIFICATION Cease — also lives there, on
//! `mlpeer_bgp::stream` types.

use mlpeer_bgp::{Asn, Prefix};
use serde::Serialize;

use crate::ecosystem::Ecosystem;
use crate::ixp::IxpId;
use crate::member::{IxpMember, MemberAnnouncement};
use crate::policy::ExportPolicy;

/// One atomic change to the ecosystem's route-server state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub enum ChurnEvent {
    /// A new member sessions with the route server (carries the full
    /// member record: LAN address, initial policy, announcements).
    Join {
        /// The IXP joined.
        ixp: IxpId,
        /// The complete member record.
        member: IxpMember,
    },
    /// A member tears its RS session down and leaves the IXP.
    Leave {
        /// The IXP left.
        ixp: IxpId,
        /// The leaving member.
        asn: Asn,
    },
    /// A member replaces its default export policy (re-announcing every
    /// prefix with the new community set, as a real retune does).
    SetExportPolicy {
        /// The IXP whose RS session is retuned.
        ixp: IxpId,
        /// The member retuning.
        asn: Asn,
        /// The new default export policy.
        policy: ExportPolicy,
    },
    /// A member starts announcing one more prefix.
    Originate {
        /// The IXP announced at.
        ixp: IxpId,
        /// The announcing member.
        asn: Asn,
        /// The new announcement.
        announcement: MemberAnnouncement,
    },
    /// A member withdraws one announced prefix.
    Withdraw {
        /// The IXP withdrawn at.
        ixp: IxpId,
        /// The withdrawing member.
        asn: Asn,
        /// The withdrawn prefix.
        prefix: Prefix,
    },
}

impl ChurnEvent {
    /// The IXP the event happens at.
    pub fn ixp(&self) -> IxpId {
        match self {
            ChurnEvent::Join { ixp, .. }
            | ChurnEvent::Leave { ixp, .. }
            | ChurnEvent::SetExportPolicy { ixp, .. }
            | ChurnEvent::Originate { ixp, .. }
            | ChurnEvent::Withdraw { ixp, .. } => *ixp,
        }
    }

    /// The member the event concerns.
    pub fn asn(&self) -> Asn {
        match self {
            ChurnEvent::Join { member, .. } => member.asn,
            ChurnEvent::Leave { asn, .. }
            | ChurnEvent::SetExportPolicy { asn, .. }
            | ChurnEvent::Originate { asn, .. }
            | ChurnEvent::Withdraw { asn, .. } => *asn,
        }
    }
}

impl Ecosystem {
    /// Apply one churn event to the mutable ecosystem state. Returns
    /// `false` (and changes nothing) when the event is invalid against
    /// the current state — joining an existing member, leaving or
    /// retuning an unknown one, withdrawing a prefix that is not
    /// announced, originating a duplicate.
    ///
    /// A `Join` registers the member in the IXP's community scheme (so
    /// 32-bit ASNs get their private 16-bit alias, §3) before
    /// inserting; a `Leave` keeps the alias — real IXPs do not recycle
    /// them, and stale aliases must keep decoding historical streams.
    pub fn apply_churn(&mut self, event: &ChurnEvent) -> bool {
        let Some(ixp) = self.ixps.get_mut(event.ixp().0 as usize) else {
            return false;
        };
        match event {
            ChurnEvent::Join { member, .. } => {
                if ixp.members.contains_key(&member.asn) {
                    return false;
                }
                ixp.scheme.register_member(member.asn);
                ixp.members.insert(member.asn, member.clone());
                true
            }
            ChurnEvent::Leave { asn, .. } => ixp.members.remove(asn).is_some(),
            ChurnEvent::SetExportPolicy { asn, policy, .. } => match ixp.members.get_mut(asn) {
                Some(m) => {
                    m.export = policy.clone();
                    true
                }
                None => false,
            },
            ChurnEvent::Originate {
                asn, announcement, ..
            } => match ixp.members.get_mut(asn) {
                Some(m) => {
                    if m.announces(&announcement.prefix) {
                        return false;
                    }
                    m.announcements.push(announcement.clone());
                    true
                }
                None => false,
            },
            ChurnEvent::Withdraw { asn, prefix, .. } => match ixp.members.get_mut(asn) {
                Some(m) => {
                    let before = m.announcements.len();
                    m.announcements.retain(|a| &a.prefix != prefix);
                    m.announcements.len() != before
                }
                None => false,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ecosystem::EcosystemConfig;
    use mlpeer_bgp::AsPath;

    fn eco() -> Ecosystem {
        Ecosystem::generate(EcosystemConfig::tiny(3))
    }

    fn fresh_member(asn: u32) -> IxpMember {
        let mut m = IxpMember::new(Asn(asn), "80.81.193.200".parse().unwrap());
        m.announcements = vec![MemberAnnouncement {
            prefix: "198.51.100.0/24".parse().unwrap(),
            as_path: AsPath::from_seq([Asn(asn)]),
        }];
        m
    }

    #[test]
    fn join_registers_alias_and_inserts() {
        let mut e = eco();
        let ixp = IxpId(0);
        // A 32-bit ASN exercises the alias path.
        let asn = Asn(200_000);
        assert!(e.ixp(ixp).member(asn).is_none());
        let joined = e.apply_churn(&ChurnEvent::Join {
            ixp,
            member: fresh_member(asn.value()),
        });
        assert!(joined);
        assert!(e.ixp(ixp).member(asn).is_some());
        assert!(
            e.ixp(ixp).scheme.peer_repr(asn).is_some(),
            "joiner must be representable in the community scheme"
        );
        // Joining again is invalid.
        assert!(!e.apply_churn(&ChurnEvent::Join {
            ixp,
            member: fresh_member(asn.value()),
        }));
    }

    #[test]
    fn leave_removes_but_keeps_alias() {
        let mut e = eco();
        let ixp = IxpId(0);
        let asn = *e.ixp(ixp).members.keys().next().unwrap();
        let alias = e.ixp(ixp).scheme.peer_repr(asn);
        assert!(e.apply_churn(&ChurnEvent::Leave { ixp, asn }));
        assert!(e.ixp(ixp).member(asn).is_none());
        assert_eq!(
            e.ixp(ixp).scheme.peer_repr(asn),
            alias,
            "aliases are never recycled"
        );
        assert!(!e.apply_churn(&ChurnEvent::Leave { ixp, asn }), "gone");
    }

    #[test]
    fn policy_and_prefix_churn_mutate_state() {
        let mut e = eco();
        let ixp = IxpId(0);
        let asn = *e.ixp(ixp).members.keys().next().unwrap();
        let new_policy = ExportPolicy::AllExcept([Asn(64_499)].into_iter().collect());
        assert!(e.apply_churn(&ChurnEvent::SetExportPolicy {
            ixp,
            asn,
            policy: new_policy.clone(),
        }));
        assert_eq!(e.ixp(ixp).member(asn).unwrap().export, new_policy);

        let ann = MemberAnnouncement {
            prefix: "203.0.113.0/24".parse().unwrap(),
            as_path: AsPath::from_seq([asn]),
        };
        assert!(e.apply_churn(&ChurnEvent::Originate {
            ixp,
            asn,
            announcement: ann.clone(),
        }));
        assert!(e.ixp(ixp).member(asn).unwrap().announces(&ann.prefix));
        assert!(
            !e.apply_churn(&ChurnEvent::Originate {
                ixp,
                asn,
                announcement: ann.clone(),
            }),
            "duplicate originate rejected"
        );
        assert!(e.apply_churn(&ChurnEvent::Withdraw {
            ixp,
            asn,
            prefix: ann.prefix,
        }));
        assert!(!e.ixp(ixp).member(asn).unwrap().announces(&ann.prefix));
        assert!(
            !e.apply_churn(&ChurnEvent::Withdraw {
                ixp,
                asn,
                prefix: ann.prefix,
            }),
            "double withdraw rejected"
        );
    }

    #[test]
    fn events_against_unknown_targets_are_rejected() {
        let mut e = eco();
        let stranger = Asn(4_000_000);
        assert!(!e.apply_churn(&ChurnEvent::Leave {
            ixp: IxpId(0),
            asn: stranger,
        }));
        assert!(!e.apply_churn(&ChurnEvent::SetExportPolicy {
            ixp: IxpId(0),
            asn: stranger,
            policy: ExportPolicy::AllMembers,
        }));
        assert!(!e.apply_churn(&ChurnEvent::Join {
            ixp: IxpId(999),
            member: fresh_member(1),
        }));
    }

    #[test]
    fn accessors_name_the_target() {
        let ev = ChurnEvent::Withdraw {
            ixp: IxpId(4),
            asn: Asn(7),
            prefix: "10.0.0.0/24".parse().unwrap(),
        };
        assert_eq!(ev.ixp(), IxpId(4));
        assert_eq!(ev.asn(), Asn(7));
        let join = ChurnEvent::Join {
            ixp: IxpId(1),
            member: fresh_member(9),
        };
        assert_eq!(join.asn(), Asn(9));
    }
}
