//! Member export-filter intent and import filters.
//!
//! An RS member's *export policy* decides which other members its routes
//! reach (§3). Operators express it through the two idioms of Table 1 —
//! `ALL + EXCLUDE` or `NONE + INCLUDE` — which is exactly why observed
//! filters are bimodal (Fig. 11): the encoding "does not scale well for
//! implementing finer-grained filtering".
//!
//! Import filters are modeled separately: per the IRR study of §4.4 they
//! are *at most as restrictive* as export filters (often more
//! permissive), the property that makes the paper's reciprocity
//! assumption conservative.

use std::collections::BTreeSet;

use mlpeer_bgp::{Asn, CommunitySet};
use serde::{Deserialize, Serialize};

use crate::scheme::{CommunityScheme, RsAction};

/// Export policy of one RS member toward the route server.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExportPolicy {
    /// Default: advertise to every member (no communities, or an
    /// explicit ALL).
    AllMembers,
    /// ALL + EXCLUDE: advertise to everyone except the listed members.
    AllExcept(BTreeSet<Asn>),
    /// NONE + INCLUDE: advertise only to the listed members.
    OnlyTo(BTreeSet<Asn>),
    /// NONE alone: advertise to nobody (rare; a member "parked" on the
    /// route server).
    Nobody,
}

impl ExportPolicy {
    /// Does this policy allow `peer` to receive the member's routes?
    pub fn allows(&self, peer: Asn) -> bool {
        match self {
            ExportPolicy::AllMembers => true,
            ExportPolicy::AllExcept(ex) => !ex.contains(&peer),
            ExportPolicy::OnlyTo(inc) => inc.contains(&peer),
            ExportPolicy::Nobody => false,
        }
    }

    /// The members this policy reaches, out of `members`.
    pub fn allowed_set(&self, members: &BTreeSet<Asn>) -> BTreeSet<Asn> {
        members
            .iter()
            .copied()
            .filter(|&m| self.allows(m))
            .collect()
    }

    /// The fraction of `others` (candidate peers, excluding self) this
    /// policy allows — the metric plotted in Fig. 11.
    pub fn allowed_fraction(&self, others: &BTreeSet<Asn>) -> f64 {
        if others.is_empty() {
            return 1.0;
        }
        let allowed = others.iter().filter(|&&m| self.allows(m)).count();
        allowed as f64 / others.len() as f64
    }

    /// Iterate explicitly excluded members (only `AllExcept` yields
    /// any). Used by the repeller analysis (§5.5): EXCLUDE targets are
    /// the ASes being "repelled".
    pub fn excluded_iter(&self) -> impl Iterator<Item = Asn> + '_ {
        let set = match self {
            ExportPolicy::AllExcept(ex) => Some(ex),
            _ => None,
        };
        set.into_iter().flat_map(|s| s.iter().copied())
    }

    /// Encode this policy into the community set the member would attach
    /// to its announcements under the given scheme (§3, Fig. 2).
    ///
    /// * `AllMembers` → explicit `ALL` (the default could also be
    ///   expressed by tagging nothing; [`ExportPolicy::to_communities_implicit`]
    ///   models that variant, which is what makes MSK-IX-style bare
    ///   EXCLUDE lists hard to attribute, §4.2).
    /// * `AllExcept` → `ALL` + one `EXCLUDE` per blocked member.
    /// * `OnlyTo` → `NONE` + one `INCLUDE` per allowed member.
    /// * `Nobody` → `NONE`.
    ///
    /// Members whose ASNs cannot be represented (unregistered 32-bit)
    /// are silently skipped, as a real operator's config generator
    /// would refuse them.
    pub fn to_communities(&self, scheme: &CommunityScheme) -> CommunitySet {
        self.encode(scheme, true)
    }

    /// Like [`ExportPolicy::to_communities`] but omitting the redundant
    /// `ALL` tag ("Since the ALL community is unnecessary because it is
    /// the default behavior it may be omitted", §4.2).
    pub fn to_communities_implicit(&self, scheme: &CommunityScheme) -> CommunitySet {
        self.encode(scheme, false)
    }

    fn encode(&self, scheme: &CommunityScheme, explicit_all: bool) -> CommunitySet {
        let mut out = Vec::new();
        match self {
            ExportPolicy::AllMembers => {
                if explicit_all {
                    out.extend(scheme.encode(RsAction::All));
                }
            }
            ExportPolicy::AllExcept(ex) => {
                if explicit_all {
                    out.extend(scheme.encode(RsAction::All));
                }
                for &m in ex {
                    out.extend(scheme.encode(RsAction::Exclude(m)));
                }
            }
            ExportPolicy::OnlyTo(inc) => {
                out.extend(scheme.encode(RsAction::None));
                for &m in inc {
                    out.extend(scheme.encode(RsAction::Include(m)));
                }
            }
            ExportPolicy::Nobody => {
                out.extend(scheme.encode(RsAction::None));
            }
        }
        CommunitySet::from_iter(out)
    }

    /// Reconstruct a policy from a set of decoded actions — the
    /// semantics of §4.1 step 4:
    ///
    /// * `NONE` present → `OnlyTo(includes)`;
    /// * otherwise excludes present → `AllExcept(excludes)`;
    /// * otherwise → `AllMembers`.
    pub fn from_actions<I: IntoIterator<Item = RsAction>>(actions: I) -> ExportPolicy {
        let mut saw_none = false;
        let mut includes = BTreeSet::new();
        let mut excludes = BTreeSet::new();
        for a in actions {
            match a {
                RsAction::All => {}
                RsAction::None => saw_none = true,
                RsAction::Include(m) => {
                    includes.insert(m);
                }
                RsAction::Exclude(m) => {
                    excludes.insert(m);
                }
            }
        }
        if saw_none {
            if includes.is_empty() {
                ExportPolicy::Nobody
            } else {
                ExportPolicy::OnlyTo(includes)
            }
        } else if !excludes.is_empty() {
            ExportPolicy::AllExcept(excludes)
        } else {
            ExportPolicy::AllMembers
        }
    }
}

/// An import filter: the members whose routes this member refuses.
/// §4.4 found import filters never block an AS the export filter
/// allows; [`ImportFilter::respects_reciprocity`] checks that invariant.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ImportFilter {
    /// Members whose announcements are rejected on ingress.
    pub blocked: BTreeSet<Asn>,
}

impl ImportFilter {
    /// Accept everything.
    pub fn open() -> Self {
        ImportFilter::default()
    }

    /// Does the filter accept routes from `peer`?
    pub fn accepts(&self, peer: Asn) -> bool {
        !self.blocked.contains(&peer)
    }

    /// §4.4's validated invariant: the import filter blocks only ASes
    /// the export policy also blocks (import at most as restrictive as
    /// export).
    pub fn respects_reciprocity(&self, export: &ExportPolicy) -> bool {
        self.blocked.iter().all(|&b| !export.allows(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::CommunityScheme;

    fn set(asns: &[u32]) -> BTreeSet<Asn> {
        asns.iter().map(|&a| Asn(a)).collect()
    }

    #[test]
    fn allows_semantics() {
        assert!(ExportPolicy::AllMembers.allows(Asn(1)));
        let p = ExportPolicy::AllExcept(set(&[5, 6]));
        assert!(p.allows(Asn(1)) && !p.allows(Asn(5)) && !p.allows(Asn(6)));
        let p = ExportPolicy::OnlyTo(set(&[5]));
        assert!(p.allows(Asn(5)) && !p.allows(Asn(1)));
        assert!(!ExportPolicy::Nobody.allows(Asn(1)));
    }

    #[test]
    fn figure2a_none_include_encoding() {
        // Fig. 2(a): X advertises to 8359 and 8447 only:
        // 0:6695 6695:8359 6695:8447.
        let scheme = CommunityScheme::decix();
        let p = ExportPolicy::OnlyTo(set(&[8359, 8447]));
        assert_eq!(
            p.to_communities(&scheme).to_string(),
            "0:6695 6695:8359 6695:8447"
        );
    }

    #[test]
    fn figure2b_all_exclude_encoding() {
        // Fig. 2(b): X advertises to all except 5410 and 8732:
        // 6695:6695 0:5410 0:8732.
        let scheme = CommunityScheme::decix();
        let p = ExportPolicy::AllExcept(set(&[5410, 8732]));
        let cs = p.to_communities(&scheme);
        assert_eq!(cs.to_string(), "0:5410 0:8732 6695:6695");
        // Implicit variant drops the redundant ALL (§4.2, MSK-IX case).
        let cs = p.to_communities_implicit(&scheme);
        assert_eq!(cs.to_string(), "0:5410 0:8732");
    }

    #[test]
    fn from_actions_reconstructs() {
        use RsAction::*;
        assert_eq!(ExportPolicy::from_actions([All]), ExportPolicy::AllMembers);
        assert_eq!(ExportPolicy::from_actions([]), ExportPolicy::AllMembers);
        assert_eq!(
            ExportPolicy::from_actions([All, Exclude(Asn(5)), Exclude(Asn(6))]),
            ExportPolicy::AllExcept(set(&[5, 6]))
        );
        assert_eq!(
            ExportPolicy::from_actions([Exclude(Asn(5))]),
            ExportPolicy::AllExcept(set(&[5])),
            "bare EXCLUDE implies ALL"
        );
        assert_eq!(
            ExportPolicy::from_actions([None, Include(Asn(5))]),
            ExportPolicy::OnlyTo(set(&[5]))
        );
        assert_eq!(ExportPolicy::from_actions([None]), ExportPolicy::Nobody);
        // NONE wins over EXCLUDE noise.
        assert_eq!(
            ExportPolicy::from_actions([None, Exclude(Asn(9)), Include(Asn(5))]),
            ExportPolicy::OnlyTo(set(&[5]))
        );
    }

    #[test]
    fn roundtrip_policy_through_communities() {
        let scheme = CommunityScheme::decix();
        for p in [
            ExportPolicy::AllMembers,
            ExportPolicy::AllExcept(set(&[5410, 8732])),
            ExportPolicy::OnlyTo(set(&[8359, 8447])),
            ExportPolicy::Nobody,
        ] {
            let cs = p.to_communities(&scheme);
            let actions: Vec<RsAction> = cs.iter().filter_map(|c| scheme.decode(c)).collect();
            assert_eq!(ExportPolicy::from_actions(actions), p, "policy {p:?}");
        }
    }

    #[test]
    fn allowed_fraction_for_fig11() {
        let others = set(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        assert_eq!(ExportPolicy::AllMembers.allowed_fraction(&others), 1.0);
        assert_eq!(
            ExportPolicy::AllExcept(set(&[1, 2])).allowed_fraction(&others),
            0.8
        );
        assert_eq!(
            ExportPolicy::OnlyTo(set(&[1])).allowed_fraction(&others),
            0.1
        );
        assert_eq!(ExportPolicy::Nobody.allowed_fraction(&others), 0.0);
        assert_eq!(
            ExportPolicy::AllMembers.allowed_fraction(&BTreeSet::new()),
            1.0
        );
    }

    #[test]
    fn allowed_set_filters_membership() {
        let members = set(&[1, 2, 3]);
        let p = ExportPolicy::OnlyTo(set(&[2, 99]));
        assert_eq!(p.allowed_set(&members), set(&[2]), "99 is not a member");
    }

    #[test]
    fn import_reciprocity_invariant() {
        let export = ExportPolicy::AllExcept(set(&[5, 6]));
        // Import blocks a subset of export blocks: fine (and common).
        assert!(ImportFilter { blocked: set(&[5]) }.respects_reciprocity(&export));
        assert!(ImportFilter::open().respects_reciprocity(&export));
        // Import blocks someone export allows: violation.
        assert!(!ImportFilter { blocked: set(&[7]) }.respects_reciprocity(&export));
        let only = ExportPolicy::OnlyTo(set(&[1]));
        assert!(ImportFilter {
            blocked: set(&[2, 3])
        }
        .respects_reciprocity(&only));
        assert!(!ImportFilter { blocked: set(&[1]) }.respects_reciprocity(&only));
    }

    #[test]
    fn excluded_iter_yields_targets() {
        let p = ExportPolicy::AllExcept(set(&[5, 6]));
        assert_eq!(p.excluded_iter().collect::<Vec<_>>(), vec![Asn(5), Asn(6)]);
        assert_eq!(ExportPolicy::AllMembers.excluded_iter().count(), 0);
        assert_eq!(ExportPolicy::OnlyTo(set(&[5])).excluded_iter().count(), 0);
    }

    #[test]
    fn skips_unrepresentable_members_on_encode() {
        let scheme = CommunityScheme::decix(); // no aliases registered
        let p = ExportPolicy::AllExcept(set(&[200_000]));
        let cs = p.to_communities(&scheme);
        // Only the ALL tag survives; the 32-bit exclude is dropped.
        assert_eq!(cs.to_string(), "6695:6695");
    }
}
