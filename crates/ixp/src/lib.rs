//! # `mlpeer-ixp` — IXP substrate
//!
//! Everything §3 of the paper describes about multilateral peering is
//! modeled here, re-implemented from specification:
//!
//! * [`scheme`] — the RS community conventions of Table 1
//!   (ALL / EXCLUDE / NONE / INCLUDE), in both the `rs-asn`-encoded
//!   style (DE-CIX, MSK-IX) and the offset style (ECIX), including the
//!   mapping of 32-bit member ASNs onto private 16-bit aliases.
//! * [`policy`] — member export-filter intent and its encoding into
//!   community sets; import filters (validated against exports in §4.4).
//! * [`member`] — an IXP member: peering-LAN address, route-server
//!   participation, announced prefixes (own plus customer cone — the
//!   source of Fig. 5's multi-member prefixes), bilateral sessions.
//! * [`route_server`] — the route-server engine: Adj-RIB-In per member,
//!   filter evaluation, per-member export (Adj-RIB-Out), community
//!   stripping (the Netnod case of §5.8), optional RS-ASN path insertion
//!   (the §5.1 validation artifact).
//! * [`ixp`] — the IXP itself: LAN, scheme, members, route servers,
//!   bilateral fabric, ground-truth link computation.
//! * [`ecosystem`] — the calibrated 13-IXP European ecosystem of
//!   Table 2, with the policy mix of §5.2, the bimodal filters of
//!   Fig. 11, the repellers of §5.5 (including a Google-like widely
//!   blocked content network), the region-scoped policy case of §5.2,
//!   and hybrid transit-over-IXP pairs for §5.6.
//! * [`churn`] — membership and policy churn over time
//!   ([`churn::ChurnEvent`], [`Ecosystem::apply_churn`]): the mutable
//!   counterpart live mode folds incrementally (§5.1's session churn).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;
pub mod ecosystem;
pub mod ixp;
pub mod member;
pub mod policy;
pub mod route_server;
pub mod scheme;

pub use churn::ChurnEvent;
pub use ecosystem::{Ecosystem, EcosystemConfig, PeeringPolicy};
pub use ixp::{Ixp, IxpId};
pub use member::IxpMember;
pub use policy::ExportPolicy;
pub use route_server::RouteServer;
pub use scheme::{CommunityScheme, RsAction, SchemeStyle};
