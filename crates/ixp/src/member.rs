//! IXP members.
//!
//! A member brings to the exchange: an address on the peering LAN, a
//! decision whether to session with the route server(s), an export
//! policy (and import filter) if so, and the set of prefixes it
//! announces — its own plus its customer cone's, which is what makes
//! 48.4 % of DE-CIX prefixes arrive from more than one member (Fig. 5)
//! and what the query planner of §4.3 exploits.

use std::collections::BTreeSet;
use std::net::Ipv4Addr;

use mlpeer_bgp::{AsPath, Asn, Prefix};
use serde::{Deserialize, Serialize};

use crate::policy::{ExportPolicy, ImportFilter};

/// One prefix a member announces to the IXP, with the AS path the
/// member presents (itself first, the originating AS last).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemberAnnouncement {
    /// The prefix.
    pub prefix: Prefix,
    /// Path as announced: `[member, ..., origin]`.
    pub as_path: AsPath,
}

/// An IXP member.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IxpMember {
    /// Member ASN.
    pub asn: Asn,
    /// Address on the IXP peering LAN.
    pub lan_addr: Ipv4Addr,
    /// Does the member session with the route server(s)?
    pub rs_member: bool,
    /// Export policy toward the route server (ignored unless
    /// `rs_member`).
    pub export: ExportPolicy,
    /// Import filter on routes received from the route server.
    pub import: ImportFilter,
    /// Prefixes announced over the IXP (own + customer cone).
    pub announcements: Vec<MemberAnnouncement>,
    /// Members this AS peers with bilaterally across the fabric
    /// (directly, not via the route server).
    pub bilateral_peers: BTreeSet<Asn>,
    /// Local preference this member assigns to routes learned from
    /// bilateral sessions; §5.1 found 14 of 70 validation ASes prefer
    /// bilateral peers over RS peers, hiding RS links from best-path
    /// looking glasses.
    pub bilateral_local_pref: u32,
    /// Local preference for routes learned from the route server.
    pub rs_local_pref: u32,
    /// Does this member strip BGP communities when propagating routes
    /// onward (failure-injection knob; breaks passive inference for
    /// routes transiting it)?
    pub strips_communities: bool,
    /// Does the member tag the redundant explicit `ALL` community?
    /// "Since the ALL community is unnecessary because it is the default
    /// behavior it may be omitted" (§4.2) — members that omit it while
    /// using EXCLUDE lists produce the bare `0:peer-asn` values that
    /// hide which IXP the communities belong to.
    pub explicit_all: bool,
    /// Rare per-prefix policy deviations (§4.3 found them for < 0.5 % of
    /// members and < 2 % of their prefixes). The effective policy for a
    /// prefix is the override if present, the member default otherwise —
    /// which is why §4.1 step 4 intersects `N_{a,p}` over prefixes.
    pub per_prefix_overrides: std::collections::BTreeMap<Prefix, ExportPolicy>,
}

impl IxpMember {
    /// A member with the defaults the ecosystem generator starts from:
    /// RS participant, open export policy, open import, equal local
    /// preferences, no community stripping.
    pub fn new(asn: Asn, lan_addr: Ipv4Addr) -> Self {
        IxpMember {
            asn,
            lan_addr,
            rs_member: true,
            export: ExportPolicy::AllMembers,
            import: ImportFilter::open(),
            announcements: Vec::new(),
            bilateral_peers: BTreeSet::new(),
            bilateral_local_pref: 100,
            rs_local_pref: 100,
            strips_communities: false,
            explicit_all: true,
            per_prefix_overrides: std::collections::BTreeMap::new(),
        }
    }

    /// The export policy in force for `prefix` (per-prefix override or
    /// the member default).
    pub fn effective_export(&self, prefix: &Prefix) -> &ExportPolicy {
        self.per_prefix_overrides
            .get(prefix)
            .unwrap_or(&self.export)
    }

    /// Would the member's announcement of `prefix` reach `peer`, by its
    /// own (effective) export policy?
    pub fn exports_prefix_to(&self, prefix: &Prefix, peer: Asn) -> bool {
        self.rs_member && peer != self.asn && self.effective_export(prefix).allows(peer)
    }

    /// Number of announced prefixes (`|P_a|` in §4.1).
    pub fn prefix_count(&self) -> usize {
        self.announcements.len()
    }

    /// The announced prefixes.
    pub fn prefixes(&self) -> impl Iterator<Item = Prefix> + '_ {
        self.announcements.iter().map(|a| a.prefix)
    }

    /// Does the member announce `prefix`?
    pub fn announces(&self, prefix: &Prefix) -> bool {
        self.announcements.iter().any(|a| &a.prefix == prefix)
    }

    /// Would this member's routes reach `peer` via the route server, by
    /// its own export policy alone (connectivity and the peer's import
    /// filter are the IXP's concern)?
    pub fn exports_to(&self, peer: Asn) -> bool {
        self.rs_member && peer != self.asn && self.export.allows(peer)
    }

    /// Does the member prefer bilateral sessions over the route server
    /// (the §5.1 validation-hiding behavior)?
    pub fn prefers_bilateral(&self) -> bool {
        self.bilateral_local_pref > self.rs_local_pref
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn member() -> IxpMember {
        let mut m = IxpMember::new(Asn(8359), "80.81.192.33".parse().unwrap());
        m.announcements = vec![
            MemberAnnouncement {
                prefix: "193.34.0.0/22".parse().unwrap(),
                as_path: AsPath::from_seq([Asn(8359)]),
            },
            MemberAnnouncement {
                prefix: "193.34.4.0/24".parse().unwrap(),
                as_path: AsPath::from_seq([Asn(8359), Asn(47541)]),
            },
        ];
        m
    }

    #[test]
    fn defaults_are_open() {
        let m = member();
        assert!(m.rs_member);
        assert_eq!(m.export, ExportPolicy::AllMembers);
        assert!(m.import.accepts(Asn(1)));
        assert!(!m.prefers_bilateral());
        assert!(!m.strips_communities);
    }

    #[test]
    fn prefix_queries() {
        let m = member();
        assert_eq!(m.prefix_count(), 2);
        assert!(m.announces(&"193.34.0.0/22".parse().unwrap()));
        assert!(!m.announces(&"10.0.0.0/8".parse().unwrap()));
        assert_eq!(m.prefixes().count(), 2);
    }

    #[test]
    fn exports_to_respects_policy_self_and_rs_flag() {
        let mut m = member();
        m.export = ExportPolicy::AllExcept([Asn(5410)].into_iter().collect::<BTreeSet<_>>());
        assert!(m.exports_to(Asn(1)));
        assert!(!m.exports_to(Asn(5410)), "excluded");
        assert!(!m.exports_to(Asn(8359)), "never exports to itself");
        m.rs_member = false;
        assert!(
            !m.exports_to(Asn(1)),
            "non-RS member exports nothing via RS"
        );
    }

    #[test]
    fn bilateral_preference_flag() {
        let mut m = member();
        m.bilateral_local_pref = 200;
        assert!(m.prefers_bilateral());
    }
}
