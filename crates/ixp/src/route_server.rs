//! The route-server engine.
//!
//! A route server (§3, and RFC 7947 in spirit) maintains a BGP session
//! with each participating member, collects their announcements into an
//! Adj-RIB-In, evaluates each announcing member's export filter
//! (expressed through RS communities), and re-advertises routes to the
//! other members *transparently*: the next hop still points at the
//! announcing member's LAN address and — normally — the RS ASN does not
//! appear in the AS path. Two documented deviations are modeled because
//! the paper's experiments depend on them:
//!
//! * `strips_communities` (Netnod, §5.8): all community values are
//!   removed before propagation, defeating passive inference;
//! * `inserts_own_asn` (§5.1 found 3 such cases): the RS ASN is left in
//!   the path, making paths look artificially longer during validation.

use std::net::Ipv4Addr;

use mlpeer_bgp::rib::{Rib, RibEntry};
use mlpeer_bgp::route::RouteAttrs;
use mlpeer_bgp::{Announcement, Asn, CommunitySet};
use serde::{Deserialize, Serialize};

use crate::member::IxpMember;
use crate::scheme::CommunityScheme;

/// A route server (one logical instance; IXPs usually run a redundant
/// pair with the same ASN, see [`crate::ixp::Ixp::session_redundancy`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouteServer {
    /// The route server's ASN (appears in the community scheme).
    pub asn: Asn,
    /// The route server's address on the peering LAN.
    pub addr: Ipv4Addr,
    /// Netnod-style community stripping on egress.
    pub strips_communities: bool,
    /// Leaves its own ASN in propagated paths (validation artifact).
    pub inserts_own_asn: bool,
}

impl RouteServer {
    /// A standard transparent route server.
    pub fn new(asn: Asn, addr: Ipv4Addr) -> Self {
        RouteServer {
            asn,
            addr,
            strips_communities: false,
            inserts_own_asn: false,
        }
    }

    /// The community set member `m` attaches when announcing `prefix`,
    /// under the IXP's scheme. This is the *reachability data* the whole
    /// paper mines.
    pub fn communities_for(
        member: &IxpMember,
        prefix: &mlpeer_bgp::Prefix,
        scheme: &CommunityScheme,
    ) -> CommunitySet {
        let policy = member.effective_export(prefix);
        if member.explicit_all {
            policy.to_communities(scheme)
        } else {
            policy.to_communities_implicit(scheme)
        }
    }

    /// Build the route server's Adj-RIB-In from the member set: every
    /// RS member's announcements, with the communities they tag.
    ///
    /// This is what an IXP looking glass exposes via `show ip bgp`
    /// (§4.1 steps 1–3 query exactly this table).
    pub fn build_rib<'a, I>(&self, members: I, scheme: &CommunityScheme) -> Rib
    where
        I: IntoIterator<Item = &'a IxpMember>,
    {
        let mut rib = Rib::new();
        for m in members {
            if !m.rs_member {
                continue;
            }
            for ann in &m.announcements {
                let attrs = RouteAttrs::new(ann.as_path.clone(), m.lan_addr)
                    .with_communities(Self::communities_for(m, &ann.prefix, scheme));
                rib.insert(
                    ann.prefix,
                    RibEntry {
                        peer: m.asn,
                        peer_addr: m.lan_addr,
                        attrs,
                        learned_at: 0,
                    },
                );
            }
        }
        rib
    }

    /// Would announcer `a`'s route for `prefix` be delivered to receiver
    /// `b`? Connectivity (both RS members), `a`'s (effective) export
    /// filter, and `b`'s import filter must all agree.
    pub fn delivers(a: &IxpMember, b: &IxpMember, prefix: &mlpeer_bgp::Prefix) -> bool {
        b.rs_member && a.exports_prefix_to(prefix, b.asn) && b.import.accepts(a.asn)
    }

    /// Compute the announcements member `to` receives from the route
    /// server — its Adj-RIB-In on the RS session. Communities are
    /// stripped if the RS is a stripping RS; the RS ASN is prepended if
    /// the RS is a path-inserting RS.
    pub fn export_to<'a, I>(
        &self,
        to: &IxpMember,
        members: I,
        scheme: &CommunityScheme,
    ) -> Vec<Announcement>
    where
        I: IntoIterator<Item = &'a IxpMember>,
    {
        let mut out = Vec::new();
        if !to.rs_member {
            return out;
        }
        for a in members {
            if a.asn == to.asn || !a.rs_member {
                continue;
            }
            for ann in &a.announcements {
                if !Self::delivers(a, to, &ann.prefix) {
                    continue;
                }
                let path = if self.inserts_own_asn {
                    ann.as_path.prepended(self.asn)
                } else {
                    ann.as_path.clone()
                };
                let communities = if self.strips_communities {
                    CommunitySet::new()
                } else {
                    Self::communities_for(a, &ann.prefix, scheme)
                };
                // Transparent next hop: the announcing member's address.
                let attrs = RouteAttrs::new(path, a.lan_addr)
                    .with_communities(communities)
                    .with_local_pref(to.rs_local_pref);
                out.push(Announcement::new(ann.prefix, attrs));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::member::MemberAnnouncement;
    use crate::policy::ExportPolicy;
    use mlpeer_bgp::AsPath;
    use std::collections::BTreeSet;

    fn scheme() -> CommunityScheme {
        CommunityScheme::decix()
    }

    fn rs() -> RouteServer {
        RouteServer::new(Asn(6695), "80.81.192.253".parse().unwrap())
    }

    fn member(asn: u32, last_octet: u8) -> IxpMember {
        let mut m = IxpMember::new(Asn(asn), Ipv4Addr::new(80, 81, 192, last_octet));
        m.announcements = vec![MemberAnnouncement {
            prefix: format!("19{}.34.0.0/22", (asn % 5) + 3).parse().unwrap(),
            as_path: AsPath::from_seq([Asn(asn)]),
        }];
        m
    }

    /// The Figure 3 scenario: A, B, C, D on a DE-CIX-style RS. A uses
    /// NONE+INCLUDE allowing B and D (excluding C); the rest allow all.
    fn fig3_members() -> Vec<IxpMember> {
        let (a, b, c, d) = (1001u32, 1002, 1003, 1004);
        let mut ma = member(a, 1);
        ma.export = ExportPolicy::OnlyTo([Asn(b), Asn(d)].into_iter().collect::<BTreeSet<_>>());
        let mb = member(b, 2);
        let mc = member(c, 3);
        let md = member(d, 4);
        vec![ma, mb, mc, md]
    }

    #[test]
    fn rib_carries_member_communities() {
        let members = fig3_members();
        let rib = rs().build_rib(&members, &scheme());
        assert_eq!(rib.path_count(), 4);
        let pfx = members[0].announcements[0].prefix;
        let entry = rib.path_from(&pfx, Asn(1001)).unwrap();
        // NONE + INCLUDE(B) + INCLUDE(D): 0:6695 6695:1002 6695:1004.
        assert_eq!(
            entry.attrs.communities.to_string(),
            "0:6695 6695:1002 6695:1004"
        );
    }

    #[test]
    fn fig3_delivery_matrix() {
        let members = fig3_members();
        let by_asn = |x: u32| members.iter().find(|m| m.asn == Asn(x)).unwrap();
        let (a, b, c, d) = (by_asn(1001), by_asn(1002), by_asn(1003), by_asn(1004));
        let p = &a.announcements[0].prefix;
        // A's route reaches B and D but not C.
        assert!(RouteServer::delivers(a, b, p));
        assert!(RouteServer::delivers(a, d, p));
        assert!(!RouteServer::delivers(a, c, p));
        // C's route reaches A (C allows all) — the asymmetry of Fig. 3:
        // "C's routes are received by A, but C blocks A from receiving
        // its routes" is the inverse case; here A blocks C.
        let pc = &c.announcements[0].prefix;
        assert!(RouteServer::delivers(c, a, pc));
        // Nobody delivers to itself.
        assert!(!RouteServer::delivers(a, a, p));
    }

    #[test]
    fn export_to_respects_filters_and_is_transparent() {
        let members = fig3_members();
        let c = members.iter().find(|m| m.asn == Asn(1003)).unwrap();
        let got = rs().export_to(c, &members, &scheme());
        // C receives from B and D (open) but not from A (excluded).
        let from: BTreeSet<Asn> = got
            .iter()
            .filter_map(|ann| ann.attrs.as_path.first_hop())
            .collect();
        assert!(from.contains(&Asn(1002)) && from.contains(&Asn(1004)));
        assert!(!from.contains(&Asn(1001)), "A's export filter blocks C");
        // Transparency: next hop is the announcer's LAN address, and the
        // RS ASN is absent from paths.
        for ann in &got {
            assert_ne!(ann.attrs.next_hop, rs().addr);
            assert!(!ann.attrs.as_path.contains(Asn(6695)));
        }
    }

    #[test]
    fn import_filter_blocks_on_ingress() {
        let mut members = fig3_members();
        // D refuses routes from B.
        let d_idx = members.iter().position(|m| m.asn == Asn(1004)).unwrap();
        members[d_idx].import.blocked.insert(Asn(1002));
        let d = &members[d_idx];
        let got = rs().export_to(d, &members, &scheme());
        let from: BTreeSet<Asn> = got
            .iter()
            .filter_map(|ann| ann.attrs.as_path.first_hop())
            .collect();
        assert!(!from.contains(&Asn(1002)), "import filter dropped B");
        assert!(from.contains(&Asn(1001)), "A includes D");
    }

    #[test]
    fn stripping_rs_removes_communities() {
        let members = fig3_members();
        let mut server = rs();
        server.strips_communities = true;
        let b = members.iter().find(|m| m.asn == Asn(1002)).unwrap();
        let got = server.export_to(b, &members, &scheme());
        assert!(!got.is_empty());
        for ann in got {
            assert!(
                ann.attrs.communities.is_empty(),
                "Netnod-style RS strips communities"
            );
        }
    }

    #[test]
    fn inserting_rs_lengthens_paths() {
        let members = fig3_members();
        let mut server = rs();
        server.inserts_own_asn = true;
        let b = members.iter().find(|m| m.asn == Asn(1002)).unwrap();
        let got = server.export_to(b, &members, &scheme());
        for ann in got {
            assert_eq!(
                ann.attrs.as_path.first_hop(),
                Some(Asn(6695)),
                "RS ASN prepended"
            );
        }
    }

    #[test]
    fn per_prefix_override_changes_communities_and_delivery() {
        let mut members = fig3_members();
        // B normally allows everyone, but for one prefix excludes D.
        let b_idx = members.iter().position(|m| m.asn == Asn(1002)).unwrap();
        let pfx = members[b_idx].announcements[0].prefix;
        members[b_idx].per_prefix_overrides.insert(
            pfx,
            ExportPolicy::AllExcept([Asn(1004)].into_iter().collect::<BTreeSet<_>>()),
        );
        let b = &members[b_idx];
        let d = members.iter().find(|m| m.asn == Asn(1004)).unwrap();
        assert!(!RouteServer::delivers(b, d, &pfx));
        let cs = RouteServer::communities_for(b, &pfx, &scheme());
        assert_eq!(cs.to_string(), "0:1004 6695:6695");
    }

    #[test]
    fn implicit_all_member_tags_only_excludes() {
        let mut m = member(1002, 2);
        m.explicit_all = false;
        m.export = ExportPolicy::AllExcept([Asn(1004)].into_iter().collect::<BTreeSet<_>>());
        let pfx = m.announcements[0].prefix;
        let cs = RouteServer::communities_for(&m, &pfx, &scheme());
        assert_eq!(
            cs.to_string(),
            "0:1004",
            "bare EXCLUDE, no ALL — the §4.2 hard case"
        );
    }

    #[test]
    fn non_rs_member_is_invisible_to_rs() {
        let mut members = fig3_members();
        let b_idx = members.iter().position(|m| m.asn == Asn(1002)).unwrap();
        members[b_idx].rs_member = false;
        let rib = rs().build_rib(&members, &scheme());
        assert!(rib
            .path_from(&members[b_idx].announcements[0].prefix, Asn(1002))
            .is_none());
        // And it receives nothing.
        let got = rs().export_to(&members[b_idx], &members, &scheme());
        assert!(got.is_empty());
    }
}
