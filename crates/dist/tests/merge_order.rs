//! Order-insensitivity properties of the distributed fold: arbitrary
//! partition shapes (including empty shards) and arbitrary absorb
//! orders are byte-identical to serial `harvest_passive`; the live
//! partition merge is byte-identical to one serial `LiveInferencer`
//! over the same stream — which core's own suite ties to
//! `full_harvest` of the churned ecosystem.

use std::sync::Arc;
use std::time::Duration;

use mlpeer::infer::{InferState, LinkInferencer, Observation};
use mlpeer::live::{decode_message, LinkDelta, LiveInferencer};
use mlpeer::passive::{
    harvest_passive, harvest_passive_units, passive_work_units, PassiveConfig, PassiveStats,
};
use mlpeer::pipeline::{prepare, TeeSink};
use mlpeer_data::churn::{event_messages, ChurnConfig, ChurnGen};
use mlpeer_dist::{eco_for, harvest_passive_dist, DistConfig, DistLive, DistStats};

/// Deterministic xorshift64* generator.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

fn shuffle<T>(rng: &mut Rng, v: &mut [T]) {
    for i in (1..v.len()).rev() {
        v.swap(i, rng.below(i as u64 + 1) as usize);
    }
}

/// The worker binary of this build — spawning real processes even from
/// the crate's own test suite.
fn worker_cmd() -> (std::path::PathBuf, Vec<String>) {
    (
        std::path::PathBuf::from(env!("CARGO_BIN_EXE_mlpeer-dist-worker")),
        Vec::new(),
    )
}

/// Arbitrary contiguous partitions (empty shards allowed) harvested
/// independently, states absorbed in arbitrary orders: finalize and
/// stats always equal serial; observation concat in shard order equals
/// the serial stream.
#[test]
fn passive_fold_is_partition_and_order_insensitive() {
    for seed in [2024u64, 4242] {
        let eco = eco_for("tiny", seed).unwrap();
        let prep = prepare(&eco, seed);
        let cfg = PassiveConfig::default();

        let mut serial: TeeSink = Default::default();
        let serial_stats = harvest_passive(
            &prep.passive,
            &prep.dict,
            &prep.conn,
            &prep.rels,
            &cfg,
            &mut serial,
        );
        let serial_links = serial.1.finalize(&prep.conn);

        let units = passive_work_units(&prep.passive, 64);
        let mut rng = Rng(seed | 1);
        for _ in 0..6 {
            // Random contiguous cut points, some shards empty.
            let shard_count = 1 + rng.below(5) as usize;
            let mut cuts: Vec<usize> = (0..shard_count - 1)
                .map(|_| rng.below(units.len() as u64 + 1) as usize)
                .collect();
            cuts.sort_unstable();
            cuts.insert(0, 0);
            cuts.push(units.len());

            // Harvest each shard independently.
            let mut shards: Vec<(usize, Vec<Observation>, InferState, PassiveStats)> = Vec::new();
            for (i, pair) in cuts.windows(2).enumerate() {
                let mut sink: TeeSink = Default::default();
                let stats = harvest_passive_units(
                    &prep.passive,
                    &prep.dict,
                    &prep.conn,
                    &prep.rels,
                    &cfg,
                    &units[pair[0]..pair[1]],
                    &mut sink,
                );
                shards.push((i, sink.0, sink.1.export_state(), stats));
            }

            // Observations concatenate in *shard* order…
            let mut observations = Vec::new();
            for (_, obs, _, _) in &shards {
                observations.extend(obs.iter().cloned());
            }
            assert_eq!(
                observations, serial.0,
                "shard-order concat == serial stream"
            );

            // …while state absorption tolerates *any* completion order.
            shuffle(&mut rng, &mut shards);
            let mut folded = LinkInferencer::default();
            let mut folded_stats = PassiveStats::default();
            for (_, _, state, stats) in shards {
                folded.absorb_state(state);
                folded_stats.merge(&stats);
            }
            assert_eq!(folded_stats, serial_stats);
            assert_eq!(folded.finalize(&prep.conn), serial_links);
        }
    }
}

/// The whole coordinator path against real worker processes: spawned,
/// framed, folded — equal to serial, with zero degradations.
#[test]
fn dist_harvest_with_real_workers_matches_serial() {
    let seed = 2024u64;
    let eco = eco_for("tiny", seed).unwrap();
    let prep = prepare(&eco, seed);

    let mut serial: TeeSink = Default::default();
    let serial_stats = harvest_passive(
        &prep.passive,
        &prep.dict,
        &prep.conn,
        &prep.rels,
        &PassiveConfig::default(),
        &mut serial,
    );
    let serial_links = serial.1.finalize(&prep.conn);

    let cfg = DistConfig {
        workers: 3,
        timeout: Duration::from_secs(120),
        max_retries: 2,
        worker_cmd: Some(worker_cmd()),
        faults: Vec::new(),
    };
    let stats = DistStats::new(3);
    let (sink, dist_stats) = harvest_passive_dist("tiny", seed, &prep, &cfg, &stats);

    assert_eq!(dist_stats, serial_stats);
    assert_eq!(sink.0, serial.0, "distributed observation stream == serial");
    assert_eq!(sink.1.finalize(&prep.conn), serial_links);

    let snap = stats.snapshot();
    assert!(snap.spawned >= 1, "real workers must have run: {snap:?}");
    assert_eq!(snap.degraded, 0, "no degradation on the happy path");
    assert_eq!(snap.retried, 0);
    assert!(snap.frames >= 2 && snap.bytes > 0);
}

/// `workers: 1` short-circuits in-process — no processes, no frames —
/// and still equals serial (the bench's ≥ 1.0x floor path).
#[test]
fn single_worker_config_is_in_process_and_serial_equal() {
    let seed = 7u64;
    let eco = eco_for("tiny", seed).unwrap();
    let prep = prepare(&eco, seed);

    let mut serial: TeeSink = Default::default();
    harvest_passive(
        &prep.passive,
        &prep.dict,
        &prep.conn,
        &prep.rels,
        &PassiveConfig::default(),
        &mut serial,
    );

    let cfg = DistConfig {
        workers: 1,
        worker_cmd: None,
        ..DistConfig::new(1)
    };
    let stats = DistStats::new(1);
    let (sink, _) = harvest_passive_dist("tiny", seed, &prep, &cfg, &stats);
    assert_eq!(sink.0, serial.0);
    assert_eq!(sink.1.finalize(&prep.conn), serial.1.finalize(&prep.conn));
    let snap = stats.snapshot();
    assert_eq!((snap.spawned, snap.frames), (0, 0));
}

/// Live mode: the IXP-partitioned worker fleet, ticked with centrally
/// decoded churn, stays byte-identical to one serial `LiveInferencer`
/// over the same stream — links, canonical observations, and the
/// changed flag — across several ticks. Serial live state in turn
/// equals `full_harvest` of the churned ecosystem (core's invariant),
/// transitively anchoring the distributed fold to it.
#[test]
fn dist_live_matches_serial_inferencer_under_churn() {
    let seed = 909u64;
    let mut eco = eco_for("tiny", seed).unwrap();
    let mut serial = LiveInferencer::from_ecosystem(&eco);

    let cfg = DistConfig {
        workers: 3,
        timeout: Duration::from_secs(120),
        max_retries: 2,
        worker_cmd: Some(worker_cmd()),
        faults: Vec::new(),
    };
    let stats = Arc::new(DistStats::new(3));
    let mut dist = DistLive::new(&eco, cfg, Arc::clone(&stats));

    // Boot states agree before any churn.
    let (links, observations) = dist.state();
    assert_eq!(&links, serial.current());
    assert_eq!(observations, serial.observations());
    assert!(dist.proc_shards() >= 1, "real live workers must be running");

    let mut churn = ChurnGen::new(
        &eco,
        ChurnConfig {
            seed: seed ^ 0xC,
            ..ChurnConfig::default()
        },
    );
    let mut clock = 0u64;
    for _tick in 0..5 {
        // Centrally decode one tick's worth of churn into live events.
        let mut events = Vec::new();
        for _ in 0..12 {
            let event = churn.next_event(&eco);
            eco.apply_churn(&event);
            let ixp = event.ixp();
            let scheme = &eco.ixp(ixp).scheme;
            for msg in event_messages(&eco, &event, clock) {
                events.extend(decode_message(ixp, scheme, &msg));
            }
            clock += 1;
        }

        // Serial fold.
        let before = serial.state_version();
        let mut serial_delta = LinkDelta::default();
        for e in &events {
            serial_delta.merge(serial.apply(e));
        }
        let serial_changed = !serial_delta.is_empty() || serial.state_version() != before;

        // Distributed fold.
        let outcome = dist.tick(&events);
        assert_eq!(&outcome.links, serial.current(), "links diverged");
        assert_eq!(
            outcome.observations,
            serial.observations(),
            "canonical observations diverged"
        );
        assert_eq!(outcome.changed, serial_changed, "publish gating diverged");

        // The folded delta carries the same net link moves (entry
        // order differs across shards; the sets must not).
        let mut dist_added = outcome.delta.added.clone();
        let mut dist_removed = outcome.delta.removed.clone();
        dist_added.sort_unstable();
        dist_removed.sort_unstable();
        let mut serial_added = serial_delta.added.clone();
        let mut serial_removed = serial_delta.removed.clone();
        serial_added.sort_unstable();
        serial_removed.sort_unstable();
        assert_eq!(dist_added, serial_added);
        assert_eq!(dist_removed, serial_removed);
    }
    // And the end-state anchor: the distributed fold equals a
    // from-scratch full harvest of the churned ecosystem, not just the
    // serial inferencer it tracked along the way.
    let fresh = LiveInferencer::from_ecosystem(&eco);
    let (links, observations) = dist.state();
    assert_eq!(&links, fresh.current(), "dist != full_harvest after churn");
    assert_eq!(observations, fresh.observations());

    assert_eq!(stats.snapshot().degraded, 0, "happy path must not degrade");
    dist.shutdown();
}
