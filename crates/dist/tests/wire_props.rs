//! Seeded property tests for the merge wire format (the style of
//! `crates/store/tests/segment_props.rs`): round-trip fidelity,
//! truncation at every cut, and single-byte corruption always
//! detected — never silently folded into a wrong merge.

use std::collections::BTreeSet;

use mlpeer::infer::{InferEntry, InferState, MlpLinkSet, Observation, ObservationSource};
use mlpeer::live::{LinkDelta, LiveEvent};
use mlpeer::passive::{PassiveStats, WorkUnit};
use mlpeer_bgp::{Asn, Prefix};
use mlpeer_dist::wire::{
    decode_frame, encode_frame, read_frame, Frame, FrameKind, LiveAck, LiveBatch, PassiveJob,
    PassiveResult, WireError,
};
use mlpeer_dist::Fault;
use mlpeer_ixp::ixp::IxpId;
use mlpeer_ixp::policy::ExportPolicy;
use mlpeer_ixp::scheme::RsAction;

/// Deterministic xorshift64* generator — no external RNG crates.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }
}

fn rand_prefix(rng: &mut Rng) -> Prefix {
    Prefix::from_u32(rng.next() as u32, rng.below(33) as u8).unwrap()
}

fn rand_asn(rng: &mut Rng) -> Asn {
    Asn(1 + rng.below(65_000) as u32)
}

fn rand_actions(rng: &mut Rng) -> Vec<RsAction> {
    (0..rng.below(4))
        .map(|_| match rng.below(4) {
            0 => RsAction::All,
            1 => RsAction::None,
            2 => RsAction::Include(rand_asn(rng)),
            _ => RsAction::Exclude(rand_asn(rng)),
        })
        .collect()
}

fn rand_observation(rng: &mut Rng) -> Observation {
    Observation {
        ixp: IxpId(rng.below(16) as u16),
        member: rand_asn(rng),
        prefix: rand_prefix(rng),
        actions: rand_actions(rng),
        source: match rng.below(3) {
            0 => ObservationSource::Passive,
            1 => ObservationSource::ActiveRsLg,
            _ => ObservationSource::ActiveMemberLg,
        },
    }
}

fn rand_asn_set(rng: &mut Rng) -> BTreeSet<Asn> {
    (0..rng.below(4)).map(|_| rand_asn(rng)).collect()
}

fn rand_infer_state(rng: &mut Rng) -> InferState {
    InferState {
        entries: (0..rng.below(12))
            .map(|_| InferEntry {
                ixp: IxpId(rng.below(16) as u16),
                member: rand_asn(rng),
                prefix: rand_prefix(rng),
                saw_none: rng.chance(30),
                includes: rand_asn_set(rng),
                excludes: rand_asn_set(rng),
            })
            .collect(),
        observations: rng.below(10_000),
    }
}

fn rand_stats(rng: &mut Rng) -> PassiveStats {
    PassiveStats {
        routes_seen: rng.below(10_000) as usize,
        dropped_bogon: rng.below(100) as usize,
        dropped_cycle: rng.below(100) as usize,
        dropped_transient: rng.below(100) as usize,
        unidentified: rng.below(100) as usize,
        setter_unknown: rng.below(100) as usize,
        observations: rng.below(10_000) as usize,
        quarantined: rng.below(100) as usize,
    }
}

fn rand_fault(rng: &mut Rng) -> Fault {
    match rng.below(6) {
        0 => Fault::None,
        1 => Fault::CrashSilent,
        2 => Fault::CrashMidFrame,
        3 => Fault::StallMs(rng.below(10_000) as u32),
        4 => Fault::Garbage,
        _ => Fault::Duplicate,
    }
}

fn rand_job(rng: &mut Rng) -> PassiveJob {
    PassiveJob {
        scale: ["tiny", "small", "medium", ""][rng.below(4) as usize].to_string(),
        seed: rng.next(),
        units: (0..rng.below(20))
            .map(|_| {
                if rng.chance(70) {
                    let start = rng.below(100_000);
                    WorkUnit::Rib {
                        collector: rng.below(8) as u32,
                        start,
                        end: start + rng.below(10_000),
                    }
                } else {
                    WorkUnit::Updates {
                        collector: rng.below(8) as u32,
                    }
                }
            })
            .collect(),
        fault: rand_fault(rng),
    }
}

fn rand_result(rng: &mut Rng) -> PassiveResult {
    PassiveResult {
        observations: (0..rng.below(16)).map(|_| rand_observation(rng)).collect(),
        state: rand_infer_state(rng),
        stats: rand_stats(rng),
    }
}

fn rand_event(rng: &mut Rng) -> LiveEvent {
    let ixp = IxpId(rng.below(16) as u16);
    let member = rand_asn(rng);
    match rng.below(4) {
        0 => LiveEvent::Join { ixp, member },
        1 => LiveEvent::Leave { ixp, member },
        2 => LiveEvent::Announce {
            ixp,
            member,
            prefix: rand_prefix(rng),
            actions: rand_actions(rng),
        },
        _ => LiveEvent::Withdraw {
            ixp,
            member,
            prefix: rand_prefix(rng),
        },
    }
}

fn rand_links(rng: &mut Rng) -> MlpLinkSet {
    let mut links = MlpLinkSet::default();
    for _ in 0..rng.below(4) {
        let ixp = IxpId(rng.below(16) as u16);
        let pairs: BTreeSet<(Asn, Asn)> = (0..rng.below(5))
            .map(|_| {
                let (a, b) = (rand_asn(rng), rand_asn(rng));
                (a.min(b), a.max(b))
            })
            .collect();
        links.per_ixp.insert(ixp, pairs);
        links.covered.insert(ixp, rand_asn_set(rng));
        links.policies.insert(
            (ixp, rand_asn(rng)),
            match rng.below(4) {
                0 => ExportPolicy::AllMembers,
                1 => ExportPolicy::AllExcept(rand_asn_set(rng)),
                2 => ExportPolicy::OnlyTo(rand_asn_set(rng)),
                _ => ExportPolicy::Nobody,
            },
        );
    }
    links
}

fn rand_ack(rng: &mut Rng) -> LiveAck {
    LiveAck {
        changed: rng.chance(50),
        delta: LinkDelta {
            added: (0..rng.below(4))
                .map(|_| (IxpId(rng.below(16) as u16), rand_asn(rng), rand_asn(rng)))
                .collect(),
            removed: (0..rng.below(4))
                .map(|_| (IxpId(rng.below(16) as u16), rand_asn(rng), rand_asn(rng)))
                .collect(),
        },
        links: rand_links(rng),
        observations: (0..rng.below(8)).map(|_| rand_observation(rng)).collect(),
    }
}

/// Every message kind round-trips exactly through payload codec +
/// frame layer, across many seeds.
#[test]
fn round_trip_across_seeds() {
    for seed in 1..=40u64 {
        let mut rng = Rng::new(seed.wrapping_mul(0x9E3779B97F4A7C15));

        let job = rand_job(&mut rng);
        assert_eq!(PassiveJob::decode(&job.encode()).unwrap(), job);

        let result = rand_result(&mut rng);
        assert_eq!(PassiveResult::decode(&result.encode()).unwrap(), result);

        let batch = LiveBatch {
            events: (0..rng.below(12)).map(|_| rand_event(&mut rng)).collect(),
            fault: rand_fault(&mut rng),
        };
        assert_eq!(LiveBatch::decode(&batch.encode()).unwrap(), batch);

        let ack = rand_ack(&mut rng);
        assert_eq!(LiveAck::decode(&ack.encode()).unwrap(), ack);

        // And through the frame layer, preserving kind and seq.
        let seq = rng.next() as u32;
        let bytes = encode_frame(FrameKind::PassiveResult, seq, &result.encode());
        let frame = decode_frame(&bytes).unwrap();
        assert_eq!(frame.kind, FrameKind::PassiveResult);
        assert_eq!(frame.seq, seq);
        assert_eq!(PassiveResult::decode(&frame.payload).unwrap(), result);
    }
}

/// Truncating an encoded frame at *any* byte boundary is detected
/// (clean empty input reads as EOF, everything else errors — never a
/// panic, never a bogus frame).
#[test]
fn truncation_at_every_cut_is_detected() {
    let mut rng = Rng::new(7);
    let result = rand_result(&mut rng);
    let bytes = encode_frame(FrameKind::PassiveResult, 3, &result.encode());
    for cut in 0..bytes.len() {
        let mut cursor = &bytes[..cut];
        match read_frame(&mut cursor) {
            Ok(None) => assert_eq!(cut, 0, "only the empty stream is a clean EOF"),
            Ok(Some(frame)) => panic!("cut at {cut} decoded a frame: {frame:?}"),
            Err(_) => {}
        }
    }
    // The full frame still decodes (the loop above really cut bytes).
    let mut cursor = &bytes[..];
    assert!(read_frame(&mut cursor).unwrap().is_some());
}

/// Flipping any single byte of a frame is always detected, for many
/// random frames. This is the invariant the coordinator's retry logic
/// rests on: corruption can waste an attempt, never corrupt the merge.
#[test]
fn single_byte_corruption_is_always_detected() {
    for seed in 1..=10u64 {
        let mut rng = Rng::new(seed);
        let batch = LiveBatch {
            events: (0..1 + rng.below(8))
                .map(|_| rand_event(&mut rng))
                .collect(),
            fault: Fault::None,
        };
        let bytes = encode_frame(FrameKind::LiveTick, seed as u32, &batch.encode());
        for i in 0..bytes.len() {
            for flip in [0x01u8, 0x80, 0xFF] {
                let mut corrupt = bytes.clone();
                corrupt[i] ^= flip;
                let mut cursor = &corrupt[..];
                if let Ok(Some(frame)) = read_frame(&mut cursor) {
                    panic!(
                        "flip {flip:#x} at byte {i} went undetected: {:?}",
                        frame.kind
                    );
                }
            }
        }
    }
}

/// Bit flips *and* truncation composed: random double corruption over
/// many seeds still never yields a valid frame.
#[test]
fn random_double_corruption_never_yields_a_frame() {
    let mut rng = Rng::new(0xDEADBEEF);
    let ack = rand_ack(&mut rng);
    let bytes = encode_frame(FrameKind::LiveAck, 9, &ack.encode());
    for _ in 0..2_000 {
        let mut corrupt = bytes.clone();
        let a = rng.below(corrupt.len() as u64) as usize;
        let b = rng.below(corrupt.len() as u64) as usize;
        corrupt[a] ^= (1 + rng.below(255)) as u8;
        corrupt[b] ^= (1 + rng.below(255)) as u8;
        if corrupt == bytes {
            continue; // the two flips cancelled
        }
        let cut = corrupt.len() - rng.below(8) as usize;
        let mut cursor = &corrupt[..cut];
        if let Ok(Some(frame)) = read_frame(&mut cursor) {
            panic!("double corruption went undetected: {:?}", frame.kind);
        }
    }
}

/// Trailing bytes after a complete frame are rejected by the
/// exact-decode entry point, and a second frame on the same stream is
/// read cleanly by the streaming one — the two APIs' contracts differ
/// exactly there.
#[test]
fn framing_boundaries_are_exact() {
    let payload = LiveBatch {
        events: vec![],
        fault: Fault::None,
    }
    .encode();
    let one = encode_frame(FrameKind::Shutdown, 1, &payload);
    let mut two = one.clone();
    two.extend_from_slice(&encode_frame(FrameKind::Shutdown, 2, &payload));

    assert!(decode_frame(&one).is_ok());
    assert!(
        decode_frame(&two).is_err(),
        "trailing frame must be rejected"
    );

    let mut cursor = &two[..];
    let Frame { seq: s1, .. } = read_frame(&mut cursor).unwrap().unwrap();
    let Frame { seq: s2, .. } = read_frame(&mut cursor).unwrap().unwrap();
    assert_eq!((s1, s2), (1, 2));
    assert!(read_frame(&mut cursor).unwrap().is_none(), "then clean EOF");
}

/// A declared payload length over the cap is refused before any
/// allocation of that size happens.
#[test]
fn oversized_length_is_refused() {
    let mut bytes = encode_frame(FrameKind::PassiveJob, 0, &[]);
    // Patch the length field (bytes 10..14: after magic, ver, kind,
    // seq) to a huge value.
    bytes[10..14].copy_from_slice(&u32::MAX.to_le_bytes());
    let mut cursor = &bytes[..];
    assert!(matches!(
        read_frame(&mut cursor),
        Err(WireError::TooLarge(_))
    ));
}
