//! Coordinator-side counters, surfaced under `/v1/stats` as the
//! `"dist"` block.

use std::sync::atomic::{AtomicU64, Ordering};

/// Lifetime counters of one coordinator (shared, lock-free). Every
/// field is monotonic; the serve layer snapshots them per request.
#[derive(Debug, Default)]
pub struct DistStats {
    /// Worker processes configured (`--workers=N`).
    pub procs: AtomicU64,
    /// Worker processes spawned (includes retries).
    pub spawned: AtomicU64,
    /// Shard attempts retried after a crash or corrupt frame.
    pub retried: AtomicU64,
    /// Workers killed for exceeding the per-shard deadline.
    pub timed_out: AtomicU64,
    /// Shards that fell back to in-process execution after exhausting
    /// retries (or when no worker binary could be resolved).
    pub degraded: AtomicU64,
    /// Duplicate result frames discarded.
    pub deduped: AtomicU64,
    /// Frames exchanged (both directions).
    pub frames: AtomicU64,
    /// Wire bytes exchanged (both directions).
    pub bytes: AtomicU64,
}

/// One point-in-time copy of [`DistStats`], with plain fields — what
/// renders into the stats body.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DistStatsSnapshot {
    /// Worker processes configured.
    pub procs: u64,
    /// Worker processes spawned.
    pub spawned: u64,
    /// Shard attempts retried.
    pub retried: u64,
    /// Workers killed on deadline.
    pub timed_out: u64,
    /// Shards degraded to in-process execution.
    pub degraded: u64,
    /// Duplicate result frames discarded.
    pub deduped: u64,
    /// Frames exchanged.
    pub frames: u64,
    /// Wire bytes exchanged.
    pub bytes: u64,
}

impl DistStats {
    /// Fresh zeroed counters for an `N`-worker coordinator.
    pub fn new(procs: u64) -> DistStats {
        let s = DistStats::default();
        s.procs.store(procs, Ordering::Relaxed);
        s
    }

    /// Count one frame of `n` wire bytes (either direction).
    pub fn record_frame(&self, n: usize) {
        self.frames.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(n as u64, Ordering::Relaxed);
    }

    /// Point-in-time copy.
    pub fn snapshot(&self) -> DistStatsSnapshot {
        DistStatsSnapshot {
            procs: self.procs.load(Ordering::Relaxed),
            spawned: self.spawned.load(Ordering::Relaxed),
            retried: self.retried.load(Ordering::Relaxed),
            timed_out: self.timed_out.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            deduped: self.deduped.load(Ordering::Relaxed),
            frames: self.frames.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
        }
    }
}
