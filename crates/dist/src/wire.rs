//! The merge wire format: checksummed, length-prefixed binary frames
//! carrying jobs and per-shard results between the coordinator and its
//! worker processes.
//!
//! The vendored `serde_json` stand-in cannot parse JSON back (see
//! `vendor/README.md`), so — like the epoch store — the dist layer
//! speaks a hand-rolled little-endian binary format, reusing
//! `mlpeer_store::codec` for every domain type it already covers.
//!
//! ## Frame layout
//!
//! ```text
//! ┌───────┬─────┬──────┬─────────┬───────────┬─────────┬─────────────┐
//! │ MLPD  │ ver │ kind │ seq u32 │ len  u32  │ payload │ checksum u64│
//! │ 4 B   │ 1 B │ 1 B  │ LE      │ LE        │ len B   │ LE          │
//! └───────┴─────┴──────┴─────────┴───────────┴─────────┴─────────────┘
//! ```
//!
//! The checksum is `FxHash` over everything between the magic and the
//! checksum itself (the same span discipline as the store's record
//! checksum), so a flipped bit anywhere — header or payload — is
//! detected before any payload decoding happens. A checksum mismatch,
//! bad magic, unknown kind, or truncation is a **frame error**: the
//! coordinator treats the worker as corrupt and retries its shard; it
//! is never silently folded into a wrong merge.

use std::hash::Hasher;
use std::io::{self, Read, Write};

use mlpeer::hash::FxHasher;
use mlpeer::infer::{InferEntry, InferState, MlpLinkSet, Observation, ObservationSource};
use mlpeer::live::{LinkDelta, LiveEvent};
use mlpeer::passive::{PassiveStats, WorkUnit};
use mlpeer_ixp::scheme::RsAction;
use mlpeer_store::codec::{
    get_asn, get_asn_set, get_delta, get_ixp, get_links, get_passive, get_prefix, put_asn,
    put_asn_set, put_delta, put_ixp, put_links, put_passive, put_prefix, CodecError, Reader,
    Writer,
};

/// Frame magic (`MLPD`).
pub const MAGIC: [u8; 4] = *b"MLPD";
/// Wire format version. Bumped on any layout change; a mismatch is a
/// hard frame error, never a best-effort decode.
pub const VERSION: u8 = 1;
/// Payload size cap (64 MiB): a corrupt length field can cost at most
/// this much allocation, never gigabytes.
pub const MAX_PAYLOAD: u32 = 64 << 20;

/// What a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Coordinator → worker: a passive-harvest shard.
    PassiveJob,
    /// Worker → coordinator: the harvested shard.
    PassiveResult,
    /// Coordinator → worker: seed a live shard from canonical state.
    LiveSeed,
    /// Coordinator → worker: one tick's events for this shard.
    LiveTick,
    /// Worker → coordinator: the folded outcome of a seed or tick.
    LiveAck,
    /// Coordinator → worker: exit cleanly.
    Shutdown,
}

impl FrameKind {
    fn to_u8(self) -> u8 {
        match self {
            FrameKind::PassiveJob => 1,
            FrameKind::PassiveResult => 2,
            FrameKind::LiveSeed => 3,
            FrameKind::LiveTick => 4,
            FrameKind::LiveAck => 5,
            FrameKind::Shutdown => 6,
        }
    }

    fn from_u8(v: u8) -> Option<FrameKind> {
        match v {
            1 => Some(FrameKind::PassiveJob),
            2 => Some(FrameKind::PassiveResult),
            3 => Some(FrameKind::LiveSeed),
            4 => Some(FrameKind::LiveTick),
            5 => Some(FrameKind::LiveAck),
            6 => Some(FrameKind::Shutdown),
            _ => None,
        }
    }
}

/// Why a frame read failed. Every variant except `Io` means the peer
/// sent bytes that fail validation — the coordinator's cue to retry
/// the shard elsewhere.
#[derive(Debug)]
pub enum WireError {
    /// The underlying transport failed.
    Io(io::Error),
    /// The stream did not start with [`MAGIC`].
    BadMagic,
    /// Unknown wire format version.
    BadVersion(u8),
    /// Unknown frame kind.
    BadKind(u8),
    /// Declared payload length exceeds [`MAX_PAYLOAD`].
    TooLarge(u32),
    /// The stream ended mid-frame.
    Truncated,
    /// The frame checksum did not match its bytes.
    Checksum,
    /// The payload failed to decode.
    Codec(CodecError),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "i/o: {e}"),
            WireError::BadMagic => write!(f, "bad frame magic"),
            WireError::BadVersion(v) => write!(f, "unknown wire version {v}"),
            WireError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            WireError::TooLarge(n) => write!(f, "payload of {n} bytes exceeds cap"),
            WireError::Truncated => write!(f, "stream ended mid-frame"),
            WireError::Checksum => write!(f, "frame checksum mismatch"),
            WireError::Codec(e) => write!(f, "payload: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> WireError {
        WireError::Io(e)
    }
}

impl From<CodecError> for WireError {
    fn from(e: CodecError) -> WireError {
        WireError::Codec(e)
    }
}

/// One parsed frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// What the payload is.
    pub kind: FrameKind,
    /// Coordinator-assigned sequence number, echoed by replies — the
    /// duplicate-delivery detector.
    pub seq: u32,
    /// The (already checksum-verified) payload bytes.
    pub payload: Vec<u8>,
}

fn checksum_of(body: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(body);
    h.finish()
}

/// Encode one frame to bytes (the unit the fuzz tests corrupt).
pub fn encode_frame(kind: FrameKind, seq: u32, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(MAGIC.len() + 10 + payload.len() + 8);
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(kind.to_u8());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    let sum = checksum_of(&out[MAGIC.len()..]);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Write one frame, returning the bytes put on the wire.
pub fn write_frame(
    w: &mut impl Write,
    kind: FrameKind,
    seq: u32,
    payload: &[u8],
) -> io::Result<usize> {
    failpoints::failpoint!("dist::frame_write", |msg: String| Err(io::Error::other(
        format!("failpoint dist::frame_write: {msg}")
    )));
    let bytes = encode_frame(kind, seq, payload);
    w.write_all(&bytes)?;
    w.flush()?;
    Ok(bytes.len())
}

fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> Result<bool, WireError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(false);
                }
                return Err(WireError::Truncated);
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    Ok(true)
}

/// Read one frame. `Ok(None)` is a clean EOF at a frame boundary (the
/// peer closed the stream); EOF anywhere *inside* a frame is
/// [`WireError::Truncated`].
pub fn read_frame(r: &mut impl Read) -> Result<Option<Frame>, WireError> {
    failpoints::failpoint!("dist::frame_read", |msg: String| Err(WireError::Io(
        io::Error::other(format!("failpoint dist::frame_read: {msg}"))
    )));
    let mut magic = [0u8; 4];
    if !read_exact_or_eof(r, &mut magic)? {
        return Ok(None);
    }
    if magic != MAGIC {
        return Err(WireError::BadMagic);
    }
    let mut header = [0u8; 10];
    if !read_exact_or_eof(r, &mut header)? {
        return Err(WireError::Truncated);
    }
    let ver = header[0];
    let kind_raw = header[1];
    let seq = u32::from_le_bytes(header[2..6].try_into().unwrap());
    let len = u32::from_le_bytes(header[6..10].try_into().unwrap());
    if ver != VERSION {
        return Err(WireError::BadVersion(ver));
    }
    let Some(kind) = FrameKind::from_u8(kind_raw) else {
        return Err(WireError::BadKind(kind_raw));
    };
    if len > MAX_PAYLOAD {
        return Err(WireError::TooLarge(len));
    }
    let mut payload = vec![0u8; len as usize];
    if !read_exact_or_eof(r, &mut payload)? {
        return Err(WireError::Truncated);
    }
    let mut sum = [0u8; 8];
    if !read_exact_or_eof(r, &mut sum)? {
        return Err(WireError::Truncated);
    }
    let mut body = Vec::with_capacity(10 + payload.len());
    body.extend_from_slice(&header);
    body.extend_from_slice(&payload);
    if u64::from_le_bytes(sum) != checksum_of(&body) {
        return Err(WireError::Checksum);
    }
    Ok(Some(Frame { kind, seq, payload }))
}

/// Decode one frame from exactly `buf` (trailing bytes rejected) — the
/// in-memory counterpart of [`read_frame`], used by the fuzz suite.
pub fn decode_frame(buf: &[u8]) -> Result<Frame, WireError> {
    let mut cursor = buf;
    let frame = read_frame(&mut cursor)?.ok_or(WireError::Truncated)?;
    if !cursor.is_empty() {
        return Err(WireError::Codec(CodecError::BadValue(
            "trailing bytes after frame",
        )));
    }
    Ok(frame)
}

// ---- payload codecs ----

fn put_action(w: &mut Writer, a: &RsAction) {
    match a {
        RsAction::All => w.put_u8(0),
        RsAction::None => w.put_u8(1),
        RsAction::Include(asn) => {
            w.put_u8(2);
            put_asn(w, *asn);
        }
        RsAction::Exclude(asn) => {
            w.put_u8(3);
            put_asn(w, *asn);
        }
    }
}

fn get_action(r: &mut Reader<'_>) -> Result<RsAction, CodecError> {
    match r.u8()? {
        0 => Ok(RsAction::All),
        1 => Ok(RsAction::None),
        2 => Ok(RsAction::Include(get_asn(r)?)),
        3 => Ok(RsAction::Exclude(get_asn(r)?)),
        _ => Err(CodecError::BadValue("rs action tag")),
    }
}

fn put_actions(w: &mut Writer, actions: &[RsAction]) {
    w.put_u32(actions.len() as u32);
    for a in actions {
        put_action(w, a);
    }
}

fn get_actions(r: &mut Reader<'_>) -> Result<Vec<RsAction>, CodecError> {
    let n = r.count()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(get_action(r)?);
    }
    Ok(out)
}

fn put_source(w: &mut Writer, s: ObservationSource) {
    w.put_u8(match s {
        ObservationSource::Passive => 0,
        ObservationSource::ActiveRsLg => 1,
        ObservationSource::ActiveMemberLg => 2,
    });
}

fn get_source(r: &mut Reader<'_>) -> Result<ObservationSource, CodecError> {
    match r.u8()? {
        0 => Ok(ObservationSource::Passive),
        1 => Ok(ObservationSource::ActiveRsLg),
        2 => Ok(ObservationSource::ActiveMemberLg),
        _ => Err(CodecError::BadValue("observation source tag")),
    }
}

/// Encode one [`Observation`].
pub fn put_observation(w: &mut Writer, o: &Observation) {
    put_ixp(w, o.ixp);
    put_asn(w, o.member);
    put_prefix(w, &o.prefix);
    put_actions(w, &o.actions);
    put_source(w, o.source);
}

/// Decode one [`Observation`].
pub fn get_observation(r: &mut Reader<'_>) -> Result<Observation, CodecError> {
    Ok(Observation {
        ixp: get_ixp(r)?,
        member: get_asn(r)?,
        prefix: get_prefix(r)?,
        actions: get_actions(r)?,
        source: get_source(r)?,
    })
}

fn put_observations(w: &mut Writer, obs: &[Observation]) {
    w.put_u32(obs.len() as u32);
    for o in obs {
        put_observation(w, o);
    }
}

fn get_observations(r: &mut Reader<'_>) -> Result<Vec<Observation>, CodecError> {
    let n = r.count()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(get_observation(r)?);
    }
    Ok(out)
}

/// Encode an exported [`InferState`].
pub fn put_infer_state(w: &mut Writer, s: &InferState) {
    w.put_u32(s.entries.len() as u32);
    for e in &s.entries {
        put_ixp(w, e.ixp);
        put_asn(w, e.member);
        put_prefix(w, &e.prefix);
        w.put_u8(e.saw_none as u8);
        put_asn_set(w, &e.includes);
        put_asn_set(w, &e.excludes);
    }
    w.put_u64(s.observations);
}

/// Decode an [`InferState`].
pub fn get_infer_state(r: &mut Reader<'_>) -> Result<InferState, CodecError> {
    let n = r.count()?;
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        entries.push(InferEntry {
            ixp: get_ixp(r)?,
            member: get_asn(r)?,
            prefix: get_prefix(r)?,
            saw_none: match r.u8()? {
                0 => false,
                1 => true,
                _ => return Err(CodecError::BadValue("saw_none flag")),
            },
            includes: get_asn_set(r)?,
            excludes: get_asn_set(r)?,
        });
    }
    let observations = r.u64()?;
    Ok(InferState {
        entries,
        observations,
    })
}

fn put_unit(w: &mut Writer, u: &WorkUnit) {
    match *u {
        WorkUnit::Rib {
            collector,
            start,
            end,
        } => {
            w.put_u8(0);
            w.put_u32(collector);
            w.put_u64(start);
            w.put_u64(end);
        }
        WorkUnit::Updates { collector } => {
            w.put_u8(1);
            w.put_u32(collector);
        }
    }
}

fn get_unit(r: &mut Reader<'_>) -> Result<WorkUnit, CodecError> {
    match r.u8()? {
        0 => Ok(WorkUnit::Rib {
            collector: r.u32()?,
            start: r.u64()?,
            end: r.u64()?,
        }),
        1 => Ok(WorkUnit::Updates {
            collector: r.u32()?,
        }),
        _ => Err(CodecError::BadValue("work unit tag")),
    }
}

fn put_event(w: &mut Writer, e: &LiveEvent) {
    match e {
        LiveEvent::Join { ixp, member } => {
            w.put_u8(0);
            put_ixp(w, *ixp);
            put_asn(w, *member);
        }
        LiveEvent::Leave { ixp, member } => {
            w.put_u8(1);
            put_ixp(w, *ixp);
            put_asn(w, *member);
        }
        LiveEvent::Announce {
            ixp,
            member,
            prefix,
            actions,
        } => {
            w.put_u8(2);
            put_ixp(w, *ixp);
            put_asn(w, *member);
            put_prefix(w, prefix);
            put_actions(w, actions);
        }
        LiveEvent::Withdraw {
            ixp,
            member,
            prefix,
        } => {
            w.put_u8(3);
            put_ixp(w, *ixp);
            put_asn(w, *member);
            put_prefix(w, prefix);
        }
    }
}

fn get_event(r: &mut Reader<'_>) -> Result<LiveEvent, CodecError> {
    match r.u8()? {
        0 => Ok(LiveEvent::Join {
            ixp: get_ixp(r)?,
            member: get_asn(r)?,
        }),
        1 => Ok(LiveEvent::Leave {
            ixp: get_ixp(r)?,
            member: get_asn(r)?,
        }),
        2 => Ok(LiveEvent::Announce {
            ixp: get_ixp(r)?,
            member: get_asn(r)?,
            prefix: get_prefix(r)?,
            actions: get_actions(r)?,
        }),
        3 => Ok(LiveEvent::Withdraw {
            ixp: get_ixp(r)?,
            member: get_asn(r)?,
            prefix: get_prefix(r)?,
        }),
        _ => Err(CodecError::BadValue("live event tag")),
    }
}

// ---- protocol messages ----

/// An injected worker fault, shipped inside the job so the *worker*
/// misbehaves deterministically — the test harness's lever for proving
/// the coordinator's retry/dedup invariants against real processes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Fault {
    /// Behave normally.
    #[default]
    None,
    /// Abort without replying (a kill -9 mid-shard).
    CrashSilent,
    /// Write half the reply frame, then abort (a torn frame).
    CrashMidFrame,
    /// Sleep this many milliseconds before replying (a stalled worker
    /// the coordinator must time out).
    StallMs(u32),
    /// Reply with one payload byte flipped, leaving the checksum stale
    /// (corruption the frame layer must catch).
    Garbage,
    /// Write the reply frame twice (a double delivery the coordinator
    /// must dedup).
    Duplicate,
}

fn put_fault(w: &mut Writer, f: Fault) {
    match f {
        Fault::None => w.put_u8(0),
        Fault::CrashSilent => w.put_u8(1),
        Fault::CrashMidFrame => w.put_u8(2),
        Fault::StallMs(ms) => {
            w.put_u8(3);
            w.put_u32(ms);
        }
        Fault::Garbage => w.put_u8(4),
        Fault::Duplicate => w.put_u8(5),
    }
}

fn get_fault(r: &mut Reader<'_>) -> Result<Fault, CodecError> {
    match r.u8()? {
        0 => Ok(Fault::None),
        1 => Ok(Fault::CrashSilent),
        2 => Ok(Fault::CrashMidFrame),
        3 => Ok(Fault::StallMs(r.u32()?)),
        4 => Ok(Fault::Garbage),
        5 => Ok(Fault::Duplicate),
        _ => Err(CodecError::BadValue("fault tag")),
    }
}

/// A passive-harvest shard: the worker regenerates the dataset from
/// `(scale, seed)` and harvests exactly `units`, so only indices cross
/// the process boundary — never routing data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassiveJob {
    /// Ecosystem scale word ("tiny", "small", …).
    pub scale: String,
    /// The run's RNG seed (stage offsets derive from it).
    pub seed: u64,
    /// The shard's work units, in serial order.
    pub units: Vec<WorkUnit>,
    /// Injected misbehavior (tests only; [`Fault::None`] in production).
    pub fault: Fault,
}

impl PassiveJob {
    /// Encode to payload bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_str(&self.scale);
        w.put_u64(self.seed);
        w.put_u32(self.units.len() as u32);
        for u in &self.units {
            put_unit(&mut w, u);
        }
        put_fault(&mut w, self.fault);
        w.into_bytes()
    }

    /// Decode from exactly `buf`.
    pub fn decode(buf: &[u8]) -> Result<PassiveJob, CodecError> {
        let mut r = Reader::new(buf);
        let scale = r.str()?;
        let seed = r.u64()?;
        let n = r.count()?;
        let mut units = Vec::with_capacity(n);
        for _ in 0..n {
            units.push(get_unit(&mut r)?);
        }
        let fault = get_fault(&mut r)?;
        if !r.is_done() {
            return Err(CodecError::BadValue("trailing bytes after job"));
        }
        Ok(PassiveJob {
            scale,
            seed,
            units,
            fault,
        })
    }
}

/// One harvested shard: the observation slice (serial order), the
/// shard's exported inferencer state, and its stat counters — exactly
/// what the coordinator folds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassiveResult {
    /// Observations in the shard's serial order.
    pub observations: Vec<Observation>,
    /// The shard inferencer, exported order-insensitively.
    pub state: InferState,
    /// The shard's passive-stat counters.
    pub stats: PassiveStats,
}

impl PassiveResult {
    /// Encode to payload bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        put_observations(&mut w, &self.observations);
        put_infer_state(&mut w, &self.state);
        put_passive(&mut w, &self.stats);
        w.into_bytes()
    }

    /// Decode from exactly `buf`.
    pub fn decode(buf: &[u8]) -> Result<PassiveResult, CodecError> {
        let mut r = Reader::new(buf);
        let observations = get_observations(&mut r)?;
        let state = get_infer_state(&mut r)?;
        let stats = get_passive(&mut r)?;
        if !r.is_done() {
            return Err(CodecError::BadValue("trailing bytes after result"));
        }
        Ok(PassiveResult {
            observations,
            state,
            stats,
        })
    }
}

/// A live-mode batch: seed state or one tick's events for this shard's
/// IXPs (the coordinator decodes session messages centrally — workers
/// never see community schemes, which churn can retune).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LiveBatch {
    /// The events, in stream order.
    pub events: Vec<LiveEvent>,
    /// Injected misbehavior (tests only).
    pub fault: Fault,
}

impl LiveBatch {
    /// Encode to payload bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u32(self.events.len() as u32);
        for e in &self.events {
            put_event(&mut w, e);
        }
        put_fault(&mut w, self.fault);
        w.into_bytes()
    }

    /// Decode from exactly `buf`.
    pub fn decode(buf: &[u8]) -> Result<LiveBatch, CodecError> {
        let mut r = Reader::new(buf);
        let n = r.count()?;
        let mut events = Vec::with_capacity(n);
        for _ in 0..n {
            events.push(get_event(&mut r)?);
        }
        let fault = get_fault(&mut r)?;
        if !r.is_done() {
            return Err(CodecError::BadValue("trailing bytes after batch"));
        }
        Ok(LiveBatch { events, fault })
    }
}

/// A worker's reply to a live seed or tick: whether served state moved,
/// the folded link delta, and the shard's full canonical state (links +
/// observations) — the coordinator's fold input *and* its reseed cache
/// should this worker later crash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LiveAck {
    /// Did the shard's served state change this tick?
    pub changed: bool,
    /// The tick's folded link delta.
    pub delta: LinkDelta,
    /// The shard's current link set.
    pub links: MlpLinkSet,
    /// The shard's canonical observation list (sorted).
    pub observations: Vec<Observation>,
}

impl LiveAck {
    /// Encode to payload bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u8(self.changed as u8);
        put_delta(&mut w, &self.delta);
        put_links(&mut w, &self.links);
        put_observations(&mut w, &self.observations);
        w.into_bytes()
    }

    /// Decode from exactly `buf`.
    pub fn decode(buf: &[u8]) -> Result<LiveAck, CodecError> {
        let mut r = Reader::new(buf);
        let changed = match r.u8()? {
            0 => false,
            1 => true,
            _ => return Err(CodecError::BadValue("changed flag")),
        };
        let delta = get_delta(&mut r)?;
        let links = get_links(&mut r)?;
        let observations = get_observations(&mut r)?;
        if !r.is_done() {
            return Err(CodecError::BadValue("trailing bytes after ack"));
        }
        Ok(LiveAck {
            changed,
            delta,
            links,
            observations,
        })
    }
}
