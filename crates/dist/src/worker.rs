//! The worker half: a frame loop over stdin/stdout.
//!
//! A worker regenerates its inputs deterministically from the
//! `(scale, seed)` in each job — routing data never crosses the
//! process boundary, only work-unit indices one way and harvested
//! state the other. The loop exits on clean EOF (the coordinator
//! dropped our stdin), an explicit [`FrameKind::Shutdown`], or any
//! frame error (a confused coordinator is treated like a closed one).

use std::io::{Read, Write};

use mlpeer::infer::LinkInferencer;
use mlpeer::live::{LinkDelta, LiveInferencer};
use mlpeer::passive::{harvest_passive_units, PassiveConfig};
use mlpeer::pipeline::{prepare, TeeSink};

use crate::wire::{
    read_frame, write_frame, Fault, Frame, FrameKind, LiveAck, LiveBatch, PassiveJob,
    PassiveResult, WireError,
};

/// Write `payload` as a reply frame, executing the job's injected
/// fault. Faults that "crash" abort the whole process — from the
/// coordinator's side this is indistinguishable from a real kill -9,
/// which is the point.
fn send_reply(
    out: &mut impl Write,
    kind: FrameKind,
    seq: u32,
    payload: &[u8],
    fault: Fault,
) -> Result<(), WireError> {
    match fault {
        Fault::None => {
            write_frame(out, kind, seq, payload)?;
        }
        Fault::CrashSilent => {
            std::process::abort();
        }
        Fault::CrashMidFrame => {
            let bytes = crate::wire::encode_frame(kind, seq, payload);
            out.write_all(&bytes[..bytes.len() / 2])?;
            out.flush()?;
            std::process::abort();
        }
        Fault::StallMs(ms) => {
            std::thread::sleep(std::time::Duration::from_millis(ms as u64));
            write_frame(out, kind, seq, payload)?;
        }
        Fault::Garbage => {
            let mut bytes = crate::wire::encode_frame(kind, seq, payload);
            // Flip one payload byte, leaving the checksum stale.
            let idx = bytes.len() - 9; // last payload byte (before the u64 checksum)
            bytes[idx] ^= 0xFF;
            out.write_all(&bytes)?;
            out.flush()?;
        }
        Fault::Duplicate => {
            write_frame(out, kind, seq, payload)?;
            write_frame(out, kind, seq, payload)?;
        }
    }
    Ok(())
}

fn handle_passive(job: &PassiveJob) -> Option<PassiveResult> {
    let eco = crate::eco_for(&job.scale, job.seed)?;
    let prep = prepare(&eco, job.seed);
    let mut sink: TeeSink = (Vec::new(), LinkInferencer::default());
    let stats = harvest_passive_units(
        &prep.passive,
        &prep.dict,
        &prep.conn,
        &prep.rels,
        &PassiveConfig::default(),
        &job.units,
        &mut sink,
    );
    Some(PassiveResult {
        observations: sink.0,
        state: sink.1.export_state(),
        stats,
    })
}

fn handle_live(li: &mut LiveInferencer, batch: &LiveBatch) -> LiveAck {
    let before = li.state_version();
    let mut delta = LinkDelta::default();
    for event in &batch.events {
        delta.merge(li.apply(event));
    }
    LiveAck {
        changed: !delta.is_empty() || li.state_version() != before,
        delta,
        links: li.current().clone(),
        observations: li.observations(),
    }
}

/// The worker main loop: read frames, harvest, reply, until EOF or
/// shutdown. Returns `Ok` on a clean exit and the frame error
/// otherwise (the binary maps it to a nonzero exit code).
pub fn run_worker(mut input: impl Read, mut output: impl Write) -> Result<(), WireError> {
    // One live inferencer per process: seeded once, then ticked.
    let mut live: Option<LiveInferencer> = None;
    loop {
        let Some(Frame { kind, seq, payload }) = read_frame(&mut input)? else {
            return Ok(()); // clean EOF: coordinator is done with us
        };
        match kind {
            FrameKind::PassiveJob => {
                let job = PassiveJob::decode(&payload)?;
                let Some(result) = handle_passive(&job) else {
                    // Unknown scale word: we cannot produce a correct
                    // shard, so exit and let the coordinator degrade.
                    return Err(WireError::Codec(mlpeer_store::codec::CodecError::BadValue(
                        "unknown scale word",
                    )));
                };
                send_reply(
                    &mut output,
                    FrameKind::PassiveResult,
                    seq,
                    &result.encode(),
                    job.fault,
                )?;
            }
            FrameKind::LiveSeed => {
                let batch = LiveBatch::decode(&payload)?;
                let li = live.insert(LiveInferencer::new());
                let ack = handle_live(li, &batch);
                // A seed's delta is bootstrap noise, not publishable
                // change: ack canonical state only.
                let ack = LiveAck {
                    changed: false,
                    delta: LinkDelta::default(),
                    ..ack
                };
                send_reply(
                    &mut output,
                    FrameKind::LiveAck,
                    seq,
                    &ack.encode(),
                    batch.fault,
                )?;
            }
            FrameKind::LiveTick => {
                let batch = LiveBatch::decode(&payload)?;
                let Some(li) = live.as_mut() else {
                    // Tick before seed: protocol violation.
                    return Err(WireError::Codec(mlpeer_store::codec::CodecError::BadValue(
                        "tick before seed",
                    )));
                };
                let ack = handle_live(li, &batch);
                send_reply(
                    &mut output,
                    FrameKind::LiveAck,
                    seq,
                    &ack.encode(),
                    batch.fault,
                )?;
            }
            FrameKind::Shutdown => return Ok(()),
            FrameKind::PassiveResult | FrameKind::LiveAck => {
                // Reply kinds flowing coordinator→worker are a
                // protocol violation.
                return Err(WireError::BadKind(match kind {
                    FrameKind::PassiveResult => 2,
                    _ => 5,
                }));
            }
        }
    }
}
