//! The standalone worker binary: a frame loop over stdin/stdout.
//!
//! Spawned by the coordinator (directly, or as `mlpeer-serve
//! --dist-worker`, which delegates here). Exits 0 on clean EOF or
//! shutdown, 1 on a frame/protocol error.

fn main() {
    let stdin = std::io::stdin().lock();
    let stdout = std::io::stdout().lock();
    if let Err(e) = mlpeer_dist::run_worker(stdin, stdout) {
        eprintln!("mlpeer-dist-worker: {e}");
        std::process::exit(1);
    }
}
