//! # `mlpeer_dist` — multi-process harvest & live scale-out
//!
//! Thread-level sharding breaks even on one core; the next scaling
//! step is across *processes*. This crate reuses the order-insensitive
//! per-shard merge seams of the core inferencer to distribute both
//! pipeline modes:
//!
//! - **Passive** ([`harvest_passive_dist`]): the coordinator
//!   enumerates the dataset's [`WorkUnit`](mlpeer::passive::WorkUnit)s,
//!   partitions them into contiguous weight-balanced shards, and ships
//!   each to a worker process that regenerates the dataset from
//!   `(scale, seed)` and harvests its slice. Replies fold in shard
//!   order, byte-identically to serial `harvest_passive`.
//! - **Live** ([`DistLive`]): the update stream splits by IXP across
//!   long-lived workers; per-tick `LinkDelta`s and canonical state
//!   fold into one publishable epoch, byte-identical to one serial
//!   `LiveInferencer`.
//!
//! Frames are checksummed and length-prefixed ([`wire`]); a crashed,
//! stalled, corrupt, or duplicate worker is retried, timed out,
//! deduped, or degraded to in-process execution ([`coordinator`] for
//! the invariants) — faults change the speedup, never the answer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coordinator;
pub mod live;
pub mod stats;
pub mod wire;
pub mod worker;

pub use coordinator::{default_worker_cmd, harvest_passive_dist, partition_units, DistConfig};
pub use live::{DistLive, LiveTickOutcome};
pub use stats::{DistStats, DistStatsSnapshot};
pub use wire::{Fault, PassiveJob, PassiveResult, WireError};
pub use worker::run_worker;

use mlpeer_ixp::{Ecosystem, EcosystemConfig};

/// Resolve a scale word to a generated ecosystem — the shared
/// vocabulary of coordinator and workers ("tiny", "small", "medium",
/// "large", "paper"/"full"). `None` for unknown words.
pub fn eco_for(scale: &str, seed: u64) -> Option<Ecosystem> {
    let cfg = match scale {
        "tiny" => EcosystemConfig::tiny(seed),
        "small" => EcosystemConfig::small(seed),
        "medium" => EcosystemConfig::medium(seed),
        "large" => EcosystemConfig::large(seed),
        "paper" | "full" => EcosystemConfig::paper_scale(seed),
        _ => return None,
    };
    Some(Ecosystem::generate(cfg))
}
