//! Distributed live mode: the update stream split by IXP across
//! long-lived worker processes, their per-tick `LinkDelta`s folded into
//! one publishable epoch.
//!
//! The coordinator decodes route-server session messages centrally
//! (community schemes retune under churn; workers never see them) and
//! ships each worker only the [`LiveEvent`]s of its IXPs. Because
//! events partition cleanly by IXP, per-shard state stays disjoint and
//! the fold — link-set union, observation concat + sort, delta concat
//! in shard order — is byte-identical to one serial
//! [`LiveInferencer`] applying the whole stream.
//!
//! Every ack carries the shard's full canonical state, which doubles
//! as the coordinator's reseed cache: a crashed worker is respawned,
//! reseeded from the cache, and re-sent the tick; a shard that
//! exhausts its retries degrades to an in-process [`LiveInferencer`]
//! seeded the same way. Either way the answer cannot change.

use std::collections::{BTreeMap, BTreeSet};
use std::io::Write as _;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc};

use mlpeer::infer::{MlpLinkSet, Observation};
use mlpeer::live::{full_harvest, LinkDelta, LiveEvent, LiveInferencer};
use mlpeer_bgp::Asn;
use mlpeer_ixp::ixp::IxpId;
use mlpeer_ixp::Ecosystem;

use crate::coordinator::DistConfig;
use crate::stats::DistStats;
use crate::wire::{
    read_frame, write_frame, Fault, Frame, FrameKind, LiveAck, LiveBatch, WireError,
};

/// The IXP an event belongs to (every variant carries one).
fn event_ixp(e: &LiveEvent) -> IxpId {
    match e {
        LiveEvent::Join { ixp, .. }
        | LiveEvent::Leave { ixp, .. }
        | LiveEvent::Announce { ixp, .. }
        | LiveEvent::Withdraw { ixp, .. } => *ixp,
    }
}

/// One spawned worker with its frame reader pump.
struct WorkerProc {
    child: Child,
    stdin: Option<ChildStdin>,
    rx: mpsc::Receiver<Result<Frame, WireError>>,
    reader: Option<std::thread::JoinHandle<()>>,
}

impl WorkerProc {
    fn spawn(cmd: &(std::path::PathBuf, Vec<String>)) -> Option<WorkerProc> {
        failpoints::failpoint!("dist::worker_spawn", |_msg| None);
        let mut child = Command::new(&cmd.0)
            .args(&cmd.1)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .ok()?;
        let stdin = child.stdin.take()?;
        let mut stdout = child.stdout.take()?;
        let (tx, rx) = mpsc::channel();
        let reader = std::thread::spawn(move || loop {
            match read_frame(&mut stdout) {
                Ok(Some(frame)) => {
                    if tx.send(Ok(frame)).is_err() {
                        return;
                    }
                }
                Ok(None) => return,
                Err(e) => {
                    let _ = tx.send(Err(e));
                    return;
                }
            }
        });
        Some(WorkerProc {
            child,
            stdin: Some(stdin),
            rx,
            reader: Some(reader),
        })
    }

    fn send(&mut self, kind: FrameKind, seq: u32, payload: &[u8], stats: &DistStats) -> bool {
        let Some(stdin) = self.stdin.as_mut() else {
            return false;
        };
        match write_frame(stdin, kind, seq, payload) {
            Ok(n) => {
                stats.record_frame(n);
                true
            }
            Err(_) => false,
        }
    }
}

impl Drop for WorkerProc {
    fn drop(&mut self) {
        self.stdin.take(); // EOF lets a healthy worker exit cleanly
        let _ = self.child.kill();
        let _ = self.child.wait();
        if let Some(reader) = self.reader.take() {
            let _ = reader.join();
        }
    }
}

/// What a shard executes on.
enum Backend {
    /// A worker process.
    Proc(WorkerProc),
    /// In-process fallback after degradation (or when spawning was
    /// never possible).
    Local(Box<LiveInferencer>),
}

/// One IXP shard: its backend plus the canonical state cache the last
/// ack (or local application) left behind.
struct Shard {
    backend: Backend,
    /// RS members per IXP of this shard — folded from Join/Leave so a
    /// reseed can reconstruct memberships that carry no announcements.
    members: BTreeMap<IxpId, BTreeSet<Asn>>,
    /// Last acked link set.
    links: MlpLinkSet,
    /// Last acked canonical observations (sorted within the shard).
    observations: Vec<Observation>,
}

impl Shard {
    /// The seed batch reconstructing this shard's canonical state:
    /// joins first, then the canonical announcements (whose actions
    /// round-trip through `ExportPolicy::from_actions` by
    /// construction).
    fn seed_events(&self) -> Vec<LiveEvent> {
        let mut events = Vec::new();
        for (ixp, members) in &self.members {
            for member in members {
                events.push(LiveEvent::Join {
                    ixp: *ixp,
                    member: *member,
                });
            }
        }
        for o in &self.observations {
            events.push(LiveEvent::Announce {
                ixp: o.ixp,
                member: o.member,
                prefix: o.prefix,
                actions: o.actions.clone(),
            });
        }
        events
    }

    /// Fold a tick's membership churn into the reseed cache.
    fn fold_membership(&mut self, events: &[LiveEvent]) {
        for e in events {
            match e {
                LiveEvent::Join { ixp, member } => {
                    self.members.entry(*ixp).or_default().insert(*member);
                }
                LiveEvent::Leave { ixp, member } => {
                    if let Some(set) = self.members.get_mut(ixp) {
                        set.remove(member);
                    }
                }
                _ => {}
            }
        }
    }
}

/// One tick's folded outcome across all shards.
#[derive(Debug, Clone)]
pub struct LiveTickOutcome {
    /// Did any shard's served state change?
    pub changed: bool,
    /// The folded link delta (shard order; cross-shard entries never
    /// cancel because shards own disjoint IXPs).
    pub delta: LinkDelta,
    /// The merged current link set.
    pub links: MlpLinkSet,
    /// The merged canonical observation list (globally sorted —
    /// identical to a serial [`LiveInferencer::observations`]).
    pub observations: Vec<Observation>,
}

/// The live coordinator: one shard per worker, IXPs assigned by
/// `ixp.0 % workers`.
pub struct DistLive {
    cfg: DistConfig,
    stats: Arc<DistStats>,
    shards: Vec<Shard>,
    seq: u32,
}

impl DistLive {
    /// Boot from an ecosystem: full-harvest it (the same bootstrap as
    /// [`LiveInferencer::from_ecosystem`]), partition the canonical
    /// state by IXP, and spawn + seed one worker per shard (degrading
    /// per-shard on failure).
    pub fn new(eco: &Ecosystem, cfg: DistConfig, stats: Arc<DistStats>) -> DistLive {
        let workers = cfg.workers.max(1);
        let (conn, observations) = full_harvest(eco);
        let mut shards: Vec<Shard> = (0..workers)
            .map(|_| Shard {
                backend: Backend::Local(Box::new(LiveInferencer::new())),
                members: BTreeMap::new(),
                links: MlpLinkSet::default(),
                observations: Vec::new(),
            })
            .collect();
        for ixp in conn.ixps() {
            let members: BTreeSet<Asn> = conn.rs_members(ixp);
            shards[ixp.0 as usize % workers]
                .members
                .insert(ixp, members);
        }
        for o in observations {
            let shard = o.ixp.0 as usize % workers;
            shards[shard].observations.push(o);
        }
        let mut live = DistLive {
            cfg,
            stats,
            shards,
            seq: 0,
        };
        for i in 0..live.shards.len() {
            live.reseed_shard(i);
        }
        live
    }

    /// Shard index for an IXP.
    fn shard_of(&self, ixp: IxpId) -> usize {
        ixp.0 as usize % self.shards.len()
    }

    fn next_seq(&mut self) -> u32 {
        self.seq = self.seq.wrapping_add(1);
        self.seq
    }

    /// Bring shard `i`'s backend up from its cache: spawn + seed a
    /// worker, or fall back to a local inferencer. Updates the cache
    /// from the seed ack so backend and cache agree either way.
    fn reseed_shard(&mut self, i: usize) {
        let seed_batch = LiveBatch {
            events: self.shards[i].seed_events(),
            fault: Fault::None,
        };
        if let Some(cmd) = self.cfg.worker_cmd.clone() {
            let seq = self.next_seq();
            if let Some(mut proc) = WorkerProc::spawn(&cmd) {
                self.stats.spawned.fetch_add(1, Ordering::Relaxed);
                if proc.send(FrameKind::LiveSeed, seq, &seed_batch.encode(), &self.stats) {
                    if let Some(ack) = self.await_ack(&proc, seq) {
                        let shard = &mut self.shards[i];
                        shard.links = ack.links;
                        shard.observations = ack.observations;
                        shard.backend = Backend::Proc(proc);
                        return;
                    }
                }
            }
        }
        // Spawning or seeding failed: in-process shard.
        self.stats.degraded.fetch_add(1, Ordering::Relaxed);
        let mut li = LiveInferencer::new();
        for event in &seed_batch.events {
            li.apply(event);
        }
        let shard = &mut self.shards[i];
        shard.links = li.current().clone();
        shard.observations = li.observations();
        shard.backend = Backend::Local(Box::new(li));
    }

    /// Wait for the `LiveAck` echoing `seq`, deduping stale or
    /// duplicate frames, within the configured timeout.
    fn await_ack(&self, proc: &WorkerProc, seq: u32) -> Option<LiveAck> {
        loop {
            match proc.rx.recv_timeout(self.cfg.timeout) {
                Ok(Ok(frame)) => {
                    if frame.kind != FrameKind::LiveAck {
                        return None;
                    }
                    self.stats.record_frame(frame.payload.len() + 22);
                    if frame.seq != seq {
                        self.stats.deduped.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    match LiveAck::decode(&frame.payload) {
                        Ok(ack) => return Some(ack),
                        Err(_) => return None,
                    }
                }
                Ok(Err(_)) => return None,
                Err(mpsc::RecvTimeoutError::Disconnected) => return None,
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    self.stats.timed_out.fetch_add(1, Ordering::Relaxed);
                    return None;
                }
            }
        }
    }

    /// Apply `events` to shard `i`'s local inferencer (degraded path),
    /// producing the same ack a worker would.
    fn local_tick(li: &mut LiveInferencer, events: &[LiveEvent]) -> LiveAck {
        let before = li.state_version();
        let mut delta = LinkDelta::default();
        for event in events {
            delta.merge(li.apply(event));
        }
        LiveAck {
            changed: !delta.is_empty() || li.state_version() != before,
            delta,
            links: li.current().clone(),
            observations: li.observations(),
        }
    }

    /// Run one shard's tick with retry/reseed/degrade, returning its
    /// ack.
    fn tick_shard(&mut self, i: usize, events: &[LiveEvent], fault: Fault) -> LiveAck {
        let batch = LiveBatch {
            events: events.to_vec(),
            fault,
        };
        for attempt in 0..=self.cfg.max_retries {
            if attempt > 0 {
                self.stats.retried.fetch_add(1, Ordering::Relaxed);
                // A fresh process reseeded from the cache, tick re-sent.
                self.reseed_shard(i);
            }
            match &mut self.shards[i].backend {
                Backend::Local(li) => return Self::local_tick(li, events),
                Backend::Proc(_) => {
                    let seq = self.next_seq();
                    let sent = {
                        let stats = Arc::clone(&self.stats);
                        let Backend::Proc(proc) = &mut self.shards[i].backend else {
                            unreachable!()
                        };
                        proc.send(FrameKind::LiveTick, seq, &batch.encode(), &stats)
                    };
                    if sent {
                        let Backend::Proc(proc) = &self.shards[i].backend else {
                            unreachable!()
                        };
                        if let Some(ack) = self.await_ack(proc, seq) {
                            return ack;
                        }
                    }
                    // Crash / corrupt / timeout: loop retries after a
                    // reseed.
                }
            }
        }
        // Exhausted: degrade the shard permanently.
        self.stats.degraded.fetch_add(1, Ordering::Relaxed);
        let mut li = LiveInferencer::new();
        for event in &self.shards[i].seed_events() {
            li.apply(event);
        }
        let ack = Self::local_tick(&mut li, events);
        self.shards[i].backend = Backend::Local(Box::new(li));
        ack
    }

    /// Apply one tick's (already decoded) events: partition by IXP,
    /// fan out, fold the acks in shard order.
    pub fn tick(&mut self, events: &[LiveEvent]) -> LiveTickOutcome {
        self.tick_with_faults(events, &[])
    }

    /// [`tick`](DistLive::tick) with injected worker faults
    /// (`(shard, fault)`, applied to the first attempt only) — the
    /// fault-injection harness's entry point.
    pub fn tick_with_faults(
        &mut self,
        events: &[LiveEvent],
        faults: &[(usize, Fault)],
    ) -> LiveTickOutcome {
        let mut per_shard: Vec<Vec<LiveEvent>> = vec![Vec::new(); self.shards.len()];
        for e in events {
            per_shard[self.shard_of(event_ixp(e))].push(e.clone());
        }
        let mut changed = false;
        let mut delta = LinkDelta::default();
        for (i, shard_events) in per_shard.iter().enumerate() {
            if shard_events.is_empty() {
                continue;
            }
            let fault = faults
                .iter()
                .find(|(s, _)| *s == i)
                .map(|(_, f)| *f)
                .unwrap_or(Fault::None);
            let ack = self.tick_shard(i, shard_events, fault);
            changed |= ack.changed;
            // Disjoint IXPs: no cross-shard cancellation to model.
            delta.added.extend(ack.delta.added);
            delta.removed.extend(ack.delta.removed);
            let shard = &mut self.shards[i];
            shard.fold_membership(shard_events);
            shard.links = ack.links;
            shard.observations = ack.observations;
        }
        let (links, observations) = self.state();
        LiveTickOutcome {
            changed,
            delta,
            links,
            observations,
        }
    }

    /// The merged current state across all shards: one link set and a
    /// globally sorted canonical observation list — byte-identical to
    /// a serial [`LiveInferencer`] over the same stream.
    pub fn state(&self) -> (MlpLinkSet, Vec<Observation>) {
        let mut links = MlpLinkSet::default();
        let mut observations = Vec::new();
        for shard in &self.shards {
            for (ixp, pairs) in &shard.links.per_ixp {
                links.per_ixp.insert(*ixp, pairs.clone());
            }
            for (ixp, covered) in &shard.links.covered {
                links.covered.insert(*ixp, covered.clone());
            }
            for (key, policy) in &shard.links.policies {
                links.policies.insert(*key, policy.clone());
            }
            observations.extend(shard.observations.iter().cloned());
        }
        observations.sort_unstable_by_key(|o| (o.ixp, o.member, o.prefix));
        (links, observations)
    }

    /// Kill shard `i`'s worker process outright (SIGKILL) — the test
    /// harness's crash lever. The next tick touching the shard detects
    /// the dead worker and recovers via reseed. No-op on degraded
    /// shards.
    pub fn kill_worker(&mut self, i: usize) {
        if let Backend::Proc(proc) = &mut self.shards[i].backend {
            let _ = proc.child.kill();
        }
    }

    /// Total shard count (process-backed plus degraded).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shared counters this coordinator updates — lets callers
    /// watch degradation across a tick without holding a second handle.
    pub fn stats(&self) -> &Arc<DistStats> {
        &self.stats
    }

    /// How many shards currently run on worker processes (the rest
    /// have degraded in-process).
    pub fn proc_shards(&self) -> usize {
        self.shards
            .iter()
            .filter(|s| matches!(s.backend, Backend::Proc(_)))
            .count()
    }

    /// Shut every worker down cleanly (shutdown frame + stdin EOF).
    pub fn shutdown(&mut self) {
        for shard in &mut self.shards {
            if let Backend::Proc(proc) = &mut shard.backend {
                if let Some(stdin) = proc.stdin.as_mut() {
                    let _ = write_frame(stdin, FrameKind::Shutdown, 0, &[]);
                    let _ = stdin.flush();
                }
                proc.stdin.take();
            }
        }
    }
}
