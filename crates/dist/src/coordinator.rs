//! The coordinator half of the passive harvest: partition the work
//! units, spawn one worker process per shard, fold the replies in
//! shard order — byte-identically to serial `harvest_passive` — while
//! surviving crashed, stalled, corrupt, and duplicate workers.
//!
//! ## Fault model and retry invariants
//!
//! - A worker that exits without a valid result frame (crash, torn
//!   frame, checksum mismatch, decode failure) is **retried** up to
//!   [`DistConfig::max_retries`] times; each attempt is a fresh
//!   process.
//! - A worker that exceeds [`DistConfig::timeout`] is killed and
//!   counted `timed_out`, then retried like a crash.
//! - Extra result frames after the first valid one are **deduped** —
//!   a result is folded exactly once per shard regardless of delivery
//!   count.
//! - When retries are exhausted — or no worker binary can be resolved
//!   at all — the shard **degrades** to in-process execution, which is
//!   the serial code path itself; degradation can therefore never
//!   change the answer, only the speedup.

use std::io::Write as _;
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::sync::mpsc;
use std::time::Duration;

use mlpeer::infer::{InferState, LinkInferencer, Observation};
use mlpeer::passive::{
    harvest_passive_sharded, harvest_passive_units, passive_work_units, work_unit_weight,
    PassiveConfig, PassiveStats, WorkUnit,
};
use mlpeer::pipeline::{PipelinePrep, TeeSink};

use crate::stats::DistStats;
use crate::wire::{read_frame, write_frame, Fault, FrameKind, PassiveJob, PassiveResult};

/// How a coordinator runs its workers.
#[derive(Debug, Clone)]
pub struct DistConfig {
    /// Worker process count. `<= 1` short-circuits to the in-process
    /// sharded harvest (no processes, no frames).
    pub workers: usize,
    /// Per-attempt deadline; a worker past it is killed and retried.
    pub timeout: Duration,
    /// Retries per shard before degrading to in-process execution.
    pub max_retries: u32,
    /// The worker command (`program`, `args…`), or `None` to degrade
    /// every shard (spawning is known-impossible).
    pub worker_cmd: Option<(PathBuf, Vec<String>)>,
    /// Injected faults: `(shard, attempt, fault)` — attempt `0` is the
    /// first try. Tests only; empty in production.
    pub faults: Vec<(usize, u32, Fault)>,
}

impl DistConfig {
    /// A production config for `workers` processes, resolving the
    /// worker binary via [`default_worker_cmd`].
    pub fn new(workers: usize) -> DistConfig {
        DistConfig {
            workers,
            timeout: Duration::from_secs(60),
            max_retries: 2,
            worker_cmd: default_worker_cmd(),
            faults: Vec::new(),
        }
    }

    fn fault_for(&self, shard: usize, attempt: u32) -> Fault {
        self.faults
            .iter()
            .find(|(s, a, _)| *s == shard && *a == attempt)
            .map(|(_, _, f)| *f)
            .unwrap_or(Fault::None)
    }
}

/// Resolve the worker command: the `MLPEER_DIST_WORKER_BIN` env var if
/// set, else a `mlpeer-dist-worker` binary sitting next to the current
/// executable (or one directory up, for test binaries under
/// `target/*/deps/`). `None` — and with it graceful degradation — when
/// neither resolves. Deliberately never falls back to re-executing the
/// current binary: only `mlpeer-serve` opts into that, because only it
/// handles a `--dist-worker` flag.
pub fn default_worker_cmd() -> Option<(PathBuf, Vec<String>)> {
    if let Ok(path) = std::env::var("MLPEER_DIST_WORKER_BIN") {
        return Some((PathBuf::from(path), Vec::new()));
    }
    let exe = std::env::current_exe().ok()?;
    let dir = exe.parent()?;
    for candidate in [dir.join("mlpeer-dist-worker"), {
        let mut up = dir.to_path_buf();
        up.pop();
        up.join("mlpeer-dist-worker")
    }] {
        if candidate.is_file() {
            return Some((candidate, Vec::new()));
        }
    }
    None
}

/// Split `units` into `shards` contiguous, weight-balanced groups.
/// Contiguity is what makes the fold order-preserving: concatenating
/// shard observation slices in shard order reproduces the serial
/// observation stream. Trailing shards may be empty.
pub fn partition_units(weights: &[usize], units: &[WorkUnit], shards: usize) -> Vec<Vec<WorkUnit>> {
    let shards = shards.max(1);
    let total: usize = weights.iter().sum();
    let mut out: Vec<Vec<WorkUnit>> = vec![Vec::new(); shards];
    let mut acc = 0usize;
    for (unit, &weight) in units.iter().zip(weights) {
        // The shard whose weight band this unit's midpoint falls in.
        let mid = acc + weight / 2;
        let shard = (mid * shards)
            .checked_div(total)
            .map_or(0, |s| s.min(shards - 1));
        out[shard].push(*unit);
        acc += weight;
    }
    out
}

/// One shard's folded pieces, in whatever way they were obtained.
struct ShardOutcome {
    observations: Vec<Observation>,
    state: InferState,
    stats: PassiveStats,
}

/// Spawn one worker, ship it `job`, and wait for a single valid
/// result within `timeout`.
fn try_worker(
    cmd: &(PathBuf, Vec<String>),
    job: &PassiveJob,
    timeout: Duration,
    stats: &DistStats,
) -> Option<PassiveResult> {
    use std::sync::atomic::Ordering;

    failpoints::failpoint!("dist::worker_spawn", |_msg| None);
    let mut child = Command::new(&cmd.0)
        .args(&cmd.1)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .ok()?;
    stats.spawned.fetch_add(1, Ordering::Relaxed);
    let mut stdin = child.stdin.take()?;
    let mut stdout = child.stdout.take()?;

    let sent = write_frame(&mut stdin, FrameKind::PassiveJob, 0, &job.encode()).ok();
    if let Some(n) = sent {
        stats.record_frame(n);
    }
    // Close the worker's stdin: after replying it sees EOF and exits,
    // which is what lets the drain loop below terminate — and what
    // makes duplicate detection deterministic (we read until the
    // worker is *gone*, not until the first frame).
    let _ = stdin.flush();
    drop(stdin);
    if sent.is_none() {
        let _ = child.kill();
        let _ = child.wait();
        return None;
    }

    let (tx, rx) = mpsc::channel();
    let reader = std::thread::spawn(move || {
        loop {
            match read_frame(&mut stdout) {
                Ok(Some(frame)) => {
                    if tx.send(Ok(frame)).is_err() {
                        return;
                    }
                }
                Ok(None) => return, // clean EOF
                Err(e) => {
                    let _ = tx.send(Err(e));
                    return;
                }
            }
        }
    });

    let mut accepted: Option<PassiveResult> = None;
    let outcome = loop {
        match rx.recv_timeout(timeout) {
            Ok(Ok(frame)) => {
                if frame.kind != FrameKind::PassiveResult || frame.seq != 0 {
                    break None; // protocol violation: retry the shard
                }
                stats.record_frame(frame.payload.len() + 22); // magic+header+checksum overhead
                match PassiveResult::decode(&frame.payload) {
                    Ok(result) => {
                        if accepted.is_some() {
                            stats.deduped.fetch_add(1, Ordering::Relaxed);
                        } else {
                            accepted = Some(result);
                        }
                        // Keep draining: the worker exits on stdin EOF,
                        // so the channel disconnects shortly.
                    }
                    Err(_) => break None,
                }
            }
            Ok(Err(_)) => break None, // torn/corrupt frame
            Err(mpsc::RecvTimeoutError::Disconnected) => break accepted,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if accepted.is_some() {
                    // Result already in hand; the worker is just slow
                    // to exit. Don't punish the shard for that.
                    break accepted;
                }
                stats.timed_out.fetch_add(1, Ordering::Relaxed);
                break None;
            }
        }
    };
    let _ = child.kill();
    let _ = child.wait();
    let _ = reader.join();
    outcome
}

/// The Sync subset of a [`PipelinePrep`] the shard threads read
/// (`Sim` itself holds `RefCell` caches and stays on the caller's
/// thread).
struct HarvestInputs<'p> {
    passive: &'p mlpeer_data::collector::PassiveDataset,
    dict: &'p mlpeer::dict::CommunityDictionary,
    conn: &'p mlpeer::connectivity::ConnectivityData,
    rels: &'p mlpeer_topo::infer::InferredRelationships,
}

/// Run one shard to completion: worker attempts with retries, then
/// in-process degradation.
fn run_shard(
    shard: usize,
    scale: &str,
    seed: u64,
    units: Vec<WorkUnit>,
    inputs: &HarvestInputs<'_>,
    cfg: &DistConfig,
    stats: &DistStats,
) -> ShardOutcome {
    use std::sync::atomic::Ordering;

    if let Some(cmd) = &cfg.worker_cmd {
        for attempt in 0..=cfg.max_retries {
            if attempt > 0 {
                stats.retried.fetch_add(1, Ordering::Relaxed);
            }
            let job = PassiveJob {
                scale: scale.to_string(),
                seed,
                units: units.clone(),
                fault: cfg.fault_for(shard, attempt),
            };
            if let Some(result) = try_worker(cmd, &job, cfg.timeout, stats) {
                return ShardOutcome {
                    observations: result.observations,
                    state: result.state,
                    stats: result.stats,
                };
            }
        }
    }
    // Exhausted (or spawning impossible): the serial code path on the
    // coordinator's own prep — slower, never different.
    stats.degraded.fetch_add(1, Ordering::Relaxed);
    let mut sink: TeeSink = (Vec::new(), LinkInferencer::default());
    let local = harvest_passive_units(
        inputs.passive,
        inputs.dict,
        inputs.conn,
        inputs.rels,
        &PassiveConfig::default(),
        &units,
        &mut sink,
    );
    ShardOutcome {
        observations: sink.0,
        state: sink.1.export_state(),
        stats: local,
    }
}

/// The distributed passive harvest: partition `prep.passive` into
/// `cfg.workers` contiguous shards, run each on a worker process (with
/// retries and degradation per the module fault model), and fold the
/// results in shard order. Byte-identical to [`mlpeer::passive::harvest_passive`]
/// on the same prep, for any worker count, fault schedule, or
/// completion order.
///
/// `scale` must be the scale word `prep`'s ecosystem was generated
/// from (workers regenerate the dataset from `(scale, seed)`).
pub fn harvest_passive_dist(
    scale: &str,
    seed: u64,
    prep: &PipelinePrep<'_>,
    cfg: &DistConfig,
    stats: &DistStats,
) -> (TeeSink, PassiveStats) {
    if cfg.workers <= 1 {
        return harvest_passive_sharded::<TeeSink>(
            &prep.passive,
            &prep.dict,
            &prep.conn,
            &prep.rels,
            &PassiveConfig::default(),
        );
    }

    let total_rib: usize = prep.passive.rib_len();
    let chunk_len = (total_rib / (cfg.workers * 4).max(1)).max(2048);
    let units = passive_work_units(&prep.passive, chunk_len);
    let weights: Vec<usize> = units
        .iter()
        .map(|u| work_unit_weight(&prep.passive, u))
        .collect();
    let shards = partition_units(&weights, &units, cfg.workers);
    let inputs = HarvestInputs {
        passive: &prep.passive,
        dict: &prep.dict,
        conn: &prep.conn,
        rels: &prep.rels,
    };

    let mut outcomes: Vec<Option<ShardOutcome>> = Vec::new();
    outcomes.resize_with(shards.len(), || None);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        let inputs = &inputs;
        for (i, shard_units) in shards.into_iter().enumerate() {
            handles.push((
                i,
                scope.spawn(move || run_shard(i, scale, seed, shard_units, inputs, cfg, stats)),
            ));
        }
        for (i, handle) in handles {
            outcomes[i] = Some(handle.join().expect("shard thread panicked"));
        }
    });

    // Fold in shard order: observation concat reproduces the serial
    // stream; state absorption is order-insensitive but folded in
    // order anyway.
    let mut sink: TeeSink = (Vec::new(), LinkInferencer::default());
    let mut total = PassiveStats::default();
    for outcome in outcomes.into_iter().flatten() {
        sink.0.extend(outcome.observations);
        sink.1.absorb_state(outcome.state);
        total.merge(&outcome.stats);
    }
    (sink, total)
}
